//! Differential property suite for the sharded replay engine: the merged
//! [`ShardedSimulator`] report is **bit-identical** to the single-threaded
//! simulator for every shard count in {1, 2, 4, 8}, across the eviction ×
//! admission × score grid (minus `random`, whose global RNG stream is not
//! shard-reproducible and which the engine refuses above one shard), with
//! random warm-up splits and random speculation windows. Speculation
//! telemetry is checked to be deterministic for a given shard count and
//! exactly the single-threaded batcher's at one shard.

use icgmm_cache::{
    simulate_streaming_with_warmup, AlwaysAdmit, CacheConfig, FnScore, LatencyModel, LruPolicy,
    RandomPolicy, ScoreSource, SetAssocCache, ShardPolicies, ShardRouting, ShardedSimulator,
    SimReport, SpecParams, SpecStats, ThresholdAdmit, WindowedSimulator,
};
use icgmm_testutil::{
    admission_for, eviction_for, score_for, small_cfg, zipf_trace, ADMISSIONS, SHARDABLE_EVICTIONS,
};
use icgmm_trace::TraceRecord;
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One sharded run over the grid fixtures.
fn run_sharded(
    shards: usize,
    eviction: &str,
    admission: &str,
    score: &str,
    trace: &[TraceRecord],
    warmup_len: usize,
    window: usize,
) -> (SimReport, SpecStats) {
    let cfg = small_cfg();
    let lat = LatencyModel::paper_tlc();
    let (warm, meas) = trace.split_at(warmup_len);
    // `Batched` mirrors calling `WindowedSimulator` directly: every shard
    // speculates, so the suite exercises the batcher (shadow, rollback,
    // run splits) under sharding even for streaming-kernel score sources.
    let sim = ShardedSimulator::with_params(shards, SpecParams::with_window(window))
        .with_routing(ShardRouting::Batched);
    let rep = sim
        .run(
            warm,
            meas,
            cfg,
            &|ctx| {
                // Belady's oracle must see this shard's subsequence. The
                // fixture API takes a slice, so gather the indexed views
                // (test-only copy; the engine itself never materializes).
                let recs: Vec<TraceRecord> = ctx
                    .warmup
                    .iter()
                    .chain(ctx.measured.iter())
                    .copied()
                    .collect();
                ShardPolicies {
                    admission: admission_for(admission),
                    eviction: eviction_for(eviction, cfg, &recs),
                    score: score_for(score),
                }
            },
            &lat,
            Some(64),
        )
        .expect("valid geometry");
    (rep.sim, rep.spec)
}

/// The single-threaded references: the streaming loop (ground truth) and
/// the speculative batcher (for telemetry parity at one shard).
fn references(
    eviction: &str,
    admission: &str,
    score: &str,
    trace: &[TraceRecord],
    warmup_len: usize,
    window: usize,
) -> (SimReport, SpecStats) {
    let cfg = small_cfg();
    let lat = LatencyModel::paper_tlc();
    let (warm, meas) = trace.split_at(warmup_len);

    let mut c = SetAssocCache::new(cfg).unwrap();
    let mut ev = eviction_for(eviction, cfg, trace);
    let mut ad = admission_for(admission);
    let mut sc = score_for(score);
    let streaming = simulate_streaming_with_warmup(
        warm,
        meas,
        &mut c,
        ad.as_mut(),
        ev.as_mut(),
        sc.as_deref_mut().map(|s| s as &mut dyn ScoreSource),
        &lat,
        Some(64),
    );

    let mut c2 = SetAssocCache::new(cfg).unwrap();
    let mut ev2 = eviction_for(eviction, cfg, trace);
    let mut ad2 = admission_for(admission);
    let mut sc2 = score_for(score);
    let mut wsim = WindowedSimulator::with_params(SpecParams::with_window(window));
    let batched = wsim.run(
        warm,
        meas,
        &mut c2,
        ad2.as_mut(),
        ev2.as_mut(),
        sc2.as_deref_mut().map(|s| s as &mut dyn ScoreSource),
        &lat,
        Some(64),
    );
    assert_eq!(streaming, batched, "batcher reference self-check");
    (streaming, *wsim.spec_stats())
}

proptest! {
    /// Sharded replay == single-threaded replay, bit for bit (stats,
    /// `total_us`, `avg_us`, miss series), for every shard count ×
    /// eviction × admission × score combination over random Zipf traces
    /// with random warm-up splits and speculation windows.
    #[test]
    fn sharded_replay_matches_single_threaded(
        params in (0u64..1_000_000, 300usize..1200, 24u64..160, (60u64..140), 0u8..45, 1usize..1500)
    ) {
        let (seed, n, pages, skew_pct, write_pct, window) = params;
        let skew = skew_pct as f64 / 100.0;
        let trace = zipf_trace(seed, n, pages, skew, write_pct);
        let warmup_len = (seed as usize) % (n / 2);
        for eviction in SHARDABLE_EVICTIONS {
            for admission in ADMISSIONS {
                for score in ["none", "constant", "fn"] {
                    let (reference, ref_spec) =
                        references(eviction, admission, score, &trace, warmup_len, window);
                    for shards in SHARD_COUNTS {
                        let (sim, spec) = run_sharded(
                            shards, eviction, admission, score, &trace, warmup_len, window,
                        );
                        prop_assert_eq!(
                            &reference,
                            &sim,
                            "{}/{}/{} diverged at {} shards (seed {}, n {}, window {})",
                            eviction, admission, score, shards, seed, n, window
                        );
                        if shards == 1 {
                            // One shard replays the whole trace through the
                            // same batcher: telemetry is exact, not merely
                            // deterministic.
                            prop_assert_eq!(
                                &ref_spec, &spec,
                                "{}/{}/{} telemetry diverged at 1 shard",
                                eviction, admission, score
                            );
                        }
                        // The per-shard exactness invariant survives the
                        // merge: stale predicted hits are the only source
                        // of synchronous fallbacks.
                        prop_assert!(spec.sync_scores <= spec.pred_hit_missed);
                    }
                }
            }
        }
    }
}

proptest! {
    /// Sharded replay is deterministic: the same inputs and shard count
    /// produce identical reports *and* identical telemetry on every run
    /// (thread scheduling must be invisible).
    #[test]
    fn sharded_replay_is_deterministic(
        params in (0u64..1_000_000, 300usize..900, 24u64..160, 1usize..1024)
    ) {
        let (seed, n, pages, window) = params;
        let trace = zipf_trace(seed, n, pages, 0.9, 20);
        let warmup_len = n / 5;
        for shards in [2usize, 8] {
            let a = run_sharded(shards, "gmm-score", "threshold", "fn", &trace, warmup_len, window);
            let b = run_sharded(shards, "gmm-score", "threshold", "fn", &trace, warmup_len, window);
            prop_assert_eq!(&a.0, &b.0, "report not deterministic at {} shards", shards);
            prop_assert_eq!(&a.1, &b.1, "telemetry not deterministic at {} shards", shards);
        }
    }
}

// ---------------------------------------------------------------------
// API-surface behaviors of the sharded engine (default Auto routing).
// ---------------------------------------------------------------------

fn mixed_trace(n: usize) -> Vec<TraceRecord> {
    (0..n as u64)
        .map(|i| {
            let page = (i * 13 + (i / 40) % 9) % 96;
            if i % 7 == 0 {
                TraceRecord::write(page << 12)
            } else {
                TraceRecord::read(page << 12)
            }
        })
        .collect()
}

fn lru_policies(cfg: CacheConfig) -> ShardPolicies {
    ShardPolicies {
        admission: Box::new(ThresholdAdmit::new(0.4)),
        eviction: Box::new(LruPolicy::new(cfg.num_sets(), cfg.ways)),
        score: Some(Box::new(FnScore::new(|page, seq| {
            ((page * 37 + seq) % 101) as f64 / 101.0
        }))),
    }
}

#[test]
fn auto_routed_sharded_report_is_bit_identical_to_streaming_reference() {
    let cfg = small_cfg();
    let trace = mixed_trace(3_000);
    let (warm, meas) = trace.split_at(700);
    let lat = LatencyModel::paper_tlc();

    let mut c = SetAssocCache::new(cfg).unwrap();
    let mut pol = lru_policies(cfg);
    let reference = simulate_streaming_with_warmup(
        warm,
        meas,
        &mut c,
        pol.admission.as_mut(),
        pol.eviction.as_mut(),
        pol.score.as_deref_mut().map(|s| s as &mut dyn ScoreSource),
        &lat,
        Some(128),
    );

    for shards in [1usize, 2, 3, 4, 8] {
        let sim = ShardedSimulator::new(shards);
        let rep = sim
            .run(warm, meas, cfg, &|_ctx| lru_policies(cfg), &lat, Some(128))
            .unwrap();
        assert_eq!(reference, rep.sim, "{shards} shards");
        assert_eq!(rep.per_shard.len(), shards);
    }
}

#[test]
fn scores_consumed_counts_scored_misses() {
    let cfg = small_cfg();
    let trace = mixed_trace(1_000);
    let sim = ShardedSimulator::new(4);
    let rep = sim
        .run(
            &[],
            &trace,
            cfg,
            &|_ctx| lru_policies(cfg),
            &LatencyModel::paper_tlc(),
            None,
        )
        .unwrap();
    // FnScore inherits the streaming score_window, so Auto routing takes
    // the streaming route: one consumed score per miss.
    assert!(!rep.batched);
    assert_eq!(rep.scores_consumed, rep.sim.stats.misses());
}

#[test]
fn empty_shards_are_tolerated() {
    // More shards than sets: the high shards see no records.
    let cfg = CacheConfig {
        capacity_bytes: 2 * 2 * 4096,
        block_bytes: 4096,
        ways: 2,
    };
    assert_eq!(cfg.num_sets(), 2);
    let trace = mixed_trace(200);
    let sim = ShardedSimulator::new(6);
    let rep = sim
        .run(
            &[],
            &trace,
            cfg,
            &|_ctx| ShardPolicies {
                admission: Box::new(AlwaysAdmit),
                eviction: Box::new(LruPolicy::new(cfg.num_sets(), cfg.ways)),
                score: None,
            },
            &LatencyModel::paper_tlc(),
            None,
        )
        .unwrap();
    assert_eq!(rep.sim.stats.accesses(), 200);
    assert_eq!(rep.per_shard[2].stats.accesses(), 0);
}

#[test]
#[should_panic(expected = "not shard-deterministic")]
fn random_eviction_is_refused_above_one_shard() {
    let cfg = small_cfg();
    let trace = mixed_trace(100);
    let _ = ShardedSimulator::new(2).run(
        &[],
        &trace,
        cfg,
        &|_ctx| ShardPolicies {
            admission: Box::new(AlwaysAdmit),
            eviction: Box::new(RandomPolicy::new(7)),
            score: None,
        },
        &LatencyModel::paper_tlc(),
        None,
    );
}

#[test]
fn random_eviction_is_fine_at_one_shard() {
    let cfg = small_cfg();
    let trace = mixed_trace(500);
    let rep = ShardedSimulator::new(1)
        .run(
            &[],
            &trace,
            cfg,
            &|_ctx| ShardPolicies {
                admission: Box::new(AlwaysAdmit),
                eviction: Box::new(RandomPolicy::new(7)),
                score: None,
            },
            &LatencyModel::paper_tlc(),
            None,
        )
        .unwrap();
    let mut c = SetAssocCache::new(cfg).unwrap();
    let reference = simulate_streaming_with_warmup(
        &[],
        &trace,
        &mut c,
        &mut AlwaysAdmit,
        &mut RandomPolicy::new(7),
        None,
        &LatencyModel::paper_tlc(),
        None,
    );
    assert_eq!(reference, rep.sim);
}

/// Policy construction runs on the shard workers, not the calling
/// thread — the parallel-setup half of the zero-copy fan-out. (The
/// bit-identity of the resulting reports is what the whole grid above
/// checks; this pins down *where* the construction happened.)
#[test]
fn make_shard_runs_on_worker_threads() {
    let cfg = small_cfg();
    let trace = mixed_trace(400);
    let caller = std::thread::current().id();
    let seen = std::sync::Mutex::new(Vec::new());
    let rep = ShardedSimulator::new(4)
        .run(
            &[],
            &trace,
            cfg,
            &|ctx| {
                seen.lock()
                    .unwrap()
                    .push((ctx.shard, std::thread::current().id()));
                ShardPolicies {
                    admission: Box::new(AlwaysAdmit),
                    eviction: Box::new(LruPolicy::new(cfg.num_sets(), cfg.ways)),
                    score: None,
                }
            },
            &LatencyModel::paper_tlc(),
            None,
        )
        .unwrap();
    assert_eq!(rep.sim.stats.accesses(), 400);
    let seen = seen.into_inner().unwrap();
    assert_eq!(seen.len(), 4, "one construction per shard");
    assert!(
        seen.iter().all(|&(_, id)| id != caller),
        "make_shard must run on the worker threads"
    );
}

/// Chunked-parallel Belady oracle build == serial build, proven through
/// the replay: a sharded run whose per-shard oracles are built with
/// [`BeladyPolicy::from_records_chunked`] is bit-identical to one whose
/// oracles use the serial [`BeladyPolicy::from_pages`] sweep, at every
/// shard count (shard subtrace lengths land on arbitrary chunk
/// boundaries, including chunks > records for near-empty shards).
#[test]
fn chunked_belady_oracle_matches_serial_through_the_replay() {
    use icgmm_cache::BeladyPolicy;
    let cfg = small_cfg();
    let trace = mixed_trace(4_000);
    let (warm, meas) = trace.split_at(800);
    let lat = LatencyModel::paper_tlc();
    let run = |chunks: Option<usize>| {
        ShardedSimulator::new(4)
            .run(
                warm,
                meas,
                cfg,
                &|ctx| {
                    let recs: Vec<TraceRecord> = ctx
                        .warmup
                        .iter()
                        .chain(ctx.measured.iter())
                        .copied()
                        .collect();
                    let eviction: Box<dyn icgmm_cache::EvictionPolicy + Send> = match chunks {
                        Some(c) => Box::new(BeladyPolicy::from_records_chunked(
                            &recs,
                            cfg.num_sets(),
                            cfg.ways,
                            c,
                        )),
                        None => Box::new(BeladyPolicy::from_pages(
                            recs.iter().map(|r| r.page().raw()),
                            cfg.num_sets(),
                            cfg.ways,
                        )),
                    };
                    ShardPolicies {
                        admission: Box::new(AlwaysAdmit),
                        eviction,
                        score: None,
                    }
                },
                &lat,
                Some(64),
            )
            .unwrap()
    };
    let serial = run(None);
    for chunks in [2usize, 3, 8, 10_000] {
        let chunked = run(Some(chunks));
        assert_eq!(serial.sim, chunked.sim, "{chunks} chunks");
    }
}

/// Deterministic spot check on the adversarial bypass-storm fixture of
/// `batch_equivalence.rs`: heavy rollback inside every shard, still
/// bit-identical after the merge at every shard count.
#[test]
fn divergence_heavy_trace_merges_bit_identical() {
    let trace = {
        use rand::Rng as _;
        use rand::SeedableRng as _;
        let mut t = Vec::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for i in 0..6_000u64 {
            let page = if i % 5 == 0 {
                rng.gen_range(0u64..120)
            } else {
                (i * 7 + (i / 48) % 13) % 120
            };
            if i % 9 == 0 {
                t.push(TraceRecord::write(page << 12));
            } else {
                t.push(TraceRecord::read(page << 12));
            }
        }
        t
    };
    let (reference, _) = references("gmm-score", "threshold", "fn", &trace, 1_000, 512);
    for shards in SHARD_COUNTS {
        let (sim, spec) = run_sharded(shards, "gmm-score", "threshold", "fn", &trace, 1_000, 512);
        assert_eq!(reference, sim, "{shards} shards");
        assert!(
            spec.divergences() > 0,
            "{shards} shards should still hit the bypass storm: {spec:?}"
        );
    }
}
