//! The fault framework's zero-cost guarantee: an **empty** [`FaultPlan`]
//! is bit-identical to today's engines. Two layers are proven over the
//! eviction × admission × score × shard grid:
//!
//! * arming the sharded engine with an empty plan changes nothing — the
//!   merged report (stats, timing, names, fault block) equals the plain
//!   engine's, for every shard count;
//! * the wrappers themselves are transparent when disarmed — a fully
//!   wrapped stack ([`FaultyScore`] + [`FailoverEviction`] +
//!   [`FailoverAdmission`] on an empty plan) replays to the same
//!   accounting as the bare policies.

use icgmm_cache::{
    simulate_streaming_with_warmup, FailoverAdmission, FailoverEviction, FaultPlan, FaultSink,
    FaultyScore, LatencyModel, LruPolicy, ScoreSource, ScorerHealth, ShardPolicies,
    ShardedSimulator, SimReport, SpecParams,
};
use icgmm_testutil::{
    admission_for, eviction_for, score_for, small_cfg, zipf_trace, ADMISSIONS, SCORES,
    SHARDABLE_EVICTIONS,
};
use icgmm_trace::TraceRecord;
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn run_sharded(
    fault: Option<FaultPlan>,
    shards: usize,
    eviction: &str,
    admission: &str,
    score: &str,
    trace: &[TraceRecord],
    warmup_len: usize,
) -> SimReport {
    let cfg = small_cfg();
    let lat = LatencyModel::paper_tlc();
    let (warm, meas) = trace.split_at(warmup_len);
    let mut sim = ShardedSimulator::with_params(shards, SpecParams::with_window(256));
    if let Some(p) = fault {
        sim = sim.with_faults(p);
    }
    sim.run(
        warm,
        meas,
        cfg,
        &|ctx| {
            let recs: Vec<TraceRecord> = ctx
                .warmup
                .iter()
                .chain(ctx.measured.iter())
                .copied()
                .collect();
            ShardPolicies {
                admission: admission_for(admission),
                eviction: eviction_for(eviction, cfg, &recs),
                score: score_for(score),
            }
        },
        &lat,
        Some(64),
    )
    .expect("valid geometry")
    .sim
}

proptest! {
    /// `with_faults(FaultPlan::empty())` is invisible: for every grid
    /// combination and shard count, the armed-but-empty engine's report is
    /// bit-identical to the plain engine's, and its fault block is clean.
    #[test]
    fn empty_plan_sharded_replay_is_bit_identical(
        params in (0u64..1_000_000, 400usize..1000, 24u64..160, 60u64..140, 0u8..45)
    ) {
        let (seed, n, pages, skew_pct, write_pct) = params;
        let trace = zipf_trace(seed, n, pages, skew_pct as f64 / 100.0, write_pct);
        let warmup_len = (seed as usize) % (n / 2);
        for eviction in SHARDABLE_EVICTIONS {
            for admission in ADMISSIONS {
                for score in SCORES {
                    for shards in SHARD_COUNTS {
                        let plain = run_sharded(
                            None, shards, eviction, admission, score, &trace, warmup_len,
                        );
                        let armed = run_sharded(
                            Some(FaultPlan::empty()),
                            shards, eviction, admission, score, &trace, warmup_len,
                        );
                        prop_assert!(armed.fault.is_clean());
                        prop_assert_eq!(
                            &plain, &armed,
                            "{}/{}/{} diverged under an empty plan at {} shards",
                            eviction, admission, score, shards
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    /// The wrappers are transparent while disarmed: scores pass through
    /// [`FaultyScore`] unmodified and both failover shims keep routing to
    /// their primaries, so the wrapped stack's accounting equals the bare
    /// stack's (policy names differ by construction — `failover(...)` —
    /// so the comparison is field-wise minus the names).
    #[test]
    fn disarmed_wrappers_are_transparent(
        params in (0u64..1_000_000, 400usize..1000, 24u64..120)
    ) {
        let (seed, n, pages) = params;
        let cfg = small_cfg();
        let lat = LatencyModel::paper_tlc();
        let trace = zipf_trace(seed, n, pages, 0.9, 20);
        let (warm, meas) = trace.split_at(n / 4);
        let (sets, ways) = (cfg.num_sets(), cfg.ways);

        let mut c1 = icgmm_cache::SetAssocCache::new(cfg).unwrap();
        let mut ev1 = eviction_for("gmm-score", cfg, &trace);
        let mut ad1 = admission_for("threshold");
        let mut sc1 = score_for("fn");
        let bare = simulate_streaming_with_warmup(
            warm, meas, &mut c1, ad1.as_mut(), ev1.as_mut(),
            sc1.as_deref_mut().map(|s| s as &mut dyn ScoreSource),
            &lat, Some(64),
        );

        let plan = FaultPlan::empty();
        let sink = FaultSink::new();
        let health = ScorerHealth::new(&plan);
        let mut c2 = icgmm_cache::SetAssocCache::new(cfg).unwrap();
        let mut ev2 = FailoverEviction::new(
            eviction_for("gmm-score", cfg, &trace),
            Box::new(LruPolicy::new(sets, ways)),
            health.clone(),
            sink.clone(),
        );
        let mut ad2 = FailoverAdmission::new(
            admission_for("threshold"), health.clone(), sink.clone(),
        );
        let mut sc2 = FaultyScore::new(
            score_for("fn").expect("fn score"), plan, Some(health), sink.clone(),
        );
        let wrapped = simulate_streaming_with_warmup(
            warm, meas, &mut c2, &mut ad2, &mut ev2,
            Some(&mut sc2 as &mut dyn ScoreSource),
            &lat, Some(64),
        );

        prop_assert!(sink.snapshot().is_clean(), "disarmed wrappers recorded faults");
        prop_assert_eq!(&bare.stats, &wrapped.stats);
        prop_assert_eq!(bare.total_us, wrapped.total_us);
        prop_assert_eq!(bare.avg_us, wrapped.avg_us);
        prop_assert_eq!(&bare.miss_series, &wrapped.miss_series);
        prop_assert_eq!(wrapped.eviction, "failover(gmm-score->lru)");
        prop_assert_eq!(wrapped.admission, "failover(gmm-threshold->always)");
    }
}
