//! Fault-armed behaviour of the replay stack: injected faults are
//! deterministic functions of `(plan seed, trace seed)`, every rung of
//! the degradation ladder fires and is counted, and recovery paths keep
//! the replay accounting intact.

use icgmm_cache::{
    simulate_streaming_with_warmup, AccessCtx, EvictionPolicy, FailoverAdmission, FailoverEviction,
    FaultPlan, FaultSink, FaultyScore, FnScore, GmmScorePolicy, LatencyModel, LruPolicy,
    ScoreSource, ScorerHealth, SetAssocCache, ShardPolicies, ShardRunError, ShardedReport,
    ShardedSimulator, SpecParams, ThresholdAdmit, WindowedSimulator,
};
use icgmm_testutil::{
    admission_for, conflict_trace, eviction_for, score_for, small_cfg, zipf_trace,
};
use icgmm_trace::{Op, PageIndex, TraceRecord};
use proptest::prelude::*;

fn ctx(seq: u64, score: Option<f64>) -> AccessCtx {
    AccessCtx {
        page: PageIndex::new(0),
        op: Op::Read,
        seq,
        score,
    }
}

/// Satellite: non-finite scores flow through [`GmmScorePolicy`] without
/// corrupting victim selection. The strict `<` scan means a NaN-keyed way
/// can never displace a finite-keyed one, and an all-NaN set falls back
/// to way 0.
#[test]
fn non_finite_stored_scores_never_corrupt_victim_selection() {
    let mut p = GmmScorePolicy::new(1, 4);
    for (way, s) in [f64::NAN, 0.5, 0.2, f64::NAN].into_iter().enumerate() {
        p.on_insert(0, way, &ctx(way as u64, Some(s)));
    }
    // Lowest *finite* score wins; the NaN ways are skipped by strict `<`.
    assert_eq!(p.choose_victim(0, 4, &ctx(10, None)), 2);

    // +Inf loses to any finite score; -Inf beats everything.
    let mut p = GmmScorePolicy::new(1, 4);
    for (way, s) in [f64::INFINITY, 9.0, f64::NEG_INFINITY, 3.0]
        .into_iter()
        .enumerate()
    {
        p.on_insert(0, way, &ctx(way as u64, Some(s)));
    }
    assert_eq!(p.choose_victim(0, 4, &ctx(10, None)), 2);

    // All-NaN set: the scan never advances past the initial candidate.
    let mut p = GmmScorePolicy::new(1, 4);
    for way in 0..4 {
        p.on_insert(0, way, &ctx(way as u64, Some(f64::NAN)));
    }
    assert_eq!(p.choose_victim(0, 4, &ctx(10, None)), 0);
}

/// A score source that deterministically emits NaN / ±Inf alongside
/// ordinary values.
fn non_finite_score() -> FnScore<impl FnMut(u64, u64) -> f64> {
    FnScore::new(|page, seq| {
        let h = (page ^ 0xA5A5_5A5A)
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .wrapping_add(seq);
        match h % 7 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => (h >> 32) as f64 / u32::MAX as f64,
        }
    })
}

proptest! {
    /// Satellite: an engine that emits NaN/±Inf never panics the replay
    /// stack, never corrupts accounting (stats stay balanced because the
    /// simulator asserts internally), and the streaming and batched
    /// engines still agree bit-for-bit on the poisoned score stream.
    #[test]
    fn non_finite_engine_scores_replay_identically_and_never_panic(
        params in (0u64..1_000_000, 400usize..1000, 24u64..120, 60u64..140)
    ) {
        let (seed, n, pages, skew_pct) = params;
        let cfg = small_cfg();
        let lat = LatencyModel::paper_tlc();
        let trace = zipf_trace(seed, n, pages, skew_pct as f64 / 100.0, 25);
        let (warm, meas) = trace.split_at(n / 4);
        let (sets, ways) = (cfg.num_sets(), cfg.ways);

        let mut c1 = SetAssocCache::new(cfg).unwrap();
        let mut ev1 = GmmScorePolicy::new(sets, ways);
        let mut ad1 = ThresholdAdmit::new(0.5);
        let mut sc1 = non_finite_score();
        let streaming = simulate_streaming_with_warmup(
            warm, meas, &mut c1, &mut ad1, &mut ev1,
            Some(&mut sc1 as &mut dyn ScoreSource),
            &lat, Some(64),
        );

        let mut c2 = SetAssocCache::new(cfg).unwrap();
        let mut ev2 = GmmScorePolicy::new(sets, ways);
        let mut ad2 = ThresholdAdmit::new(0.5);
        let mut sc2 = non_finite_score();
        let mut wsim = WindowedSimulator::with_params(SpecParams::with_window(128));
        let batched = wsim.run(
            warm, meas, &mut c2, &mut ad2, &mut ev2,
            Some(&mut sc2 as &mut dyn ScoreSource),
            &lat, Some(64),
        );

        prop_assert_eq!(&streaming, &batched, "poisoned scores broke engine equivalence");
        prop_assert_eq!(streaming.stats.accesses(), meas.len() as u64);
    }
}

fn sharded_run(plan: FaultPlan, shards: usize, trace: &[TraceRecord]) -> ShardedReport {
    let cfg = small_cfg();
    let lat = LatencyModel::paper_tlc();
    let (warm, meas) = trace.split_at(trace.len() / 4);
    ShardedSimulator::with_params(shards, SpecParams::with_window(256))
        .with_faults(plan)
        .run(
            warm,
            meas,
            cfg,
            &|ctx| {
                let recs: Vec<TraceRecord> = ctx
                    .warmup
                    .iter()
                    .chain(ctx.measured.iter())
                    .copied()
                    .collect();
                ShardPolicies {
                    admission: admission_for("threshold"),
                    eviction: eviction_for("gmm-score", cfg, &recs),
                    score: score_for("fn"),
                }
            },
            &lat,
            Some(64),
        )
        .expect("armed shards recover, they never error")
}

proptest! {
    /// Fault-laden sharded replay is a pure function of
    /// `(plan seed, trace seed)`: re-running the same chaos plan at any
    /// shard count reproduces the report — including every fault
    /// counter — bit for bit.
    #[test]
    fn fault_laden_sharded_replay_is_deterministic_from_seeds(
        params in (0u64..1_000_000, 0u64..1_000_000, 500usize..1200, 24u64..120)
    ) {
        let (plan_seed, trace_seed, n, pages) = params;
        let trace = zipf_trace(trace_seed, n, pages, 0.9, 20);
        let plan = FaultPlan::chaos(plan_seed);
        for shards in [1usize, 2, 4, 8] {
            let a = sharded_run(plan, shards, &trace);
            let b = sharded_run(plan, shards, &trace);
            prop_assert_eq!(&a.sim, &b.sim, "non-deterministic at {} shards", shards);
            prop_assert_eq!(a.sim.fault, b.sim.fault);
        }
    }
}

/// An armed panic point fires in every shard worker (1000‰), the
/// supervisor re-replays each lost shard, and the merged accounting is
/// identical to an undisturbed run — the only trace the faults leave is
/// the panic/recovery counters.
#[test]
fn armed_shard_panics_recover_with_identical_accounting() {
    let trace = zipf_trace(11, 1200, 96, 0.9, 25);
    let clean = sharded_run(FaultPlan::empty(), 4, &trace);
    let armed = sharded_run(
        FaultPlan {
            seed: 7,
            shard_panic_per_mille: 1000,
            ..FaultPlan::empty()
        },
        4,
        &trace,
    );
    assert_eq!(armed.sim.fault.shard_panics, 4, "every worker should panic");
    assert_eq!(
        armed.sim.fault.shard_panics,
        armed.sim.fault.shard_recoveries
    );
    let mut scrubbed = armed.sim.clone();
    scrubbed.fault = clean.sim.fault;
    assert_eq!(
        scrubbed, clean.sim,
        "recovery changed the replay accounting"
    );
}

/// An eviction policy that panics on its first victim choice — in the
/// worker *and* in the supervisor's re-replay.
struct PoisonPolicy(LruPolicy);

impl EvictionPolicy for PoisonPolicy {
    fn name(&self) -> &str {
        "poison"
    }
    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        self.0.on_hit(set, way, ctx);
    }
    fn on_insert(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        self.0.on_insert(set, way, ctx);
    }
    fn choose_victim(&mut self, _set: usize, _ways: usize, _ctx: &AccessCtx) -> usize {
        panic!("poisoned victim choice");
    }
}

/// Satellite: a panic the fault plan did *not* arm (a genuine policy bug
/// that recurs on re-replay) surfaces as the typed
/// [`ShardRunError::ShardFailed`] instead of aborting the process.
#[test]
fn unrecoverable_worker_panics_surface_as_typed_errors() {
    let cfg = small_cfg();
    let lat = LatencyModel::paper_tlc();
    let trace = conflict_trace(600, 256, 3);
    let (warm, meas) = trace.split_at(100);
    let err = ShardedSimulator::new(2)
        .run(
            warm,
            meas,
            cfg,
            &|_ctx| ShardPolicies {
                admission: admission_for("always"),
                eviction: Box::new(PoisonPolicy(LruPolicy::new(cfg.num_sets(), cfg.ways))),
                score: None,
            },
            &lat,
            None,
        )
        .expect_err("a recurring panic must become an error");
    match err {
        ShardRunError::ShardFailed { message, .. } => {
            assert!(message.contains("poisoned victim choice"), "got: {message}");
        }
        other => panic!("expected ShardFailed, got {other:?}"),
    }
}

fn breaker_run(
    breaker: Option<(u32, u32)>,
    trace: &[TraceRecord],
) -> (icgmm_cache::SimReport, icgmm_cache::FaultStats) {
    let cfg = small_cfg();
    let lat = LatencyModel::paper_tlc();
    let (warm, meas) = trace.split_at(trace.len() / 4);
    let mut cache = SetAssocCache::new(cfg).unwrap();
    let mut ev = eviction_for("gmm-score", cfg, trace);
    let mut ad = admission_for("threshold");
    let mut sc = score_for("fn");
    let mut wsim = WindowedSimulator::with_params(SpecParams::with_window(128));
    if let Some((storm, cooldown)) = breaker {
        wsim.set_breaker(storm, cooldown);
    }
    let report = wsim.run(
        warm,
        meas,
        &mut cache,
        ad.as_mut(),
        ev.as_mut(),
        sc.as_deref_mut().map(|s| s as &mut dyn ScoreSource),
        &lat,
        Some(64),
    );
    (report, *wsim.fault_stats())
}

/// Breaker rung: under a divergence storm the circuit breaker demotes
/// batched→streaming (counted trips and streamed records), cools down,
/// re-arms — and the replayed results stay bit-identical to the
/// breaker-free run, because demotion only changes routing.
#[test]
fn breaker_demotes_batched_to_streaming_without_changing_results() {
    let trace = conflict_trace(4_000, 512, 17);
    let (plain, plain_fault) = breaker_run(None, &trace);
    let (armed, fault) = breaker_run(Some((1, 96)), &trace);
    assert!(plain_fault.is_clean());
    assert!(fault.breaker_trips > 0, "storm never tripped the breaker");
    assert!(fault.breaker_streamed > 0, "trips must stream records");
    assert_eq!(plain, armed, "breaker routing changed replay results");

    let (_, again) = breaker_run(Some((1, 96)), &trace);
    assert_eq!(fault, again, "breaker telemetry must be deterministic");
}

/// Monitor rungs: a scorer spewing non-finite values demotes gmm-score
/// eviction to LRU and threshold admission to always-admit after the
/// configured streak, serves degraded decisions (counted), and
/// re-promotes once the scorer recovers — all deterministically.
#[test]
fn scorer_health_monitor_demotes_serves_degraded_and_repromotes() {
    let run = || {
        let cfg = small_cfg();
        let lat = LatencyModel::paper_tlc();
        let trace = conflict_trace(3_000, 512, 23);
        let (warm, meas) = trace.split_at(500);
        let plan = FaultPlan {
            seed: 41,
            scorer_nan_per_mille: 350,
            scorer_demote_after: 3,
            scorer_promote_after: 4,
            ..FaultPlan::empty()
        };
        let sink = FaultSink::new();
        let health = ScorerHealth::new(&plan);
        let mut cache = SetAssocCache::new(cfg).unwrap();
        let mut ev = FailoverEviction::new(
            eviction_for("gmm-score", cfg, &trace),
            Box::new(LruPolicy::new(cfg.num_sets(), cfg.ways)),
            health.clone(),
            sink.clone(),
        );
        let mut ad =
            FailoverAdmission::new(admission_for("threshold"), health.clone(), sink.clone());
        let mut sc = FaultyScore::new(
            score_for("fn").expect("fn score"),
            plan,
            Some(health),
            sink.clone(),
        );
        let report = simulate_streaming_with_warmup(
            warm,
            meas,
            &mut cache,
            &mut ad,
            &mut ev,
            Some(&mut sc as &mut dyn ScoreSource),
            &lat,
            Some(64),
        );
        (report, sink.snapshot())
    };

    let (report, fault) = run();
    assert!(fault.scorer_nan_injected > 0, "plan injected nothing");
    assert!(fault.scorer_demotions >= 1, "monitor never demoted");
    assert!(fault.scorer_repromotions >= 1, "monitor never re-promoted");
    assert!(fault.degraded_scores > 0, "no degraded scores served");
    assert!(
        fault.degraded_victims > 0,
        "LRU fallback never chose a victim"
    );
    assert!(
        fault.degraded_admits > 0,
        "always-admit fallback never admitted"
    );
    assert_eq!(report.stats.accesses(), 2_500);

    let (report2, fault2) = run();
    assert_eq!(report, report2, "degraded replay must be deterministic");
    assert_eq!(fault, fault2, "degradation counters must be deterministic");
}
