//! Allocation accounting for the sharded fan-out (the zero-copy claim,
//! measured).
//!
//! Historically `ShardedSimulator::run` materialized per-shard
//! `Vec<TraceRecord>` copies of the warmup and measured phases plus a
//! per-record `Vec<u64>` gap list — ~`size_of::<TraceRecord>() + 8`
//! bytes of routing state per trace record. [`ShardPartition::build`]
//! replaces all of that with per-shard `u32` index lists over the
//! caller's slices: ~4 bytes per record, independent of the record
//! size, with gaps derived from consecutive index entries at replay
//! time. This test pins the fan-out's allocation footprint with a
//! counting global allocator so a regression back to record copying
//! fails loudly rather than silently doubling the serving path's
//! memory traffic.
//!
//! One `#[test]` per binary: the byte counter is process-global, and a
//! sibling test running concurrently would perturb the delta.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use icgmm_cache::{CacheConfig, ShardPartition};
use icgmm_trace::TraceRecord;

/// Counts cumulative allocated bytes; frees are ignored so the delta
/// over a call is "bytes requested", not peak or net.
struct CountingAlloc;

static ALLOCATED: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates verbatim to `System`; the only addition is a relaxed
// counter bump, which cannot violate the `GlobalAlloc` contract.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size(), Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns its result plus the bytes allocated inside it.
fn allocated_by<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let before = ALLOCATED.load(Ordering::Relaxed);
    let r = f();
    (r, ALLOCATED.load(Ordering::Relaxed) - before)
}

#[test]
fn fanout_routing_state_is_four_bytes_per_record() {
    const N: usize = 200_000;
    const SHARDS: usize = 8;
    let cfg = CacheConfig {
        capacity_bytes: 256 * 4096,
        block_bytes: 4096,
        ways: 4,
    };
    // Page stride > 1 so every shard owns a non-trivial slice.
    let trace: Vec<TraceRecord> = (0..N as u64)
        .map(|i| TraceRecord::read((i.wrapping_mul(2654435761) % 4096) << 12))
        .collect();
    let (warmup, measured) = trace.split_at(N / 4);

    let (part, bytes) = allocated_by(|| ShardPartition::build(SHARDS, &cfg, warmup, measured).unwrap());

    // Every record is routed exactly once.
    let routed: usize = (0..SHARDS).map(|s| part.positions(s).len()).sum();
    assert_eq!(routed, N);

    // The floor: each routed record costs one u32 index entry, and the
    // two-pass build sizes the per-shard lists exactly.
    let index_bytes = N * std::mem::size_of::<u32>();
    assert!(
        bytes >= index_bytes,
        "partition under-counts: {bytes} B for {index_bytes} B of index entries"
    );
    // The ceiling: index entries plus small per-shard bookkeeping (the
    // counts pass and the Vec spine) — nowhere near a record copy. Slack
    // of 1 B/record covers allocator rounding of the 2×SHARDS vectors.
    assert!(
        bytes <= index_bytes + N,
        "fan-out allocated {bytes} B; index lists alone need {index_bytes} B — \
         routing state is no longer ~4 B/record"
    );
    // And the claim that names the test: far below one record copy per
    // routed record (the pre-index fan-out paid size_of::<TraceRecord>()
    // + 8 gap bytes for each).
    let record_copy_bytes = N * std::mem::size_of::<TraceRecord>();
    assert!(
        bytes < record_copy_bytes / 2,
        "fan-out allocated {bytes} B, within 2x of full record copies \
         ({record_copy_bytes} B) — the zero-copy representation regressed"
    );
}
