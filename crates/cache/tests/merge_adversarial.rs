//! Adversarial-interleaving property suite for [`StreamingMerge`] /
//! [`merge_streams`]: however the global sequence is partitioned into
//! per-stream subsequences — single-stream bursts, ragged tails, streams
//! handed to the driver in reverse discovery order — the k-way merge
//! re-accounts bit-identically to a sort-based oracle that pushes every
//! outcome in ascending global order. The outcomes mix hits, insertions
//! with clean and dirty victims and bypasses, so the order-sensitive
//! `f64` latency accumulation would expose any reordering the sequence
//! assertion somehow let through.

use icgmm_cache::{
    merge_streams, AccessOutcome, Eviction, LatencyModel, OutcomeStream, SeqOutcome, SimReport,
    StreamingMerge,
};
use icgmm_trace::{PageIndex, TraceRecord};
use proptest::prelude::*;

/// Deterministic outcome zoo keyed off the global position: every
/// variant shows up, and dirty evictions perturb the latency total
/// enough that a swapped pair of outcomes changes the `f64` sum.
fn outcome_at(seq: u64, salt: u64) -> SeqOutcome {
    let h = seq.wrapping_mul(6364136223846793005).wrapping_add(salt | 1);
    let record = if h.is_multiple_of(3) {
        TraceRecord::write((seq % 97) << 12)
    } else {
        TraceRecord::read((seq % 97) << 12)
    };
    let outcome = match h % 5 {
        0 => AccessOutcome::Hit {
            way: (h % 4) as usize,
        },
        1 => AccessOutcome::MissBypassed,
        2 => AccessOutcome::MissInserted {
            way: (h % 4) as usize,
            evicted: None,
        },
        3 => AccessOutcome::MissInserted {
            way: (h % 4) as usize,
            evicted: Some(Eviction {
                page: PageIndex::new(h % 131),
                dirty: false,
            }),
        },
        _ => AccessOutcome::MissInserted {
            way: (h % 4) as usize,
            evicted: Some(Eviction {
                page: PageIndex::new(h % 131),
                dirty: true,
            }),
        },
    };
    SeqOutcome {
        seq,
        record,
        outcome,
    }
}

struct VecStream(std::vec::IntoIter<SeqOutcome>);

impl OutcomeStream for VecStream {
    fn next_outcome(&mut self) -> Option<SeqOutcome> {
        self.0.next()
    }
}

/// The sort-based oracle: every outcome in ascending global order
/// through one [`StreamingMerge`].
fn oracle(n: u64, salt: u64, warmup_len: usize, window: Option<u64>) -> SimReport {
    let lat = LatencyModel::paper_tlc();
    let mut merge = StreamingMerge::new(warmup_len, &lat, window);
    for seq in 0..n {
        merge.push(&outcome_at(seq, salt));
    }
    merge.finish(n as usize - warmup_len, "lru", "always")
}

/// Merges an explicit partition of `0..n` through [`merge_streams`].
fn merged(
    partition: Vec<Vec<u64>>,
    salt: u64,
    n: u64,
    warmup_len: usize,
    window: Option<u64>,
) -> SimReport {
    let lat = LatencyModel::paper_tlc();
    let mut merge = StreamingMerge::new(warmup_len, &lat, window);
    let mut streams: Vec<VecStream> = partition
        .into_iter()
        .map(|seqs| {
            VecStream(
                seqs.into_iter()
                    .map(|s| outcome_at(s, salt))
                    .collect::<Vec<_>>()
                    .into_iter(),
            )
        })
        .collect();
    let mut refs: Vec<&mut dyn OutcomeStream> = streams
        .iter_mut()
        .map(|s| s as &mut dyn OutcomeStream)
        .collect();
    let count = merge_streams(&mut refs, &mut merge);
    assert_eq!(count, n, "merge must consume every outcome exactly once");
    merge.finish(n as usize - warmup_len, "lru", "always")
}

proptest! {
    /// Random ownership partitions (the sharded-serving shape: position i
    /// belongs to stream `hash(i) % k`, each stream ascending), including
    /// heavily skewed ones, match the oracle bit for bit — and so does
    /// the same partition with the streams handed over in reverse.
    #[test]
    fn random_partitions_match_the_sorted_oracle(
        params in (0u64..1_000_000, 50u64..400, 1usize..9, 0u64..50)
    ) {
        let (salt, n, k, warm) = params;
        let warmup_len = (warm % n) as usize;
        let window = if salt % 2 == 0 { Some(16) } else { None };
        let reference = oracle(n, salt, warmup_len, window);
        let mut partition: Vec<Vec<u64>> = vec![Vec::new(); k];
        for seq in 0..n {
            let owner = (seq.wrapping_mul(2654435761).wrapping_add(salt) >> 3) as usize % k;
            partition[owner].push(seq);
        }
        let forward = merged(partition.clone(), salt, n, warmup_len, window);
        prop_assert_eq!(&forward, &reference);
        // Reverse-order delivery: the driver discovers the streams in the
        // opposite order. Stream identity must be irrelevant.
        partition.reverse();
        let reversed = merged(partition, salt, n, warmup_len, window);
        prop_assert_eq!(&reversed, &reference);
    }

    /// Single-stream bursts: long runs of consecutive positions owned by
    /// one stream (run lengths drawn from the seed), so one stream floods
    /// the merge while the others sit idle — then control flips.
    #[test]
    fn single_stream_bursts_match_the_sorted_oracle(
        params in (0u64..1_000_000, 60u64..300, 2usize..6, 1u64..40)
    ) {
        let (salt, n, k, max_run) = params;
        let reference = oracle(n, salt, 0, Some(8));
        let mut partition: Vec<Vec<u64>> = vec![Vec::new(); k];
        let mut seq = 0u64;
        let mut owner = 0usize;
        let mut x = salt;
        while seq < n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let run = 1 + x % max_run;
            for _ in 0..run {
                if seq >= n {
                    break;
                }
                partition[owner].push(seq);
                seq += 1;
            }
            owner = (owner + 1 + (x >> 33) as usize % (k - 1)) % k;
        }
        let report = merged(partition, salt, n, 0, Some(8));
        prop_assert_eq!(&report, &reference);
    }

    /// Duplicate-free ragged tails: stream j owns every position up to
    /// its own cutoff (round-robin below the cutoffs), so streams run dry
    /// one after another while the survivors keep delivering — the k-way
    /// driver must keep reconstructing the global order as heads vanish.
    #[test]
    fn ragged_tails_match_the_sorted_oracle(
        params in (0u64..1_000_000, 80u64..300, 2usize..7)
    ) {
        let (salt, n, k) = params;
        let reference = oracle(n, salt, 10, None);
        // Cutoffs strictly inside the run, pseudo-random but distinct in
        // effect: stream j stops owning anything past cut[j].
        let cuts: Vec<u64> = (0..k)
            .map(|j| {
                let h = (j as u64 + 1).wrapping_mul(salt | 3);
                n / 4 + h % (3 * n / 4)
            })
            .collect();
        let mut partition: Vec<Vec<u64>> = vec![Vec::new(); k];
        for seq in 0..n {
            // Round-robin over the streams still alive at this position;
            // every position owned exactly once, no duplicates.
            let alive: Vec<usize> = (0..k).filter(|&j| seq < cuts[j]).collect();
            let owner = if alive.is_empty() {
                // Past every cutoff: the longest-lived stream owns the rest.
                (0..k).max_by_key(|&j| cuts[j]).unwrap()
            } else {
                alive[(seq % alive.len() as u64) as usize]
            };
            partition[owner].push(seq);
        }
        let report = merged(partition, salt, n, 10, None);
        prop_assert_eq!(&report, &reference);
    }
}
