//! Property tests: the speculative miss-window batcher is bit-identical to
//! the streaming simulator over random Zipf traces × every eviction policy
//! × every admission policy × every score-source shape, warm-up included —
//! plus a deterministic adversarial trace that forces heavy speculation
//! rollback.

use icgmm_cache::{
    simulate_streaming_with_warmup, FnScore, LatencyModel, LruPolicy, ScoreSource, SetAssocCache,
    ThresholdAdmit, WindowedSimulator,
};
use icgmm_testutil::{
    admission_for, eviction_for, score_for, small_cfg, zipf_trace, ADMISSIONS, EVICTIONS, SCORES,
};
use icgmm_trace::TraceRecord;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[allow(clippy::too_many_arguments)]
fn run_pair(
    eviction: &str,
    admission: &str,
    score: &str,
    trace: &[TraceRecord],
    warmup_len: usize,
    window: usize,
) -> (
    icgmm_cache::SimReport,
    icgmm_cache::SimReport,
    icgmm_cache::SpecStats,
) {
    let cfg = small_cfg();
    let lat = LatencyModel::paper_tlc();
    let (warm, meas) = trace.split_at(warmup_len);

    let mut c1 = SetAssocCache::new(cfg).unwrap();
    let mut ev1 = eviction_for(eviction, cfg, trace);
    let mut ad1 = admission_for(admission);
    let mut sc1 = score_for(score);
    let streaming = simulate_streaming_with_warmup(
        warm,
        meas,
        &mut c1,
        ad1.as_mut(),
        ev1.as_mut(),
        sc1.as_deref_mut().map(|s| s as &mut dyn ScoreSource),
        &lat,
        Some(64),
    );

    let mut c2 = SetAssocCache::new(cfg).unwrap();
    let mut ev2 = eviction_for(eviction, cfg, trace);
    let mut ad2 = admission_for(admission);
    let mut sc2 = score_for(score);
    let mut wsim = WindowedSimulator::new(window);
    let batched = wsim.run(
        warm,
        meas,
        &mut c2,
        ad2.as_mut(),
        ev2.as_mut(),
        sc2.as_deref_mut().map(|s| s as &mut dyn ScoreSource),
        &lat,
        Some(64),
    );
    (streaming, batched, *wsim.spec_stats())
}

proptest! {
    /// Bit-identical `SimReport`s (stats, `total_us`, miss series) for
    /// every eviction × admission × score combination over random Zipf
    /// traces with a random warm-up split and a random speculation window.
    #[test]
    fn batched_simulation_matches_streaming(
        params in (0u64..1_000_000, 300usize..1200, 24u64..160, (60u64..140), 0u8..45, 1usize..1500)
    ) {
        let (seed, n, pages, skew_pct, write_pct, window) = params;
        let skew = skew_pct as f64 / 100.0;
        let trace = zipf_trace(seed, n, pages, skew, write_pct);
        let warmup_len = (seed as usize) % (n / 2);
        for eviction in EVICTIONS {
            for admission in ADMISSIONS {
                for score in SCORES {
                    let (streaming, batched, spec) =
                        run_pair(eviction, admission, score, &trace, warmup_len, window);
                    prop_assert_eq!(
                        &streaming,
                        &batched,
                        "{}/{}/{} diverged (seed {}, n {}, window {})",
                        eviction, admission, score, seed, n, window
                    );
                    // The exactness invariant (batch.rs module docs):
                    // every stale predicted hit — possible only downstream
                    // of a tolerated bypass — takes one synchronous
                    // fallback score, unless a densely scored window
                    // already holds the positionally exact score.
                    prop_assert!(spec.sync_scores <= spec.pred_hit_missed);
                }
            }
        }
    }
}

proptest! {
    /// The policy-aware shadow predicts victims *exactly* for the
    /// policies that expose a model — LRU (recency), FIFO (insertion
    /// order), LFU (frequency) and gmm-score (stored scores) — so on
    /// bypass-free traces (always-admit: no phantoms can poison the
    /// shadow) speculation must not diverge at all: no victim mismatch,
    /// no hit/miss misclassification, no synchronous fallback scoring.
    #[test]
    fn predictable_policies_never_diverge_without_bypasses(
        params in (0u64..1_000_000, 300usize..1200, 24u64..160, (60u64..140), 0u8..45, 1usize..1500)
    ) {
        let (seed, n, pages, skew_pct, write_pct, window) = params;
        let skew = skew_pct as f64 / 100.0;
        let trace = zipf_trace(seed, n, pages, skew, write_pct);
        let warmup_len = (seed as usize) % (n / 2);
        for eviction in ["lru", "fifo", "lfu", "gmm-score"] {
            for score in ["constant", "fn"] {
                let (streaming, batched, spec) =
                    run_pair(eviction, "always", score, &trace, warmup_len, window);
                prop_assert_eq!(&streaming, &batched, "{}/{}", eviction, score);
                prop_assert_eq!(
                    spec.divergences(), 0,
                    "{}/{} diverged without bypasses (seed {}, window {}): {:?}",
                    eviction, score, seed, window, spec
                );
                prop_assert_eq!(spec.victim_divergences, 0);
                prop_assert_eq!(spec.sync_scores, 0);
                // Run splits (the stored-score within-window dependency)
                // are a gmm-score-only mechanism.
                if eviction != "gmm-score" {
                    prop_assert_eq!(spec.run_splits, 0, "{} split: {:?}", eviction, spec);
                }
            }
        }
    }
}

/// Adversarial rollback torture: GMM-score eviction + a threshold
/// admission fed pseudo-random scores (constant bypass divergences) over
/// a working set slightly larger than the cache. Every bypass leaves a
/// phantom whose stored score the shadow must conservatively forget, so
/// even the policy-aware victim model keeps mispredicting around the
/// phantoms — speculation must diverge in every way we count, and the
/// replay must still be bit-identical.
#[test]
fn divergence_heavy_adversarial_trace_is_bit_identical() {
    // 120 pages rotating over a 32-page cache: miss-heavy enough that the
    // mode probe keeps speculating, with constant conflict and frequent
    // re-access of pages whose residency the shadow mispredicts.
    let mut trace = Vec::new();
    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..6_000u64 {
        let page = if i % 5 == 0 {
            rng.gen_range(0u64..120)
        } else {
            (i * 7 + (i / 48) % 13) % 120
        };
        if i % 9 == 0 {
            trace.push(TraceRecord::write(page << 12));
        } else {
            trace.push(TraceRecord::read(page << 12));
        }
    }

    let mut stale_replays = 0;
    for window in [64usize, 512, 4096] {
        let (streaming, batched, spec) =
            run_pair("gmm-score", "threshold", "fn", &trace, 1_000, window);
        assert_eq!(streaming, batched, "window {window}");
        assert!(
            spec.divergences() > 50,
            "expected heavy rollback at window {window}: {spec:?}"
        );
        assert!(spec.victim_divergences > 0, "window {window}: {spec:?}");
        assert!(spec.admission_divergences > 0, "window {window}: {spec:?}");
        // The adaptive depth must have backed off under this storm
        // (except at the shrink floor itself, where there is no room).
        if window > icgmm_cache::MIN_SPEC_WINDOW {
            assert!(spec.window_shrinks > 0, "window {window}: {spec:?}");
        }
        // …and recovery still lands batched scores after every cut.
        assert!(spec.batched_scores > 0, "window {window}: {spec:?}");
        // Exactness invariant: every stale predicted hit pairs with one
        // synchronous fallback score — except in densely scored windows,
        // which already hold the positionally exact score.
        assert!(
            spec.sync_scores <= spec.pred_hit_missed,
            "window {window}: {spec:?}"
        );
        stale_replays += spec.pred_miss_hit + spec.pred_hit_missed;
    }
    // Stale predictions (downstream of tolerated bypasses and divergent
    // run tails) must actually reach replay somewhere in this storm.
    assert!(stale_replays > 0);
}

/// The streaming and batched entry points agree for the public defaults
/// too (`simulate` routes by `ScoreSource::prefers_batching`; either
/// route must produce the same report).
#[test]
fn public_simulate_matches_streaming_reference() {
    let trace = zipf_trace(42, 4_000, 96, 0.9, 20);
    let cfg = small_cfg();
    let lat = LatencyModel::paper_tlc();

    let mut c1 = SetAssocCache::new(cfg).unwrap();
    let mut ev1 = LruPolicy::new(cfg.num_sets(), cfg.ways);
    let mut sc1 = FnScore::new(|p, s| ((p * 31 + s) % 97) as f64 / 97.0);
    let mut ad1 = ThresholdAdmit::new(0.3);
    let streaming = icgmm_cache::simulate_streaming(
        &trace,
        &mut c1,
        &mut ad1,
        &mut ev1,
        Some(&mut sc1),
        &lat,
        None,
    );

    let mut c2 = SetAssocCache::new(cfg).unwrap();
    let mut ev2 = LruPolicy::new(cfg.num_sets(), cfg.ways);
    let mut sc2 = FnScore::new(|p, s| ((p * 31 + s) % 97) as f64 / 97.0);
    let mut ad2 = ThresholdAdmit::new(0.3);
    let defaulted = icgmm_cache::simulate(
        &trace,
        &mut c2,
        &mut ad2,
        &mut ev2,
        Some(&mut sc2),
        &lat,
        None,
    );
    assert_eq!(streaming, defaulted);
}
