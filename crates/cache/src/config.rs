//! Cache geometry (the paper's case study: 64 MiB, 4 KiB blocks, 8-way).

use icgmm_trace::PageIndex;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error returned for inconsistent cache geometry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfigError {
    what: String,
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cache configuration: {}", self.what)
    }
}

impl Error for CacheConfigError {}

/// Set-associative DRAM-cache geometry.
///
/// The block size must equal the SSD access granularity (4 KiB) — the
/// paper's granularity-mismatch argument (§2.1) — though the simulator
/// accepts any power-of-two block for sensitivity studies.
///
/// ```
/// use icgmm_cache::CacheConfig;
/// let c = CacheConfig::paper_default();
/// assert_eq!(c.num_blocks(), 16_384);
/// assert_eq!(c.num_sets(), 2_048);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total cache capacity in bytes.
    pub capacity_bytes: u64,
    /// Block (cache-line) size in bytes — one SSD page.
    pub block_bytes: u64,
    /// Associativity (blocks per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Validated construction: the only way to obtain a `CacheConfig`
    /// without spelling out the fields, and the place zero-way (and other
    /// degenerate) geometries are rejected — policy constructors may then
    /// assume `ways >= 1` (see [`crate::LruPolicy::new`] and friends).
    ///
    /// # Errors
    ///
    /// Exactly [`CacheConfig::validate`]'s rules.
    pub fn new(
        capacity_bytes: u64,
        block_bytes: u64,
        ways: usize,
    ) -> Result<Self, CacheConfigError> {
        let cfg = CacheConfig {
            capacity_bytes,
            block_bytes,
            ways,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// The paper's hardware deployment: 64 MiB, 4 KiB blocks, 8 ways.
    pub fn paper_default() -> Self {
        CacheConfig {
            capacity_bytes: 64 * 1024 * 1024,
            block_bytes: icgmm_trace::PAGE_SIZE,
            ways: 8,
        }
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns an error unless capacity, block size and ways are non-zero
    /// powers-of-two-compatible values that divide evenly into at least one
    /// set.
    pub fn validate(&self) -> Result<(), CacheConfigError> {
        let err = |m: &str| {
            Err(CacheConfigError {
                what: m.to_string(),
            })
        };
        if self.block_bytes == 0 || !self.block_bytes.is_power_of_two() {
            return err("block_bytes must be a non-zero power of two");
        }
        if self.ways == 0 {
            return err("ways must be >= 1");
        }
        if self.capacity_bytes == 0 || !self.capacity_bytes.is_multiple_of(self.block_bytes) {
            return err("capacity must be a non-zero multiple of block_bytes");
        }
        let blocks = self.capacity_bytes / self.block_bytes;
        if !blocks.is_multiple_of(self.ways as u64) {
            return err("block count must be divisible by ways");
        }
        if blocks / self.ways as u64 == 0 {
            return err("geometry yields zero sets");
        }
        Ok(())
    }

    /// Total number of blocks.
    pub fn num_blocks(&self) -> usize {
        (self.capacity_bytes / self.block_bytes) as usize
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_blocks() / self.ways
    }

    /// Set index of a page (modulo mapping, as in the hardware's
    /// set-index decode).
    pub fn set_of(&self, page: PageIndex) -> usize {
        (page.raw() % self.num_sets() as u64) as usize
    }

    /// Tag of a page (the bits above the set index).
    pub fn tag_of(&self, page: PageIndex) -> u64 {
        page.raw() / self.num_sets() as u64
    }

    /// Reconstructs a page from `(set, tag)` — inverse of
    /// [`CacheConfig::set_of`]/[`CacheConfig::tag_of`].
    pub fn page_of(&self, set: usize, tag: u64) -> PageIndex {
        PageIndex::new(tag * self.num_sets() as u64 + set as u64)
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        let c = CacheConfig::paper_default();
        assert!(c.validate().is_ok());
        assert_eq!(c.num_blocks(), 16_384);
        assert_eq!(c.num_sets(), 2_048);
        assert_eq!(c.ways, 8);
    }

    #[test]
    fn invalid_geometries_are_rejected() {
        let mut c = CacheConfig::paper_default();
        c.block_bytes = 0;
        assert!(c.validate().is_err());
        c = CacheConfig {
            block_bytes: 3000,
            ..CacheConfig::paper_default()
        };
        assert!(c.validate().is_err());
        c = CacheConfig {
            ways: 0,
            ..CacheConfig::paper_default()
        };
        assert!(c.validate().is_err());
        c = CacheConfig {
            capacity_bytes: 4096 * 7,
            block_bytes: 4096,
            ways: 8,
        };
        assert!(c.validate().is_err());
        let msg = c.validate().unwrap_err().to_string();
        assert!(msg.contains("invalid cache configuration"));
    }

    #[test]
    fn validated_constructor_rejects_zero_ways() {
        assert!(CacheConfig::new(64 * 4096, 4096, 0).is_err());
        let ok = CacheConfig::new(64 * 4096, 4096, 4).unwrap();
        assert_eq!(ok.ways, 4);
        assert_eq!(ok.num_sets(), 16);
        let msg = CacheConfig::new(4096, 4096, 0).unwrap_err().to_string();
        assert!(msg.contains("ways must be >= 1"));
    }

    #[test]
    fn page_mapping_round_trips() {
        let c = CacheConfig::paper_default();
        for raw in [0u64, 1, 2047, 2048, 123_456_789] {
            let p = PageIndex::new(raw);
            let set = c.set_of(p);
            let tag = c.tag_of(p);
            assert!(set < c.num_sets());
            assert_eq!(c.page_of(set, tag), p);
        }
    }

    #[test]
    fn consecutive_pages_hit_different_sets() {
        let c = CacheConfig::paper_default();
        let s0 = c.set_of(PageIndex::new(100));
        let s1 = c.set_of(PageIndex::new(101));
        assert_ne!(s0, s1);
    }
}
