//! Streaming global-order merge: re-accounts per-shard outcome streams
//! through the single-threaded [`Accounting`] in global trace order,
//! holding only one pending outcome per stream — O(shards) memory instead
//! of the buffer-everything merge it replaces.
//!
//! # Why re-accounting in sequence order is exact
//!
//! The sharded replay argument (see [`crate::ShardedSimulator`]) proves
//! each shard produces, per record, exactly the outcome the
//! single-threaded replay produces at the same global position. Stamping
//! each outcome with that position (`seq`) and pushing them through
//! [`StreamingMerge`] in ascending-`seq` order therefore presents the
//! identical operation sequence to the identical [`Accounting`] the
//! streaming loop uses: integer counters, the order-sensitive `f64`
//! latency total and the windowed miss series all agree bit-for-bit. The
//! merge enforces the precondition — `seq` values must arrive contiguously
//! from zero — so a lost, duplicated or reordered outcome is an immediate
//! panic rather than a silently skewed report.

use crate::cache::AccessOutcome;
use crate::latency::LatencyModel;
use crate::sim::{Accounting, ScoreOrigin, SimReport};
use icgmm_trace::TraceRecord;

/// One replayed outcome stamped with its global trace position.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeqOutcome {
    /// Absolute request index in `warmup ⧺ measured` order.
    pub seq: u64,
    /// The replayed request.
    pub record: TraceRecord,
    /// The outcome its owning shard produced.
    pub outcome: AccessOutcome,
}

/// A source of [`SeqOutcome`]s in strictly increasing `seq` order —
/// one per shard. `next_outcome` may block (a serving worker's outcome
/// queue) or return instantly (a replayed shard's buffer); `None` means
/// the stream is exhausted.
pub trait OutcomeStream {
    /// The next outcome, or `None` once the stream is done.
    fn next_outcome(&mut self) -> Option<SeqOutcome>;
}

/// Incremental global-order re-accounting. Feed it every outcome of a
/// run, in global `seq` order, then [`StreamingMerge::finish`] it into
/// the same [`SimReport`] the single-threaded replay would produce.
pub struct StreamingMerge<'a> {
    acct: Accounting<'a, 'static>,
    next_seq: u64,
}

impl<'a> StreamingMerge<'a> {
    /// Creates a merge for a run with `warmup_len` warm-up requests
    /// (accounted for side effects but excluded from statistics, exactly
    /// like the streaming loop).
    pub fn new(warmup_len: usize, latency: &'a LatencyModel, series_window: Option<u64>) -> Self {
        StreamingMerge {
            acct: Accounting::new(warmup_len, latency, series_window, None),
            next_seq: 0,
        }
    }

    /// Accounts the next outcome.
    ///
    /// # Panics
    ///
    /// Panics when `out.seq` is not exactly the next expected sequence
    /// number — a gap means a lost outcome, a repeat means a duplicated
    /// one, and either would silently corrupt the merged report.
    pub fn push(&mut self, out: &SeqOutcome) {
        assert_eq!(
            out.seq, self.next_seq,
            "outcome stream lost global order: got seq {}, expected {}",
            out.seq, self.next_seq
        );
        self.next_seq += 1;
        self.acct
            .record(out.seq, &out.record, &out.outcome, None, ScoreOrigin::None);
    }

    /// How many outcomes have been merged so far (equals the next
    /// expected `seq`).
    pub fn merged(&self) -> u64 {
        self.next_seq
    }

    /// Finalizes into a [`SimReport`] (policy names travel by string —
    /// the policy instances themselves live in the shard workers).
    pub fn finish(self, measured_len: usize, eviction: &str, admission: &str) -> SimReport {
        self.acct
            .into_report_named(measured_len, eviction, admission)
    }
}

/// Drives a k-way merge to completion: repeatedly pulls the stream whose
/// pending outcome carries the smallest `seq` and pushes it through
/// `merge`, holding one pending outcome per stream. Returns the total
/// number of outcomes merged.
///
/// Since [`StreamingMerge::push`] demands contiguous sequence numbers,
/// the per-stream ascending-`seq` contract plus this smallest-head policy
/// reconstructs the global order exactly — or panics at the first hole.
pub fn merge_streams(
    streams: &mut [&mut dyn OutcomeStream],
    merge: &mut StreamingMerge<'_>,
) -> u64 {
    let mut heads: Vec<Option<SeqOutcome>> = streams.iter_mut().map(|s| s.next_outcome()).collect();
    let start = merge.merged();
    loop {
        let mut best: Option<usize> = None;
        for (i, h) in heads.iter().enumerate() {
            if let Some(h) = h {
                if best.is_none_or(|b: usize| h.seq < heads[b].as_ref().unwrap().seq) {
                    best = Some(i);
                }
            }
        }
        let Some(i) = best else {
            return merge.merged() - start;
        };
        let out = heads[i].take().unwrap();
        merge.push(&out);
        heads[i] = streams[i].next_outcome();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;

    struct VecStream(std::vec::IntoIter<SeqOutcome>);

    impl OutcomeStream for VecStream {
        fn next_outcome(&mut self) -> Option<SeqOutcome> {
            self.0.next()
        }
    }

    fn outcome(seq: u64) -> SeqOutcome {
        SeqOutcome {
            seq,
            record: TraceRecord::read(seq << 12),
            outcome: AccessOutcome::MissBypassed,
        }
    }

    #[test]
    fn two_interleaved_streams_merge_in_global_order() {
        let lat = LatencyModel::paper_tlc();
        let mut merge = StreamingMerge::new(0, &lat, None);
        let mut a = VecStream(vec![outcome(0), outcome(2), outcome(3)].into_iter());
        let mut b = VecStream(vec![outcome(1), outcome(4)].into_iter());
        let merged = merge_streams(&mut [&mut a, &mut b], &mut merge);
        assert_eq!(merged, 5);
        let report = merge.finish(5, "lru", "always");
        assert_eq!(report.stats.accesses(), 5);
    }

    #[test]
    #[should_panic(expected = "lost global order")]
    fn a_hole_in_the_sequence_panics() {
        let lat = LatencyModel::paper_tlc();
        let mut merge = StreamingMerge::new(0, &lat, None);
        let mut a = VecStream(vec![outcome(0), outcome(2)].into_iter());
        merge_streams(&mut [&mut a], &mut merge);
    }

    #[test]
    #[should_panic(expected = "lost global order")]
    fn a_duplicated_outcome_panics() {
        let lat = LatencyModel::paper_tlc();
        let mut merge = StreamingMerge::new(0, &lat, None);
        let mut a = VecStream(vec![outcome(0), outcome(0)].into_iter());
        merge_streams(&mut [&mut a], &mut merge);
    }
}
