//! Sharded multi-tenant replay: the set-associative cache partitioned by
//! set index across scoped threads, bit-identical to the single-threaded
//! simulator by construction.
//!
//! # Why set partitioning is exact
//!
//! Every decision the simulator makes about a request is local to the
//! request's *set*: tag lookup, victim choice and per-block policy
//! metadata never cross a set boundary. Partitioning the sets into `S`
//! disjoint groups (`set mod S`) therefore partitions the trace into `S`
//! subsequences whose replays cannot interact — each shard replays its
//! subsequence against its own tag store and its own policy state and
//! produces, per record, exactly the outcome the single-threaded replay
//! produces at the same global position. Three contracts make the "cannot
//! interact" claim airtight:
//!
//! * **Policies** must rank by the relative order of the events they see
//!   within each set ([`EvictionPolicy::shard_deterministic`]): shard-local
//!   sequence numbers are order-isomorphic to the global ones, so stamps,
//!   counts, stored scores and Belady positions (built from the same shard
//!   subsequence) all rank identically. [`crate::RandomPolicy`] — whose
//!   RNG stream is a global interleaving artifact — reports `false` and is
//!   refused above one shard.
//! * **Scores** are functions of the observed record and the global
//!   Algorithm 1 clock, which counts *every* request. A shard's scorer
//!   clone keeps that clock in global trace order without seeing foreign
//!   records: the gaps between its records are fast-forwarded through
//!   [`ScoreSource::observe_gap`] / [`ScoreSource::score_window_gapped`]
//!   (sources opt in via [`ScoreSource::shardable`]), so every score is
//!   bit-identical to the single-threaded stream — and each shard still
//!   rides its own [`WindowedSimulator`] miss-window speculation with one
//!   batched kernel call per window.
//! * **Accounting** is replayed, not summed: shard workers record their
//!   per-record [`crate::AccessOutcome`]s through the replay-event stream,
//!   each stamped with its global trace position, and a k-way
//!   [`StreamingMerge`] re-accounts them in ascending-sequence order
//!   through the same `Accounting` the single-threaded loop uses —
//!   holding one pending outcome per shard. Integer counters,
//!   the order-sensitive `f64` latency total and the windowed miss series
//!   all see the identical operation sequence, so the merged
//!   [`SimReport`] is bit-identical for *every* shard count — the
//!   property `tests/shard_equivalence.rs` enforces across the policy ×
//!   admission × score grid.
//!
//! Speculation telemetry ([`SpecStats`]) is merged field-wise in
//! shard-index order — deterministic for a given shard count, and exactly
//! the single-threaded batcher's telemetry at `S = 1` (the shard then
//! replays the whole trace through the same code path).
//!
//! # Zero-copy fan-out and parallel setup
//!
//! The fan-out never copies the trace. One routing pass builds a
//! [`ShardPartition`] — per-shard ascending lists of `u32` global trace
//! positions, ~4 bytes per record — and each worker replays its
//! subsequence through [`RecordsRef`] *indexed views* over the caller's
//! original slices. Foreign-record gaps (the scorer clock fast-forward)
//! are derived on the fly from consecutive index entries, so the old
//! per-shard record copies and standalone `gaps` vectors (~2× trace +
//! 8 B/record of peak fan-out memory) are gone entirely; the
//! tracking-allocator test `tests/shard_alloc.rs` pins the routing cost
//! down. Policy construction (`make_shard` — including full Belady oracle
//! passes over the shard subtrace) runs *inside* each worker, in
//! parallel, instead of serially on the calling thread; the supervisor
//! re-runs it on the calling thread only when recovering a dead shard.
//! The shard-determinism contract checks run on the worker too, with the
//! refusal re-asserted deterministically on the calling thread so callers
//! still observe a plain panic.

use crate::batch::{SpecParams, SpecStats, WindowedSimulator};
use crate::cache::{AccessOutcome, SetAssocCache};
use crate::config::{CacheConfig, CacheConfigError};
use crate::fault::{FaultPlan, FaultStats};
use crate::latency::LatencyModel;
use crate::merge::{merge_streams, OutcomeStream, SeqOutcome, StreamingMerge};
use crate::policy::{AdmissionPolicy, EvictionPolicy};
use crate::score::ScoreSource;
use crate::sim::{ReplayEvent, ReplayObserver, SimReport};
use crate::view::RecordsRef;
use icgmm_trace::TraceRecord;
use std::any::Any;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Error from [`ShardedSimulator::run`].
#[derive(Clone, Debug, PartialEq)]
pub enum ShardRunError {
    /// Invalid cache geometry.
    Config(CacheConfigError),
    /// The trace does not fit the `u32` index-based fan-out: a record's
    /// global position would truncate. Raised by
    /// [`ShardPartition::build`] *before* any routing happens — a trace
    /// this long must fail loudly, not route records to the wrong shard.
    TraceTooLong {
        /// Total records (warm-up + measured) the caller presented.
        records: usize,
    },
    /// A shard worker panicked *and* the supervisor's re-replay of that
    /// shard's subtrace panicked too. A lone worker panic (e.g. a
    /// [`FaultPlan`]-armed panic point) is recovered transparently; this
    /// error means the panic reproduced deterministically — a genuine bug,
    /// not an injected fault.
    ShardFailed {
        /// Index of the failing shard.
        shard: usize,
        /// The panic payloads, worker first, then the supervisor replay.
        message: String,
    },
}

impl fmt::Display for ShardRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardRunError::Config(e) => e.fmt(f),
            ShardRunError::TraceTooLong { records } => write!(
                f,
                "trace too long for u32 index-based fan-out ({records} records, max {})",
                u32::MAX as u64 + 1
            ),
            ShardRunError::ShardFailed { shard, message } => {
                write!(f, "shard {shard} failed: {message}")
            }
        }
    }
}

impl Error for ShardRunError {}

impl From<CacheConfigError> for ShardRunError {
    fn from(e: CacheConfigError) -> Self {
        ShardRunError::Config(e)
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// The index-based fan-out: for each shard, the ascending list of global
/// trace positions (over warm-up ⧺ measured) whose sets it owns.
///
/// This is the entire routing cost of a sharded replay — ~4 bytes per
/// record, built in one two-pass sweep (exact-size allocation, no
/// re-growth) — replacing the per-shard `TraceRecord` copies of earlier
/// revisions. Everything else derives from it: per-phase [`RecordsRef`]
/// indexed views (split at [`ShardPartition::warm_count`]), foreign-record
/// gaps (differences of consecutive entries, see [`shard_gap_before`]) and each
/// outcome's global merge position (the entry itself).
#[derive(Clone, Debug)]
pub struct ShardPartition {
    index: Vec<Vec<u32>>,
    warmup_len: usize,
}

impl ShardPartition {
    /// Whether a trace of `records` total records (warm-up + measured)
    /// fits the `u32` position index: every global position `0..records`
    /// must be representable, so the limit is `u32::MAX as usize + 1`
    /// records. Pure guard arithmetic — no allocation — so the boundary is
    /// unit-testable without materializing 4 Gi records.
    ///
    /// # Errors
    ///
    /// Returns [`ShardRunError::TraceTooLong`] past the limit.
    pub fn check_capacity(records: usize) -> Result<(), ShardRunError> {
        // The largest stored position is `records - 1`; it must fit u32.
        if records > 0 && u32::try_from(records - 1).is_err() {
            return Err(ShardRunError::TraceTooLong { records });
        }
        Ok(())
    }

    /// Routes every record of `warmup` ⧺ `measured` to its owning shard
    /// (`set mod shards`) and records only its global position.
    ///
    /// # Errors
    ///
    /// Returns [`ShardRunError::TraceTooLong`] when the trace does not fit
    /// `u32` positions (4 billion records would mean a >64 GiB trace —
    /// far beyond any in-memory replay this engine targets). The check
    /// runs before any routing: silent `as u32` truncation would route
    /// late records to wrong shards and corrupt the merge.
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0`.
    pub fn build(
        shards: usize,
        cache_cfg: &CacheConfig,
        warmup: &[TraceRecord],
        measured: &[TraceRecord],
    ) -> Result<Self, ShardRunError> {
        assert!(shards > 0, "shard count must be >= 1");
        let n = warmup.len() + measured.len();
        Self::check_capacity(n)?;
        // Two passes: count, then fill exact-capacity lists — the routing
        // allocation is precisely Σ len(shard) × 4 bytes, which the
        // tracking-allocator test asserts.
        let mut counts = vec![0usize; shards];
        for r in warmup.iter().chain(measured) {
            counts[cache_cfg.set_of(r.page()) % shards] += 1;
        }
        let mut index: Vec<Vec<u32>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for (i, r) in warmup.iter().chain(measured).enumerate() {
            let pos = u32::try_from(i).expect("checked by check_capacity");
            index[cache_cfg.set_of(r.page()) % shards].push(pos);
        }
        Ok(ShardPartition {
            index,
            warmup_len: warmup.len(),
        })
    }

    /// The shard count.
    pub fn shards(&self) -> usize {
        self.index.len()
    }

    /// The ascending global positions shard `shard` owns.
    pub fn positions(&self, shard: usize) -> &[u32] {
        &self.index[shard]
    }

    /// How many of shard `shard`'s records fall in the warm-up phase
    /// (its index entries are ascending, so this is a binary search).
    pub fn warm_count(&self, shard: usize) -> usize {
        self.index[shard].partition_point(|&i| (i as usize) < self.warmup_len)
    }

    /// Per-phase indexed views of shard `shard`'s subsequence over the
    /// caller's original slices — the worker-side replay inputs.
    pub fn views<'a>(
        &'a self,
        shard: usize,
        warmup: &'a [TraceRecord],
        measured: &'a [TraceRecord],
    ) -> (RecordsRef<'a>, RecordsRef<'a>) {
        debug_assert_eq!(warmup.len(), self.warmup_len);
        let index = self.positions(shard);
        let wc = self.warm_count(shard);
        (
            RecordsRef::indexed(warmup, &index[..wc], 0),
            RecordsRef::indexed(measured, &index[wc..], self.warmup_len as u32),
        )
    }
}

/// Foreign records preceding the `j`-th entry of an ascending shard index
/// list: the gap the scorer clock fast-forwards before observing that
/// record. Derived, not stored — the index list is the single source of
/// truth for both routing and clock bookkeeping (the serving front-end's
/// clients call this to stamp per-record gaps onto their transport
/// batches from the same representation).
#[inline]
pub fn shard_gap_before(index: &[u32], j: usize) -> u64 {
    let prev = if j == 0 { 0 } else { index[j - 1] as u64 + 1 };
    index[j] as u64 - prev
}

/// What one shard sees when its policies are built: its index, the shard
/// count, and zero-copy views of the warm-up and measured subsequences
/// whose sets it owns (in trace order). Belady-style oracles must be
/// constructed from exactly these records — their positions are the
/// shard-local sequence numbers the replay will present. Use
/// [`BeladyPolicy::from_pages`](crate::BeladyPolicy::from_pages) over
/// `ctx.warmup.iter().chain(ctx.measured.iter())` to build one without
/// materializing the subtrace.
#[derive(Debug)]
pub struct ShardCtx<'a> {
    /// This shard's index in `0..shards`.
    pub shard: usize,
    /// Total shard count.
    pub shards: usize,
    /// This shard's view of the warm-up phase.
    pub warmup: RecordsRef<'a>,
    /// This shard's view of the measured phase.
    pub measured: RecordsRef<'a>,
}

/// The per-shard replay state a [`ShardedSimulator`] caller provides:
/// fresh policy instances and (for scored runs) a scorer clone. Everything
/// crosses a thread boundary, hence the `Send` bounds.
///
/// Admission policies must be stateless or per-set-deterministic in the
/// same sense as [`EvictionPolicy::shard_deterministic`] (both in-crate
/// admissions are stateless); eviction policies are checked through that
/// method. Score sources must report [`ScoreSource::shardable`] when
/// running above one shard.
pub struct ShardPolicies {
    /// Admission policy instance for this shard.
    pub admission: Box<dyn AdmissionPolicy + Send>,
    /// Eviction policy instance for this shard.
    pub eviction: Box<dyn EvictionPolicy + Send>,
    /// Scorer clone for this shard (`None` for score-free baselines).
    pub score: Option<Box<dyn ScoreSource + Send>>,
}

/// The shard-determinism contract (see the module docs), shared by the
/// offline engine and the serving front-end so the two can never drift in
/// what they refuse. Checked on each worker right after `make_shard`; a
/// violation is re-asserted on the calling thread so the caller observes
/// one deterministic panic.
///
/// # Errors
///
/// The refusal message (stable "not shard-deterministic" / "shardable"
/// wording the contract tests match on) when `shards > 1` and the
/// policies cannot reproduce the single-threaded replay.
pub fn shard_contract(shards: usize, p: &ShardPolicies) -> Result<(), String> {
    if shards <= 1 {
        return Ok(());
    }
    if !p.eviction.shard_deterministic() {
        return Err(format!(
            "eviction policy {:?} is not shard-deterministic: its decisions depend on \
             cross-set interleaving, so set-partitioned replay cannot reproduce the \
             single-threaded run above one shard",
            p.eviction.name()
        ));
    }
    if let Some(score) = &p.score {
        if !score.shardable() {
            return Err(
                "score source cannot keep its clock exact across foreign-shard records \
                 (ScoreSource::shardable is false); sharded replay would change scores"
                    .to_string(),
            );
        }
    }
    Ok(())
}

/// Resolves whether a shard's replay rides the speculative batcher.
/// Routing is uniform in practice (every shard holds a clone of the same
/// source), so resolving it per worker — off the calling thread — cannot
/// disagree across shards. Shared with the serving front-end.
pub fn resolve_shard_routing(routing: ShardRouting, p: &ShardPolicies) -> bool {
    match routing {
        ShardRouting::Auto => p.score.as_ref().is_some_and(|s| s.prefers_batching()),
        ShardRouting::Batched => p.score.is_some(),
        ShardRouting::Streaming => false,
    }
}

/// Result of one sharded replay.
#[derive(Clone, Debug)]
pub struct ShardedReport {
    /// The merged report — bit-identical to
    /// [`crate::simulate_with_warmup`] over the same inputs, for every
    /// shard count.
    pub sim: SimReport,
    /// Field-wise sum of per-shard speculation telemetry (zeroed when the
    /// shards took the streaming path). Equals the single-threaded
    /// batcher's telemetry at one shard; above that the window boundaries
    /// are per-shard, so the counters describe the sharded replay itself.
    pub spec: SpecStats,
    /// Whether the shards rode the speculative miss-window batcher
    /// (the score source preferred batching) rather than the streaming
    /// loop.
    pub batched: bool,
    /// Replay events that consumed a score — i.e. scored misses, warm-up
    /// included. For streaming-routed runs this equals the policy engine's
    /// inference count; batched runs additionally speculate
    /// ([`SpecStats::scores_computed`] counts those).
    pub scores_consumed: u64,
    /// Per-shard reports (shard-local warm-up split), for load-balance
    /// diagnostics. Their merged stats equal [`ShardedReport::sim`]'s.
    pub per_shard: Vec<SimReport>,
}

/// How scored shards replay.
///
/// Routing is a pure host-side economics decision — results are
/// bit-identical whichever engine runs (the batcher's own property-tested
/// invariant), so this only chooses where the replay time goes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardRouting {
    /// Follow [`ScoreSource::prefers_batching`] — the same routing as
    /// [`crate::simulate_with_warmup`], so a one-shard run does exactly
    /// the single-threaded work. The default.
    #[default]
    Auto,
    /// Always ride the speculative miss-window batcher (mirrors calling
    /// [`WindowedSimulator`] directly; the equivalence suites use this to
    /// pit speculating shards against the single-threaded batcher).
    Batched,
    /// Always take the streaming loop.
    Streaming,
}

/// The sharded replay engine. Holds only configuration (shard count,
/// speculation parameters, routing); per-run state lives on the worker
/// threads.
#[derive(Clone, Debug)]
pub struct ShardedSimulator {
    shards: usize,
    params: SpecParams,
    routing: ShardRouting,
    fault: Option<FaultPlan>,
}

/// [`OutcomeStream`] over one replayed shard's buffered outcomes: each
/// outcome's global position *is* its shard-index entry, and the record
/// itself is looked up in the caller's original slices — no per-shard
/// copies, no gap prefix sums.
struct ReplayedShardStream<'a> {
    warmup: &'a [TraceRecord],
    measured: &'a [TraceRecord],
    index: &'a [u32],
    outcomes: &'a [AccessOutcome],
    idx: usize,
}

impl OutcomeStream for ReplayedShardStream<'_> {
    fn next_outcome(&mut self) -> Option<SeqOutcome> {
        let j = self.idx;
        if j >= self.outcomes.len() {
            return None;
        }
        let pos = self.index[j] as usize;
        let record = if pos < self.warmup.len() {
            self.warmup[pos]
        } else {
            self.measured[pos - self.warmup.len()]
        };
        self.idx += 1;
        Some(SeqOutcome {
            seq: pos as u64,
            record,
            outcome: self.outcomes[j],
        })
    }
}

/// Outcome of one shard worker.
struct ShardOutcome {
    outcomes: Vec<AccessOutcome>,
    scored: u64,
    spec: SpecStats,
    fault: FaultStats,
    report: SimReport,
    /// Whether this shard rode the speculative batcher (resolved on the
    /// worker from its own policies; uniform across shards in practice).
    batched: bool,
}

/// Observer that records every replayed outcome (warm-up included) in
/// shard order, for the global re-accounting merge — and, when a
/// [`FaultPlan`] armed a panic point for this shard, dies there.
struct OutcomeRecorder {
    outcomes: Vec<AccessOutcome>,
    scored: u64,
    /// Shard-local record index at which to panic (fault injection).
    panic_at: Option<u64>,
    seen: u64,
}

impl ReplayObserver for OutcomeRecorder {
    fn on_record(&mut self, ev: &ReplayEvent<'_>) {
        if self.panic_at == Some(self.seen) {
            // resume_unwind skips the panic hook: an armed panic is an
            // expected, supervisor-recovered event, not stderr noise.
            resume_unwind(Box::new(format!(
                "fault-plan armed panic at shard-local record {}",
                self.seen
            )));
        }
        self.seen += 1;
        self.outcomes.push(*ev.outcome);
        self.scored += u64::from(ev.score.is_some());
    }
}

/// How a [`GapScore`] learns its foreign-record gaps: an explicit slice
/// (the serving transport ships per-record gaps over its channels) or a
/// shard index list to derive them from on the fly (the offline engine's
/// zero-copy representation).
enum GapSource<'a> {
    Slice(&'a [u64]),
    Index(&'a [u32]),
}

impl GapSource<'_> {
    #[inline]
    fn at(&self, j: usize) -> u64 {
        match self {
            GapSource::Slice(g) => g[j],
            GapSource::Index(ix) => shard_gap_before(ix, j),
        }
    }
}

/// Keeps a shard scorer clone's observation clock in *global* trace
/// order: before each shard record is observed, the foreign-shard gap
/// preceding it is fast-forwarded through the inner source's
/// [`ScoreSource::observe_gap`]. A single linear cursor suffices because
/// the replay engines observe each record exactly once, in trace order
/// (the exactness invariant the batcher is property-tested for).
///
/// Public for the serving front-end, whose shard workers replay the same
/// set-partitioned subsequences chunk by chunk and need the identical
/// clock discipline.
pub struct GapScore<'a> {
    inner: &'a mut dyn ScoreSource,
    gaps: GapSource<'a>,
    cursor: usize,
    /// Reusable scratch materializing window gaps for
    /// [`ScoreSource::score_window_gapped`] in the index-derived case —
    /// `O(window)` bounded, recycled across calls.
    gap_buf: Vec<u64>,
}

impl<'a> GapScore<'a> {
    /// Wraps `inner` so that `gaps[j]` foreign records are fast-forwarded
    /// before the `j`-th shard record is observed.
    pub fn new(inner: &'a mut dyn ScoreSource, gaps: &'a [u64]) -> Self {
        GapScore {
            inner,
            gaps: GapSource::Slice(gaps),
            cursor: 0,
            gap_buf: Vec::new(),
        }
    }

    /// Wraps `inner` with gaps derived from an ascending shard index list
    /// (`index[j]` is the global position of the `j`-th shard record):
    /// zero stored gap state, one subtraction per record.
    pub fn from_index(inner: &'a mut dyn ScoreSource, index: &'a [u32]) -> Self {
        GapScore {
            inner,
            gaps: GapSource::Index(index),
            cursor: 0,
            gap_buf: Vec::new(),
        }
    }

    /// How many shard records have been observed through this adapter.
    pub fn observed(&self) -> usize {
        self.cursor
    }
}

impl ScoreSource for GapScore<'_> {
    fn observe(&mut self, record: &TraceRecord) {
        let gap = self.gaps.at(self.cursor);
        if gap > 0 {
            self.inner.observe_gap(gap);
        }
        self.inner.observe(record);
        self.cursor += 1;
    }

    fn score_current(&mut self) -> f64 {
        self.inner.score_current()
    }

    fn score_window(&mut self, records: &[TraceRecord], out: &mut [f64]) {
        let n = records.len();
        match self.gaps {
            GapSource::Slice(g) => {
                self.inner
                    .score_window_gapped(records, &g[self.cursor..self.cursor + n], out);
            }
            GapSource::Index(ix) => {
                self.gap_buf.clear();
                self.gap_buf
                    .extend((self.cursor..self.cursor + n).map(|j| shard_gap_before(ix, j)));
                self.inner.score_window_gapped(records, &self.gap_buf, out);
            }
        }
        self.cursor += n;
    }

    fn prefers_batching(&self) -> bool {
        self.inner.prefers_batching()
    }
}

impl ShardedSimulator {
    /// Creates a sharded simulator with the default speculation
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0`.
    pub fn new(shards: usize) -> Self {
        ShardedSimulator::with_params(shards, SpecParams::default())
    }

    /// Creates a sharded simulator with explicit [`SpecParams`] for each
    /// shard's [`WindowedSimulator`].
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0` or any parameter is invalid.
    pub fn with_params(shards: usize, params: SpecParams) -> Self {
        assert!(shards > 0, "shard count must be >= 1");
        // Reuse the batcher's own validation by constructing one.
        let _ = WindowedSimulator::with_params(params);
        ShardedSimulator {
            shards,
            params,
            routing: ShardRouting::default(),
            fault: None,
        }
    }

    /// Overrides how scored shards replay (see [`ShardRouting`]).
    pub fn with_routing(mut self, routing: ShardRouting) -> Self {
        self.routing = routing;
        self
    }

    /// Arms a [`FaultPlan`] for this simulator's runs: per-shard panic
    /// points (recovered by the supervisor) and the per-shard speculation
    /// circuit breaker. Scorer faults are the caller's concern — wrap the
    /// per-shard scorer clones in [`crate::FaultyScore`] from `make_shard`.
    /// An empty plan is equivalent to never calling this.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault = if plan.is_empty() { None } else { Some(plan) };
        self
    }

    /// The shard count `S`.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The per-shard speculation parameters.
    pub fn params(&self) -> &SpecParams {
        &self.params
    }

    /// Which shard owns `record` under `cache_cfg`'s set mapping.
    pub fn shard_of(&self, cache_cfg: &CacheConfig, record: &TraceRecord) -> usize {
        cache_cfg.set_of(record.page()) % self.shards
    }

    /// Replays `warmup` + `measured` sharded by set index and returns the
    /// deterministically merged report (see the module docs for the
    /// bit-identity argument).
    ///
    /// `make_shard` is called once per shard *on that shard's worker
    /// thread* (hence `Fn + Sync` — policy construction, including Belady
    /// oracle builds over the shard subtrace, runs in parallel); the
    /// supervisor calls it again on the calling thread only when
    /// recovering a dead shard. Scored shards whose source
    /// [`ScoreSource::prefers_batching`] ride the speculative miss-window
    /// batcher (with this simulator's [`SpecParams`]); other shards take
    /// the streaming loop — the same routing as
    /// [`crate::simulate_with_warmup`], so a one-shard run does exactly
    /// the single-threaded work.
    ///
    /// # Errors
    ///
    /// Returns [`ShardRunError::Config`] for invalid cache geometry, and
    /// [`ShardRunError::ShardFailed`] when a shard worker panics *and* the
    /// supervisor's re-replay of that shard panics too (a lone worker
    /// panic — injected or genuine — is recovered transparently: the
    /// supervisor re-replays the shard's subtrace on the calling thread
    /// and the merged report is bit-identical to an undisturbed run).
    ///
    /// # Panics
    ///
    /// Panics when running more than one shard with an eviction policy
    /// that is not [`EvictionPolicy::shard_deterministic`] or a score
    /// source that is not [`ScoreSource::shardable`].
    pub fn run(
        &self,
        warmup: &[TraceRecord],
        measured: &[TraceRecord],
        cache_cfg: CacheConfig,
        make_shard: &(dyn Fn(&ShardCtx<'_>) -> ShardPolicies + Sync),
        latency: &LatencyModel,
        series_window: Option<u64>,
    ) -> Result<ShardedReport, ShardRunError> {
        cache_cfg.validate()?;
        let s = self.shards;

        // Zero-copy fan-out: 4 bytes of routing per record, gaps and
        // global merge positions derived from the index entries.
        let part = ShardPartition::build(s, &cache_cfg, warmup, measured)?;

        // Fault arming: a per-shard panic point (the shard-worker fault
        // class) and the per-shard speculation circuit breaker.
        let panic_at: Vec<Option<u64>> = (0..s)
            .map(|shard| {
                self.fault
                    .as_ref()
                    .and_then(|p| p.shard_panic_point(shard, part.positions(shard).len()))
            })
            .collect();
        let breaker = self
            .fault
            .filter(|p| p.breaker_armed())
            .map(|p| (p.breaker_storm_windows, p.breaker_cooldown_records));

        // Replay shards on scoped threads. Each worker builds its own
        // policies (make_shard), checks the shard-determinism contract,
        // resolves its routing and replays — fully independent (own
        // cache, own policies, own scorer clone), so join order —
        // shard-index order — is the only ordering that matters. Worker
        // panics are captured at join, never propagated: degradation
        // (supervisor re-replay) happens below.
        let params = self.params;
        let routing = self.routing;
        let lat = *latency;
        let part_ref = &part;
        let joined: Vec<Result<ShardOutcome, String>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..s)
                .map(|shard| {
                    let at = panic_at[shard];
                    scope.spawn(move |_| {
                        let (warm, meas) = part_ref.views(shard, warmup, measured);
                        let ctx = ShardCtx {
                            shard,
                            shards: s,
                            warmup: warm,
                            measured: meas,
                        };
                        let pol = make_shard(&ctx);
                        if let Err(msg) = shard_contract(s, &pol) {
                            // resume_unwind skips the panic hook: the
                            // refusal is re-asserted (and panics plainly)
                            // on the calling thread below.
                            resume_unwind(Box::new(msg));
                        }
                        let batched = resolve_shard_routing(routing, &pol);
                        run_shard(
                            warm,
                            meas,
                            part_ref.positions(shard),
                            cache_cfg,
                            params,
                            batched,
                            &lat,
                            pol,
                            at,
                            breaker,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().map_err(panic_message))
                .collect()
        })
        .expect("scope completes once every handle is joined");

        // Graceful degradation: a panicked shard's worker left no shared
        // state behind (the merge below is the only cross-shard touch
        // point), so the supervisor re-replays that shard's subtrace on
        // this thread with fresh policies and the panic point disarmed.
        // The replay is deterministic, so the merged report is
        // bit-identical to a run where the worker never died. A
        // contract refusal also reproduces deterministically — as a plain
        // panic on this thread, which is what callers observe.
        let mut fault = FaultStats::default();
        let mut outcomes: Vec<ShardOutcome> = Vec::with_capacity(s);
        for (shard, res) in joined.into_iter().enumerate() {
            match res {
                Ok(o) => outcomes.push(o),
                Err(worker_msg) => {
                    fault.shard_panics += 1;
                    let (warm, meas) = part.views(shard, warmup, measured);
                    let ctx = ShardCtx {
                        shard,
                        shards: s,
                        warmup: warm,
                        measured: meas,
                    };
                    let pol = make_shard(&ctx);
                    if let Err(msg) = shard_contract(s, &pol) {
                        panic!("{msg}");
                    }
                    let batched = resolve_shard_routing(routing, &pol);
                    let replay = catch_unwind(AssertUnwindSafe(|| {
                        run_shard(
                            warm,
                            meas,
                            part.positions(shard),
                            cache_cfg,
                            params,
                            batched,
                            &lat,
                            pol,
                            None,
                            breaker,
                        )
                    }));
                    match replay {
                        Ok(o) => {
                            fault.shard_recoveries += 1;
                            outcomes.push(o);
                        }
                        Err(p) => {
                            return Err(ShardRunError::ShardFailed {
                                shard,
                                message: format!(
                                    "worker panicked ({worker_msg}); supervisor re-replay \
                                     panicked too ({})",
                                    panic_message(p)
                                ),
                            });
                        }
                    }
                }
            }
        }

        // Merge by re-accounting in global sequence order through the
        // streaming k-way merge: identical operation sequence to the
        // single-threaded loop, hence identical stats, f64 latency totals
        // and miss series — and a panic (not a skewed report) on any lost
        // or duplicated outcome. Each outcome's global position is its
        // shard-index entry — no gap prefix sums, no trace re-walk.
        let mut merge = StreamingMerge::new(warmup.len(), &lat, series_window);
        {
            let mut streams: Vec<ReplayedShardStream<'_>> = (0..s)
                .map(|shard| ReplayedShardStream {
                    warmup,
                    measured,
                    index: part.positions(shard),
                    outcomes: &outcomes[shard].outcomes,
                    idx: 0,
                })
                .collect();
            let mut dyn_streams: Vec<&mut dyn OutcomeStream> = streams
                .iter_mut()
                .map(|st| st as &mut dyn OutcomeStream)
                .collect();
            let merged = merge_streams(&mut dyn_streams, &mut merge);
            assert_eq!(
                merged as usize,
                warmup.len() + measured.len(),
                "sharded replay merged fewer outcomes than the trace holds"
            );
        }
        let mut sim = merge.finish(
            measured.len(),
            &outcomes[0].report.eviction,
            &outcomes[0].report.admission,
        );

        let batched = outcomes.iter().any(|o| o.batched);
        let mut spec = SpecStats::default();
        let mut scores_consumed = 0;
        for o in &outcomes {
            spec.merge(&o.spec);
            // Per-shard fault telemetry (breaker trips etc.), merged in
            // shard-index order — deterministic for a given shard count.
            fault.merge(&o.fault);
            scores_consumed += o.scored;
        }
        sim.fault = fault;
        if cfg!(debug_assertions) {
            let mut merged = crate::stats::CacheStats::default();
            for o in &outcomes {
                merged.merge(&o.report.stats);
            }
            debug_assert_eq!(merged, sim.stats, "per-shard stats disagree with the merge");
        }
        Ok(ShardedReport {
            sim,
            spec,
            batched,
            scores_consumed,
            per_shard: outcomes.into_iter().map(|o| o.report).collect(),
        })
    }
}

/// One shard's replay — batcher or streaming per the resolved routing —
/// over zero-copy indexed views, with an [`OutcomeRecorder`] on the
/// replay-event stream. `index` is the shard's full ascending position
/// list (warm-up ⧺ measured), the source of the scorer clock's
/// foreign-record gaps; `panic_at` arms the fault-injection panic point;
/// `breaker` arms the per-shard speculation circuit breaker.
#[allow(clippy::too_many_arguments)]
fn run_shard(
    warm: RecordsRef<'_>,
    meas: RecordsRef<'_>,
    index: &[u32],
    cache_cfg: CacheConfig,
    params: SpecParams,
    batched: bool,
    latency: &LatencyModel,
    mut pol: ShardPolicies,
    panic_at: Option<u64>,
    breaker: Option<(u32, u32)>,
) -> ShardOutcome {
    let mut cache = SetAssocCache::new(cache_cfg).expect("geometry validated by run()");
    let mut recorder = OutcomeRecorder {
        outcomes: Vec::with_capacity(index.len()),
        scored: 0,
        panic_at,
        seen: 0,
    };
    let mut spec = SpecStats::default();
    let mut fault = FaultStats::default();
    let report = match pol.score.as_mut() {
        Some(score) => {
            let mut gap_score = GapScore::from_index(score.as_mut(), index);
            if batched {
                let mut wsim = WindowedSimulator::with_params(params);
                if let Some((storm, cooldown)) = breaker {
                    wsim.set_breaker(storm, cooldown);
                }
                let report = wsim.run_observed_records(
                    warm,
                    meas,
                    &mut cache,
                    pol.admission.as_mut(),
                    pol.eviction.as_mut(),
                    Some(&mut gap_score),
                    latency,
                    None,
                    &mut recorder,
                );
                spec = *wsim.spec_stats();
                fault = *wsim.fault_stats();
                report
            } else {
                crate::sim::simulate_streaming_observed_records(
                    warm,
                    meas,
                    &mut cache,
                    pol.admission.as_mut(),
                    pol.eviction.as_mut(),
                    Some(&mut gap_score),
                    latency,
                    None,
                    &mut recorder,
                )
            }
        }
        None => crate::sim::simulate_streaming_observed_records(
            warm,
            meas,
            &mut cache,
            pol.admission.as_mut(),
            pol.eviction.as_mut(),
            None,
            latency,
            None,
            &mut recorder,
        ),
    };
    ShardOutcome {
        outcomes: recorder.outcomes,
        scored: recorder.scored,
        spec,
        fault,
        report,
        batched: batched && pol.score.is_some(),
    }
}

#[cfg(test)]
mod tests {
    // The behavioral tests for this engine live in the integration suite
    // `tests/shard_equivalence.rs`, where the shared `icgmm-testutil`
    // fixtures are usable (a dev-dependency cycle links testutil against
    // the *library* build, whose types do not unify with this unit-test
    // build's). Only fixture-free construction checks belong here.
    use super::*;

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_panics() {
        let _ = ShardedSimulator::new(0);
    }

    #[test]
    fn routing_and_params_are_plumbed() {
        let sim = ShardedSimulator::with_params(3, SpecParams::with_window(128))
            .with_routing(ShardRouting::Streaming);
        assert_eq!(sim.shards(), 3);
        assert_eq!(sim.params().window, 128);
    }

    #[test]
    fn gaps_derive_from_index_entries() {
        // Shard owns global positions 2, 3, 7: gaps 2 (0,1 foreign),
        // 0 (adjacent), 3 (4,5,6 foreign).
        let index = [2u32, 3, 7];
        assert_eq!(shard_gap_before(&index, 0), 2);
        assert_eq!(shard_gap_before(&index, 1), 0);
        assert_eq!(shard_gap_before(&index, 2), 3);
    }

    #[test]
    fn partition_splits_phases_and_preserves_order() {
        let cfg = CacheConfig {
            capacity_bytes: 16 * 4096,
            block_bytes: 4096,
            ways: 2,
        };
        // 8 sets, pages p map to set p % 8; 2 shards → shard = set % 2.
        let warm: Vec<TraceRecord> = (0..6u64).map(|p| TraceRecord::read(p << 12)).collect();
        let meas: Vec<TraceRecord> = (6..16u64).map(|p| TraceRecord::read(p << 12)).collect();
        let part = ShardPartition::build(2, &cfg, &warm, &meas).unwrap();
        for shard in 0..2 {
            let idx = part.positions(shard);
            assert!(idx.windows(2).all(|w| w[0] < w[1]), "ascending order");
            let (wv, mv) = part.views(shard, &warm, &meas);
            assert_eq!(wv.len() + mv.len(), idx.len());
            assert_eq!(wv.len(), part.warm_count(shard));
            for (j, r) in wv.iter().chain(mv.iter()).enumerate() {
                let pos = idx[j] as usize;
                let want = if pos < warm.len() {
                    warm[pos]
                } else {
                    meas[pos - warm.len()]
                };
                assert_eq!(*r, want);
                assert_eq!(cfg.set_of(r.page()) % 2, shard, "routing by set");
            }
        }
        let total: usize = (0..2).map(|s| part.positions(s).len()).sum();
        assert_eq!(total, warm.len() + meas.len());
    }

    #[test]
    fn capacity_guard_boundaries() {
        // Pure arithmetic — the limit is checked without allocating the
        // 4 Gi records it describes. Positions are 0-based, so exactly
        // u32::MAX + 1 records (last position u32::MAX) still fit.
        let max = u32::MAX as usize + 1;
        assert_eq!(ShardPartition::check_capacity(0), Ok(()));
        assert_eq!(ShardPartition::check_capacity(1), Ok(()));
        assert_eq!(ShardPartition::check_capacity(max), Ok(()));
        assert_eq!(
            ShardPartition::check_capacity(max + 1),
            Err(ShardRunError::TraceTooLong { records: max + 1 })
        );
        assert_eq!(
            ShardPartition::check_capacity(usize::MAX),
            Err(ShardRunError::TraceTooLong {
                records: usize::MAX
            })
        );
        let msg = ShardRunError::TraceTooLong { records: max + 1 }.to_string();
        assert!(msg.contains("trace too long"), "{msg}");
    }
}
