//! The [`ScoreSource`] abstraction: how policy-engine scores reach the
//! cache simulator without the cache crate depending on any particular
//! model (GMM, LSTM, oracle, …).

use icgmm_trace::TraceRecord;

/// A streaming score provider.
///
/// The simulator calls [`ScoreSource::observe`] for **every** request in
/// trace order — implementations advance internal clocks there (the
/// paper's Algorithm 1 timestamp counts all requests, hits included) — and
/// calls [`ScoreSource::score_current`] only on misses, mirroring the
/// hardware, where hits bypass the policy engine.
pub trait ScoreSource {
    /// Observes the next request in trace order.
    fn observe(&mut self, record: &TraceRecord);

    /// Score of the most recently observed request's page.
    fn score_current(&mut self) -> f64;
}

/// A constant score for every page (testing, and the degenerate baseline).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ConstantScore(pub f64);

impl ScoreSource for ConstantScore {
    fn observe(&mut self, _record: &TraceRecord) {}

    fn score_current(&mut self) -> f64 {
        self.0
    }
}

/// A score source backed by a closure over `(page, seq)` — handy in tests
/// and ablations.
#[derive(Debug)]
pub struct FnScore<F> {
    f: F,
    seq: u64,
    page: u64,
}

impl<F: FnMut(u64, u64) -> f64> FnScore<F> {
    /// Wraps a `(page_raw, seq) -> score` closure.
    pub fn new(f: F) -> Self {
        FnScore { f, seq: 0, page: 0 }
    }
}

impl<F: FnMut(u64, u64) -> f64> ScoreSource for FnScore<F> {
    fn observe(&mut self, record: &TraceRecord) {
        self.page = record.page().raw();
        self.seq += 1;
    }

    fn score_current(&mut self) -> f64 {
        (self.f)(self.page, self.seq.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_score_is_constant() {
        let mut s = ConstantScore(0.7);
        s.observe(&TraceRecord::read(0x1000));
        assert_eq!(s.score_current(), 0.7);
        s.observe(&TraceRecord::write(0x9000));
        assert_eq!(s.score_current(), 0.7);
    }

    #[test]
    fn fn_score_sees_page_and_seq() {
        let mut s = FnScore::new(|page, seq| page as f64 + seq as f64 / 10.0);
        s.observe(&TraceRecord::read(2 << 12));
        assert_eq!(s.score_current(), 2.0);
        s.observe(&TraceRecord::read(5 << 12));
        assert!((s.score_current() - 5.1).abs() < 1e-12);
    }
}
