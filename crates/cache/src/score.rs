//! The [`ScoreSource`] abstraction: how policy-engine scores reach the
//! cache simulator without the cache crate depending on any particular
//! model (GMM, LSTM, oracle, …).

use icgmm_trace::TraceRecord;

/// A streaming score provider.
///
/// The simulator calls [`ScoreSource::observe`] for **every** request in
/// trace order — implementations advance internal clocks there (the
/// paper's Algorithm 1 timestamp counts all requests, hits included) — and
/// calls [`ScoreSource::score_current`] only on misses, mirroring the
/// hardware, where hits bypass the policy engine.
pub trait ScoreSource {
    /// Observes the next request in trace order.
    fn observe(&mut self, record: &TraceRecord);

    /// Score of the most recently observed request's page.
    fn score_current(&mut self) -> f64;

    /// Observes and scores a whole window of requests at once, writing one
    /// score per record into `out`.
    ///
    /// The contract matches the streaming path exactly: `out[i]` must equal
    /// what `observe(records[i]); score_current()` would have produced at
    /// that position, so windowed and streaming replays are interchangeable.
    /// The default implementation is that loop; batch-capable sources (the
    /// GMM policy engine) override it to collect the window's feature pairs
    /// and push them through their batched kernel in one call — the
    /// software analogue of the hardware streaming a miss window through
    /// the scoring pipeline back-to-back.
    ///
    /// # Panics
    ///
    /// Panics when `records.len() != out.len()`.
    fn score_window(&mut self, records: &[TraceRecord], out: &mut [f64]) {
        assert_eq!(records.len(), out.len(), "one score slot per record");
        for (r, o) in records.iter().zip(out.iter_mut()) {
            self.observe(r);
            *o = self.score_current();
        }
    }

    /// Whether this source's [`ScoreSource::score_window`] is genuinely
    /// batched — materially cheaper per score than `observe` +
    /// `score_current`. The default entry points ([`crate::simulate`],
    /// [`crate::simulate_with_warmup`]) consult this to decide whether
    /// miss-window speculation is worth its per-request overhead; sources
    /// inheriting the default (streaming) `score_window` have nothing to
    /// gain and should keep the default `false`. Calling
    /// [`crate::WindowedSimulator`] directly always speculates, whatever
    /// this returns.
    fn prefers_batching(&self) -> bool {
        false
    }

    /// Whether this source's observation state depends only on the *count*
    /// of requests observed so far plus the most recent record — never on
    /// the content of earlier records.
    ///
    /// Such sources can be replayed shard-by-shard with their clock kept in
    /// global trace order: requests belonging to other shards are skipped
    /// through [`ScoreSource::observe_gap`] instead of observed, and every
    /// score stays bit-identical to the single-threaded replay. The GMM
    /// policy engine qualifies (Algorithm 1 timestamps count requests;
    /// the scored features are the observed record's own page and that
    /// count-derived timestamp); a history-based source (e.g. an LSTM over
    /// a window of recent records) does not, and must keep the default
    /// `false` — [`crate::ShardedSimulator`] refuses to shard it.
    fn shardable(&self) -> bool {
        false
    }

    /// Advances the observation clock over `n` requests this source will
    /// never see (they belong to other shards), as if `observe` had been
    /// called `n` times with records whose content is irrelevant.
    ///
    /// Called only between per-record observations of a sharded replay and
    /// only on sources reporting [`ScoreSource::shardable`]; the default
    /// implementation panics to keep the contract honest.
    fn observe_gap(&mut self, n: u64) {
        let _ = n;
        unimplemented!("observe_gap on a source that is not shardable");
    }

    /// [`ScoreSource::score_window`] for a sharded replay: `gaps[i]`
    /// foreign-shard requests precede `records[i]` and must advance the
    /// clock (via [`ScoreSource::observe_gap`]) before that record is
    /// observed. `out[i]` must equal what the single-threaded
    /// `observe`/`score_current` sequence would have produced at the same
    /// global position.
    ///
    /// The default implementation is the per-record loop; batch-capable
    /// sources override it to keep one batched kernel call per window
    /// (the GMM policy engine folds the gaps into its timestamp stream
    /// while collecting features).
    ///
    /// # Panics
    ///
    /// Panics when `records`, `gaps` and `out` disagree in length.
    fn score_window_gapped(&mut self, records: &[TraceRecord], gaps: &[u64], out: &mut [f64]) {
        assert_eq!(records.len(), out.len(), "one score slot per record");
        assert_eq!(records.len(), gaps.len(), "one gap per record");
        for ((r, &g), o) in records.iter().zip(gaps).zip(out.iter_mut()) {
            if g > 0 {
                self.observe_gap(g);
            }
            self.observe(r);
            *o = self.score_current();
        }
    }
}

impl<S: ScoreSource + ?Sized> ScoreSource for Box<S> {
    fn observe(&mut self, record: &TraceRecord) {
        (**self).observe(record);
    }

    fn score_current(&mut self) -> f64 {
        (**self).score_current()
    }

    fn score_window(&mut self, records: &[TraceRecord], out: &mut [f64]) {
        (**self).score_window(records, out);
    }

    fn prefers_batching(&self) -> bool {
        (**self).prefers_batching()
    }

    fn shardable(&self) -> bool {
        (**self).shardable()
    }

    fn observe_gap(&mut self, n: u64) {
        (**self).observe_gap(n);
    }

    fn score_window_gapped(&mut self, records: &[TraceRecord], gaps: &[u64], out: &mut [f64]) {
        (**self).score_window_gapped(records, gaps, out);
    }
}

/// A constant score for every page (testing, and the degenerate baseline).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ConstantScore(pub f64);

impl ScoreSource for ConstantScore {
    fn observe(&mut self, _record: &TraceRecord) {}

    fn score_current(&mut self) -> f64 {
        self.0
    }

    fn shardable(&self) -> bool {
        true
    }

    fn observe_gap(&mut self, _n: u64) {}
}

/// A score source backed by a closure over `(page, seq)` — handy in tests
/// and ablations.
#[derive(Debug)]
pub struct FnScore<F> {
    f: F,
    seq: u64,
    page: u64,
}

impl<F: FnMut(u64, u64) -> f64> FnScore<F> {
    /// Wraps a `(page_raw, seq) -> score` closure.
    pub fn new(f: F) -> Self {
        FnScore { f, seq: 0, page: 0 }
    }
}

impl<F: FnMut(u64, u64) -> f64> ScoreSource for FnScore<F> {
    fn observe(&mut self, record: &TraceRecord) {
        self.page = record.page().raw();
        self.seq += 1;
    }

    fn score_current(&mut self) -> f64 {
        (self.f)(self.page, self.seq.saturating_sub(1))
    }

    /// The closure sees the *global* observation count, so skipped
    /// foreign-shard requests only need to bump the counter.
    fn shardable(&self) -> bool {
        true
    }

    fn observe_gap(&mut self, n: u64) {
        self.seq += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_score_is_constant() {
        let mut s = ConstantScore(0.7);
        s.observe(&TraceRecord::read(0x1000));
        assert_eq!(s.score_current(), 0.7);
        s.observe(&TraceRecord::write(0x9000));
        assert_eq!(s.score_current(), 0.7);
    }

    #[test]
    fn fn_score_sees_page_and_seq() {
        let mut s = FnScore::new(|page, seq| page as f64 + seq as f64 / 10.0);
        s.observe(&TraceRecord::read(2 << 12));
        assert_eq!(s.score_current(), 2.0);
        s.observe(&TraceRecord::read(5 << 12));
        assert!((s.score_current() - 5.1).abs() < 1e-12);
    }

    #[test]
    fn default_score_window_matches_streaming() {
        let records: Vec<TraceRecord> = (0..10u64).map(|p| TraceRecord::read(p << 12)).collect();
        let mut streaming = FnScore::new(|page, seq| page as f64 * 100.0 + seq as f64);
        let mut windowed = FnScore::new(|page, seq| page as f64 * 100.0 + seq as f64);
        let mut out = vec![0.0; records.len()];
        windowed.score_window(&records, &mut out);
        for (r, o) in records.iter().zip(&out) {
            streaming.observe(r);
            assert_eq!(*o, streaming.score_current());
        }
    }

    #[test]
    #[should_panic(expected = "one score slot per record")]
    fn score_window_rejects_length_mismatch() {
        let mut s = ConstantScore(0.0);
        let mut out = vec![0.0; 2];
        s.score_window(&[TraceRecord::read(0)], &mut out);
    }

    #[test]
    #[should_panic(expected = "one score slot per record")]
    fn constant_score_window_rejects_short_output() {
        // The doc contract promises a panic on *any* mismatch, including
        // out shorter than records, for sources inheriting the default.
        let mut s = ConstantScore(0.3);
        let mut out = vec![0.0; 1];
        s.score_window(&[TraceRecord::read(0), TraceRecord::read(0x1000)], &mut out);
    }

    #[test]
    #[should_panic(expected = "one score slot per record")]
    fn fn_score_window_rejects_length_mismatch() {
        let mut s = FnScore::new(|page, _| page as f64);
        let mut out = vec![0.0; 3];
        s.score_window(&[TraceRecord::read(0)], &mut out);
    }

    #[test]
    fn constant_score_window_fills_every_slot_and_observes() {
        let records: Vec<TraceRecord> = (0..5u64).map(|p| TraceRecord::read(p << 12)).collect();
        let mut s = ConstantScore(0.42);
        let mut out = vec![-1.0; records.len()];
        s.score_window(&records, &mut out);
        assert!(out.iter().all(|&v| v == 0.42));
    }

    #[test]
    fn observe_gap_matches_observing_foreign_records() {
        // A sharded FnScore that skips 3 foreign records then observes its
        // own must score exactly like the single-threaded source that
        // observed all 4.
        let mut global = FnScore::new(|page, seq| page as f64 * 1000.0 + seq as f64);
        for p in 0..3u64 {
            global.observe(&TraceRecord::read(p << 12));
        }
        global.observe(&TraceRecord::read(9 << 12));
        let mut sharded = FnScore::new(|page, seq| page as f64 * 1000.0 + seq as f64);
        sharded.observe_gap(3);
        sharded.observe(&TraceRecord::read(9 << 12));
        assert_eq!(global.score_current(), sharded.score_current());
        assert!(sharded.shardable());
    }

    #[test]
    fn default_score_window_gapped_matches_streaming_positions() {
        // Shard records at global positions 1, 4, 5 (gaps 1, 2, 0).
        let all: Vec<TraceRecord> = (0..6u64).map(|p| TraceRecord::read(p << 12)).collect();
        let shard = [all[1], all[4], all[5]];
        let gaps = [1u64, 2, 0];
        let mut reference = FnScore::new(|page, seq| page as f64 + seq as f64 * 100.0);
        let mut expected = Vec::new();
        for (i, r) in all.iter().enumerate() {
            reference.observe(r);
            if [1, 4, 5].contains(&i) {
                expected.push(reference.score_current());
            }
        }
        let mut sharded = FnScore::new(|page, seq| page as f64 + seq as f64 * 100.0);
        let mut out = vec![0.0; 3];
        sharded.score_window_gapped(&shard, &gaps, &mut out);
        assert_eq!(out, expected);
    }

    #[test]
    #[should_panic(expected = "one gap per record")]
    fn score_window_gapped_rejects_gap_length_mismatch() {
        let mut s = ConstantScore(0.0);
        let mut out = vec![0.0; 1];
        s.score_window_gapped(&[TraceRecord::read(0)], &[0, 0], &mut out);
    }

    #[test]
    #[should_panic(expected = "not shardable")]
    fn default_observe_gap_panics() {
        struct Opaque;
        impl ScoreSource for Opaque {
            fn observe(&mut self, _r: &TraceRecord) {}
            fn score_current(&mut self) -> f64 {
                0.0
            }
        }
        Opaque.observe_gap(1);
    }

    #[test]
    fn fn_score_window_advances_seq_like_streaming() {
        // The default implementation must leave the source in the same
        // state as the streaming loop: the next streaming call continues
        // the sequence where the window left off.
        let records: Vec<TraceRecord> = (0..4u64).map(|p| TraceRecord::read(p << 12)).collect();
        let mut s = FnScore::new(|page, seq| page as f64 + seq as f64 * 1000.0);
        let mut out = vec![0.0; records.len()];
        s.score_window(&records, &mut out);
        s.observe(&TraceRecord::read(9 << 12));
        assert_eq!(s.score_current(), 9.0 + 4.0 * 1000.0);
    }
}
