//! Access statistics and windowed miss-rate series.

use crate::cache::AccessOutcome;
use icgmm_trace::Op;
use serde::{Deserialize, Serialize};

/// Counters accumulated over a simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Read requests observed.
    pub reads: u64,
    /// Write requests observed.
    pub writes: u64,
    /// Read hits.
    pub read_hits: u64,
    /// Write hits.
    pub write_hits: u64,
    /// Read misses that were inserted.
    pub read_insertions: u64,
    /// Write misses that were inserted.
    pub write_insertions: u64,
    /// Read misses bypassed by the admission policy.
    pub read_bypasses: u64,
    /// Write misses bypassed by the admission policy.
    pub write_bypasses: u64,
    /// Evictions of clean blocks.
    pub clean_evictions: u64,
    /// Evictions of dirty blocks (each costs an SSD write-back).
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Records one outcome.
    pub fn record(&mut self, op: Op, outcome: &AccessOutcome) {
        match op {
            Op::Read => self.reads += 1,
            Op::Write => self.writes += 1,
        }
        match outcome {
            AccessOutcome::Hit { .. } => match op {
                Op::Read => self.read_hits += 1,
                Op::Write => self.write_hits += 1,
            },
            AccessOutcome::MissInserted { evicted, .. } => {
                match op {
                    Op::Read => self.read_insertions += 1,
                    Op::Write => self.write_insertions += 1,
                }
                if let Some(e) = evicted {
                    if e.dirty {
                        self.dirty_evictions += 1;
                    } else {
                        self.clean_evictions += 1;
                    }
                }
            }
            AccessOutcome::MissBypassed => match op {
                Op::Read => self.read_bypasses += 1,
                Op::Write => self.write_bypasses += 1,
            },
        }
    }

    /// Total requests.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Total misses (inserted + bypassed).
    pub fn misses(&self) -> u64 {
        self.accesses() - self.hits()
    }

    /// Bypassed misses.
    pub fn bypasses(&self) -> u64 {
        self.read_bypasses + self.write_bypasses
    }

    /// Miss rate in `[0, 1]` (0 for an empty run).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses() as f64
        }
    }

    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            1.0 - self.miss_rate()
        }
    }

    /// Miss rate of reads only.
    pub fn read_miss_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            (self.reads - self.read_hits) as f64 / self.reads as f64
        }
    }

    /// Miss rate of writes only.
    pub fn write_miss_rate(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            (self.writes - self.write_hits) as f64 / self.writes as f64
        }
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_hits += other.read_hits;
        self.write_hits += other.write_hits;
        self.read_insertions += other.read_insertions;
        self.write_insertions += other.write_insertions;
        self.read_bypasses += other.read_bypasses;
        self.write_bypasses += other.write_bypasses;
        self.clean_evictions += other.clean_evictions;
        self.dirty_evictions += other.dirty_evictions;
    }
}

/// Per-window miss-rate time series (for drift/phase diagnostics).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MissSeries {
    window: u64,
    in_window: u64,
    misses_in_window: u64,
    /// Miss rate of each completed window.
    pub rates: Vec<f64>,
}

impl MissSeries {
    /// Creates a series with `window` requests per point.
    ///
    /// # Panics
    ///
    /// Panics when `window == 0`.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "window must be >= 1");
        MissSeries {
            window,
            ..Default::default()
        }
    }

    /// Records one access (`miss = true` for any kind of miss).
    pub fn record(&mut self, miss: bool) {
        self.in_window += 1;
        if miss {
            self.misses_in_window += 1;
        }
        if self.in_window == self.window {
            self.rates
                .push(self.misses_in_window as f64 / self.window as f64);
            self.in_window = 0;
            self.misses_in_window = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{AccessOutcome, Eviction};
    use icgmm_trace::PageIndex;

    fn hit() -> AccessOutcome {
        AccessOutcome::Hit { way: 0 }
    }

    fn miss(dirty: Option<bool>) -> AccessOutcome {
        AccessOutcome::MissInserted {
            way: 0,
            evicted: dirty.map(|d| Eviction {
                page: PageIndex::new(9),
                dirty: d,
            }),
        }
    }

    #[test]
    fn rates_are_consistent() {
        let mut s = CacheStats::default();
        s.record(Op::Read, &hit());
        s.record(Op::Read, &miss(None));
        s.record(Op::Write, &miss(Some(true)));
        s.record(Op::Write, &hit());
        assert_eq!(s.accesses(), 4);
        assert_eq!(s.hits(), 2);
        assert_eq!(s.misses(), 2);
        assert_eq!(s.miss_rate(), 0.5);
        assert_eq!(s.hit_rate(), 0.5);
        assert_eq!(s.read_miss_rate(), 0.5);
        assert_eq!(s.write_miss_rate(), 0.5);
        assert_eq!(s.dirty_evictions, 1);
        assert_eq!(s.clean_evictions, 0);
    }

    #[test]
    fn bypasses_count_as_misses() {
        let mut s = CacheStats::default();
        s.record(Op::Read, &AccessOutcome::MissBypassed);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.bypasses(), 1);
        assert_eq!(s.read_bypasses, 1);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = CacheStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.read_miss_rate(), 0.0);
        assert_eq!(s.write_miss_rate(), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = CacheStats::default();
        a.record(Op::Read, &hit());
        let mut b = CacheStats::default();
        b.record(Op::Write, &miss(Some(false)));
        a.merge(&b);
        assert_eq!(a.accesses(), 2);
        assert_eq!(a.clean_evictions, 1);
    }

    #[test]
    fn miss_series_windows() {
        let mut m = MissSeries::new(4);
        for i in 0..8 {
            m.record(i % 2 == 0); // 50% misses
        }
        assert_eq!(m.rates, vec![0.5, 0.5]);
        m.record(true); // partial window not yet emitted
        assert_eq!(m.rates.len(), 2);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let _ = MissSeries::new(0);
    }
}
