//! # icgmm-cache
//!
//! Set-associative DRAM-cache simulator for the ICGMM reproduction
//! (DAC 2024). Models the device-side DRAM cache fronting a CXL-attached
//! SSD: 4 KiB blocks (the SSD access granularity), write-allocate with
//! write-back dirty tracking, pluggable admission and eviction policies,
//! and the paper's latency constants (1 µs hit, 75 µs SSD read, 900 µs SSD
//! program, 3 µs overlapped GMM inference).
//!
//! The crate is model-agnostic: GMM scores arrive through the
//! [`ScoreSource`] trait, so LRU/FIFO/LFU/Random/Belady baselines and the
//! GMM (or an LSTM) policy engine all drive the *same* simulator — that is
//! what makes the paper's Fig. 6 and Table 1 comparisons apples-to-apples.
//!
//! ## Example
//!
//! ```
//! use icgmm_cache::{
//!     simulate, AlwaysAdmit, CacheConfig, LatencyModel, LruPolicy, SetAssocCache,
//! };
//! use icgmm_trace::TraceRecord;
//!
//! let cfg = CacheConfig::paper_default();
//! let mut cache = SetAssocCache::new(cfg)?;
//! let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
//! let trace: Vec<TraceRecord> = (0..100u64).map(|i| TraceRecord::read((i % 10) << 12)).collect();
//! let report = simulate(
//!     &trace,
//!     &mut cache,
//!     &mut AlwaysAdmit,
//!     &mut lru,
//!     None,
//!     &LatencyModel::paper_tlc(),
//!     None,
//! );
//! assert_eq!(report.stats.misses(), 10); // ten cold misses, then hits
//! # Ok::<(), icgmm_cache::CacheConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapt;
mod batch;
mod cache;
mod config;
mod fault;
mod latency;
mod merge;
mod score;
mod shard;
mod sim;
mod stats;
mod view;

pub mod policy;

pub use adapt::{AdaptPlan, AdaptSink, AdaptStats, DriftDetector, ObsSample, RecentRing, Reservoir};
pub use batch::{
    simulate_batched, simulate_batched_with_warmup, SpecParams, SpecStats, WindowedSimulator,
    DEFAULT_SPEC_WINDOW, DENSE_MISS_FRACTION_DIV, MIN_SPEC_WINDOW, STREAM_MISS_FRACTION_DIV,
    STREAM_SPAN_WINDOWS,
};
pub use cache::{AccessOutcome, BlockState, Eviction, SetAssocCache};
pub use config::{CacheConfig, CacheConfigError};
pub use fault::{
    FailoverAdmission, FailoverEviction, FaultPlan, FaultSink, FaultStats, FaultyScore,
    ScorerHealth,
};
pub use latency::LatencyModel;
pub use merge::{merge_streams, OutcomeStream, SeqOutcome, StreamingMerge};
pub use policy::{
    AccessCtx, AdmissionPolicy, AlwaysAdmit, BeladyPolicy, EvictionPolicy, FifoPolicy,
    GmmScorePolicy, LfuPolicy, LruPolicy, RandomPolicy, ShadowVictimModel, ThresholdAdmit,
};
pub use score::{ConstantScore, FnScore, ScoreSource};
pub use shard::{
    resolve_shard_routing, shard_contract, shard_gap_before, GapScore, ShardCtx, ShardPartition,
    ShardPolicies, ShardRouting, ShardRunError, ShardedReport, ShardedSimulator,
};
pub use sim::{
    simulate, simulate_streaming, simulate_streaming_observed_records,
    simulate_streaming_observed_with_warmup, simulate_streaming_with_warmup, simulate_with_warmup,
    streaming_step, ReplayEvent, ReplayObserver, ScoreOrigin, SimReport,
};
pub use stats::{CacheStats, MissSeries};
pub use view::{RecordsIter, RecordsRef};
