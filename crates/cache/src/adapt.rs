//! Online-adaptation substrate: plan, telemetry, and the model-agnostic
//! building blocks of the drift-triggered refit loop.
//!
//! The GMM-aware adaptive engine lives in `icgmm-core` (this crate is
//! deliberately model-agnostic); what lives here is everything the cache
//! and serving layers need to carry and merge:
//!
//! * [`AdaptPlan`] — a seeded, `Copy` description of the online loop:
//!   how often to check for drift, how much history to buffer, and how
//!   aggressively to forget. An empty plan (the default) checks nothing
//!   and buffers nothing; callers skip all wrapping in that case, so
//!   adaptation-off runs take exactly the static code paths and stay
//!   bit-identical to them — the same by-construction discipline as
//!   [`crate::FaultPlan`].
//! * [`AdaptStats`] — the observability block carried on
//!   [`crate::SimReport`] (and, through it, `ServeReport` and
//!   `ExperimentResult`): checks / drifts / refits / swaps counters plus
//!   the scorer generation and the global position of the last swap.
//! * [`AdaptSink`] — the shared accumulator per-shard adaptive engines
//!   flush into, merged in shard order like [`crate::FaultSink`].
//! * [`Reservoir`] — a seeded Algorithm-R reservoir over observed
//!   `(page, position)` samples: the refit training buffer. Replacement
//!   decisions reuse the stateless fault-roll hash, so the buffer
//!   contents are a pure function of `(seed, observation sequence)`.
//! * [`RecentRing`] — a fixed-capacity ring of the most recent samples:
//!   the drift-evaluation window.
//! * [`DriftDetector`] — a trailing EWMA baseline over the windowed mean
//!   log-likelihood, firing when the current window drops more than
//!   `drift_drop` nats below the baseline, with a post-refit cooldown.

use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

use crate::fault::fault_roll;

/// Decision stream for reservoir replacement rolls (disjoint from the
/// fault streams by construction — those use 1..=6).
const STREAM_RESERVOIR: u64 = 16;

/// A seeded, config-driven online-adaptation plan.
///
/// The default plan is *empty*: `check_interval == 0` disables the whole
/// loop. Callers must check [`AdaptPlan::is_empty`] and skip all wrapping
/// for empty plans — that is what makes the adaptation-off bit-identity
/// property hold by construction rather than by luck.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdaptPlan {
    /// Seed for reservoir sampling (independent of the trace seed; the
    /// pair `(trace seed, adapt seed)` fully determines an adaptive run).
    pub seed: u64,
    /// Global trace positions between drift checks; `0` disables
    /// adaptation entirely.
    pub check_interval: u64,
    /// Recent observations evaluated per drift check (the likelihood
    /// window).
    pub recent_window: usize,
    /// Capacity of the refit reservoir buffer.
    pub reservoir_capacity: usize,
    /// Drift threshold in nats: a check fires a refit when the windowed
    /// mean log-likelihood falls more than this below the trailing
    /// baseline. `f64::INFINITY` holds the trigger off (buffers fill,
    /// checks run, refits never fire — the held-off equivalence property).
    pub drift_drop: f64,
    /// EWMA factor for the trailing baseline (weight of the newest
    /// check), in `(0, 1]`.
    pub baseline_alpha: f64,
    /// Checks to skip after a refit before the detector can fire again.
    pub cooldown_checks: u32,
    /// Per-refit forgetting factor for the incremental trainer's
    /// sufficient statistics, in `(0, 1]`.
    pub decay: f64,
}

impl Default for AdaptPlan {
    fn default() -> Self {
        AdaptPlan {
            seed: 0,
            check_interval: 0,
            recent_window: 256,
            reservoir_capacity: 2048,
            drift_drop: 0.5,
            baseline_alpha: 0.2,
            cooldown_checks: 2,
            decay: 0.6,
        }
    }
}

impl AdaptPlan {
    /// An empty plan: no checks, no buffering, no refits.
    pub fn empty() -> Self {
        AdaptPlan::default()
    }

    /// A drift-chasing preset used by the equivalence suites and the
    /// static-vs-adaptive experiment: frequent checks, a sensitive
    /// threshold and a short memory. Tuned on the footprint-migration
    /// scenario (`adapt_gate`): checks every 1k positions react within
    /// one reservoir turnover of a phase change, and the 0.3 decay
    /// forgets a stale generation in two refits; halving the interval
    /// again starts refitting on drift-free workloads (over-triggering),
    /// and 4× the interval reacts too slowly to matter.
    pub fn drifty(seed: u64) -> Self {
        AdaptPlan {
            seed,
            check_interval: 1_024,
            recent_window: 256,
            reservoir_capacity: 2_048,
            drift_drop: 0.5,
            baseline_alpha: 0.2,
            cooldown_checks: 1,
            decay: 0.3,
        }
    }

    /// Whether the plan disables adaptation — the configuration whose
    /// runs must be bit-identical to a static-scorer replay.
    pub fn is_empty(&self) -> bool {
        self.check_interval == 0
    }

    /// Validates the plan, returning the first problem found. An empty
    /// plan is always valid; the remaining knobs are only checked when
    /// the loop is armed.
    pub fn validate(&self) -> Result<(), String> {
        if self.is_empty() {
            return Ok(());
        }
        if self.recent_window == 0 {
            return Err("adapt.recent_window must be >= 1 when adaptation is armed".into());
        }
        if self.reservoir_capacity == 0 {
            return Err("adapt.reservoir_capacity must be >= 1 when adaptation is armed".into());
        }
        if self.drift_drop.is_nan() || self.drift_drop <= 0.0 {
            return Err(format!(
                "adapt.drift_drop must be > 0 (+inf holds the trigger off), got {}",
                self.drift_drop
            ));
        }
        if !(self.baseline_alpha.is_finite()
            && self.baseline_alpha > 0.0
            && self.baseline_alpha <= 1.0)
        {
            return Err(format!(
                "adapt.baseline_alpha must be finite in (0, 1], got {}",
                self.baseline_alpha
            ));
        }
        if !(self.decay.is_finite() && self.decay > 0.0 && self.decay <= 1.0) {
            return Err(format!(
                "adapt.decay must be finite in (0, 1], got {}",
                self.decay
            ));
        }
        Ok(())
    }
}

/// Online-adaptation counters for one run.
///
/// Carried on [`crate::SimReport`]; merged across shards in shard order
/// (sums for event counters, maxima for the generation/position stamps),
/// so sharded reports are as deterministic as single-threaded ones.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AdaptStats {
    /// Drift checks performed.
    pub checks: u64,
    /// Checks whose detector fired (drift declared).
    pub drifts: u64,
    /// Incremental refits completed successfully.
    pub refits: u64,
    /// Refit attempts that failed (degenerate buffer, singular model) —
    /// the previous scorer generation stays live.
    pub refit_failures: u64,
    /// Scorer generations published (atomic table swaps).
    pub swaps: u64,
    /// Observations evaluated by drift checks (likelihood-window scores;
    /// these never touch the policy engine's inference counters).
    pub evals: u64,
    /// Highest scorer generation live at the end of the run (0 = the
    /// offline-trained model, never swapped).
    pub generation: u64,
    /// Global trace position of the last swap (0 when none happened).
    pub last_swap_pos: u64,
}

impl AdaptStats {
    /// Accumulates `other` into `self`: counters add, the generation and
    /// last-swap stamps take the maximum across shards.
    pub fn merge(&mut self, other: &AdaptStats) {
        self.checks += other.checks;
        self.drifts += other.drifts;
        self.refits += other.refits;
        self.refit_failures += other.refit_failures;
        self.swaps += other.swaps;
        self.evals += other.evals;
        self.generation = self.generation.max(other.generation);
        self.last_swap_pos = self.last_swap_pos.max(other.last_swap_pos);
    }

    /// `true` when no check ran and no refit fired — the block an empty
    /// plan must produce.
    pub fn is_clean(&self) -> bool {
        *self == AdaptStats::default()
    }
}

/// Shared, thread-safe accumulator for [`AdaptStats`] — handed to each
/// shard's adaptive engine so one block can aggregate a whole run.
#[derive(Clone, Debug, Default)]
pub struct AdaptSink(Arc<Mutex<AdaptStats>>);

impl AdaptSink {
    /// A fresh, all-zero sink.
    pub fn new() -> Self {
        AdaptSink::default()
    }

    /// Applies `f` to the stats under the lock. Lock poisoning (a panic
    /// while recording — possible under armed shard panics) is recovered:
    /// counters are plain numbers and stay internally consistent.
    pub fn record(&self, f: impl FnOnce(&mut AdaptStats)) {
        let mut guard = match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard);
    }

    /// A copy of the accumulated stats.
    pub fn snapshot(&self) -> AdaptStats {
        match self.0.lock() {
            Ok(g) => *g,
            Err(poisoned) => *poisoned.into_inner(),
        }
    }
}

/// One buffered observation: the page accessed and its global trace
/// position (the Algorithm 1 clock value is reconstructed from the
/// position at refit time, so the buffer stays 16 bytes per sample).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsSample {
    /// Raw page index of the access.
    pub page: u64,
    /// Global trace position (warm-up ⧺ measured) of the access.
    pub pos: u64,
}

/// Seeded Algorithm-R reservoir over [`ObsSample`]s: every observation
/// seen so far has equal probability of being in the buffer, and the
/// buffer contents are a pure function of `(seed, observation sequence)`
/// — no RNG state, each replacement decision is one stateless hash of
/// the observation's ordinal.
#[derive(Clone, Debug)]
pub struct Reservoir {
    seed: u64,
    cap: usize,
    seen: u64,
    buf: Vec<ObsSample>,
}

impl Reservoir {
    /// An empty reservoir holding at most `cap` samples.
    pub fn new(seed: u64, cap: usize) -> Self {
        Reservoir {
            seed,
            cap,
            seen: 0,
            buf: Vec::with_capacity(cap.min(4_096)),
        }
    }

    /// Offers one observation; the classic Algorithm-R accept/replace
    /// decision keeps the buffer a uniform sample of everything offered.
    pub fn offer(&mut self, s: ObsSample) {
        let i = self.seen;
        self.seen += 1;
        if self.buf.len() < self.cap {
            self.buf.push(s);
            return;
        }
        let j = fault_roll(self.seed, STREAM_RESERVOIR, i, 0) % (i + 1);
        if (j as usize) < self.cap {
            self.buf[j as usize] = s;
        }
    }

    /// Empties the buffer and rebases the sampling stream on `seed`.
    ///
    /// Called after a scorer swap: within one generation the reservoir is
    /// a uniform sample, and restarting it at each swap makes successive
    /// refits train on post-swap observations only — recency *across*
    /// generations, uniformity *within* one. Re-seeding (rather than
    /// reusing the old seed with `seen` reset) keeps replacement rolls
    /// independent between generations.
    pub fn restart(&mut self, seed: u64) {
        self.seed = seed;
        self.seen = 0;
        self.buf.clear();
    }

    /// The buffered samples (insertion/replacement order, deterministic).
    pub fn samples(&self) -> &[ObsSample] {
        &self.buf
    }

    /// Observations offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Buffered sample count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been buffered yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Fixed-capacity ring of the most recent [`ObsSample`]s — the drift
/// check's likelihood window.
#[derive(Clone, Debug)]
pub struct RecentRing {
    cap: usize,
    next: usize,
    buf: Vec<ObsSample>,
}

impl RecentRing {
    /// An empty ring holding the last `cap` samples.
    pub fn new(cap: usize) -> Self {
        RecentRing {
            cap,
            next: 0,
            buf: Vec::with_capacity(cap.min(4_096)),
        }
    }

    /// Pushes one sample, overwriting the oldest once full.
    pub fn push(&mut self, s: ObsSample) {
        if self.buf.len() < self.cap {
            self.buf.push(s);
        } else {
            self.buf[self.next] = s;
        }
        self.next = (self.next + 1) % self.cap.max(1);
    }

    /// The buffered samples in storage order (deterministic; evaluation
    /// order does not matter to the mean and is identical run to run).
    pub fn samples(&self) -> &[ObsSample] {
        &self.buf
    }

    /// Buffered sample count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been buffered yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Windowed-likelihood drift detector with a trailing EWMA baseline.
///
/// The first check seeds the baseline; later checks fire when the
/// windowed mean log-likelihood drops more than `drift_drop` nats below
/// it. A firing (or an external refit notification) resets the baseline —
/// the next check re-seeds it against the *new* model — and starts a
/// cooldown of `cooldown_checks` checks during which the detector only
/// tracks.
#[derive(Clone, Debug)]
pub struct DriftDetector {
    drift_drop: f64,
    alpha: f64,
    cooldown_checks: u32,
    baseline: Option<f64>,
    cooldown_left: u32,
}

impl DriftDetector {
    /// A detector configured from `plan`.
    pub fn new(plan: &AdaptPlan) -> Self {
        DriftDetector {
            drift_drop: plan.drift_drop,
            alpha: plan.baseline_alpha,
            cooldown_checks: plan.cooldown_checks,
            baseline: None,
            cooldown_left: 0,
        }
    }

    /// Feeds one check's windowed mean log-likelihood; `true` means drift
    /// (the caller should refit). With `drift_drop == f64::INFINITY` this
    /// never returns `true` — the comparison `inf > inf` used for a
    /// `-inf` likelihood against a finite baseline is false too.
    pub fn observe(&mut self, mll: f64) -> bool {
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            self.track(mll);
            return false;
        }
        match self.baseline {
            None => {
                self.baseline = Some(mll);
                false
            }
            Some(b) => {
                if b - mll > self.drift_drop {
                    self.fired();
                    true
                } else {
                    self.track(mll);
                    false
                }
            }
        }
    }

    /// Notes that the model changed under the detector (a refit was
    /// published): reset the baseline and start the cooldown.
    pub fn fired(&mut self) {
        self.baseline = None;
        self.cooldown_left = self.cooldown_checks;
    }

    fn track(&mut self, mll: f64) {
        self.baseline = Some(match self.baseline {
            None => mll,
            Some(b) => b + self.alpha * (mll - b),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_valid() {
        let p = AdaptPlan::default();
        assert!(p.is_empty());
        assert!(p.validate().is_ok());
        assert_eq!(p, AdaptPlan::empty());
    }

    #[test]
    fn drifty_plan_is_armed_and_valid() {
        let p = AdaptPlan::drifty(9);
        assert!(!p.is_empty());
        assert!(p.validate().is_ok());
        assert_eq!(p.seed, 9);
    }

    #[test]
    fn validate_rejects_each_bad_knob_only_when_armed() {
        let armed = AdaptPlan::drifty(0);
        let bad = [
            AdaptPlan {
                recent_window: 0,
                ..armed
            },
            AdaptPlan {
                reservoir_capacity: 0,
                ..armed
            },
            AdaptPlan {
                drift_drop: 0.0,
                ..armed
            },
            AdaptPlan {
                drift_drop: f64::NAN,
                ..armed
            },
            AdaptPlan {
                baseline_alpha: 0.0,
                ..armed
            },
            AdaptPlan {
                baseline_alpha: 1.5,
                ..armed
            },
            AdaptPlan {
                baseline_alpha: f64::NAN,
                ..armed
            },
            AdaptPlan {
                decay: 0.0,
                ..armed
            },
            AdaptPlan {
                decay: 2.0,
                ..armed
            },
        ];
        for p in bad {
            assert!(p.validate().is_err(), "{p:?} should be invalid");
            // The same knobs are ignored while the plan is disabled.
            let off = AdaptPlan {
                check_interval: 0,
                ..p
            };
            assert!(off.validate().is_ok(), "{off:?} disabled should be valid");
        }
        // +inf drift_drop is the documented hold-off configuration.
        assert!(AdaptPlan {
            drift_drop: f64::INFINITY,
            ..armed
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn stats_merge_sums_counters_and_maxes_stamps() {
        let mut a = AdaptStats {
            checks: 3,
            drifts: 1,
            refits: 1,
            swaps: 1,
            evals: 100,
            generation: 1,
            last_swap_pos: 500,
            ..AdaptStats::default()
        };
        let b = AdaptStats {
            checks: 2,
            refit_failures: 1,
            evals: 60,
            generation: 3,
            last_swap_pos: 200,
            ..AdaptStats::default()
        };
        a.merge(&b);
        assert_eq!(a.checks, 5);
        assert_eq!(a.drifts, 1);
        assert_eq!(a.refits, 1);
        assert_eq!(a.refit_failures, 1);
        assert_eq!(a.swaps, 1);
        assert_eq!(a.evals, 160);
        assert_eq!(a.generation, 3, "generation is a max, not a sum");
        assert_eq!(a.last_swap_pos, 500, "swap position is a max");
        assert!(!a.is_clean());
        assert!(AdaptStats::default().is_clean());
    }

    #[test]
    fn sink_accumulates_and_snapshots() {
        let sink = AdaptSink::new();
        sink.record(|s| s.checks += 2);
        let clone = sink.clone();
        clone.record(|s| s.swaps += 1);
        let snap = sink.snapshot();
        assert_eq!(snap.checks, 2);
        assert_eq!(snap.swaps, 1);
    }

    fn obs(i: u64) -> ObsSample {
        ObsSample {
            page: i * 7,
            pos: i,
        }
    }

    #[test]
    fn reservoir_is_deterministic_and_bounded() {
        let run = |seed: u64| {
            let mut r = Reservoir::new(seed, 16);
            for i in 0..1_000 {
                r.offer(obs(i));
            }
            assert_eq!(r.len(), 16);
            assert_eq!(r.seen(), 1_000);
            r.samples().to_vec()
        };
        assert_eq!(run(5), run(5), "same seed, same buffer");
        assert_ne!(run(5), run(6), "different seed, different buffer");
        // Below capacity the buffer holds everything offered, in order.
        let mut small = Reservoir::new(0, 64);
        for i in 0..10 {
            small.offer(obs(i));
        }
        assert_eq!(small.len(), 10);
        assert!(!small.is_empty());
        assert_eq!(small.samples()[3], obs(3));
    }

    #[test]
    fn reservoir_restart_forgets_and_rebases_the_stream() {
        let mut r = Reservoir::new(5, 16);
        for i in 0..1_000 {
            r.offer(obs(i));
        }
        r.restart(6);
        assert!(r.is_empty());
        assert_eq!(r.seen(), 0);
        for i in 1_000..2_000 {
            r.offer(obs(i));
        }
        // Post-restart contents match a fresh reservoir fed the same
        // stream — the old generation leaves no trace.
        let mut fresh = Reservoir::new(6, 16);
        for i in 1_000..2_000 {
            fresh.offer(obs(i));
        }
        assert_eq!(r.samples(), fresh.samples());
        assert!(r.samples().iter().all(|s| s.pos >= 1_000));
    }

    #[test]
    fn reservoir_replacement_keeps_late_samples_reachable() {
        // Uniformity smoke test: offer 10k samples into a 64-slot buffer;
        // a healthy reservoir must retain samples from the late half of
        // the stream (a broken one that stops replacing would not).
        let mut r = Reservoir::new(42, 64);
        for i in 0..10_000 {
            r.offer(obs(i));
        }
        assert!(r.samples().iter().any(|s| s.pos >= 5_000));
        assert!(r.samples().iter().any(|s| s.pos < 5_000) || r.len() < 64);
    }

    #[test]
    fn recent_ring_overwrites_oldest() {
        let mut ring = RecentRing::new(4);
        assert!(ring.is_empty());
        for i in 0..6 {
            ring.push(obs(i));
        }
        assert_eq!(ring.len(), 4);
        let positions: Vec<u64> = ring.samples().iter().map(|s| s.pos).collect();
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![2, 3, 4, 5], "keeps exactly the last 4");
    }

    #[test]
    fn detector_fires_on_drop_and_respects_cooldown() {
        let plan = AdaptPlan {
            drift_drop: 1.0,
            baseline_alpha: 0.5,
            cooldown_checks: 2,
            ..AdaptPlan::drifty(0)
        };
        let mut d = DriftDetector::new(&plan);
        assert!(!d.observe(-2.0), "first check seeds the baseline");
        assert!(!d.observe(-2.5), "within threshold: tracks");
        assert!(d.observe(-5.0), "drop > 1 nat below baseline fires");
        // Cooldown: the next two checks track but cannot fire.
        assert!(!d.observe(-9.0));
        assert!(!d.observe(-9.0));
        // Baseline has re-seeded near -9; a similar value does not fire...
        assert!(!d.observe(-9.2));
        // ...but a fresh collapse does.
        assert!(d.observe(-30.0));
    }

    #[test]
    fn infinite_drop_never_fires() {
        let plan = AdaptPlan {
            drift_drop: f64::INFINITY,
            ..AdaptPlan::drifty(0)
        };
        let mut d = DriftDetector::new(&plan);
        assert!(!d.observe(0.0));
        for mll in [-1e6, f64::NEG_INFINITY, -1e300] {
            assert!(!d.observe(mll), "held-off detector fired on {mll}");
        }
    }
}
