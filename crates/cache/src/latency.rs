//! Analytic access-latency model (paper §5.3, "average memory access
//! latency reduction").
//!
//! On-board measurements in the paper: DRAM-cache hit ≈ 1 µs end-to-end;
//! GMM inference 3 µs, fully overlapped with the SSD access it accompanies;
//! TLC SSD read 75 µs, program (write) 900 µs; a miss that evicts a dirty
//! block pays read + write-back (75 + 900 = 975 µs).
//!
//! This model charges those constants per request. The cycle-level dataflow
//! model in `icgmm-hw` reproduces the same numbers from FIFO/kernel timing;
//! an integration test checks the two agree.

use crate::cache::AccessOutcome;
use icgmm_trace::Op;
use serde::{Deserialize, Serialize};

/// Latency constants, in microseconds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// DRAM-cache hit service time.
    pub hit_us: f64,
    /// SSD page read.
    pub ssd_read_us: f64,
    /// SSD page program (write).
    pub ssd_write_us: f64,
    /// Policy-engine (GMM) inference latency.
    pub policy_engine_us: f64,
    /// Whether policy-engine inference overlaps the SSD access
    /// (the paper's dataflow architecture guarantees this).
    pub overlap_policy_with_ssd: bool,
}

impl LatencyModel {
    /// The paper's TLC SSD deployment constants.
    pub fn paper_tlc() -> Self {
        LatencyModel {
            hit_us: 1.0,
            ssd_read_us: 75.0,
            ssd_write_us: 900.0,
            policy_engine_us: 3.0,
            overlap_policy_with_ssd: true,
        }
    }

    /// A low-latency (Z-NAND/XL-FLASH class) device for sensitivity
    /// studies: 10 µs read, 100 µs program.
    pub fn low_latency_ssd() -> Self {
        LatencyModel {
            ssd_read_us: 10.0,
            ssd_write_us: 100.0,
            ..LatencyModel::paper_tlc()
        }
    }

    /// A QLC-class device: 150 µs read, 2200 µs program.
    pub fn qlc_ssd() -> Self {
        LatencyModel {
            ssd_read_us: 150.0,
            ssd_write_us: 2200.0,
            ..LatencyModel::paper_tlc()
        }
    }

    /// Latency charged to one request with the given outcome.
    ///
    /// * Hit → `hit_us`; the GMM is not consulted.
    /// * Inserted miss → SSD page fetch, plus write-back if the victim was
    ///   dirty; GMM latency is added only when overlap is disabled.
    /// * Bypassed miss → direct SSD read or write (no allocation), again
    ///   with GMM latency hidden when overlapped.
    pub fn request_us(&self, op: Op, outcome: &AccessOutcome) -> f64 {
        let policy_extra = |base: f64| {
            if self.overlap_policy_with_ssd {
                // The engine runs concurrently with the SSD access; it is
                // never the critical path while inference < SSD latency.
                base.max(self.policy_engine_us)
            } else {
                base + self.policy_engine_us
            }
        };
        match outcome {
            AccessOutcome::Hit { .. } => self.hit_us,
            AccessOutcome::MissInserted { evicted, .. } => {
                let mut t = self.ssd_read_us; // fetch the page (also on write-allocate)
                if let Some(e) = evicted {
                    if e.dirty {
                        t += self.ssd_write_us;
                    }
                }
                policy_extra(t)
            }
            AccessOutcome::MissBypassed => {
                let t = match op {
                    Op::Read => self.ssd_read_us,
                    Op::Write => self.ssd_write_us,
                };
                policy_extra(t)
            }
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::paper_tlc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{AccessOutcome, Eviction};
    use icgmm_trace::PageIndex;

    fn ev(dirty: bool) -> Option<Eviction> {
        Some(Eviction {
            page: PageIndex::new(0),
            dirty,
        })
    }

    #[test]
    fn paper_constants() {
        let m = LatencyModel::paper_tlc();
        assert_eq!(m.request_us(Op::Read, &AccessOutcome::Hit { way: 0 }), 1.0);
        assert_eq!(
            m.request_us(
                Op::Read,
                &AccessOutcome::MissInserted {
                    way: 0,
                    evicted: None
                }
            ),
            75.0
        );
        assert_eq!(
            m.request_us(
                Op::Read,
                &AccessOutcome::MissInserted {
                    way: 0,
                    evicted: ev(true)
                }
            ),
            975.0
        );
        assert_eq!(
            m.request_us(
                Op::Read,
                &AccessOutcome::MissInserted {
                    way: 0,
                    evicted: ev(false)
                }
            ),
            75.0
        );
    }

    #[test]
    fn bypass_costs_direct_ssd_access() {
        let m = LatencyModel::paper_tlc();
        assert_eq!(m.request_us(Op::Read, &AccessOutcome::MissBypassed), 75.0);
        assert_eq!(m.request_us(Op::Write, &AccessOutcome::MissBypassed), 900.0);
    }

    #[test]
    fn overlap_hides_policy_latency() {
        let mut m = LatencyModel::paper_tlc();
        let miss = AccessOutcome::MissInserted {
            way: 0,
            evicted: None,
        };
        assert_eq!(m.request_us(Op::Read, &miss), 75.0);
        m.overlap_policy_with_ssd = false;
        assert_eq!(m.request_us(Op::Read, &miss), 78.0);
    }

    #[test]
    fn overlap_floor_is_policy_latency() {
        // If the "SSD" were faster than the GMM, the GMM would become the
        // critical path.
        let m = LatencyModel {
            ssd_read_us: 1.0,
            ..LatencyModel::paper_tlc()
        };
        let miss = AccessOutcome::MissInserted {
            way: 0,
            evicted: None,
        };
        assert_eq!(m.request_us(Op::Read, &miss), 3.0);
    }

    #[test]
    fn alternate_profiles_order_sensibly() {
        let tlc = LatencyModel::paper_tlc();
        let low = LatencyModel::low_latency_ssd();
        let qlc = LatencyModel::qlc_ssd();
        assert!(low.ssd_read_us < tlc.ssd_read_us);
        assert!(tlc.ssd_read_us < qlc.ssd_read_us);
        assert!(low.ssd_write_us < tlc.ssd_write_us);
        assert!(tlc.ssd_write_us < qlc.ssd_write_us);
    }
}
