//! Deterministic fault injection and the graceful-degradation ladder.
//!
//! The paper's ICGMM sits between a learned model and real flash devices,
//! neither of which is perfect in deployment: scoring engines emit
//! non-finite values or stall, SSD commands fail and exhibit heavy tail
//! latencies, and replay workers can die. This module provides the
//! substrate the whole workspace uses to rehearse those failures
//! *deterministically*:
//!
//! * [`FaultPlan`] — a seeded, `Copy` description of which faults to arm
//!   (scorer, device, shard) and how the degradation ladder responds
//!   (speculation circuit breaker, scorer health monitor). An empty plan
//!   injects nothing and arms nothing; callers skip all wrapping in that
//!   case, so empty-plan runs take exactly the fault-free code paths and
//!   stay bit-identical to them (property-enforced by
//!   `tests/fault_empty_plan.rs`).
//! * [`FaultStats`] — the observability block carried on `SimReport`,
//!   `DataflowReport` and `ExperimentResult`: injected / retried /
//!   degraded / recovered counters plus modeled time lost to faults.
//! * [`FaultyScore`] — a [`ScoreSource`] wrapper that corrupts scores at
//!   plan-rolled positions (NaN/±Inf flips, outage windows) and feeds the
//!   scorer health monitor.
//! * [`ScorerHealth`] / [`FailoverEviction`] / [`FailoverAdmission`] —
//!   the gmm-score→LRU and threshold→always-admit rungs of the ladder.
//!
//! Every injection decision is a pure hash of `(plan seed, stream, trace
//! position)` — no RNG state, no wall clock — so fault-laden runs are
//! reproducible from `(plan seed, trace seed)`, independent of thread
//! interleaving, and (for position-keyed scorer faults) of shard count.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use icgmm_trace::TraceRecord;
use serde::{Deserialize, Serialize};

use crate::policy::{AccessCtx, AdmissionPolicy, EvictionPolicy, ShadowVictimModel};
use crate::score::ScoreSource;

/// Decision streams, so the same position can roll independently for each
/// fault class.
const STREAM_SCORER_NAN: u64 = 1;
const STREAM_SCORER_OUTAGE: u64 = 2;
const STREAM_DEVICE_FAIL: u64 = 3;
const STREAM_DEVICE_SPIKE: u64 = 4;
const STREAM_SHARD_PANIC: u64 = 5;
const STREAM_SHARD_PANIC_AT: u64 = 6;

/// Stateless fault-decision hash: a splitmix64-style finalizer over
/// `(seed, stream, a, b)`. Identical inputs give identical rolls on every
/// platform, thread and run — the backbone of plan determinism.
pub(crate) fn fault_roll(seed: u64, stream: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        ^ stream.rotate_left(32)
        ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `true` when `roll` lands inside a per-mille probability.
pub(crate) fn roll_hits(roll: u64, per_mille: u16) -> bool {
    per_mille > 0 && roll % 1000 < per_mille as u64
}

/// A seeded, config-driven fault-injection plan plus degradation knobs.
///
/// The default plan is *empty*: every injection rate is zero and every
/// ladder rung disarmed. Callers must check [`FaultPlan::is_empty`] and
/// skip all wrapping for empty plans — that is what makes the empty-plan
/// bit-identity property hold by construction rather than by luck.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every injection decision (independent of the trace seed).
    pub seed: u64,
    /// Per-mille probability that a scored position's score is flipped to
    /// a non-finite value (NaN / +Inf / -Inf, chosen by the same roll).
    pub scorer_nan_per_mille: u16,
    /// Per-mille probability that a position *starts* a scoring-engine
    /// outage; every score requested within [`FaultPlan::scorer_outage_len`]
    /// positions of an outage start returns NaN (engine unavailable).
    pub scorer_outage_per_mille: u16,
    /// Length of a scorer outage, in trace positions.
    pub scorer_outage_len: u32,
    /// Per-mille probability that an SSD command attempt fails and must be
    /// retried with exponential backoff.
    pub device_fail_per_mille: u16,
    /// Per-mille probability of a tail-latency spike on an SSD command.
    pub device_spike_per_mille: u16,
    /// Latency multiplier applied by a tail spike.
    pub device_spike_mult: f64,
    /// Retries before an SSD command is abandoned as timed out.
    pub device_retry_limit: u32,
    /// Base retry backoff in modeled µs; attempt `k` waits `2^k` times this.
    pub device_backoff_us: f64,
    /// Extra modeled µs charged when a command exhausts its retries (the
    /// host-side timeout before the op is abandoned).
    pub device_timeout_us: f64,
    /// Per-mille probability (rolled once per shard) that a shard worker
    /// panics mid-replay at a plan-chosen record.
    pub shard_panic_per_mille: u16,
    /// Consecutive divergent speculation windows that trip the circuit
    /// breaker (demoting batched→streaming). Zero disarms the breaker.
    pub breaker_storm_windows: u32,
    /// Records replayed in streaming mode after a breaker trip before the
    /// batcher re-arms.
    pub breaker_cooldown_records: u32,
    /// Consecutive non-finite scores before the scorer health monitor
    /// demotes gmm-score eviction to LRU and threshold admission to
    /// always-admit. Zero disarms the monitor.
    pub scorer_demote_after: u32,
    /// Consecutive finite scores (while degraded) before re-promotion.
    pub scorer_promote_after: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            scorer_nan_per_mille: 0,
            scorer_outage_per_mille: 0,
            scorer_outage_len: 16,
            device_fail_per_mille: 0,
            device_spike_per_mille: 0,
            device_spike_mult: 8.0,
            device_retry_limit: 3,
            device_backoff_us: 50.0,
            device_timeout_us: 1_000.0,
            shard_panic_per_mille: 0,
            breaker_storm_windows: 0,
            breaker_cooldown_records: 0,
            scorer_demote_after: 0,
            scorer_promote_after: 64,
        }
    }
}

impl FaultPlan {
    /// An empty plan: nothing injected, nothing armed.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// A mixed-fault chaos preset used by the soak suites: every fault
    /// class armed at soak-friendly rates, every ladder rung armed.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            scorer_nan_per_mille: 30,
            scorer_outage_per_mille: 5,
            scorer_outage_len: 64,
            device_fail_per_mille: 20,
            device_spike_per_mille: 50,
            shard_panic_per_mille: 500,
            breaker_storm_windows: 4,
            breaker_cooldown_records: 4_096,
            scorer_demote_after: 8,
            scorer_promote_after: 64,
            ..FaultPlan::default()
        }
    }

    /// Whether the plan injects nothing and arms no ladder rung — the
    /// "today's engines, untouched" configuration.
    pub fn is_empty(&self) -> bool {
        !self.scorer_armed()
            && !self.device_armed()
            && !self.shard_armed()
            && !self.breaker_armed()
            && !self.monitor_armed()
    }

    /// Scorer faults armed (non-finite flips or outages)?
    pub fn scorer_armed(&self) -> bool {
        self.scorer_nan_per_mille > 0 || self.scorer_outage_per_mille > 0
    }

    /// Device faults armed (command failures or tail spikes)?
    pub fn device_armed(&self) -> bool {
        self.device_fail_per_mille > 0 || self.device_spike_per_mille > 0
    }

    /// Shard-worker panic points armed?
    pub fn shard_armed(&self) -> bool {
        self.shard_panic_per_mille > 0
    }

    /// Speculation circuit breaker armed?
    pub fn breaker_armed(&self) -> bool {
        self.breaker_storm_windows > 0
    }

    /// Scorer health monitor (gmm-score→LRU, threshold→always) armed?
    pub fn monitor_armed(&self) -> bool {
        self.scorer_demote_after > 0
    }

    /// Validates the plan, returning the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        for (what, pm) in [
            ("fault.scorer_nan_per_mille", self.scorer_nan_per_mille),
            (
                "fault.scorer_outage_per_mille",
                self.scorer_outage_per_mille,
            ),
            ("fault.device_fail_per_mille", self.device_fail_per_mille),
            ("fault.device_spike_per_mille", self.device_spike_per_mille),
            ("fault.shard_panic_per_mille", self.shard_panic_per_mille),
        ] {
            if pm > 1000 {
                return Err(format!("{what} must be <= 1000, got {pm}"));
            }
        }
        if self.scorer_outage_per_mille > 0 && self.scorer_outage_len == 0 {
            return Err("fault.scorer_outage_len must be >= 1 when outages are armed".into());
        }
        if !self.device_spike_mult.is_finite() || self.device_spike_mult < 1.0 {
            return Err(format!(
                "fault.device_spike_mult must be finite and >= 1, got {}",
                self.device_spike_mult
            ));
        }
        if !self.device_backoff_us.is_finite() || self.device_backoff_us < 0.0 {
            return Err(format!(
                "fault.device_backoff_us must be finite and >= 0, got {}",
                self.device_backoff_us
            ));
        }
        if !self.device_timeout_us.is_finite() || self.device_timeout_us < 0.0 {
            return Err(format!(
                "fault.device_timeout_us must be finite and >= 0, got {}",
                self.device_timeout_us
            ));
        }
        if self.breaker_storm_windows > 0 && self.breaker_cooldown_records == 0 {
            return Err(
                "fault.breaker_cooldown_records must be >= 1 when the breaker is armed".into(),
            );
        }
        if self.scorer_demote_after > 0 && self.scorer_promote_after == 0 {
            return Err(
                "fault.scorer_promote_after must be >= 1 when the health monitor is armed".into(),
            );
        }
        Ok(())
    }

    /// The record index (within a shard's warm-up + measured subtrace) at
    /// which the plan arms a panic point for `shard`, if any. One roll per
    /// shard decides *whether*, a second decides *where*.
    pub fn shard_panic_point(&self, shard: usize, shard_records: usize) -> Option<u64> {
        if self.shard_panic_per_mille == 0 || shard_records == 0 {
            return None;
        }
        let arm = fault_roll(self.seed, STREAM_SHARD_PANIC, shard as u64, 0);
        if !roll_hits(arm, self.shard_panic_per_mille) {
            return None;
        }
        Some(fault_roll(self.seed, STREAM_SHARD_PANIC_AT, shard as u64, 0) % shard_records as u64)
    }

    /// Whether the SSD command numbered `op_index` fails on `attempt`
    /// (each attempt rolls independently, so retries can succeed). Used by
    /// the `icgmm-hw` device emulator.
    pub fn device_attempt_fails(&self, op_index: u64, attempt: u32) -> bool {
        roll_hits(
            fault_roll(self.seed, STREAM_DEVICE_FAIL, op_index, attempt as u64),
            self.device_fail_per_mille,
        )
    }

    /// Whether the SSD command numbered `op_index` suffers a tail-latency
    /// spike. Used by the `icgmm-hw` device emulator.
    pub fn device_spikes(&self, op_index: u64) -> bool {
        roll_hits(
            fault_roll(self.seed, STREAM_DEVICE_SPIKE, op_index, 0),
            self.device_spike_per_mille,
        )
    }
}

/// Fault-injection and degradation counters for one run.
///
/// Carried on `SimReport`, `DataflowReport` and `ExperimentResult`; merged
/// across shards in shard order, so sharded reports are as deterministic
/// as single-threaded ones.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Scores flipped to NaN/±Inf by the plan.
    pub scorer_nan_injected: u64,
    /// Scores swallowed by a scoring-engine outage (returned NaN).
    pub scorer_outage_scores: u64,
    /// SSD command attempts that failed.
    pub device_failures: u64,
    /// SSD command retries performed.
    pub device_retries: u64,
    /// SSD commands abandoned after exhausting their retries.
    pub device_timeouts: u64,
    /// SSD commands hit by a tail-latency spike.
    pub device_spikes: u64,
    /// Modeled µs charged beyond nominal device latency (spikes, retries,
    /// backoff, timeouts).
    pub device_fault_us: f64,
    /// Shard workers that panicked.
    pub shard_panics: u64,
    /// Panicked shards successfully re-replayed by the supervisor.
    pub shard_recoveries: u64,
    /// Speculation circuit-breaker trips (batched demoted to streaming).
    pub breaker_trips: u64,
    /// Records replayed in streaming mode during breaker cooldowns.
    pub breaker_streamed: u64,
    /// Scorer health-monitor demotions (gmm-score→LRU, threshold→always).
    pub scorer_demotions: u64,
    /// Scorer health-monitor re-promotions back to the primary policies.
    pub scorer_repromotions: u64,
    /// Scores served while the scorer was degraded.
    pub degraded_scores: u64,
    /// Victim choices delegated to the fallback (LRU) while degraded.
    pub degraded_victims: u64,
    /// Admissions forced to always-admit while degraded.
    pub degraded_admits: u64,
}

impl FaultStats {
    /// Accumulates `other` into `self` (used by the sharded merge and by
    /// callers combining scorer, breaker and device stats into one block).
    pub fn merge(&mut self, other: &FaultStats) {
        self.scorer_nan_injected += other.scorer_nan_injected;
        self.scorer_outage_scores += other.scorer_outage_scores;
        self.device_failures += other.device_failures;
        self.device_retries += other.device_retries;
        self.device_timeouts += other.device_timeouts;
        self.device_spikes += other.device_spikes;
        self.device_fault_us += other.device_fault_us;
        self.shard_panics += other.shard_panics;
        self.shard_recoveries += other.shard_recoveries;
        self.breaker_trips += other.breaker_trips;
        self.breaker_streamed += other.breaker_streamed;
        self.scorer_demotions += other.scorer_demotions;
        self.scorer_repromotions += other.scorer_repromotions;
        self.degraded_scores += other.degraded_scores;
        self.degraded_victims += other.degraded_victims;
        self.degraded_admits += other.degraded_admits;
    }

    /// Total faults injected (scorer + device + shard), before degradation.
    pub fn injected(&self) -> u64 {
        self.scorer_nan_injected
            + self.scorer_outage_scores
            + self.device_failures
            + self.device_spikes
            + self.shard_panics
    }

    /// `true` when no fault was injected and no rung engaged — the block an
    /// empty plan must produce.
    pub fn is_clean(&self) -> bool {
        *self == FaultStats::default()
    }
}

/// Shared, thread-safe accumulator for [`FaultStats`] — cloned into score
/// wrappers and failover policies so one block can aggregate a whole run.
#[derive(Clone, Debug, Default)]
pub struct FaultSink(Arc<Mutex<FaultStats>>);

impl FaultSink {
    /// A fresh, all-zero sink.
    pub fn new() -> Self {
        FaultSink::default()
    }

    /// Applies `f` to the stats under the lock. Lock poisoning (a panic
    /// while recording — possible under armed shard panics) is recovered:
    /// counters are plain numbers and stay internally consistent.
    pub fn record(&self, f: impl FnOnce(&mut FaultStats)) {
        let mut guard = match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard);
    }

    /// A copy of the accumulated stats.
    pub fn snapshot(&self) -> FaultStats {
        match self.0.lock() {
            Ok(g) => *g,
            Err(poisoned) => *poisoned.into_inner(),
        }
    }
}

/// The scorer health monitor: tracks consecutive non-finite scores and
/// drives the gmm-score→LRU / threshold→always-admit degradation rungs
/// with hysteresis (demote after `scorer_demote_after` bad scores,
/// re-promote after `scorer_promote_after` good ones).
///
/// One instance per replay thread (sharded runs build one per shard), so
/// transitions are a pure function of that thread's score stream and the
/// run stays deterministic.
#[derive(Debug)]
pub struct ScorerHealth {
    demote_after: u32,
    promote_after: u32,
    degraded: AtomicBool,
    bad_streak: AtomicU32,
    good_streak: AtomicU32,
}

impl ScorerHealth {
    /// A monitor armed per `plan` (disarmed monitors never degrade).
    pub fn new(plan: &FaultPlan) -> Arc<Self> {
        Arc::new(ScorerHealth {
            demote_after: plan.scorer_demote_after,
            promote_after: plan.scorer_promote_after.max(1),
            degraded: AtomicBool::new(false),
            bad_streak: AtomicU32::new(0),
            good_streak: AtomicU32::new(0),
        })
    }

    /// Whether the ladder is currently in its degraded rung.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Feeds one score observation (finite or not) into the monitor,
    /// recording demotions/re-promotions into `sink`.
    pub fn observe(&self, finite: bool, sink: &FaultSink) {
        if self.demote_after == 0 {
            return;
        }
        if finite {
            self.bad_streak.store(0, Ordering::Relaxed);
            if self.is_degraded() {
                let good = self.good_streak.load(Ordering::Relaxed) + 1;
                if good >= self.promote_after {
                    self.degraded.store(false, Ordering::Relaxed);
                    self.good_streak.store(0, Ordering::Relaxed);
                    sink.record(|s| s.scorer_repromotions += 1);
                } else {
                    self.good_streak.store(good, Ordering::Relaxed);
                }
            }
        } else {
            self.good_streak.store(0, Ordering::Relaxed);
            if !self.is_degraded() {
                let bad = self.bad_streak.load(Ordering::Relaxed) + 1;
                if bad >= self.demote_after {
                    self.degraded.store(true, Ordering::Relaxed);
                    self.bad_streak.store(0, Ordering::Relaxed);
                    sink.record(|s| s.scorer_demotions += 1);
                } else {
                    self.bad_streak.store(bad, Ordering::Relaxed);
                }
            }
        }
    }
}

/// A [`ScoreSource`] wrapper that injects plan-rolled scorer faults and
/// feeds the health monitor.
///
/// The wrapper keeps its own observation clock (advanced exactly like the
/// inner source's: `observe` +1, `observe_gap` +n, window calls by their
/// span), so every injection decision is keyed on the record's *global
/// trace position* — identical across the streaming, batched and sharded
/// engines for the positions they actually score.
pub struct FaultyScore<S: ScoreSource> {
    inner: S,
    plan: FaultPlan,
    health: Option<Arc<ScorerHealth>>,
    sink: FaultSink,
    clock: u64,
}

impl<S: ScoreSource> FaultyScore<S> {
    /// Wraps `inner`, injecting per `plan` and (when `health` is given)
    /// feeding every emitted score into the monitor — which also catches
    /// genuine non-finite scores the inner engine produces on its own.
    pub fn new(
        inner: S,
        plan: FaultPlan,
        health: Option<Arc<ScorerHealth>>,
        sink: FaultSink,
    ) -> Self {
        FaultyScore {
            inner,
            plan,
            health,
            sink,
            clock: 0,
        }
    }

    /// The wrapped source (e.g. to read its inference counters after a
    /// run).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Whether any outage window covers position `seq`: an outage starting
    /// at any of the previous `scorer_outage_len` positions is still in
    /// force.
    fn outage_active(&self, seq: u64) -> bool {
        if self.plan.scorer_outage_per_mille == 0 {
            return false;
        }
        let len = u64::from(self.plan.scorer_outage_len.max(1));
        let lo = seq.saturating_sub(len - 1);
        (lo..=seq).any(|s| {
            roll_hits(
                fault_roll(self.plan.seed, STREAM_SCORER_OUTAGE, s, 0),
                self.plan.scorer_outage_per_mille,
            )
        })
    }

    /// Applies the plan to the score produced at trace position `seq`.
    fn corrupt(&self, seq: u64, raw: f64) -> f64 {
        let mut v = raw;
        if self.outage_active(seq) {
            v = f64::NAN;
            self.sink.record(|s| s.scorer_outage_scores += 1);
        } else {
            let roll = fault_roll(self.plan.seed, STREAM_SCORER_NAN, seq, 0);
            if roll_hits(roll, self.plan.scorer_nan_per_mille) {
                v = match (roll >> 32) % 3 {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    _ => f64::NEG_INFINITY,
                };
                self.sink.record(|s| s.scorer_nan_injected += 1);
            }
        }
        if let Some(h) = &self.health {
            h.observe(v.is_finite(), &self.sink);
            if h.is_degraded() {
                self.sink.record(|s| s.degraded_scores += 1);
            }
        }
        v
    }
}

impl<S: ScoreSource> ScoreSource for FaultyScore<S> {
    fn observe(&mut self, record: &TraceRecord) {
        self.inner.observe(record);
        self.clock += 1;
    }

    fn score_current(&mut self) -> f64 {
        let raw = self.inner.score_current();
        self.corrupt(self.clock.wrapping_sub(1), raw)
    }

    fn score_window(&mut self, records: &[TraceRecord], out: &mut [f64]) {
        self.inner.score_window(records, out);
        for slot in out.iter_mut() {
            let seq = self.clock;
            self.clock += 1;
            *slot = self.corrupt(seq, *slot);
        }
    }

    fn prefers_batching(&self) -> bool {
        self.inner.prefers_batching()
    }

    fn shardable(&self) -> bool {
        self.inner.shardable()
    }

    fn observe_gap(&mut self, n: u64) {
        self.inner.observe_gap(n);
        self.clock += n;
    }

    fn score_window_gapped(&mut self, records: &[TraceRecord], gaps: &[u64], out: &mut [f64]) {
        self.inner.score_window_gapped(records, gaps, out);
        assert_eq!(records.len(), out.len(), "one score slot per record");
        assert_eq!(records.len(), gaps.len(), "one gap per record");
        for (i, slot) in out.iter_mut().enumerate() {
            self.clock += gaps[i];
            let seq = self.clock;
            self.clock += 1;
            *slot = self.corrupt(seq, *slot);
        }
    }
}

/// The gmm-score→LRU rung: routes victim choices to a fallback policy
/// while the scorer is degraded.
///
/// Both policies' replacement metadata is kept warm on every hit and
/// insert, so a mid-run demotion hands the fallback a fully-populated
/// view instead of cold state. The shadow model follows the currently
/// active policy; a stale prediction after a flip only costs the batcher
/// a divergence (replay verifies every victim), never correctness.
pub struct FailoverEviction {
    primary: Box<dyn EvictionPolicy + Send>,
    fallback: Box<dyn EvictionPolicy + Send>,
    health: Arc<ScorerHealth>,
    sink: FaultSink,
    name: String,
}

impl FailoverEviction {
    /// Wraps `primary` with `fallback` engaged while `health` is degraded.
    pub fn new(
        primary: Box<dyn EvictionPolicy + Send>,
        fallback: Box<dyn EvictionPolicy + Send>,
        health: Arc<ScorerHealth>,
        sink: FaultSink,
    ) -> Self {
        let name = format!("failover({}->{})", primary.name(), fallback.name());
        FailoverEviction {
            primary,
            fallback,
            health,
            sink,
            name,
        }
    }
}

impl EvictionPolicy for FailoverEviction {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        self.primary.on_hit(set, way, ctx);
        self.fallback.on_hit(set, way, ctx);
    }

    fn on_insert(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        self.primary.on_insert(set, way, ctx);
        self.fallback.on_insert(set, way, ctx);
    }

    fn choose_victim(&mut self, set: usize, ways: usize, ctx: &AccessCtx) -> usize {
        if self.health.is_degraded() {
            self.sink.record(|s| s.degraded_victims += 1);
            self.fallback.choose_victim(set, ways, ctx)
        } else {
            self.primary.choose_victim(set, ways, ctx)
        }
    }

    fn shadow_victim_model(&self) -> ShadowVictimModel {
        if self.health.is_degraded() {
            self.fallback.shadow_victim_model()
        } else {
            self.primary.shadow_victim_model()
        }
    }

    fn shard_deterministic(&self) -> bool {
        self.primary.shard_deterministic() && self.fallback.shard_deterministic()
    }
}

/// The threshold→always-admit rung: admits every miss while the scorer is
/// degraded (a cache that cannot trust its scores must not bypass on
/// them), delegating to the primary filter otherwise.
pub struct FailoverAdmission {
    primary: Box<dyn AdmissionPolicy + Send>,
    health: Arc<ScorerHealth>,
    sink: FaultSink,
    name: String,
}

impl FailoverAdmission {
    /// Wraps `primary` with always-admit engaged while `health` is
    /// degraded.
    pub fn new(
        primary: Box<dyn AdmissionPolicy + Send>,
        health: Arc<ScorerHealth>,
        sink: FaultSink,
    ) -> Self {
        let name = format!("failover({}->always)", primary.name());
        FailoverAdmission {
            primary,
            health,
            sink,
            name,
        }
    }
}

impl AdmissionPolicy for FailoverAdmission {
    fn name(&self) -> &str {
        &self.name
    }

    fn should_admit(&mut self, ctx: &AccessCtx) -> bool {
        if self.health.is_degraded() {
            self.sink.record(|s| s.degraded_admits += 1);
            true
        } else {
            self.primary.should_admit(ctx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{LruPolicy, ThresholdAdmit};
    use crate::score::ConstantScore;
    use icgmm_trace::Op;

    #[test]
    fn default_plan_is_empty_and_valid() {
        let p = FaultPlan::default();
        assert!(p.is_empty());
        assert!(p.validate().is_ok());
        assert_eq!(p, FaultPlan::empty());
    }

    #[test]
    fn chaos_plan_arms_every_class_and_validates() {
        let p = FaultPlan::chaos(7);
        assert!(!p.is_empty());
        assert!(p.scorer_armed() && p.device_armed() && p.shard_armed());
        assert!(p.breaker_armed() && p.monitor_armed());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_each_bad_knob() {
        let bad = [
            FaultPlan {
                scorer_nan_per_mille: 1001,
                ..FaultPlan::default()
            },
            FaultPlan {
                scorer_outage_per_mille: 5,
                scorer_outage_len: 0,
                ..FaultPlan::default()
            },
            FaultPlan {
                device_spike_mult: 0.5,
                ..FaultPlan::default()
            },
            FaultPlan {
                device_spike_mult: f64::NAN,
                ..FaultPlan::default()
            },
            FaultPlan {
                device_backoff_us: -1.0,
                ..FaultPlan::default()
            },
            FaultPlan {
                device_timeout_us: f64::INFINITY,
                ..FaultPlan::default()
            },
            FaultPlan {
                breaker_storm_windows: 2,
                breaker_cooldown_records: 0,
                ..FaultPlan::default()
            },
            FaultPlan {
                scorer_demote_after: 4,
                scorer_promote_after: 0,
                ..FaultPlan::default()
            },
        ];
        for p in bad {
            assert!(p.validate().is_err(), "{p:?} should be invalid");
        }
    }

    #[test]
    fn rolls_are_deterministic_and_seed_sensitive() {
        assert_eq!(fault_roll(1, 2, 3, 4), fault_roll(1, 2, 3, 4));
        assert_ne!(fault_roll(1, 2, 3, 4), fault_roll(2, 2, 3, 4));
        assert_ne!(fault_roll(1, 2, 3, 4), fault_roll(1, 3, 3, 4));
        assert_ne!(fault_roll(1, 2, 3, 4), fault_roll(1, 2, 4, 4));
    }

    #[test]
    fn shard_panic_point_is_deterministic_and_rate_gated() {
        let p = FaultPlan {
            shard_panic_per_mille: 1000,
            ..FaultPlan::default()
        };
        for shard in 0..8 {
            let a = p.shard_panic_point(shard, 100);
            assert_eq!(a, p.shard_panic_point(shard, 100));
            assert!(a.is_some_and(|at| at < 100));
        }
        let off = FaultPlan::default();
        assert_eq!(off.shard_panic_point(0, 100), None);
        assert_eq!(p.shard_panic_point(0, 0), None);
    }

    #[test]
    fn faulty_score_injects_at_stable_positions() {
        let plan = FaultPlan {
            seed: 11,
            scorer_nan_per_mille: 200,
            ..FaultPlan::default()
        };
        let run = |mut s: FaultyScore<ConstantScore>| -> Vec<bool> {
            (0..200u64)
                .map(|i| {
                    s.observe(&TraceRecord::read(i << 12));
                    !s.score_current().is_finite()
                })
                .collect()
        };
        let a = run(FaultyScore::new(
            ConstantScore(0.5),
            plan,
            None,
            FaultSink::new(),
        ));
        let b = run(FaultyScore::new(
            ConstantScore(0.5),
            plan,
            None,
            FaultSink::new(),
        ));
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x), "rate 200/1000 over 200 rolls injects");
        assert!(!a.iter().all(|&x| x), "and leaves some scores intact");
    }

    #[test]
    fn faulty_score_window_matches_streaming_positions() {
        let plan = FaultPlan {
            seed: 3,
            scorer_nan_per_mille: 300,
            ..FaultPlan::default()
        };
        let records: Vec<TraceRecord> = (0..64u64).map(|i| TraceRecord::read(i << 12)).collect();
        let mut streaming =
            FaultyScore::new(Box::new(ConstantScore(0.5)), plan, None, FaultSink::new());
        let expected: Vec<f64> = records
            .iter()
            .map(|r| {
                streaming.observe(r);
                streaming.score_current()
            })
            .collect();
        let mut windowed =
            FaultyScore::new(Box::new(ConstantScore(0.5)), plan, None, FaultSink::new());
        let mut out = vec![0.0; records.len()];
        windowed.score_window(&records, &mut out);
        for (e, o) in expected.iter().zip(&out) {
            assert!(e == o || (e.is_nan() && o.is_nan()), "{e} vs {o}");
        }
    }

    #[test]
    fn health_monitor_demotes_and_repromotes_with_hysteresis() {
        let plan = FaultPlan {
            scorer_demote_after: 3,
            scorer_promote_after: 2,
            ..FaultPlan::default()
        };
        let h = ScorerHealth::new(&plan);
        let sink = FaultSink::new();
        h.observe(false, &sink);
        h.observe(false, &sink);
        assert!(!h.is_degraded(), "two bad scores are below the threshold");
        h.observe(false, &sink);
        assert!(h.is_degraded(), "third consecutive bad score demotes");
        h.observe(true, &sink);
        assert!(h.is_degraded(), "one good score is below re-promotion");
        h.observe(true, &sink);
        assert!(
            !h.is_degraded(),
            "second consecutive good score re-promotes"
        );
        let s = sink.snapshot();
        assert_eq!(s.scorer_demotions, 1);
        assert_eq!(s.scorer_repromotions, 1);
    }

    #[test]
    fn failover_eviction_routes_by_health() {
        let plan = FaultPlan {
            scorer_demote_after: 1,
            scorer_promote_after: 1,
            ..FaultPlan::default()
        };
        let h = ScorerHealth::new(&plan);
        let sink = FaultSink::new();
        let mut ev = FailoverEviction::new(
            Box::new(crate::policy::GmmScorePolicy::new(1, 2)),
            Box::new(LruPolicy::new(1, 2)),
            Arc::clone(&h),
            sink.clone(),
        );
        assert_eq!(ev.name(), "failover(gmm-score->lru)");
        // Way 0 scored high but stale; way 1 scored low but recent.
        let ctx = |page: u64, seq: u64, score: f64| AccessCtx {
            page: icgmm_trace::PageIndex::new(page),
            op: Op::Read,
            seq,
            score: Some(score),
        };
        ev.on_insert(0, 0, &ctx(1, 0, 9.0));
        ev.on_insert(0, 1, &ctx(2, 1, 1.0));
        assert_eq!(
            ev.choose_victim(0, 2, &ctx(3, 2, 5.0)),
            1,
            "healthy: gmm-score evicts the lowest stored score"
        );
        h.observe(false, &sink);
        assert!(h.is_degraded());
        assert_eq!(
            ev.choose_victim(0, 2, &ctx(3, 3, 5.0)),
            0,
            "degraded: LRU evicts the least-recently-used way"
        );
        assert_eq!(sink.snapshot().degraded_victims, 1);
    }

    #[test]
    fn failover_admission_always_admits_while_degraded() {
        let plan = FaultPlan {
            scorer_demote_after: 1,
            scorer_promote_after: 1,
            ..FaultPlan::default()
        };
        let h = ScorerHealth::new(&plan);
        let sink = FaultSink::new();
        let mut adm = FailoverAdmission::new(
            Box::new(ThresholdAdmit::new(0.5)),
            Arc::clone(&h),
            sink.clone(),
        );
        assert_eq!(adm.name(), "failover(gmm-threshold->always)");
        let low = AccessCtx {
            page: icgmm_trace::PageIndex::new(1),
            op: Op::Read,
            seq: 0,
            score: Some(0.1),
        };
        assert!(!adm.should_admit(&low), "healthy: threshold bypasses");
        h.observe(false, &sink);
        assert!(adm.should_admit(&low), "degraded: always admits");
        assert_eq!(sink.snapshot().degraded_admits, 1);
    }

    #[test]
    fn fault_stats_merge_adds_everything() {
        let mut a = FaultStats {
            scorer_nan_injected: 1,
            device_retries: 2,
            shard_panics: 3,
            breaker_trips: 4,
            device_fault_us: 1.5,
            ..FaultStats::default()
        };
        let b = FaultStats {
            scorer_nan_injected: 10,
            device_retries: 20,
            shard_recoveries: 30,
            degraded_scores: 40,
            device_fault_us: 2.5,
            ..FaultStats::default()
        };
        a.merge(&b);
        assert_eq!(a.scorer_nan_injected, 11);
        assert_eq!(a.device_retries, 22);
        assert_eq!(a.shard_panics, 3);
        assert_eq!(a.shard_recoveries, 30);
        assert_eq!(a.degraded_scores, 40);
        assert_eq!(a.device_fault_us, 4.0);
        assert!(!a.is_clean());
        assert!(FaultStats::default().is_clean());
        assert!(a.injected() >= 11);
    }
}
