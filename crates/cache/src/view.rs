//! Zero-copy record views: the representation behind the sharded
//! engines' index-based fan-out.
//!
//! A [`RecordsRef`] is either a plain contiguous slice (the
//! single-threaded engines' native shape) or an *indexed* view — a list
//! of `u32` positions into a backing slice someone else owns. The sharded
//! replay and the serving front-end partition a trace by handing each
//! shard worker an indexed view over the caller's original slices: the
//! routing pass allocates 4 bytes per record (the index entry) instead of
//! copying every [`TraceRecord`] into per-shard buffers, and the workers
//! iterate the caller's trace by reference.
//!
//! Both replay engines ([`crate::simulate_streaming_with_warmup`]'s loop
//! and the speculative [`crate::WindowedSimulator`]) run directly on
//! views, so an indexed subtrace replays in one uninterrupted call — the
//! property that keeps per-shard speculation telemetry exactly equal to
//! the single-threaded batcher's at one shard. The only place contiguity
//! is still required is [`crate::ScoreSource::score_window`] (the batched
//! scoring kernel's ABI); [`RecordsRef::contiguous`] provides it, free
//! for slice views and via a reusable `O(window)` gather buffer for
//! indexed ones — bounded scratch, never a second copy of the trace.

use icgmm_trace::TraceRecord;
use std::ops::Range;

/// A borrowed, possibly non-contiguous sequence of trace records.
///
/// `Copy`, two words + a discriminant: passing one around is as cheap as
/// passing a slice. Positions are dense `0..len()` regardless of
/// representation; an indexed view maps position `i` to
/// `backing[index[i] - base]`.
#[derive(Clone, Copy, Debug)]
pub struct RecordsRef<'a> {
    repr: Repr<'a>,
}

#[derive(Clone, Copy, Debug)]
enum Repr<'a> {
    Slice(&'a [TraceRecord]),
    Indexed {
        backing: &'a [TraceRecord],
        index: &'a [u32],
        /// Subtracted from each index entry before indexing `backing` —
        /// lets one global index list (positions over warm-up ⧺ measured)
        /// be split into per-phase views over the per-phase slices.
        base: u32,
    },
}

impl<'a> RecordsRef<'a> {
    /// A view over a contiguous slice (zero overhead: every accessor
    /// compiles down to the plain slice operation).
    #[inline]
    pub fn from_slice(records: &'a [TraceRecord]) -> Self {
        RecordsRef {
            repr: Repr::Slice(records),
        }
    }

    /// An indexed view: position `i` resolves to
    /// `backing[(index[i] - base) as usize]`.
    ///
    /// # Panics
    ///
    /// Debug builds assert every `index` entry lands inside `backing`
    /// after the `base` shift.
    #[inline]
    pub fn indexed(backing: &'a [TraceRecord], index: &'a [u32], base: u32) -> Self {
        debug_assert!(index
            .iter()
            .all(|&i| { i >= base && ((i - base) as usize) < backing.len() }));
        RecordsRef {
            repr: Repr::Indexed {
                backing,
                index,
                base,
            },
        }
    }

    /// Number of records in the view.
    #[inline]
    pub fn len(&self) -> usize {
        match self.repr {
            Repr::Slice(s) => s.len(),
            Repr::Indexed { index, .. } => index.len(),
        }
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The record at position `i`. The returned reference borrows the
    /// *backing* storage, not the view — it outlives any local copy of
    /// the (`Copy`) view itself.
    #[inline]
    pub fn get(&self, i: usize) -> &'a TraceRecord {
        match self.repr {
            Repr::Slice(s) => &s[i],
            Repr::Indexed {
                backing,
                index,
                base,
            } => &backing[(index[i] - base) as usize],
        }
    }

    /// Sub-view over positions `r` (same representation, no copying).
    #[inline]
    pub fn slice(&self, r: Range<usize>) -> RecordsRef<'a> {
        match self.repr {
            Repr::Slice(s) => RecordsRef::from_slice(&s[r]),
            Repr::Indexed {
                backing,
                index,
                base,
            } => RecordsRef {
                repr: Repr::Indexed {
                    backing,
                    index: &index[r],
                    base,
                },
            },
        }
    }

    /// Iterates the records in position order.
    #[inline]
    pub fn iter(&self) -> RecordsIter<'a> {
        match self.repr {
            Repr::Slice(s) => RecordsIter::Slice(s.iter()),
            Repr::Indexed {
                backing,
                index,
                base,
            } => RecordsIter::Indexed {
                backing,
                index: index.iter(),
                base,
            },
        }
    }

    /// The records as one contiguous slice, for consumers whose ABI
    /// requires contiguity ([`crate::ScoreSource::score_window`]).
    ///
    /// A slice view returns its own storage (no copy, no allocation); an
    /// indexed view gathers into `buf`, which the caller reuses across
    /// calls so the scratch stays `O(max window)` regardless of trace
    /// length.
    #[inline]
    pub fn contiguous<'b>(&self, buf: &'b mut Vec<TraceRecord>) -> &'b [TraceRecord]
    where
        'a: 'b,
    {
        match self.repr {
            Repr::Slice(s) => s,
            Repr::Indexed { .. } => {
                buf.clear();
                buf.extend(self.iter().copied());
                &buf[..]
            }
        }
    }
}

impl<'a> From<&'a [TraceRecord]> for RecordsRef<'a> {
    fn from(records: &'a [TraceRecord]) -> Self {
        RecordsRef::from_slice(records)
    }
}

impl<'a> IntoIterator for RecordsRef<'a> {
    type Item = &'a TraceRecord;
    type IntoIter = RecordsIter<'a>;
    fn into_iter(self) -> RecordsIter<'a> {
        self.iter()
    }
}

/// Iterator over a [`RecordsRef`], yielding `&TraceRecord` with the
/// backing storage's lifetime.
pub enum RecordsIter<'a> {
    /// Contiguous view: the plain slice iterator.
    Slice(std::slice::Iter<'a, TraceRecord>),
    /// Indexed view: walks the index list.
    Indexed {
        /// The backing records.
        backing: &'a [TraceRecord],
        /// Remaining index entries.
        index: std::slice::Iter<'a, u32>,
        /// Shift applied to each index entry (see [`RecordsRef::indexed`]).
        base: u32,
    },
}

impl<'a> Iterator for RecordsIter<'a> {
    type Item = &'a TraceRecord;

    #[inline]
    fn next(&mut self) -> Option<&'a TraceRecord> {
        match self {
            RecordsIter::Slice(it) => it.next(),
            RecordsIter::Indexed {
                backing,
                index,
                base,
            } => index.next().map(|&i| &backing[(i - *base) as usize]),
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            RecordsIter::Slice(it) => it.size_hint(),
            RecordsIter::Indexed { index, .. } => index.size_hint(),
        }
    }
}

impl ExactSizeIterator for RecordsIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: u64) -> Vec<TraceRecord> {
        (0..n).map(|p| TraceRecord::read(p << 12)).collect()
    }

    #[test]
    fn slice_view_roundtrips() {
        let recs = records(10);
        let v = RecordsRef::from_slice(&recs);
        assert_eq!(v.len(), 10);
        assert!(!v.is_empty());
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(v.get(i), r);
        }
        let collected: Vec<_> = v.iter().copied().collect();
        assert_eq!(collected, recs);
        let sub = v.slice(2..7);
        assert_eq!(sub.len(), 5);
        assert_eq!(sub.get(0), &recs[2]);
        let mut buf = Vec::new();
        // Contiguity is free for slices: the original storage comes back.
        assert_eq!(sub.contiguous(&mut buf).as_ptr(), recs[2..].as_ptr());
        assert!(buf.is_empty());
    }

    #[test]
    fn indexed_view_resolves_through_the_index() {
        let recs = records(10);
        let index: Vec<u32> = vec![1, 3, 4, 8];
        let v = RecordsRef::indexed(&recs, &index, 0);
        assert_eq!(v.len(), 4);
        assert_eq!(v.get(2), &recs[4]);
        let collected: Vec<_> = v.iter().copied().collect();
        assert_eq!(collected, vec![recs[1], recs[3], recs[4], recs[8]]);
        let sub = v.slice(1..3);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.get(0), &recs[3]);
        let mut buf = Vec::new();
        assert_eq!(sub.contiguous(&mut buf), &[recs[3], recs[4]][..]);
    }

    #[test]
    fn base_shift_splits_one_global_index_across_phases() {
        // Global positions 0..10 over warm-up (0..4) ⧺ measured (4..10).
        let warm = records(4);
        let meas: Vec<TraceRecord> = (4..10u64).map(|p| TraceRecord::read(p << 12)).collect();
        let shard_index: Vec<u32> = vec![0, 2, 5, 6, 9]; // ascending global
        let wc = shard_index.partition_point(|&i| (i as usize) < warm.len());
        let wv = RecordsRef::indexed(&warm, &shard_index[..wc], 0);
        let mv = RecordsRef::indexed(&meas, &shard_index[wc..], warm.len() as u32);
        assert_eq!(wv.len(), 2);
        assert_eq!(mv.len(), 3);
        assert_eq!(wv.get(1), &warm[2]);
        assert_eq!(mv.get(0), &meas[1]); // global 5 = measured[1]
        assert_eq!(mv.get(2), &meas[5]); // global 9 = measured[5]
    }
}
