//! Trace-driven cache simulation: the glue that turns a trace, a policy
//! pair, an optional score source and a latency model into miss rates and
//! average access latency (the quantities of the paper's Fig. 6/Table 1).
//!
//! # Streaming vs speculative batched replay
//!
//! Two interchangeable replay engines produce bit-identical [`SimReport`]s:
//!
//! * [`simulate_streaming`] / [`simulate_streaming_with_warmup`] — the
//!   reference loop: observe each request, score each miss synchronously,
//!   access the cache. Simple, but every miss pays a scalar policy-engine
//!   inference.
//! * The speculative batcher ([`crate::WindowedSimulator`]) — classifies
//!   the next `W` requests against a shadow of the tag state, prefetches
//!   predicted-miss scores through [`ScoreSource::score_window`] in
//!   batched calls, then replays through the real cache. Any divergence
//!   between speculation and reality (mispredicted hit/miss, admission
//!   bypass, different eviction victim) is detected during replay, counted
//!   in [`crate::SpecStats`], and repaired by re-speculating from the
//!   divergent point — mispredicted misses fall back to the synchronous
//!   [`ScoreSource::score_current`], so results never drift.
//!
//! Both engines additionally expose a **replay-event stream**: a
//! [`ReplayObserver`] passed to [`simulate_streaming_observed_with_warmup`]
//! or [`crate::WindowedSimulator::run_observed`] receives every record's
//! real outcome in trace order — with the consumed score, its
//! [`ScoreOrigin`] (which prefetch batch produced it, or which synchronous
//! path), and cut/run-split notifications — so consumers that attach
//! their own semantics to the replay (the `icgmm-hw` cycle-approximate
//! dataflow timing model) are decoupled from *how* the host computed the
//! outcomes and stay bit-identical across engines for free.
//!
//! [`simulate`] and [`simulate_with_warmup`] are the default entry
//! points: runs whose score source reports
//! [`ScoreSource::prefers_batching`] (the GMM policy engine at
//! paper-scale K — not sources inheriting the default streaming
//! `score_window`) route through the batcher at
//! [`crate::DEFAULT_SPEC_WINDOW`] (tune the cap via
//! [`crate::WindowedSimulator::new`] — larger `W` amortizes more batching;
//! the *effective* depth adapts on its own, halving after divergent
//! windows and recovering after clean ones); score-free runs and
//! streaming-kernel sources use the streaming loop directly. Equivalence
//! across all policy pairs is enforced by property tests
//! (`tests/batch_equivalence.rs`).

use crate::cache::{AccessOutcome, SetAssocCache};
use crate::latency::LatencyModel;
use crate::policy::{AdmissionPolicy, EvictionPolicy};
use crate::score::ScoreSource;
use crate::stats::{CacheStats, MissSeries};
use crate::view::RecordsRef;
use icgmm_trace::TraceRecord;
use serde::{Deserialize, Serialize};

/// Where the score a replayed record consumed came from.
///
/// Part of the replay-event stream (see [`ReplayObserver`]): consumers that
/// attribute host-side inference cost — e.g. the `icgmm-hw` dataflow model
/// attributing batched inference time to the miss that consumed each score —
/// need to know which prefetch batch (if any) produced a score, not just its
/// value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScoreOrigin {
    /// No score was consumed: a hit, or a score-free run.
    None,
    /// Prefetched by a batched [`ScoreSource::score_window`] call; `call`
    /// is the 1-based ordinal of that call within the run (matches
    /// [`crate::SpecStats::batch_calls`] counting).
    Batched {
        /// 1-based ordinal of the producing `score_window` call.
        call: u64,
    },
    /// Synchronous [`ScoreSource::score_current`] fallback on a stale
    /// predicted hit inside a speculation window.
    SyncFallback,
    /// Synchronous score in plain streaming replay (the reference loop or
    /// a batcher streaming span). Score-free runs never consume a score,
    /// so their events always carry [`ScoreOrigin::None`].
    Streamed,
}

/// One replayed record, delivered to a [`ReplayObserver`] in trace order.
///
/// Events cover *every* record — warm-up included (`seq` is the absolute
/// request index, so observers can skip `seq < warmup_len`) — and are
/// emitted exactly once per record regardless of replay engine: the
/// streaming loop emits them inline, the speculative batcher emits them
/// from its verified replay (never from speculation), so the stream is
/// bit-identical between the two engines whenever the reports are.
#[derive(Debug)]
pub struct ReplayEvent<'a> {
    /// Absolute request index (warm-up + measured, 0-based).
    pub seq: u64,
    /// The trace record.
    pub record: &'a TraceRecord,
    /// The real cache outcome (never a speculated one).
    pub outcome: &'a AccessOutcome,
    /// Score consumed by the access (misses of scored runs), if any.
    pub score: Option<f64>,
    /// Which path produced [`ReplayEvent::score`].
    pub origin: ScoreOrigin,
}

/// Consumer of the replay event stream.
///
/// This is the seam between *host replay* (how fast the simulator computes
/// outcomes — streaming scalar scoring vs the speculative batched kernel)
/// and *modeled semantics* (what each outcome means): an observer sees the
/// same per-record stream either way, so anything built on it — the
/// `icgmm-hw` cycle-approximate dataflow timing, custom telemetry — is
/// automatically bit-identical across replay engines.
pub trait ReplayObserver {
    /// One record replayed (trace order, exactly once per record).
    fn on_record(&mut self, ev: &ReplayEvent<'_>);

    /// The speculative batcher cut its window at absolute request index
    /// `seq` (a divergence forced re-speculation there). Telemetry only;
    /// never emitted by the streaming engine.
    fn on_cut(&mut self, seq: u64) {
        let _ = seq;
    }

    /// A predicted-miss run was split at absolute request index `seq`
    /// because a stored-score victim decision depended on a score still
    /// being prefetched. Telemetry only; never emitted by the streaming
    /// engine.
    fn on_run_split(&mut self, seq: u64) {
        let _ = seq;
    }
}

/// Result of one simulation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Hit/miss/bypass/eviction counters.
    pub stats: CacheStats,
    /// Sum of per-request latency, in µs.
    pub total_us: f64,
    /// Average per-request latency, in µs (the paper's Table 1 metric).
    pub avg_us: f64,
    /// Optional per-window miss-rate series.
    pub miss_series: Option<MissSeries>,
    /// Name of the eviction policy used.
    pub eviction: String,
    /// Name of the admission policy used.
    pub admission: String,
    /// Fault-injection and degradation counters (all-zero on fault-free
    /// runs; filled in by fault-armed callers).
    pub fault: crate::fault::FaultStats,
    /// Online-adaptation counters (all-zero on static runs; filled in by
    /// adapt-armed callers).
    pub adapt: crate::adapt::AdaptStats,
}

impl SimReport {
    /// Miss rate in percent (Fig. 6 units).
    pub fn miss_rate_pct(&self) -> f64 {
        self.stats.miss_rate() * 100.0
    }
}

/// Runs `records` through the cache with the given policies.
///
/// `score` (when provided) is consulted on every request via
/// [`ScoreSource::observe`] and asked for a score only on misses. Pass
/// `None` to run score-free baselines (LRU/FIFO/…).
///
/// `series_window`, when set, collects a per-window miss-rate series.
///
/// Sources whose [`ScoreSource::prefers_batching`] returns `true` ride
/// the speculative miss-window batcher (see the module docs); all others
/// take the streaming loop. The report is bit-identical either way.
pub fn simulate(
    records: &[TraceRecord],
    cache: &mut SetAssocCache,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    score: Option<&mut dyn ScoreSource>,
    latency: &LatencyModel,
    series_window: Option<u64>,
) -> SimReport {
    simulate_with_warmup(
        &[],
        records,
        cache,
        admission,
        eviction,
        score,
        latency,
        series_window,
    )
}

/// [`simulate`] preceded by a warm-up phase.
///
/// The paper trims the first 20 % of each trace from *measurement*, but the
/// cache, the policies and the Algorithm 1 clock still experience those
/// requests (the program was running). `warmup` is replayed through the
/// full access path with statistics discarded; `measured` follows with
/// statistics recorded. Sequence numbers are continuous across phases.
///
/// Runs whose score source [`ScoreSource::prefers_batching`] ride the
/// speculative miss-window batcher at the default window; score-free runs
/// and sources without a batched kernel use the streaming loop (identical
/// results either way — the routing is purely an economics decision).
#[allow(clippy::too_many_arguments)]
pub fn simulate_with_warmup(
    warmup: &[TraceRecord],
    measured: &[TraceRecord],
    cache: &mut SetAssocCache,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    score: Option<&mut dyn ScoreSource>,
    latency: &LatencyModel,
    series_window: Option<u64>,
) -> SimReport {
    if score.as_ref().is_some_and(|s| s.prefers_batching()) {
        crate::batch::simulate_batched_with_warmup(
            warmup,
            measured,
            cache,
            admission,
            eviction,
            score,
            latency,
            series_window,
        )
    } else {
        simulate_streaming_with_warmup(
            warmup,
            measured,
            cache,
            admission,
            eviction,
            score,
            latency,
            series_window,
        )
    }
}

/// [`simulate_streaming_with_warmup`] without a warm-up phase.
pub fn simulate_streaming(
    records: &[TraceRecord],
    cache: &mut SetAssocCache,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    score: Option<&mut dyn ScoreSource>,
    latency: &LatencyModel,
    series_window: Option<u64>,
) -> SimReport {
    simulate_streaming_with_warmup(
        &[],
        records,
        cache,
        admission,
        eviction,
        score,
        latency,
        series_window,
    )
}

/// The reference streaming replay loop: one request at a time, misses
/// scored synchronously.
///
/// Kept public as the ground truth the speculative batcher is property-
/// tested against, and for measuring the batcher's end-to-end speedup
/// (the `sim_batch` criterion group).
#[allow(clippy::too_many_arguments)]
pub fn simulate_streaming_with_warmup(
    warmup: &[TraceRecord],
    measured: &[TraceRecord],
    cache: &mut SetAssocCache,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    score: Option<&mut dyn ScoreSource>,
    latency: &LatencyModel,
    series_window: Option<u64>,
) -> SimReport {
    simulate_streaming_impl(
        RecordsRef::from_slice(warmup),
        RecordsRef::from_slice(measured),
        cache,
        admission,
        eviction,
        score,
        latency,
        series_window,
        None,
    )
}

/// [`simulate_streaming_with_warmup`] with a [`ReplayObserver`] receiving
/// the per-record event stream (warm-up events included, flagged by
/// `seq`). This is how the `icgmm-hw` dataflow model drives its timing
/// accounting off the functional replay without duplicating the loop.
#[allow(clippy::too_many_arguments)]
pub fn simulate_streaming_observed_with_warmup(
    warmup: &[TraceRecord],
    measured: &[TraceRecord],
    cache: &mut SetAssocCache,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    score: Option<&mut dyn ScoreSource>,
    latency: &LatencyModel,
    series_window: Option<u64>,
    observer: &mut dyn ReplayObserver,
) -> SimReport {
    simulate_streaming_impl(
        RecordsRef::from_slice(warmup),
        RecordsRef::from_slice(measured),
        cache,
        admission,
        eviction,
        score,
        latency,
        series_window,
        Some(observer),
    )
}

/// [`simulate_streaming_observed_with_warmup`] over [`RecordsRef`] views —
/// the zero-copy entry point the sharded engines replay their indexed
/// subtraces through. The loop itself is representation-agnostic, so an
/// indexed view replays bit-identically to the equivalent copied slice.
#[allow(clippy::too_many_arguments)]
pub fn simulate_streaming_observed_records(
    warmup: RecordsRef<'_>,
    measured: RecordsRef<'_>,
    cache: &mut SetAssocCache,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    score: Option<&mut dyn ScoreSource>,
    latency: &LatencyModel,
    series_window: Option<u64>,
    observer: &mut dyn ReplayObserver,
) -> SimReport {
    simulate_streaming_impl(
        warmup,
        measured,
        cache,
        admission,
        eviction,
        score,
        latency,
        series_window,
        Some(observer),
    )
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_streaming_impl(
    warmup: RecordsRef<'_>,
    measured: RecordsRef<'_>,
    cache: &mut SetAssocCache,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    mut score: Option<&mut dyn ScoreSource>,
    latency: &LatencyModel,
    series_window: Option<u64>,
    observer: Option<&mut dyn ReplayObserver>,
) -> SimReport {
    let mut acct = Accounting::new(warmup.len(), latency, series_window, observer);

    for (i, r) in warmup.iter().chain(measured.iter()).enumerate() {
        let (outcome, score_val) =
            streaming_step(r, i as u64, cache, admission, eviction, &mut score);
        let origin = if score_val.is_some() {
            ScoreOrigin::Streamed
        } else {
            ScoreOrigin::None
        };
        acct.record(i as u64, r, &outcome, score_val, origin);
    }

    acct.into_report(measured.len(), eviction, admission)
}

/// The canonical streaming replay step — observe, score the miss
/// synchronously, access. One implementation shared by the reference loop,
/// the speculative batcher's streaming spans, the serving shard workers
/// and (through the observed entry points) the `icgmm-hw` dataflow
/// warm-up, so the replay semantics cannot drift between engines: hits
/// bypass the policy engine (the hardware triggers the GMM on miss only),
/// and the score is computed with the Algorithm 1 clock exactly at the
/// record.
#[inline]
pub fn streaming_step(
    r: &TraceRecord,
    seq: u64,
    cache: &mut SetAssocCache,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    score: &mut Option<&mut dyn ScoreSource>,
) -> (AccessOutcome, Option<f64>) {
    if let Some(s) = score.as_deref_mut() {
        s.observe(r);
    }
    let score_val = if cache.lookup(r.page()).is_none() {
        score.as_deref_mut().map(|s| s.score_current())
    } else {
        None
    };
    let outcome = cache.access(r, seq, score_val, admission, eviction);
    (outcome, score_val)
}

/// Measurement bookkeeping shared by the streaming loop and every replay
/// arm of the speculative batcher — one implementation, so the two paths
/// cannot drift apart in what they account.
pub(crate) struct Accounting<'a, 'o> {
    warmup_len: usize,
    stats: CacheStats,
    series: Option<MissSeries>,
    total_us: f64,
    latency: &'a LatencyModel,
    observer: Option<&'o mut dyn ReplayObserver>,
}

impl<'a, 'o> Accounting<'a, 'o> {
    pub(crate) fn new(
        warmup_len: usize,
        latency: &'a LatencyModel,
        series_window: Option<u64>,
        observer: Option<&'o mut dyn ReplayObserver>,
    ) -> Self {
        Accounting {
            warmup_len,
            stats: CacheStats::default(),
            series: series_window.map(MissSeries::new),
            total_us: 0.0,
            latency,
            observer,
        }
    }

    /// Accounts one replayed request (`i` is the absolute request index;
    /// warm-up requests have full side effects and an observer event, but
    /// no statistics).
    pub(crate) fn record(
        &mut self,
        i: u64,
        r: &TraceRecord,
        outcome: &crate::AccessOutcome,
        score: Option<f64>,
        origin: ScoreOrigin,
    ) {
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_record(&ReplayEvent {
                seq: i,
                record: r,
                outcome,
                score,
                origin,
            });
        }
        if (i as usize) < self.warmup_len {
            return;
        }
        self.stats.record(r.op, outcome);
        self.total_us += self.latency.request_us(r.op, outcome);
        if let Some(ms) = self.series.as_mut() {
            ms.record(!outcome.is_hit());
        }
    }

    /// Forwards a window-cut event to the observer (see
    /// [`ReplayObserver::on_cut`]).
    pub(crate) fn cut(&mut self, seq: u64) {
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_cut(seq);
        }
    }

    /// Forwards a run-split event to the observer (see
    /// [`ReplayObserver::on_run_split`]).
    pub(crate) fn run_split(&mut self, seq: u64) {
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_run_split(seq);
        }
    }

    /// Finalizes the run into a [`SimReport`].
    pub(crate) fn into_report(
        self,
        measured_len: usize,
        eviction: &dyn EvictionPolicy,
        admission: &dyn AdmissionPolicy,
    ) -> SimReport {
        self.into_report_named(measured_len, eviction.name(), admission.name())
    }

    /// [`Accounting::into_report`] with the policy names passed directly —
    /// for the sharded merge, where the policies themselves were moved
    /// into the shard workers and only their names travel back.
    pub(crate) fn into_report_named(
        self,
        measured_len: usize,
        eviction: &str,
        admission: &str,
    ) -> SimReport {
        let avg_us = if measured_len == 0 {
            0.0
        } else {
            self.total_us / measured_len as f64
        };
        SimReport {
            stats: self.stats,
            total_us: self.total_us,
            avg_us,
            miss_series: self.series,
            eviction: eviction.to_string(),
            admission: admission.to_string(),
            fault: crate::fault::FaultStats::default(),
            adapt: crate::adapt::AdaptStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::policy::{AlwaysAdmit, LruPolicy, ThresholdAdmit};
    use crate::score::FnScore;
    use icgmm_trace::TraceRecord;

    fn small_cache() -> SetAssocCache {
        // 8 sets × 2 ways = 16 pages.
        SetAssocCache::new(CacheConfig {
            capacity_bytes: 16 * 4096,
            block_bytes: 4096,
            ways: 2,
        })
        .unwrap()
    }

    /// Hot set of 8 pages + an endless cold scan (3 cold per hot access,
    /// enough to flush a 2-way set between hot touches).
    fn scan_polluted_trace(n: usize) -> Vec<TraceRecord> {
        let mut v = Vec::with_capacity(n);
        let mut cold = 1000u64;
        for i in 0..n {
            if i % 4 == 0 {
                v.push(TraceRecord::read(((i / 4) as u64 % 8) << 12));
            } else {
                v.push(TraceRecord::read(cold << 12));
                cold += 1;
            }
        }
        v
    }

    #[test]
    fn admission_filter_beats_always_admit_under_scan() {
        let trace = scan_polluted_trace(4_000);
        let lat = LatencyModel::paper_tlc();

        let mut c1 = small_cache();
        let mut lru1 = LruPolicy::new(8, 2);
        let base = simulate(
            &trace,
            &mut c1,
            &mut AlwaysAdmit,
            &mut lru1,
            None,
            &lat,
            None,
        );

        // Oracle-ish score: hot pages score 1, cold scan pages 0.
        let mut src = FnScore::new(|page, _| if page < 8 { 1.0 } else { 0.0 });
        let mut c2 = small_cache();
        let mut lru2 = LruPolicy::new(8, 2);
        let mut admit = ThresholdAdmit::new(0.5);
        let smart = simulate(
            &trace,
            &mut c2,
            &mut admit,
            &mut lru2,
            Some(&mut src),
            &lat,
            None,
        );

        assert!(
            smart.stats.miss_rate() < base.stats.miss_rate(),
            "smart {} vs base {}",
            smart.stats.miss_rate(),
            base.stats.miss_rate()
        );
        assert!(smart.avg_us < base.avg_us);
        assert!(smart.stats.bypasses() > 0);
        assert_eq!(smart.admission, "gmm-threshold");
        assert_eq!(smart.eviction, "lru");
    }

    #[test]
    fn perfect_locality_is_all_hits_after_warmup() {
        let trace: Vec<TraceRecord> = (0..1000).map(|_| TraceRecord::read(0x3000)).collect();
        let mut c = small_cache();
        let mut lru = LruPolicy::new(8, 2);
        let rep = simulate(
            &trace,
            &mut c,
            &mut AlwaysAdmit,
            &mut lru,
            None,
            &LatencyModel::paper_tlc(),
            None,
        );
        assert_eq!(rep.stats.misses(), 1);
        // avg ≈ 1 µs + one 75 µs miss amortized.
        assert!((rep.avg_us - (999.0 + 75.0) / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn write_heavy_cyclic_trace_pays_writebacks() {
        // 32 pages cycled in a 16-page cache, all writes ⇒ every miss
        // eventually evicts a dirty block.
        let mut trace = Vec::new();
        for rep in 0..20 {
            for p in 0..32u64 {
                let _ = rep;
                trace.push(TraceRecord::write(p << 12));
            }
        }
        let mut c = small_cache();
        let mut lru = LruPolicy::new(8, 2);
        let rep = simulate(
            &trace,
            &mut c,
            &mut AlwaysAdmit,
            &mut lru,
            None,
            &LatencyModel::paper_tlc(),
            None,
        );
        assert!(rep.stats.dirty_evictions > 0);
        // Cyclic pattern through LRU: ~100% miss.
        assert!(rep.stats.miss_rate() > 0.9);
        assert!(rep.avg_us > 900.0, "avg {}", rep.avg_us);
    }

    #[test]
    fn miss_series_is_collected_when_requested() {
        let trace = scan_polluted_trace(1_000);
        let mut c = small_cache();
        let mut lru = LruPolicy::new(8, 2);
        let rep = simulate(
            &trace,
            &mut c,
            &mut AlwaysAdmit,
            &mut lru,
            None,
            &LatencyModel::paper_tlc(),
            Some(100),
        );
        let series = rep.miss_series.unwrap();
        assert_eq!(series.rates.len(), 10);
        assert!(series.rates.iter().all(|r| (0.0..=1.0).contains(r)));
    }

    #[test]
    fn warmup_phase_fills_the_cache_without_counting() {
        // 16 hot pages exactly fill the small cache; warming with them
        // makes the measured phase all-hits.
        let hot: Vec<TraceRecord> = (0..16u64).map(|p| TraceRecord::read(p << 12)).collect();
        let measured: Vec<TraceRecord> = (0..64u64)
            .map(|i| TraceRecord::read((i % 16) << 12))
            .collect();
        let mut c = small_cache();
        let mut lru = LruPolicy::new(8, 2);
        let rep = simulate_with_warmup(
            &hot,
            &measured,
            &mut c,
            &mut AlwaysAdmit,
            &mut lru,
            None,
            &LatencyModel::paper_tlc(),
            None,
        );
        assert_eq!(rep.stats.accesses(), 64, "warm-up must not be counted");
        assert_eq!(rep.stats.misses(), 0, "warm cache should serve all hits");
        assert_eq!(rep.avg_us, 1.0);
    }

    #[test]
    fn empty_trace_is_a_noop() {
        let mut c = small_cache();
        let mut lru = LruPolicy::new(8, 2);
        let rep = simulate(
            &[],
            &mut c,
            &mut AlwaysAdmit,
            &mut lru,
            None,
            &LatencyModel::paper_tlc(),
            None,
        );
        assert_eq!(rep.stats.accesses(), 0);
        assert_eq!(rep.avg_us, 0.0);
    }
}
