//! Trace-driven cache simulation: the glue that turns a trace, a policy
//! pair, an optional score source and a latency model into miss rates and
//! average access latency (the quantities of the paper's Fig. 6/Table 1).
//!
//! # Streaming vs speculative batched replay
//!
//! Two interchangeable replay engines produce bit-identical [`SimReport`]s:
//!
//! * [`simulate_streaming`] / [`simulate_streaming_with_warmup`] — the
//!   reference loop: observe each request, score each miss synchronously,
//!   access the cache. Simple, but every miss pays a scalar policy-engine
//!   inference.
//! * The speculative batcher ([`crate::WindowedSimulator`]) — classifies
//!   the next `W` requests against a shadow of the tag state, prefetches
//!   predicted-miss scores through [`ScoreSource::score_window`] in
//!   batched calls, then replays through the real cache. Any divergence
//!   between speculation and reality (mispredicted hit/miss, admission
//!   bypass, different eviction victim) is detected during replay, counted
//!   in [`crate::SpecStats`], and repaired by re-speculating from the
//!   divergent point — mispredicted misses fall back to the synchronous
//!   [`ScoreSource::score_current`], so results never drift.
//!
//! [`simulate`] and [`simulate_with_warmup`] are the default entry
//! points: runs whose score source reports
//! [`ScoreSource::prefers_batching`] (the GMM policy engine at
//! paper-scale K — not sources inheriting the default streaming
//! `score_window`) route through the batcher at
//! [`crate::DEFAULT_SPEC_WINDOW`] (tune the cap via
//! [`crate::WindowedSimulator::new`] — larger `W` amortizes more batching;
//! the *effective* depth adapts on its own, halving after divergent
//! windows and recovering after clean ones); score-free runs and
//! streaming-kernel sources use the streaming loop directly. Equivalence
//! across all policy pairs is enforced by property tests
//! (`tests/batch_equivalence.rs`).

use crate::cache::SetAssocCache;
use crate::latency::LatencyModel;
use crate::policy::{AdmissionPolicy, EvictionPolicy};
use crate::score::ScoreSource;
use crate::stats::{CacheStats, MissSeries};
use icgmm_trace::TraceRecord;
use serde::{Deserialize, Serialize};

/// Result of one simulation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Hit/miss/bypass/eviction counters.
    pub stats: CacheStats,
    /// Sum of per-request latency, in µs.
    pub total_us: f64,
    /// Average per-request latency, in µs (the paper's Table 1 metric).
    pub avg_us: f64,
    /// Optional per-window miss-rate series.
    pub miss_series: Option<MissSeries>,
    /// Name of the eviction policy used.
    pub eviction: String,
    /// Name of the admission policy used.
    pub admission: String,
}

impl SimReport {
    /// Miss rate in percent (Fig. 6 units).
    pub fn miss_rate_pct(&self) -> f64 {
        self.stats.miss_rate() * 100.0
    }
}

/// Runs `records` through the cache with the given policies.
///
/// `score` (when provided) is consulted on every request via
/// [`ScoreSource::observe`] and asked for a score only on misses. Pass
/// `None` to run score-free baselines (LRU/FIFO/…).
///
/// `series_window`, when set, collects a per-window miss-rate series.
///
/// Sources whose [`ScoreSource::prefers_batching`] returns `true` ride
/// the speculative miss-window batcher (see the module docs); all others
/// take the streaming loop. The report is bit-identical either way.
pub fn simulate(
    records: &[TraceRecord],
    cache: &mut SetAssocCache,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    score: Option<&mut dyn ScoreSource>,
    latency: &LatencyModel,
    series_window: Option<u64>,
) -> SimReport {
    simulate_with_warmup(
        &[],
        records,
        cache,
        admission,
        eviction,
        score,
        latency,
        series_window,
    )
}

/// [`simulate`] preceded by a warm-up phase.
///
/// The paper trims the first 20 % of each trace from *measurement*, but the
/// cache, the policies and the Algorithm 1 clock still experience those
/// requests (the program was running). `warmup` is replayed through the
/// full access path with statistics discarded; `measured` follows with
/// statistics recorded. Sequence numbers are continuous across phases.
///
/// Runs whose score source [`ScoreSource::prefers_batching`] ride the
/// speculative miss-window batcher at the default window; score-free runs
/// and sources without a batched kernel use the streaming loop (identical
/// results either way — the routing is purely an economics decision).
#[allow(clippy::too_many_arguments)]
pub fn simulate_with_warmup(
    warmup: &[TraceRecord],
    measured: &[TraceRecord],
    cache: &mut SetAssocCache,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    score: Option<&mut dyn ScoreSource>,
    latency: &LatencyModel,
    series_window: Option<u64>,
) -> SimReport {
    if score.as_ref().is_some_and(|s| s.prefers_batching()) {
        crate::batch::simulate_batched_with_warmup(
            warmup,
            measured,
            cache,
            admission,
            eviction,
            score,
            latency,
            series_window,
        )
    } else {
        simulate_streaming_with_warmup(
            warmup,
            measured,
            cache,
            admission,
            eviction,
            score,
            latency,
            series_window,
        )
    }
}

/// [`simulate_streaming_with_warmup`] without a warm-up phase.
pub fn simulate_streaming(
    records: &[TraceRecord],
    cache: &mut SetAssocCache,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    score: Option<&mut dyn ScoreSource>,
    latency: &LatencyModel,
    series_window: Option<u64>,
) -> SimReport {
    simulate_streaming_with_warmup(
        &[],
        records,
        cache,
        admission,
        eviction,
        score,
        latency,
        series_window,
    )
}

/// The reference streaming replay loop: one request at a time, misses
/// scored synchronously.
///
/// Kept public as the ground truth the speculative batcher is property-
/// tested against, and for measuring the batcher's end-to-end speedup
/// (the `sim_batch` criterion group).
#[allow(clippy::too_many_arguments)]
pub fn simulate_streaming_with_warmup(
    warmup: &[TraceRecord],
    measured: &[TraceRecord],
    cache: &mut SetAssocCache,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    mut score: Option<&mut dyn ScoreSource>,
    latency: &LatencyModel,
    series_window: Option<u64>,
) -> SimReport {
    let mut acct = Accounting::new(warmup.len(), latency, series_window);

    for (i, r) in warmup.iter().chain(measured).enumerate() {
        if let Some(s) = score.as_deref_mut() {
            s.observe(r);
        }
        // Hits bypass the policy engine: compute a score only if the page
        // is absent (the hardware triggers the GMM on miss).
        let score_val = if cache.lookup(r.page()).is_none() {
            score.as_deref_mut().map(|s| s.score_current())
        } else {
            None
        };
        let outcome = cache.access(r, i as u64, score_val, admission, eviction);
        acct.record(i as u64, r, &outcome);
    }

    acct.into_report(measured.len(), eviction, admission)
}

/// Measurement bookkeeping shared by the streaming loop and every replay
/// arm of the speculative batcher — one implementation, so the two paths
/// cannot drift apart in what they account.
pub(crate) struct Accounting<'a> {
    warmup_len: usize,
    stats: CacheStats,
    series: Option<MissSeries>,
    total_us: f64,
    latency: &'a LatencyModel,
}

impl<'a> Accounting<'a> {
    pub(crate) fn new(
        warmup_len: usize,
        latency: &'a LatencyModel,
        series_window: Option<u64>,
    ) -> Self {
        Accounting {
            warmup_len,
            stats: CacheStats::default(),
            series: series_window.map(MissSeries::new),
            total_us: 0.0,
            latency,
        }
    }

    /// Accounts one replayed request (`i` is the absolute request index;
    /// warm-up requests have full side effects but no accounting).
    pub(crate) fn record(&mut self, i: u64, r: &TraceRecord, outcome: &crate::AccessOutcome) {
        if (i as usize) < self.warmup_len {
            return;
        }
        self.stats.record(r.op, outcome);
        self.total_us += self.latency.request_us(r.op, outcome);
        if let Some(ms) = self.series.as_mut() {
            ms.record(!outcome.is_hit());
        }
    }

    /// Finalizes the run into a [`SimReport`].
    pub(crate) fn into_report(
        self,
        measured_len: usize,
        eviction: &dyn EvictionPolicy,
        admission: &dyn AdmissionPolicy,
    ) -> SimReport {
        let avg_us = if measured_len == 0 {
            0.0
        } else {
            self.total_us / measured_len as f64
        };
        SimReport {
            stats: self.stats,
            total_us: self.total_us,
            avg_us,
            miss_series: self.series,
            eviction: eviction.name().to_string(),
            admission: admission.name().to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::policy::{AlwaysAdmit, LruPolicy, ThresholdAdmit};
    use crate::score::FnScore;
    use icgmm_trace::TraceRecord;

    fn small_cache() -> SetAssocCache {
        // 8 sets × 2 ways = 16 pages.
        SetAssocCache::new(CacheConfig {
            capacity_bytes: 16 * 4096,
            block_bytes: 4096,
            ways: 2,
        })
        .unwrap()
    }

    /// Hot set of 8 pages + an endless cold scan (3 cold per hot access,
    /// enough to flush a 2-way set between hot touches).
    fn scan_polluted_trace(n: usize) -> Vec<TraceRecord> {
        let mut v = Vec::with_capacity(n);
        let mut cold = 1000u64;
        for i in 0..n {
            if i % 4 == 0 {
                v.push(TraceRecord::read(((i / 4) as u64 % 8) << 12));
            } else {
                v.push(TraceRecord::read(cold << 12));
                cold += 1;
            }
        }
        v
    }

    #[test]
    fn admission_filter_beats_always_admit_under_scan() {
        let trace = scan_polluted_trace(4_000);
        let lat = LatencyModel::paper_tlc();

        let mut c1 = small_cache();
        let mut lru1 = LruPolicy::new(8, 2);
        let base = simulate(
            &trace,
            &mut c1,
            &mut AlwaysAdmit,
            &mut lru1,
            None,
            &lat,
            None,
        );

        // Oracle-ish score: hot pages score 1, cold scan pages 0.
        let mut src = FnScore::new(|page, _| if page < 8 { 1.0 } else { 0.0 });
        let mut c2 = small_cache();
        let mut lru2 = LruPolicy::new(8, 2);
        let mut admit = ThresholdAdmit::new(0.5);
        let smart = simulate(
            &trace,
            &mut c2,
            &mut admit,
            &mut lru2,
            Some(&mut src),
            &lat,
            None,
        );

        assert!(
            smart.stats.miss_rate() < base.stats.miss_rate(),
            "smart {} vs base {}",
            smart.stats.miss_rate(),
            base.stats.miss_rate()
        );
        assert!(smart.avg_us < base.avg_us);
        assert!(smart.stats.bypasses() > 0);
        assert_eq!(smart.admission, "gmm-threshold");
        assert_eq!(smart.eviction, "lru");
    }

    #[test]
    fn perfect_locality_is_all_hits_after_warmup() {
        let trace: Vec<TraceRecord> = (0..1000).map(|_| TraceRecord::read(0x3000)).collect();
        let mut c = small_cache();
        let mut lru = LruPolicy::new(8, 2);
        let rep = simulate(
            &trace,
            &mut c,
            &mut AlwaysAdmit,
            &mut lru,
            None,
            &LatencyModel::paper_tlc(),
            None,
        );
        assert_eq!(rep.stats.misses(), 1);
        // avg ≈ 1 µs + one 75 µs miss amortized.
        assert!((rep.avg_us - (999.0 + 75.0) / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn write_heavy_cyclic_trace_pays_writebacks() {
        // 32 pages cycled in a 16-page cache, all writes ⇒ every miss
        // eventually evicts a dirty block.
        let mut trace = Vec::new();
        for rep in 0..20 {
            for p in 0..32u64 {
                let _ = rep;
                trace.push(TraceRecord::write(p << 12));
            }
        }
        let mut c = small_cache();
        let mut lru = LruPolicy::new(8, 2);
        let rep = simulate(
            &trace,
            &mut c,
            &mut AlwaysAdmit,
            &mut lru,
            None,
            &LatencyModel::paper_tlc(),
            None,
        );
        assert!(rep.stats.dirty_evictions > 0);
        // Cyclic pattern through LRU: ~100% miss.
        assert!(rep.stats.miss_rate() > 0.9);
        assert!(rep.avg_us > 900.0, "avg {}", rep.avg_us);
    }

    #[test]
    fn miss_series_is_collected_when_requested() {
        let trace = scan_polluted_trace(1_000);
        let mut c = small_cache();
        let mut lru = LruPolicy::new(8, 2);
        let rep = simulate(
            &trace,
            &mut c,
            &mut AlwaysAdmit,
            &mut lru,
            None,
            &LatencyModel::paper_tlc(),
            Some(100),
        );
        let series = rep.miss_series.unwrap();
        assert_eq!(series.rates.len(), 10);
        assert!(series.rates.iter().all(|r| (0.0..=1.0).contains(r)));
    }

    #[test]
    fn warmup_phase_fills_the_cache_without_counting() {
        // 16 hot pages exactly fill the small cache; warming with them
        // makes the measured phase all-hits.
        let hot: Vec<TraceRecord> = (0..16u64).map(|p| TraceRecord::read(p << 12)).collect();
        let measured: Vec<TraceRecord> = (0..64u64)
            .map(|i| TraceRecord::read((i % 16) << 12))
            .collect();
        let mut c = small_cache();
        let mut lru = LruPolicy::new(8, 2);
        let rep = simulate_with_warmup(
            &hot,
            &measured,
            &mut c,
            &mut AlwaysAdmit,
            &mut lru,
            None,
            &LatencyModel::paper_tlc(),
            None,
        );
        assert_eq!(rep.stats.accesses(), 64, "warm-up must not be counted");
        assert_eq!(rep.stats.misses(), 0, "warm cache should serve all hits");
        assert_eq!(rep.avg_us, 1.0);
    }

    #[test]
    fn empty_trace_is_a_noop() {
        let mut c = small_cache();
        let mut lru = LruPolicy::new(8, 2);
        let rep = simulate(
            &[],
            &mut c,
            &mut AlwaysAdmit,
            &mut lru,
            None,
            &LatencyModel::paper_tlc(),
            None,
        );
        assert_eq!(rep.stats.accesses(), 0);
        assert_eq!(rep.avg_us, 0.0);
    }
}
