//! Trace-driven cache simulation: the glue that turns a trace, a policy
//! pair, an optional score source and a latency model into miss rates and
//! average access latency (the quantities of the paper's Fig. 6/Table 1).

use crate::cache::SetAssocCache;
use crate::latency::LatencyModel;
use crate::policy::{AdmissionPolicy, EvictionPolicy};
use crate::score::ScoreSource;
use crate::stats::{CacheStats, MissSeries};
use icgmm_trace::TraceRecord;
use serde::{Deserialize, Serialize};

/// Result of one simulation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Hit/miss/bypass/eviction counters.
    pub stats: CacheStats,
    /// Sum of per-request latency, in µs.
    pub total_us: f64,
    /// Average per-request latency, in µs (the paper's Table 1 metric).
    pub avg_us: f64,
    /// Optional per-window miss-rate series.
    pub miss_series: Option<MissSeries>,
    /// Name of the eviction policy used.
    pub eviction: String,
    /// Name of the admission policy used.
    pub admission: String,
}

impl SimReport {
    /// Miss rate in percent (Fig. 6 units).
    pub fn miss_rate_pct(&self) -> f64 {
        self.stats.miss_rate() * 100.0
    }
}

/// Runs `records` through the cache with the given policies.
///
/// `score` (when provided) is consulted on every request via
/// [`ScoreSource::observe`] and asked for a score only on misses. Pass
/// `None` to run score-free baselines (LRU/FIFO/…).
///
/// `series_window`, when set, collects a per-window miss-rate series.
pub fn simulate(
    records: &[TraceRecord],
    cache: &mut SetAssocCache,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    score: Option<&mut dyn ScoreSource>,
    latency: &LatencyModel,
    series_window: Option<u64>,
) -> SimReport {
    simulate_with_warmup(
        &[],
        records,
        cache,
        admission,
        eviction,
        score,
        latency,
        series_window,
    )
}

/// [`simulate`] preceded by a warm-up phase.
///
/// The paper trims the first 20 % of each trace from *measurement*, but the
/// cache, the policies and the Algorithm 1 clock still experience those
/// requests (the program was running). `warmup` is replayed through the
/// full access path with statistics discarded; `measured` follows with
/// statistics recorded. Sequence numbers are continuous across phases.
#[allow(clippy::too_many_arguments)]
pub fn simulate_with_warmup(
    warmup: &[TraceRecord],
    measured: &[TraceRecord],
    cache: &mut SetAssocCache,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    mut score: Option<&mut dyn ScoreSource>,
    latency: &LatencyModel,
    series_window: Option<u64>,
) -> SimReport {
    let mut stats = CacheStats::default();
    let mut series = series_window.map(MissSeries::new);
    let mut total_us = 0.0f64;

    for (i, r) in warmup.iter().chain(measured).enumerate() {
        if let Some(s) = score.as_deref_mut() {
            s.observe(r);
        }
        // Hits bypass the policy engine: compute a score only if the page
        // is absent (the hardware triggers the GMM on miss).
        let score_val = if cache.lookup(r.page()).is_none() {
            score.as_deref_mut().map(|s| s.score_current())
        } else {
            None
        };
        let outcome = cache.access(r, i as u64, score_val, admission, eviction);
        if i < warmup.len() {
            continue; // warm-up: full side effects, no accounting
        }
        stats.record(r.op, &outcome);
        total_us += latency.request_us(r.op, &outcome);
        if let Some(ms) = series.as_mut() {
            ms.record(!outcome.is_hit());
        }
    }

    let avg_us = if measured.is_empty() {
        0.0
    } else {
        total_us / measured.len() as f64
    };
    SimReport {
        stats,
        total_us,
        avg_us,
        miss_series: series,
        eviction: eviction.name().to_string(),
        admission: admission.name().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::policy::{AlwaysAdmit, LruPolicy, ThresholdAdmit};
    use crate::score::FnScore;
    use icgmm_trace::TraceRecord;

    fn small_cache() -> SetAssocCache {
        // 8 sets × 2 ways = 16 pages.
        SetAssocCache::new(CacheConfig {
            capacity_bytes: 16 * 4096,
            block_bytes: 4096,
            ways: 2,
        })
        .unwrap()
    }

    /// Hot set of 8 pages + an endless cold scan (3 cold per hot access,
    /// enough to flush a 2-way set between hot touches).
    fn scan_polluted_trace(n: usize) -> Vec<TraceRecord> {
        let mut v = Vec::with_capacity(n);
        let mut cold = 1000u64;
        for i in 0..n {
            if i % 4 == 0 {
                v.push(TraceRecord::read(((i / 4) as u64 % 8) << 12));
            } else {
                v.push(TraceRecord::read(cold << 12));
                cold += 1;
            }
        }
        v
    }

    #[test]
    fn admission_filter_beats_always_admit_under_scan() {
        let trace = scan_polluted_trace(4_000);
        let lat = LatencyModel::paper_tlc();

        let mut c1 = small_cache();
        let mut lru1 = LruPolicy::new(8, 2);
        let base = simulate(
            &trace,
            &mut c1,
            &mut AlwaysAdmit,
            &mut lru1,
            None,
            &lat,
            None,
        );

        // Oracle-ish score: hot pages score 1, cold scan pages 0.
        let mut src = FnScore::new(|page, _| if page < 8 { 1.0 } else { 0.0 });
        let mut c2 = small_cache();
        let mut lru2 = LruPolicy::new(8, 2);
        let mut admit = ThresholdAdmit::new(0.5);
        let smart = simulate(
            &trace,
            &mut c2,
            &mut admit,
            &mut lru2,
            Some(&mut src),
            &lat,
            None,
        );

        assert!(
            smart.stats.miss_rate() < base.stats.miss_rate(),
            "smart {} vs base {}",
            smart.stats.miss_rate(),
            base.stats.miss_rate()
        );
        assert!(smart.avg_us < base.avg_us);
        assert!(smart.stats.bypasses() > 0);
        assert_eq!(smart.admission, "gmm-threshold");
        assert_eq!(smart.eviction, "lru");
    }

    #[test]
    fn perfect_locality_is_all_hits_after_warmup() {
        let trace: Vec<TraceRecord> = (0..1000).map(|_| TraceRecord::read(0x3000)).collect();
        let mut c = small_cache();
        let mut lru = LruPolicy::new(8, 2);
        let rep = simulate(
            &trace,
            &mut c,
            &mut AlwaysAdmit,
            &mut lru,
            None,
            &LatencyModel::paper_tlc(),
            None,
        );
        assert_eq!(rep.stats.misses(), 1);
        // avg ≈ 1 µs + one 75 µs miss amortized.
        assert!((rep.avg_us - (999.0 + 75.0) / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn write_heavy_cyclic_trace_pays_writebacks() {
        // 32 pages cycled in a 16-page cache, all writes ⇒ every miss
        // eventually evicts a dirty block.
        let mut trace = Vec::new();
        for rep in 0..20 {
            for p in 0..32u64 {
                let _ = rep;
                trace.push(TraceRecord::write(p << 12));
            }
        }
        let mut c = small_cache();
        let mut lru = LruPolicy::new(8, 2);
        let rep = simulate(
            &trace,
            &mut c,
            &mut AlwaysAdmit,
            &mut lru,
            None,
            &LatencyModel::paper_tlc(),
            None,
        );
        assert!(rep.stats.dirty_evictions > 0);
        // Cyclic pattern through LRU: ~100% miss.
        assert!(rep.stats.miss_rate() > 0.9);
        assert!(rep.avg_us > 900.0, "avg {}", rep.avg_us);
    }

    #[test]
    fn miss_series_is_collected_when_requested() {
        let trace = scan_polluted_trace(1_000);
        let mut c = small_cache();
        let mut lru = LruPolicy::new(8, 2);
        let rep = simulate(
            &trace,
            &mut c,
            &mut AlwaysAdmit,
            &mut lru,
            None,
            &LatencyModel::paper_tlc(),
            Some(100),
        );
        let series = rep.miss_series.unwrap();
        assert_eq!(series.rates.len(), 10);
        assert!(series.rates.iter().all(|r| (0.0..=1.0).contains(r)));
    }

    #[test]
    fn warmup_phase_fills_the_cache_without_counting() {
        // 16 hot pages exactly fill the small cache; warming with them
        // makes the measured phase all-hits.
        let hot: Vec<TraceRecord> = (0..16u64).map(|p| TraceRecord::read(p << 12)).collect();
        let measured: Vec<TraceRecord> = (0..64u64)
            .map(|i| TraceRecord::read((i % 16) << 12))
            .collect();
        let mut c = small_cache();
        let mut lru = LruPolicy::new(8, 2);
        let rep = simulate_with_warmup(
            &hot,
            &measured,
            &mut c,
            &mut AlwaysAdmit,
            &mut lru,
            None,
            &LatencyModel::paper_tlc(),
            None,
        );
        assert_eq!(rep.stats.accesses(), 64, "warm-up must not be counted");
        assert_eq!(rep.stats.misses(), 0, "warm cache should serve all hits");
        assert_eq!(rep.avg_us, 1.0);
    }

    #[test]
    fn empty_trace_is_a_noop() {
        let mut c = small_cache();
        let mut lru = LruPolicy::new(8, 2);
        let rep = simulate(
            &[],
            &mut c,
            &mut AlwaysAdmit,
            &mut lru,
            None,
            &LatencyModel::paper_tlc(),
            None,
        );
        assert_eq!(rep.stats.accesses(), 0);
        assert_eq!(rep.avg_us, 0.0);
    }
}
