//! Speculative miss-window batching: the simulator-side consumer of
//! [`ScoreSource::score_window`].
//!
//! The streaming simulator scores every miss one at a time because the
//! admission decision needs the score synchronously. The hardware does not
//! work that way: the scoring pipeline streams a whole miss window
//! back-to-back under the Algorithm 1 clock, and PR 1's batched scoring
//! kernel is 4–5× cheaper per point than the scalar path. This module
//! closes the gap with *speculation*:
//!
//! 1. **Classify.** Requests are classified into predicted hits and
//!    predicted misses against a *shadow* of the cache tag state
//!    (snapshotted when speculation starts, then kept in lock-step
//!    incrementally: clean windows speculate exactly, divergent ones are
//!    repaired through an undo log in `O(window)` — never an `O(cache)`
//!    copy per window), advanced speculatively with an admit-all,
//!    invalid-way-first victim model. The victim model is *policy-aware*:
//!    the eviction policy names how it ranks victims through
//!    [`EvictionPolicy::shadow_victim_model`], and the shadow carries the
//!    per-slot metadata each model needs — recency for LRU, insertion
//!    order for FIFO, hit counts for LFU, and stored scores (with the LRU
//!    tie-break) for the paper's GMM score-table eviction.
//! 2. **Prefetch.** Each maximal run of predicted misses is pushed through
//!    [`ScoreSource::score_window`] in one batched call; predicted hits in
//!    between are observed individually (the Algorithm 1 clock counts every
//!    request, hits included, so observation order must match the trace
//!    exactly — this is why a window with interleaved hits batches per
//!    miss-run rather than in a single call). Stored-score victim
//!    prediction closes a loop here: a victim choice may depend on the
//!    score of a block inserted *earlier in the same run*, whose score is
//!    exactly what the pending prefetch will produce. Classification then
//!    **splits the run** at that record ([`SpecStats::run_splits`]), lets
//!    the prefetch land (filling the speculated inserts' shadow scores with
//!    the very values the real policy will store), and resumes with the
//!    dependency resolved — so even back-to-back conflict misses under
//!    `gmm-score` eviction speculate exactly, at a batch granularity of
//!    roughly one set-conflict round trip.
//!
//!    When the previous window's replay was miss-heavy (≥ 1-in-
//!    [`DENSE_MISS_FRACTION_DIV`] records missed), the next window is
//!    scored **densely** instead: one batched call covers the *whole*
//!    window upfront, predicted hits included — exactly how the hardware
//!    pipeline streams a full window through the scoring engine. A hit's
//!    score the streaming path would never compute costs one batched
//!    point (~5× cheaper than a scalar score), so the trade wins whenever
//!    misses clear the kernel cost ratio; it also hands classification
//!    every score before it starts (no pending scores, no run splits) and
//!    turns stale-predicted-hit fallbacks into free positional lookups.
//!    Scores are pure functions of observation position, so the extra
//!    points change nothing downstream; a cut in a dense window leaves an
//!    already-observed scored overhang that the following windows consume
//!    (they stay dense until it drains — those records must not be
//!    re-observed).
//! 3. **Replay.** Classification and replay are interleaved per run: as
//!    soon as a run's type flips (or a split forces it), the pending run is
//!    replayed through the *real* cache and policies, consuming prefetched
//!    scores at actual misses. Scores depend only on observation position,
//!    never on the hit/miss outcome, so every prefetched score is
//!    bit-identical to what the streaming path would have computed at the
//!    same position — and the replay's ground truth (every inserted
//!    block's score, insertion time, hit count) feeds the shadow metadata
//!    that classifies the *next* run.
//! 4. **Diverge & recover.** Every mismatch between a replayed outcome
//!    and the speculation is detected and counted — none is silent:
//!    * an **admission bypass** where an insert was speculated is
//!      *tolerated*: the window continues at full depth (this is the
//!      common divergence under the paper's threshold filter, and the one
//!      worth keeping cheap), leaving the speculated page in the shadow
//!      as a **phantom**. A phantom's stored-score metadata is dropped to
//!      *unknown* (the slot really holds an older block whose score the
//!      shadow can no longer vouch for), so score-ranked victim prediction
//!      stays conservative around it. Every decision the phantom could
//!      skew is still verified record-by-record at replay, and the first
//!      cut it causes heals it (`apply_real` writes ground truth back);
//!    * every other mismatch — a predicted hit that missed, a predicted
//!      miss that hit, an unpredicted eviction victim — **cuts** the
//!      window: the undo log rolls the shadow (tags *and* per-slot policy
//!      metadata) back along its own timeline to the divergent record, the
//!      real outcomes replayed since are re-applied, and speculation
//!      restarts from the divergent point. A predicted hit that actually
//!      misses falls back to a synchronous
//!      [`ScoreSource::score_current`] (its observation just happened, so
//!      the clock is exactly right — bit-identical to streaming).
//!
//! # Why this stays exact
//!
//! Replay never trusts a prediction: every record's hit/miss status comes
//! from the *real* cache lookup, every admission/eviction decision runs
//! through the *real* policies, and every score consumed is positionally
//! exact (scores depend only on observation order, which speculation
//! never changes). Predictions only decide what gets *prefetched* — a
//! stale predicted hit that misses takes the synchronous fallback (one
//! [`SpecStats::sync_scores`] per [`SpecStats::pred_hit_missed`], always
//! equal), a stale predicted miss that hits wastes one prefetched score.
//! The shadow is thus a performance artifact, not a correctness one:
//! phantoms degrade prediction quality, never results.
//!
//! # The policy-aware shadow and what still diverges
//!
//! Earlier revisions predicted victims with a hardcoded LRU model, so
//! `gmm-score` eviction — whose victims are ranked by stored score —
//! diverged on essentially every conflict miss, the adaptive depth
//! collapsed to its floor, and the paper's GmmEvictionOnly /
//! GmmCachingEviction modes lost batching exactly on the miss-heavy traces
//! where it matters. The policy-aware shadow removes that storm: the
//! replay already learns every inserted block's score, so victims among
//! previously-replayed blocks are fully predictable, and within-window
//! insertions are covered by run splitting (step 2). What remains
//! divergence-prone is attributed per cause in [`SpecStats`]:
//! admission bypasses (tolerated, [`SpecStats::admission_divergences`]),
//! hit/miss misclassification downstream of phantoms
//! ([`SpecStats::class_divergences`]), and victim mismatches
//! ([`SpecStats::victim_divergences`]) — now only from genuinely
//! unpredictable policies (Random, Belady keep the default recency model
//! and simply cut) or from sets whose metadata a phantom or a warm,
//! never-observed block has poisoned.
//!
//! # Adaptive depth and the mode probe
//!
//! A cut discards the rest of the pending run's classification, so
//! divergence-heavy phases (bypass storms under a tight admission filter,
//! Random/Belady victims) would waste lookahead on every cut. The
//! simulator therefore halves its effective window after a divergent
//! window and doubles it after a clean one (clamped to
//! [`SpecParams::min_window`, `SpecParams::window`]), so divergence-heavy
//! phases degrade gracefully toward streaming while predictable phases
//! ride the full configured depth.
//!
//! Batching also cannot pay for itself when there is almost nothing to
//! batch: a window whose replay misses fewer than 1-in-
//! [`SpecParams::stream_miss_fraction_div`] records flips the simulator
//! into plain streaming for [`STREAM_SPAN_WINDOWS`] windows' worth of
//! requests, after which it re-snapshots the shadow and probes speculation
//! again. Hit-dominated phases thus run at streaming speed (no lookahead
//! at all), miss-heavy phases ride the batched kernel, and the probe cost
//! is one classification pass per span. Streaming spans still feed the
//! per-slot policy metadata (each outcome and consumed score is applied as
//! ground truth), so speculation resumes with a warm victim model.
//!
//! The result is bit-identical to [`crate::simulate_streaming_with_warmup`]
//! — enforced by the property tests in `tests/batch_equivalence.rs` across
//! all policy pairs, which additionally pin *zero* victim divergence for
//! the predictable policies (LRU, FIFO, LFU, gmm-score) on bypass-free
//! traces — while miss-heavy windows ride the batched kernel.

use crate::cache::{AccessOutcome, BlockState, SetAssocCache};
use crate::fault::FaultStats;
use crate::latency::LatencyModel;
use crate::policy::{AdmissionPolicy, EvictionPolicy, ShadowVictimModel};
use crate::score::ScoreSource;
use crate::sim::{
    simulate_streaming_impl, streaming_step, Accounting, ReplayObserver, ScoreOrigin, SimReport,
};
use crate::view::RecordsRef;
use icgmm_trace::{PageIndex, TraceRecord};
use serde::{Deserialize, Serialize};

/// Default speculation window, in requests.
///
/// Large enough that a miss-heavy window amortizes one shadow sync and one
/// batched scoring call over thousands of requests; small enough that a
/// divergence (which discards the rest of the window's speculation) stays
/// cheap.
pub const DEFAULT_SPEC_WINDOW: usize = 4096;

/// Default floor of the adaptive window shrink (see the module docs):
/// after a divergence the effective window halves, but never below this
/// (or below the configured window, if smaller). Kept small: in a
/// divergence storm batching is lost regardless, so the floor mostly
/// bounds how much lookahead classification each cut can waste.
pub const MIN_SPEC_WINDOW: usize = 16;

/// Default hit-dominance threshold of the mode probe: a speculative window
/// whose replay misses fewer than 1-in-8 records flips the simulator into
/// plain streaming (scoring so few misses cannot repay per-request
/// lookahead), for [`STREAM_SPAN_WINDOWS`] × window records before probing
/// again.
pub const STREAM_MISS_FRACTION_DIV: usize = 8;

/// How many windows' worth of *observed evidence* each streaming span
/// covers before the simulator re-snapshots the shadow and probes
/// speculation again (the span is proportional to the window that
/// triggered it, so thin evidence cannot disable batching for long).
pub const STREAM_SPAN_WINDOWS: usize = 8;

/// Minimum records a window must have replayed (cleanly) before its miss
/// fraction is trusted as a mode-probe signal; windows shorter than this
/// (post-divergence shrink remnants, phase-boundary tails) never flip the
/// simulator into streaming.
pub const MIN_PROBE_EVIDENCE: usize = 256;

/// Dense-scoring threshold: a speculation window is scored *densely* (the
/// whole window — predicted hits included — in one batched call, before
/// classification) when the previous window's replay missed at least
/// 1-in-this-many records. Scoring a hit the streaming path would skip
/// costs one batched-kernel point (~5× cheaper than a scalar score), so
/// dense mode wins whenever the miss fraction clears roughly the
/// batched/scalar cost ratio; below it, per-miss-run sparse prefetching
/// wins. Results are identical either way — scores are pure functions of
/// observation position.
pub const DENSE_MISS_FRACTION_DIV: usize = 4;

/// Tuning knobs of the speculative batcher. Results are bit-identical to
/// streaming at *any* setting — these trade lookahead cost against
/// batching opportunity, nothing else.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecParams {
    /// Speculation depth `W`, in requests (the cap of the adaptive
    /// window). Must be `>= 1`.
    pub window: usize,
    /// Floor of the adaptive shrink: after a divergent window the
    /// effective depth halves, but never below `min(min_window, window)`.
    /// Must be `>= 1`.
    pub min_window: usize,
    /// Mode-probe hit-dominance divisor: a cleanly replayed window whose
    /// misses × this value stay below its length flips the simulator into
    /// plain streaming for a span (larger values stream less readily).
    /// Must be `>= 1`.
    pub stream_miss_fraction_div: usize,
}

impl Default for SpecParams {
    fn default() -> Self {
        SpecParams {
            window: DEFAULT_SPEC_WINDOW,
            min_window: MIN_SPEC_WINDOW,
            stream_miss_fraction_div: STREAM_MISS_FRACTION_DIV,
        }
    }
}

impl SpecParams {
    /// `SpecParams` with the default floor and probe threshold.
    pub fn with_window(window: usize) -> Self {
        SpecParams {
            window,
            ..SpecParams::default()
        }
    }

    /// Panics with a descriptive message on an invalid parameter set (the
    /// config-level validation in `icgmm-core` reports the same conditions
    /// as recoverable errors before they can reach this point).
    fn assert_valid(&self) {
        assert!(self.window > 0, "speculation window must be >= 1");
        assert!(self.min_window > 0, "speculation window floor must be >= 1");
        assert!(
            self.stream_miss_fraction_div > 0,
            "stream_miss_fraction_div must be >= 1"
        );
    }
}

/// Speculation telemetry for one [`WindowedSimulator::run`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecStats {
    /// Speculation windows launched (including restarts after divergence).
    pub windows: u64,
    /// Batched [`ScoreSource::score_window`] calls issued.
    pub batch_calls: u64,
    /// Scores prefetched through the batched calls.
    pub batched_scores: u64,
    /// Synchronous [`ScoreSource::score_current`] fallbacks — one per
    /// [`SpecStats::pred_hit_missed`] *in sparsely scored windows* (the
    /// only stale predicted hits are pages a tolerated bypass left wrongly
    /// resident in the shadow); densely scored windows already hold the
    /// positionally exact score and need no fallback, so `sync_scores <=
    /// pred_hit_missed` overall (see the exactness invariant, module
    /// docs).
    pub sync_scores: u64,
    /// Predicted hit, replay missed (falls back to a synchronous score
    /// with the clock exactly at the record — bit-identical).
    pub pred_hit_missed: u64,
    /// Predicted miss, replay hit — a stale prediction downstream of a
    /// divergence; its prefetched score goes unused.
    pub pred_miss_hit: u64,
    /// Speculated an insertion, the admission policy bypassed — tolerated
    /// without cutting the window (the speculated page stays in the
    /// shadow as a *phantom* until a real outcome heals it; see the
    /// module docs).
    pub admission_divergences: u64,
    /// Insertion confirmed but the real eviction victim differed from the
    /// shadow's prediction. With the policy-aware victim models this is
    /// zero for LRU/FIFO/LFU/gmm-score on bypass-free traces (property-
    /// tested); residual counts attribute to phantoms, warm-start blocks
    /// the shadow never observed, or unpredictable policies
    /// (Random/Belady).
    pub victim_divergences: u64,
    /// Batched miss runs cut short by classification because a stored-
    /// score victim decision depended on a score still being prefetched
    /// (the within-window dependency of the policy-aware shadow). Each
    /// split costs one smaller batch call, never a divergence. Densely
    /// scored windows never split — every score is prefetched before
    /// classification begins.
    pub run_splits: u64,
    /// Windows scored densely (the whole window in one batched call,
    /// predicted hits included — see [`DENSE_MISS_FRACTION_DIV`]).
    /// [`SpecStats::batched_scores`] counts those hit-position scores too,
    /// mirroring the hardware pipeline streaming a full window through
    /// the scoring engine.
    pub dense_windows: u64,
    /// Times the adaptive depth halved after a divergent window.
    pub window_shrinks: u64,
    /// Records processed in plain streaming mode (hit-dominated phases,
    /// where lookahead cannot pay for itself — see the mode probe).
    pub streamed_records: u64,
    /// Scores computed synchronously inside streaming spans.
    pub streamed_scores: u64,
}

impl SpecStats {
    /// Total divergence events.
    pub fn divergences(&self) -> u64 {
        self.class_divergences() + self.admission_divergences + self.victim_divergences
    }

    /// Hit/miss misclassification divergences (predicted hit that missed
    /// plus predicted miss that hit) — the residue of tolerated phantoms.
    pub fn class_divergences(&self) -> u64 {
        self.pred_hit_missed + self.pred_miss_hit
    }

    /// Total scores this run computed through any path — batched
    /// prefetches (speculated extras included), synchronous fallbacks and
    /// streaming-span scores. Matches the policy engine's own inference
    /// counter for batched runs.
    pub fn scores_computed(&self) -> u64 {
        self.batched_scores + self.sync_scores + self.streamed_scores
    }

    /// Field-wise accumulation of another run's telemetry — the
    /// deterministic merge used by [`crate::ShardedSimulator`] (shards are
    /// summed in shard-index order; all counters are integers, so the
    /// merged value is independent of thread scheduling).
    pub fn merge(&mut self, other: &SpecStats) {
        self.windows += other.windows;
        self.batch_calls += other.batch_calls;
        self.batched_scores += other.batched_scores;
        self.sync_scores += other.sync_scores;
        self.pred_hit_missed += other.pred_hit_missed;
        self.pred_miss_hit += other.pred_miss_hit;
        self.admission_divergences += other.admission_divergences;
        self.victim_divergences += other.victim_divergences;
        self.run_splits += other.run_splits;
        self.dense_windows += other.dense_windows;
        self.window_shrinks += other.window_shrinks;
        self.streamed_records += other.streamed_records;
        self.streamed_scores += other.streamed_scores;
    }

    /// Fraction of scores that were produced by batched calls.
    pub fn batched_fraction(&self) -> f64 {
        let total = self.batched_scores + self.sync_scores + self.streamed_scores;
        if total == 0 {
            0.0
        } else {
            self.batched_scores as f64 / total as f64
        }
    }
}

/// Per-record speculation outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pred {
    /// The shadow found the page resident.
    Hit,
    /// The shadow missed; an admit was speculated into `slot` (the flat
    /// tag-array index), evicting `evicts` (the page the shadow displaced,
    /// `None` when an invalid way absorbed the insert).
    Miss {
        slot: usize,
        evicts: Option<PageIndex>,
    },
}

/// One record's classification attempt.
enum Classified {
    /// Classified (and the speculated transition applied to the shadow).
    Pred(Pred),
    /// Not classified: the record touches a slot whose stored score the
    /// pending miss run has not prefetched yet. The caller must flush
    /// (prefetch + replay) the pending run — which fills those scores
    /// with the exact values the real policy will store — and retry.
    /// Guaranteed to make progress: pending scores exist only while a
    /// classified-but-unreplayed miss run does. Flushing *before* the
    /// record is classified also keeps a crucial undo-log invariant: no
    /// entry ever snapshots a [`ScoreState::Pending`] slot, so a rollback
    /// can never resurrect a pending marker whose fill already landed.
    /// `split` is `true` only when the flush cuts a miss run short (a
    /// victim decision mid-run); a predicted hit on a pending slot would
    /// have ended the run anyway and is not counted as a split.
    NeedFlush {
        /// Whether this flush split a miss run that would otherwise have
        /// continued (telemetry: [`SpecStats::run_splits`]).
        split: bool,
    },
}

/// How much the shadow knows about a slot's stored score (the metadata
/// behind [`ShadowVictimModel::StoredScore`] prediction).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum ScoreState {
    /// No reliable score: a warm-start block the shadow never saw
    /// inserted, or a phantom left by a tolerated bypass. Ranked as
    /// `-inf` in victim prediction — conservative: the slot is claimed
    /// first, and a wrong claim is caught (and healed) at replay.
    #[default]
    Unknown,
    /// Speculated insert whose score the current miss run's prefetch will
    /// produce; blocks score-ranked victim decisions until it lands.
    Pending,
    /// Exact stored score, bit-equal to the real policy's (ground truth
    /// from replay, a streaming span, or a landed prefetch).
    Known,
}

/// Per-slot replacement metadata mirrored by the shadow — the superset
/// every [`ShadowVictimModel`] draws from. Maintained in lock-step with
/// replay (speculatively during classification, from ground truth after
/// cuts and during streaming spans) and rolled back through the undo log
/// together with the tag state.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
struct SlotMeta {
    /// Last-touch stamp (shadow timeline; ordering matches the real
    /// policies' sequence numbers).
    last: u64,
    /// Insertion stamp (FIFO's rank; hits do not refresh it).
    inserted: u64,
    /// Accesses since insertion (LFU's rank: 1 on insert, +1 per hit).
    freq: u64,
    /// Stored score (gmm-score's rank); meaningful iff `score_state` is
    /// [`ScoreState::Known`].
    score: f64,
    /// Reliability of `score`.
    score_state: ScoreState,
}

/// One reversible shadow mutation, tagged with the window-record index
/// that caused it. Rolling the log back past a divergence restores the
/// shadow — tags *and* per-slot policy metadata — to the exact
/// pre-speculation state in `O(window)`: the full tag array is copied once
/// per [`WindowedSimulator::run`], never per window, so divergence repair
/// stays cheap even on multi-MiB caches.
#[derive(Clone, Copy, Debug)]
struct UndoEntry {
    idx: usize,
    slot: usize,
    block: BlockState,
    meta: SlotMeta,
}

/// The speculative miss-window batching simulator.
///
/// Reusable across runs: internal buffers (shadow tag state, predictions,
/// prefetched scores) are recycled, so a sweep driver can allocate one
/// `WindowedSimulator` and call [`WindowedSimulator::run`] per
/// configuration point.
#[derive(Clone, Debug)]
pub struct WindowedSimulator {
    params: SpecParams,
    model: ShadowVictimModel,
    shadow: Vec<BlockState>,
    meta: Vec<SlotMeta>,
    touch: u64,
    pred: Vec<Pred>,
    scores: Vec<f64>,
    /// For each prefetched score in `scores`, the 1-based ordinal of the
    /// [`ScoreSource::score_window`] call that produced it — the batch
    /// attribution the replay-event stream reports through
    /// [`ScoreOrigin::Batched`]. Maintained in lock-step with `scores`
    /// (filled at prefetch, slid with the dense overhang).
    score_batch: Vec<u64>,
    /// Whether the current window is densely scored (whole window
    /// prefetched upfront, hits included).
    dense: bool,
    /// Scored-ahead overhang: `scores[0..horizon]` hold positionally
    /// exact scores for the next `horizon` records from the current
    /// replay position — the already-observed suffix a cut left behind in
    /// a dense window. While it is non-empty the simulator must keep
    /// scoring densely (those records were observed; re-observing them
    /// would corrupt the Algorithm 1 clock) and may not stream.
    horizon: usize,
    undo: Vec<UndoEntry>,
    /// `(window record index, slot)` of speculated inserts in the current
    /// un-prefetched miss run, awaiting their scores.
    pending_fills: Vec<(usize, usize)>,
    /// Reusable gather scratch for [`ScoreSource::score_window`] calls on
    /// indexed (non-contiguous) record views — `O(window)` bounded, and a
    /// no-op borrow for contiguous slices (see [`RecordsRef::contiguous`]).
    gather: Vec<TraceRecord>,
    outcome_buf: Vec<AccessOutcome>,
    spec: SpecStats,
    /// Armed circuit breaker: `(storm windows, cooldown records)`. `None`
    /// (the default) leaves every code path exactly as without a breaker.
    breaker: Option<(u32, u32)>,
    /// Breaker telemetry of the most recent run (trips, streamed records).
    fault: FaultStats,
    /// Adaptive-mode state carried across chunked continuations
    /// ([`WindowedSimulator::run_observed_from`] with `seq_base > 0`):
    /// the window depth, dense/sparse evidence, any unfinished streaming
    /// span and the breaker's divergence streak. Outcomes are invariant
    /// to all of it (the batcher's mode invariance), but resetting it per
    /// chunk would make a chunked replay re-probe and re-speculate at
    /// every chunk boundary — a hit-dominated trace served in chunks
    /// would pay dense-scoring costs the uninterrupted run never pays.
    cont: ContState,
}

/// See [`WindowedSimulator::cont`].
#[derive(Clone, Copy, Debug)]
struct ContState {
    depth: usize,
    dense_next: bool,
    stream_pending: usize,
    div_streak: u32,
    breaker_cooling: bool,
}

impl ContState {
    fn fresh(params: &SpecParams) -> Self {
        ContState {
            depth: params.window,
            // Dense scoring needs miss-fraction evidence; the first
            // window starts sparse and every window's replay updates the
            // estimate.
            dense_next: false,
            stream_pending: 0,
            div_streak: 0,
            breaker_cooling: false,
        }
    }
}

impl Default for WindowedSimulator {
    fn default() -> Self {
        WindowedSimulator::with_params(SpecParams::default())
    }
}

impl WindowedSimulator {
    /// Creates a simulator speculating `window` requests ahead, with the
    /// default adaptive floor and mode-probe threshold.
    ///
    /// # Panics
    ///
    /// Panics when `window == 0`.
    pub fn new(window: usize) -> Self {
        WindowedSimulator::with_params(SpecParams::with_window(window))
    }

    /// Creates a simulator with explicit [`SpecParams`].
    ///
    /// # Panics
    ///
    /// Panics when any parameter is zero.
    pub fn with_params(params: SpecParams) -> Self {
        params.assert_valid();
        WindowedSimulator {
            cont: ContState::fresh(&params),
            params,
            model: ShadowVictimModel::default(),
            shadow: Vec::new(),
            meta: Vec::new(),
            touch: 0,
            pred: Vec::new(),
            scores: Vec::new(),
            score_batch: Vec::new(),
            dense: false,
            horizon: 0,
            undo: Vec::new(),
            pending_fills: Vec::new(),
            gather: Vec::new(),
            outcome_buf: Vec::new(),
            spec: SpecStats::default(),
            breaker: None,
            fault: FaultStats::default(),
        }
    }

    /// Arms the speculation circuit breaker: after `storm_windows`
    /// consecutive divergent windows the simulator demotes itself to the
    /// streaming loop for `cooldown_records` records (bit-identical by
    /// construction — streaming spans are already part of the engine),
    /// then re-arms speculation. `storm_windows == 0` disarms.
    ///
    /// This is the batched→streaming rung of the degradation ladder: a
    /// divergence storm (e.g. a scorer gone non-finite thrashing victim
    /// predictions) stops burning rollback work and rides the reference
    /// loop until the storm passes.
    pub fn set_breaker(&mut self, storm_windows: u32, cooldown_records: u32) {
        self.breaker = if storm_windows == 0 || cooldown_records == 0 {
            None
        } else {
            Some((storm_windows, cooldown_records))
        };
    }

    /// Breaker telemetry of the most recent [`WindowedSimulator::run`]
    /// (all-zero when the breaker is disarmed or never tripped).
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault
    }

    /// The speculation depth `W`.
    pub fn window(&self) -> usize {
        self.params.window
    }

    /// The full parameter set.
    pub fn params(&self) -> &SpecParams {
        &self.params
    }

    /// Telemetry of the most recent [`WindowedSimulator::run`].
    pub fn spec_stats(&self) -> &SpecStats {
        &self.spec
    }

    /// Batched counterpart of [`crate::simulate_streaming_with_warmup`]:
    /// same arguments, bit-identical [`SimReport`].
    ///
    /// Without a score source there is nothing to batch, so the call
    /// delegates to the streaming loop unchanged (score-free baselines pay
    /// zero speculation overhead).
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &mut self,
        warmup: &[TraceRecord],
        measured: &[TraceRecord],
        cache: &mut SetAssocCache,
        admission: &mut dyn AdmissionPolicy,
        eviction: &mut dyn EvictionPolicy,
        score: Option<&mut dyn ScoreSource>,
        latency: &LatencyModel,
        series_window: Option<u64>,
    ) -> SimReport {
        self.run_impl(
            RecordsRef::from_slice(warmup),
            RecordsRef::from_slice(measured),
            0,
            cache,
            admission,
            eviction,
            score,
            latency,
            series_window,
            None,
        )
    }

    /// [`WindowedSimulator::run`] with a [`crate::ReplayObserver`]
    /// receiving the per-record replay-event stream (warm-up events
    /// included, flagged by `seq`; cut and run-split notifications ride
    /// along). Events are emitted from the *verified* replay only — never
    /// from speculation — so the stream an observer sees is bit-identical
    /// to the streaming engine's whenever the reports are. This is the
    /// hook the `icgmm-hw` dataflow model hangs its per-miss timing
    /// accounting on.
    #[allow(clippy::too_many_arguments)]
    pub fn run_observed(
        &mut self,
        warmup: &[TraceRecord],
        measured: &[TraceRecord],
        cache: &mut SetAssocCache,
        admission: &mut dyn AdmissionPolicy,
        eviction: &mut dyn EvictionPolicy,
        score: Option<&mut dyn ScoreSource>,
        latency: &LatencyModel,
        series_window: Option<u64>,
        observer: &mut dyn ReplayObserver,
    ) -> SimReport {
        self.run_impl(
            RecordsRef::from_slice(warmup),
            RecordsRef::from_slice(measured),
            0,
            cache,
            admission,
            eviction,
            score,
            latency,
            series_window,
            Some(observer),
        )
    }

    /// [`WindowedSimulator::run_observed`] over [`RecordsRef`] views — the
    /// zero-copy entry point the sharded engines replay their indexed
    /// subtraces through, in one uninterrupted call (so per-shard
    /// speculation telemetry stays exactly the single-threaded batcher's
    /// at one shard). The speculation machinery is representation-
    /// agnostic; only [`ScoreSource::score_window`] needs contiguity,
    /// which indexed views provide through a reusable `O(window)` gather
    /// buffer.
    #[allow(clippy::too_many_arguments)]
    pub fn run_observed_records(
        &mut self,
        warmup: RecordsRef<'_>,
        measured: RecordsRef<'_>,
        cache: &mut SetAssocCache,
        admission: &mut dyn AdmissionPolicy,
        eviction: &mut dyn EvictionPolicy,
        score: Option<&mut dyn ScoreSource>,
        latency: &LatencyModel,
        series_window: Option<u64>,
        observer: &mut dyn ReplayObserver,
    ) -> SimReport {
        self.run_impl(
            warmup,
            measured,
            0,
            cache,
            admission,
            eviction,
            score,
            latency,
            series_window,
            Some(observer),
        )
    }

    /// [`WindowedSimulator::run_observed`] for *chunked* replay: record
    /// sequence numbers start at `seq_base` instead of zero, and when
    /// `seq_base > 0` the shadow's slot metadata survives from the
    /// previous call — the chunk is treated as the continuation of one
    /// logical run over the same cache and policies. This is the serving
    /// workers' entry point: a shard worker drains its ingestion queue
    /// into chunks and replays each at speculation speed, with recency
    /// stamps, stored-score shadow metadata and the divergence bookkeeping
    /// all continuous across chunk boundaries. Outcomes are bit-identical
    /// to one uninterrupted run whatever the chunking (the batcher's
    /// window-boundary invariance, which chunk boundaries piggyback on);
    /// [`WindowedSimulator::spec_stats`] / `fault_stats` cover the last
    /// chunk only, so accumulate them per call.
    ///
    /// The caller owns phase handling: pass the chunk as `measured` and
    /// re-account outcomes downstream (the returned report covers just
    /// this chunk).
    #[allow(clippy::too_many_arguments)]
    pub fn run_observed_from(
        &mut self,
        seq_base: u64,
        chunk: &[TraceRecord],
        cache: &mut SetAssocCache,
        admission: &mut dyn AdmissionPolicy,
        eviction: &mut dyn EvictionPolicy,
        score: Option<&mut dyn ScoreSource>,
        latency: &LatencyModel,
        observer: &mut dyn ReplayObserver,
    ) -> SimReport {
        self.run_impl(
            RecordsRef::from_slice(&[]),
            RecordsRef::from_slice(chunk),
            seq_base,
            cache,
            admission,
            eviction,
            score,
            latency,
            None,
            Some(observer),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn run_impl(
        &mut self,
        warmup: RecordsRef<'_>,
        measured: RecordsRef<'_>,
        seq_base: u64,
        cache: &mut SetAssocCache,
        admission: &mut dyn AdmissionPolicy,
        eviction: &mut dyn EvictionPolicy,
        score: Option<&mut dyn ScoreSource>,
        latency: &LatencyModel,
        series_window: Option<u64>,
        observer: Option<&mut dyn ReplayObserver>,
    ) -> SimReport {
        self.spec = SpecStats::default();
        self.fault = FaultStats::default();
        let Some(score) = score else {
            return simulate_streaming_impl(
                warmup,
                measured,
                cache,
                admission,
                eviction,
                None,
                latency,
                series_window,
                observer,
            );
        };

        self.model = eviction.shadow_victim_model();
        let n_blocks = cache.config().num_blocks();
        // A chunked continuation (`seq_base > 0` with matching geometry)
        // keeps the shadow's slot metadata — the stored scores and stamps
        // it learned in earlier chunks still describe the same live cache
        // and policies — and the adaptive-mode state, so a chunk picks up
        // mid-streaming-span or at the learned window depth instead of
        // re-probing from scratch (see [`WindowedSimulator::cont`]).
        // Everything else starts fresh.
        if seq_base == 0 || self.meta.len() != n_blocks {
            self.meta.clear();
            self.meta.resize(n_blocks, SlotMeta::default());
            self.touch = 0;
            self.cont = ContState::fresh(&self.params);
        }
        self.horizon = 0;
        let mut dense_next = self.cont.dense_next;

        let mut acct = Accounting::new(warmup.len(), latency, series_window, observer);

        let n = warmup.len() + measured.len();
        let min_depth = self.params.min_window.min(self.params.window);
        let mut depth = self.cont.depth;
        let mut pos = 0usize;
        // Streaming records left before the next speculation probe, and
        // whether the shadow must be re-snapshotted (on entry, and after
        // every streaming span — the shadow did not see those requests).
        let mut stream_pending = self.cont.stream_pending;
        let mut need_sync = true;
        // Circuit-breaker state: consecutive divergent windows, and whether
        // the current streaming span is a breaker cooldown (vs a mode-probe
        // span).
        let mut div_streak = self.cont.div_streak;
        let mut breaker_cooling = self.cont.breaker_cooling;
        while pos < n {
            // Windows never straddle the warm-up/measured boundary so each
            // batched `score_window` call sees one contiguous slice.
            let (phase, phase_start) = if pos < warmup.len() {
                (warmup, 0)
            } else {
                (measured, warmup.len())
            };
            let local = pos - phase_start;
            if stream_pending > 0 {
                debug_assert_eq!(self.horizon, 0, "cannot stream over observed records");
                let take = stream_pending.min(phase.len() - local);
                self.stream_chunk(
                    phase.slice(local..local + take),
                    seq_base + pos as u64,
                    cache,
                    admission,
                    eviction,
                    score,
                    &mut acct,
                );
                pos += take;
                stream_pending -= take;
                if breaker_cooling {
                    self.fault.breaker_streamed += take as u64;
                }
                if stream_pending == 0 {
                    need_sync = true;
                    breaker_cooling = false;
                }
                continue;
            }
            if need_sync {
                self.shadow.clear();
                self.shadow.extend_from_slice(cache.blocks());
                need_sync = false;
            }
            let end = (local + depth).min(phase.len());
            // A non-empty overhang (records a dense cut already observed)
            // forces dense mode regardless of the miss estimate — their
            // scores are on hand and they must not be re-observed.
            self.dense = dense_next || self.horizon > 0;
            let (consumed, diverged, misses) = self.run_window(
                phase.slice(local..end),
                seq_base + pos as u64,
                cache,
                admission,
                eviction,
                score,
                &mut acct,
            );
            debug_assert!(consumed > 0, "window must make progress");
            pos += consumed;
            // Slide the scored-ahead overhang past the consumed records.
            if self.horizon > 0 {
                debug_assert!(consumed <= self.horizon);
                self.scores.copy_within(consumed..self.horizon, 0);
                self.score_batch.copy_within(consumed..self.horizon, 0);
                self.horizon -= consumed;
            }
            dense_next = misses as usize * DENSE_MISS_FRACTION_DIV >= consumed;
            // Adaptive depth: a cut wasted the rest of the window's
            // classification, so back off; a clean window earns it back.
            if diverged {
                if depth > min_depth {
                    depth = (depth / 2).max(min_depth);
                    self.spec.window_shrinks += 1;
                }
            } else {
                depth = (depth * 2).min(self.params.window);
            }
            // Mode probe: a hit-dominated window pays per-request
            // lookahead to batch almost nothing — switch to plain
            // streaming for a span, then probe again. Only a clean,
            // reasonably deep window counts as evidence, and the span is
            // proportional to it, so one post-shrink 16-record remnant
            // cannot turn batching off for tens of thousands of requests.
            if !diverged
                && self.horizon == 0
                && consumed >= MIN_PROBE_EVIDENCE.min(self.params.window)
                && misses as usize * self.params.stream_miss_fraction_div < consumed
            {
                stream_pending = STREAM_SPAN_WINDOWS * consumed;
            }
            // Circuit breaker: a storm of consecutive divergent windows
            // trips a streaming cooldown. A non-empty overhang blocks
            // streaming (those records were observed), so the streak keeps
            // accumulating and the trip fires once the overhang drains.
            if let Some((storm, cooldown)) = self.breaker {
                if diverged {
                    div_streak += 1;
                    if div_streak >= storm && self.horizon == 0 {
                        self.fault.breaker_trips += 1;
                        stream_pending = cooldown as usize;
                        breaker_cooling = true;
                        div_streak = 0;
                    }
                } else {
                    div_streak = 0;
                }
            }
        }
        self.cont = ContState {
            depth,
            dense_next,
            stream_pending,
            div_streak,
            breaker_cooling,
        };

        acct.into_report(measured.len(), eviction, admission)
    }

    /// Streams `chunk` through the real cache with synchronous scoring —
    /// the plain replay loop, used for hit-dominated spans where
    /// speculation cannot pay for itself. Bit-identical by construction.
    /// Every outcome (and consumed score) is applied to the shadow as
    /// ground truth, so the victim-model metadata stays warm for the next
    /// speculation probe.
    #[allow(clippy::too_many_arguments)]
    fn stream_chunk(
        &mut self,
        chunk: RecordsRef<'_>,
        base: u64,
        cache: &mut SetAssocCache,
        admission: &mut dyn AdmissionPolicy,
        eviction: &mut dyn EvictionPolicy,
        score: &mut dyn ScoreSource,
        acct: &mut Accounting<'_, '_>,
    ) {
        let mut score: Option<&mut dyn ScoreSource> = Some(score);
        for (i, r) in chunk.iter().enumerate() {
            let (outcome, sv) =
                streaming_step(r, base + i as u64, cache, admission, eviction, &mut score);
            let origin = if sv.is_some() {
                self.spec.streamed_scores += 1;
                ScoreOrigin::Streamed
            } else {
                ScoreOrigin::None
            };
            acct.record(base + i as u64, r, &outcome, sv, origin);
            self.apply_real(r, &outcome, sv, cache);
        }
        self.spec.streamed_records += chunk.len() as u64;
    }

    /// Speculates, prefetches and replays one window starting at absolute
    /// request index `base`. Returns how many records were fully replayed
    /// (the whole window, or the prefix up to and including a divergence),
    /// whether the window diverged, and how many replayed records missed
    /// (the mode probe's signal).
    ///
    /// Classification and replay are pipelined per run: records are
    /// classified in trace order, and as soon as the pending run ends —
    /// its type flips, a stored-score dependency splits it, or the window
    /// runs out — it is prefetched (miss runs) and replayed before
    /// classification continues, so the shadow metadata feeding later
    /// victim predictions is as fresh as the replay itself.
    #[allow(clippy::too_many_arguments)]
    fn run_window(
        &mut self,
        win: RecordsRef<'_>,
        base: u64,
        cache: &mut SetAssocCache,
        admission: &mut dyn AdmissionPolicy,
        eviction: &mut dyn EvictionPolicy,
        score: &mut dyn ScoreSource,
        acct: &mut Accounting<'_, '_>,
    ) -> (usize, bool, u64) {
        self.spec.windows += 1;
        let mut misses = 0u64;
        self.undo.clear();
        self.pred.clear();
        self.pending_fills.clear();
        if self.scores.len() < win.len().max(self.horizon) {
            self.scores.resize(win.len().max(self.horizon), 0.0);
            self.score_batch.resize(self.scores.len(), 0);
        }
        if self.dense {
            // Dense window: observe and score everything upfront, hits
            // included — one batched call, and every stored-score victim
            // decision during classification sees its operand immediately
            // (no pending scores, no run splits). Records inside the
            // overhang were already observed by a previous dense window.
            self.spec.dense_windows += 1;
            if self.horizon < win.len() {
                score.score_window(
                    win.slice(self.horizon..win.len())
                        .contiguous(&mut self.gather),
                    &mut self.scores[self.horizon..win.len()],
                );
                self.spec.batch_calls += 1;
                self.spec.batched_scores += (win.len() - self.horizon) as u64;
                self.score_batch[self.horizon..win.len()].fill(self.spec.batch_calls);
                self.horizon = win.len();
            }
        }

        // `k` = replay cursor (records below it are replayed), `pred.len()`
        // = classification cursor. Invariant: `[k, pred.len())` is the
        // pending run, all one type, except possibly its last record (a
        // just-classified run opener that triggered the flush).
        let mut k = 0usize;
        loop {
            let c = self.pred.len();
            if c == win.len() {
                if k < c {
                    if let Err(consumed) = self.replay_run(
                        win,
                        k,
                        c,
                        base,
                        cache,
                        admission,
                        eviction,
                        score,
                        acct,
                        &mut misses,
                    ) {
                        return (consumed, true, misses);
                    }
                }
                return (win.len(), false, misses);
            }
            match self.classify(c, win.get(c), cache) {
                Classified::Pred(p) => {
                    let boundary = c > k
                        && (matches!(self.pred[k], Pred::Miss { .. })
                            != matches!(p, Pred::Miss { .. }));
                    self.pred.push(p);
                    if boundary {
                        if let Err(consumed) = self.replay_run(
                            win,
                            k,
                            c,
                            base,
                            cache,
                            admission,
                            eviction,
                            score,
                            acct,
                            &mut misses,
                        ) {
                            return (consumed, true, misses);
                        }
                        k = c;
                    }
                }
                Classified::NeedFlush { split } => {
                    debug_assert!(
                        c > k && !self.pending_fills.is_empty(),
                        "flush requested with nothing pending"
                    );
                    if split {
                        self.spec.run_splits += 1;
                        acct.run_split(base + c as u64);
                    }
                    if let Err(consumed) = self.replay_run(
                        win,
                        k,
                        c,
                        base,
                        cache,
                        admission,
                        eviction,
                        score,
                        acct,
                        &mut misses,
                    ) {
                        return (consumed, true, misses);
                    }
                    k = c;
                    // `classify(c)` is retried next iteration with the
                    // pending scores now landed.
                }
            }
        }
    }

    /// Prefetches (miss runs) and replays the pending run `win[k..j]`.
    /// `Ok(())` on a clean replay; `Err(consumed)` when a divergence cut
    /// the window after consuming `consumed` records (shadow already
    /// rolled back and re-synced to ground truth).
    #[allow(clippy::too_many_arguments)]
    fn replay_run(
        &mut self,
        win: RecordsRef<'_>,
        k: usize,
        j: usize,
        base: u64,
        cache: &mut SetAssocCache,
        admission: &mut dyn AdmissionPolicy,
        eviction: &mut dyn EvictionPolicy,
        score: &mut dyn ScoreSource,
        acct: &mut Accounting<'_, '_>,
        misses: &mut u64,
    ) -> Result<(), usize> {
        debug_assert!(k < j && j <= win.len());
        if matches!(self.pred[k], Pred::Miss { .. }) {
            self.replay_miss_run(
                win, k, j, base, cache, admission, eviction, score, acct, misses,
            )
        } else {
            self.replay_hit_run(
                win, k, j, base, cache, admission, eviction, score, acct, misses,
            )
        }
    }

    /// Replays a predicted-miss run: one batched prefetch (sparse windows
    /// — dense windows prefetched everything upfront), then per-record
    /// verified replay.
    #[allow(clippy::too_many_arguments)]
    fn replay_miss_run(
        &mut self,
        win: RecordsRef<'_>,
        k: usize,
        j: usize,
        base: u64,
        cache: &mut SetAssocCache,
        admission: &mut dyn AdmissionPolicy,
        eviction: &mut dyn EvictionPolicy,
        score: &mut dyn ScoreSource,
        acct: &mut Accounting<'_, '_>,
        misses: &mut u64,
    ) -> Result<(), usize> {
        if !self.dense {
            score.score_window(
                win.slice(k..j).contiguous(&mut self.gather),
                &mut self.scores[k..j],
            );
            self.spec.batch_calls += 1;
            self.spec.batched_scores += (j - k) as u64;
            self.score_batch[k..j].fill(self.spec.batch_calls);
            // Land the prefetched scores in the shadow metadata of this
            // run's speculated inserts — the exact values the real policy
            // will store on admission, which is what makes later same-set
            // victim predictions exact. Fills belonging to a run opener
            // beyond `j` (its scores are not prefetched yet) stay pending.
            let mut i = 0;
            while i < self.pending_fills.len() {
                let (idx, slot) = self.pending_fills[i];
                if idx < j {
                    self.meta[slot].score = self.scores[idx];
                    self.meta[slot].score_state = ScoreState::Known;
                    self.pending_fills.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }

        let mut first_div: Option<usize> = None;
        for (off, r) in win.slice(k..j).iter().enumerate() {
            let t = k + off;
            let hit = cache.lookup(r.page()).is_some();
            *misses += u64::from(!hit);
            let sv = (!hit).then(|| self.scores[t]);
            let origin = if sv.is_some() {
                ScoreOrigin::Batched {
                    call: self.score_batch[t],
                }
            } else {
                ScoreOrigin::None
            };
            let outcome = cache.access(r, base + t as u64, sv, admission, eviction);
            acct.record(base + t as u64, r, &outcome, sv, origin);
            match first_div {
                None => {
                    let cut = if matches!(outcome, AccessOutcome::MissBypassed) {
                        // Admission divergence: the speculated insert did
                        // not happen, leaving a *phantom* resident in the
                        // shadow. Tolerating it (rather than cutting)
                        // keeps the window — and its batching — alive
                        // under bypass-heavy admission filters; every
                        // decision the phantom could skew is still
                        // verified at replay, and the first cut it causes
                        // clears it (`apply_real` writes the real state).
                        // Its stored-score metadata is dropped to Unknown:
                        // the slot really holds an older block whose score
                        // the shadow can no longer vouch for.
                        self.spec.admission_divergences += 1;
                        if let Pred::Miss { slot, .. } = self.pred[t] {
                            self.meta[slot].score_state = ScoreState::Unknown;
                        }
                        false
                    } else {
                        self.check_miss_divergence(t, &outcome)
                    };
                    if cut {
                        first_div = Some(t);
                        self.outcome_buf.clear();
                        self.outcome_buf.push(outcome);
                    }
                }
                Some(_) => {
                    // Stale prediction in the tail of a divergent run: the
                    // run still replays correctly (observations and scores
                    // are position-exact), the prefetched score just goes
                    // unused. Admission/victim mismatches past the first
                    // event are downstream consequences and are not
                    // re-counted.
                    if outcome.is_hit() {
                        self.spec.pred_miss_hit += 1;
                    }
                    self.outcome_buf.push(outcome);
                }
            }
        }
        if let Some(t0) = first_div {
            // Cut after the already-observed run: roll the shadow back to
            // the divergent record, replay the run tail's *real*
            // transitions (with their consumed scores) onto it, and let
            // the next window re-speculate from that exact state.
            self.roll_back(t0);
            let outcomes = std::mem::take(&mut self.outcome_buf);
            for (off, (r, oc)) in win.slice(t0..j).iter().zip(outcomes.iter()).enumerate() {
                let sv = Some(self.scores[t0 + off]);
                self.apply_real(r, oc, sv, cache);
            }
            self.outcome_buf = outcomes;
            acct.cut(base + t0 as u64);
            return Err(j);
        }
        Ok(())
    }

    /// Replays a predicted-hit run: per-record observation, synchronous
    /// fallback scoring on the (rare) stale prediction.
    #[allow(clippy::too_many_arguments)]
    fn replay_hit_run(
        &mut self,
        win: RecordsRef<'_>,
        k: usize,
        j: usize,
        base: u64,
        cache: &mut SetAssocCache,
        admission: &mut dyn AdmissionPolicy,
        eviction: &mut dyn EvictionPolicy,
        score: &mut dyn ScoreSource,
        acct: &mut Accounting<'_, '_>,
        misses: &mut u64,
    ) -> Result<(), usize> {
        for (off, r) in win.slice(k..j).iter().enumerate() {
            let t = k + off;
            if !self.dense {
                score.observe(r);
            }
            let hit = cache.lookup(r.page()).is_some();
            *misses += u64::from(!hit);
            let (sv, origin) = if hit {
                (None, ScoreOrigin::None)
            } else if self.dense {
                // Divergence: predicted hit actually missed — but the
                // dense prefetch already scored this position, so the
                // rescue is free (and positionally exact by the
                // `score_window` contract).
                (
                    Some(self.scores[t]),
                    ScoreOrigin::Batched {
                        call: self.score_batch[t],
                    },
                )
            } else {
                // Divergence: predicted hit actually missed. The
                // observation above just happened, so the clock is exactly
                // at this record — the synchronous score is bit-identical
                // to the streaming path's.
                self.spec.sync_scores += 1;
                (Some(score.score_current()), ScoreOrigin::SyncFallback)
            };
            let outcome = cache.access(r, base + t as u64, sv, admission, eviction);
            acct.record(base + t as u64, r, &outcome, sv, origin);
            if !hit {
                self.spec.pred_hit_missed += 1;
                // Nothing beyond `t` has been observed yet: undo the
                // speculation from `t` on, evict the phantom reality just
                // disproved (otherwise a hot page the admission filter
                // keeps bypassing would mispredict as a hit on every
                // re-access, forever), apply the real transition, cut, and
                // re-speculate from `t + 1`.
                self.roll_back(t);
                self.shadow_evict(r.page(), cache);
                self.apply_real(r, &outcome, sv, cache);
                acct.cut(base + t as u64);
                return Err(t + 1);
            }
        }
        Ok(())
    }

    /// Classifies window record `idx` against the shadow, applying the
    /// speculated transition (admit-all, invalid-way-first, policy-aware
    /// victim model) and logging it for rollback — or reporting that a
    /// stored-score decision needs the pending run flushed first.
    fn classify(&mut self, idx: usize, r: &TraceRecord, cache: &SetAssocCache) -> Classified {
        let cfg = cache.config();
        let page = r.page();
        let set = cfg.set_of(page);
        let tag = cfg.tag_of(page);
        let ways = cfg.ways;
        let slot0 = set * ways;
        for w in 0..ways {
            let b = self.shadow[slot0 + w];
            if b.valid && b.tag == tag {
                let slot = slot0 + w;
                if matches!(self.model, ShadowVictimModel::StoredScore { .. })
                    && self.meta[slot].score_state == ScoreState::Pending
                {
                    // A hit on a block inserted earlier in the pending
                    // miss run: flush so its score (and any hit bonus on
                    // top of it) lands first — and so the undo log never
                    // snapshots a pending slot (see [`Classified`]).
                    return Classified::NeedFlush { split: false };
                }
                self.touch += 1;
                self.log_undo(idx, slot);
                let m = &mut self.meta[slot];
                m.last = self.touch;
                m.freq = m.freq.saturating_add(1);
                if let ShadowVictimModel::StoredScore { hit_bonus } = self.model {
                    if hit_bonus > 0.0 && m.score_state == ScoreState::Known {
                        m.score *= 1.0 + hit_bonus;
                    }
                }
                return Classified::Pred(Pred::Hit);
            }
        }
        let invalid = (0..ways).find(|&w| !self.shadow[slot0 + w].valid);
        let (way, evicts) = match invalid {
            Some(w) => (w, None),
            None => match self.predict_victim(slot0, ways) {
                Some(w) => (w, Some(cfg.page_of(set, self.shadow[slot0 + w].tag))),
                None => return Classified::NeedFlush { split: true },
            },
        };
        let slot = slot0 + way;
        self.touch += 1;
        self.log_undo(idx, slot);
        self.shadow[slot] = BlockState {
            tag,
            valid: true,
            dirty: false,
        };
        let m = &mut self.meta[slot];
        m.last = self.touch;
        m.inserted = self.touch;
        m.freq = 1;
        if matches!(self.model, ShadowVictimModel::StoredScore { .. }) {
            if self.dense {
                // Dense windows prefetched every position before
                // classification began: the score the real policy will
                // store on admission is already on hand.
                m.score = self.scores[idx];
                m.score_state = ScoreState::Known;
            } else {
                m.score_state = ScoreState::Pending;
                self.pending_fills.push((idx, slot));
            }
        }
        Classified::Pred(Pred::Miss { slot, evicts })
    }

    /// Predicts the victim way of a full set under the active model.
    /// `None` means a stored-score decision depends on a pending prefetch
    /// (the caller flushes and retries).
    fn predict_victim(&self, slot0: usize, ways: usize) -> Option<usize> {
        let metas = &self.meta[slot0..slot0 + ways];
        match self.model {
            ShadowVictimModel::Recency => metas
                .iter()
                .enumerate()
                .min_by_key(|(_, m)| m.last)
                .map(|(w, _)| w),
            ShadowVictimModel::Insertion => metas
                .iter()
                .enumerate()
                .min_by_key(|(_, m)| m.inserted)
                .map(|(w, _)| w),
            ShadowVictimModel::Frequency => metas
                .iter()
                .enumerate()
                .min_by_key(|(_, m)| (m.freq, m.last))
                .map(|(w, _)| w),
            ShadowVictimModel::StoredScore { .. } => {
                if metas.iter().any(|m| m.score_state == ScoreState::Pending) {
                    return None;
                }
                // The real policy's own ranking (shared scan — it cannot
                // drift); unknown scores rank as -inf — conservative, see
                // [`ScoreState`].
                Some(crate::policy::min_by_score_then_recency(metas.iter().map(
                    |m| {
                        let s = if m.score_state == ScoreState::Known {
                            m.score
                        } else {
                            f64::NEG_INFINITY
                        };
                        (s, m.last)
                    },
                )))
            }
        }
    }

    /// Logs the pre-mutation state of `slot` (tag and metadata) under
    /// window record `idx`.
    fn log_undo(&mut self, idx: usize, slot: usize) {
        self.undo.push(UndoEntry {
            idx,
            slot,
            block: self.shadow[slot],
            meta: self.meta[slot],
        });
    }

    /// Undoes every speculative shadow mutation made for window records
    /// `>= from_idx`, in reverse order.
    fn roll_back(&mut self, from_idx: usize) {
        while let Some(e) = self.undo.last() {
            if e.idx < from_idx {
                break;
            }
            let e = self.undo.pop().expect("just peeked");
            self.shadow[e.slot] = e.block;
            self.meta[e.slot] = e.meta;
        }
    }

    /// Drops `page` from the shadow (reality proved it absent). Ground-
    /// truth repair for a phantom left by a tolerated bypass; runs after
    /// a rollback, so no undo logging.
    fn shadow_evict(&mut self, page: PageIndex, cache: &SetAssocCache) {
        let cfg = cache.config();
        let set = cfg.set_of(page);
        let tag = cfg.tag_of(page);
        let slot0 = set * cfg.ways;
        for w in 0..cfg.ways {
            let b = &mut self.shadow[slot0 + w];
            if b.valid && b.tag == tag {
                b.valid = false;
                return;
            }
        }
    }

    /// Applies a *real* replay outcome (and the score it consumed, if any)
    /// to the shadow — used after a rollback to bring it back into
    /// lock-step with the cache, and during streaming spans to keep the
    /// victim-model metadata warm.
    fn apply_real(
        &mut self,
        r: &TraceRecord,
        outcome: &AccessOutcome,
        score: Option<f64>,
        cache: &SetAssocCache,
    ) {
        let cfg = cache.config();
        let page = r.page();
        let set = cfg.set_of(page);
        let slot0 = set * cfg.ways;
        self.touch += 1;
        match outcome {
            AccessOutcome::Hit { way } => {
                let slot = slot0 + way;
                let tag = cfg.tag_of(page);
                // Write the block too (not just recency): the shadow may
                // hold a phantom from a tolerated bypass here, and real
                // outcomes are the ground truth that heals it.
                let tracked = self.shadow[slot].valid && self.shadow[slot].tag == tag;
                let m = &mut self.meta[slot];
                if tracked {
                    m.freq = m.freq.saturating_add(1);
                    if let ShadowVictimModel::StoredScore { hit_bonus } = self.model {
                        if hit_bonus > 0.0 && m.score_state == ScoreState::Known {
                            m.score *= 1.0 + hit_bonus;
                        }
                    }
                } else {
                    // Healing a phantom: the resident block's history
                    // (hit count, stored score) is unknown to the shadow.
                    m.freq = 1;
                    m.score_state = ScoreState::Unknown;
                }
                m.last = self.touch;
                self.shadow[slot] = BlockState {
                    tag,
                    valid: true,
                    dirty: false,
                };
            }
            AccessOutcome::MissInserted { way, .. } => {
                let slot = slot0 + way;
                self.shadow[slot] = BlockState {
                    tag: cfg.tag_of(page),
                    valid: true,
                    dirty: false,
                };
                let m = &mut self.meta[slot];
                m.last = self.touch;
                m.inserted = self.touch;
                m.freq = 1;
                match score {
                    Some(s) => {
                        m.score = s;
                        m.score_state = ScoreState::Known;
                    }
                    None => m.score_state = ScoreState::Unknown,
                }
            }
            AccessOutcome::MissBypassed => {}
        }
    }

    /// Compares a replayed outcome against the speculation for record `t`
    /// of the current window. Returns `true` (and counts the kind) on a
    /// cutting divergence. Bypasses are handled by the replay loop.
    fn check_miss_divergence(&mut self, t: usize, outcome: &AccessOutcome) -> bool {
        let Pred::Miss { evicts, .. } = self.pred[t] else {
            unreachable!("miss-run replay only covers predicted misses");
        };
        match outcome {
            AccessOutcome::Hit { .. } => {
                self.spec.pred_miss_hit += 1;
                true
            }
            AccessOutcome::MissBypassed => {
                unreachable!("bypass divergence is handled by the replay loop")
            }
            AccessOutcome::MissInserted { evicted, .. } => {
                if evicted.map(|e| e.page) != evicts {
                    self.spec.victim_divergences += 1;
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// [`simulate_batched_with_warmup`] without a warm-up phase.
#[allow(clippy::too_many_arguments)]
pub fn simulate_batched(
    records: &[TraceRecord],
    cache: &mut SetAssocCache,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    score: Option<&mut dyn ScoreSource>,
    latency: &LatencyModel,
    series_window: Option<u64>,
) -> SimReport {
    simulate_batched_with_warmup(
        &[],
        records,
        cache,
        admission,
        eviction,
        score,
        latency,
        series_window,
    )
}

/// One-shot speculative batched simulation at [`DEFAULT_SPEC_WINDOW`].
///
/// Bit-identical to [`crate::simulate_streaming_with_warmup`]; this is the
/// path [`crate::simulate_with_warmup`] routes scored runs through.
#[allow(clippy::too_many_arguments)]
pub fn simulate_batched_with_warmup(
    warmup: &[TraceRecord],
    measured: &[TraceRecord],
    cache: &mut SetAssocCache,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    score: Option<&mut dyn ScoreSource>,
    latency: &LatencyModel,
    series_window: Option<u64>,
) -> SimReport {
    WindowedSimulator::default().run(
        warmup,
        measured,
        cache,
        admission,
        eviction,
        score,
        latency,
        series_window,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::policy::{
        AlwaysAdmit, FifoPolicy, GmmScorePolicy, LfuPolicy, LruPolicy, ThresholdAdmit,
    };
    use crate::score::{ConstantScore, FnScore};
    use crate::sim::{simulate_streaming, simulate_streaming_with_warmup};

    fn small_cache() -> SetAssocCache {
        SetAssocCache::new(CacheConfig {
            capacity_bytes: 16 * 4096,
            block_bytes: 4096,
            ways: 2,
        })
        .unwrap()
    }

    fn mixed_trace(n: usize) -> Vec<TraceRecord> {
        let mut v = Vec::with_capacity(n);
        let mut cold = 500u64;
        for i in 0..n {
            if i % 3 == 0 {
                v.push(TraceRecord::read(((i / 3) as u64 % 8) << 12));
            } else if i % 7 == 0 {
                v.push(TraceRecord::write((cold % 64) << 12));
            } else {
                v.push(TraceRecord::read(cold << 12));
                cold += 1;
            }
        }
        v
    }

    #[test]
    #[should_panic(expected = "speculation window must be >= 1")]
    fn zero_window_panics() {
        let _ = WindowedSimulator::new(0);
    }

    #[test]
    #[should_panic(expected = "speculation window floor must be >= 1")]
    fn zero_floor_panics() {
        let _ = WindowedSimulator::with_params(SpecParams {
            min_window: 0,
            ..SpecParams::default()
        });
    }

    #[test]
    #[should_panic(expected = "stream_miss_fraction_div must be >= 1")]
    fn zero_probe_divisor_panics() {
        let _ = WindowedSimulator::with_params(SpecParams {
            stream_miss_fraction_div: 0,
            ..SpecParams::default()
        });
    }

    #[test]
    fn matches_streaming_with_score_source_across_windows() {
        let trace = mixed_trace(3_000);
        let lat = LatencyModel::paper_tlc();
        for w in [1usize, 3, 64, 4096] {
            let mut c1 = small_cache();
            let mut lru1 = LruPolicy::new(8, 2);
            let mut s1 = FnScore::new(|page, seq| ((page * 37 + seq) % 100) as f64 / 100.0);
            let mut a1 = ThresholdAdmit::new(0.5);
            let streaming = simulate_streaming(
                &trace,
                &mut c1,
                &mut a1,
                &mut lru1,
                Some(&mut s1),
                &lat,
                Some(128),
            );

            let mut c2 = small_cache();
            let mut lru2 = LruPolicy::new(8, 2);
            let mut s2 = FnScore::new(|page, seq| ((page * 37 + seq) % 100) as f64 / 100.0);
            let mut a2 = ThresholdAdmit::new(0.5);
            let mut sim = WindowedSimulator::new(w);
            let batched = sim.run(
                &[],
                &trace,
                &mut c2,
                &mut a2,
                &mut lru2,
                Some(&mut s2),
                &lat,
                Some(128),
            );
            assert_eq!(streaming, batched, "window {w}");
            assert!(sim.spec_stats().windows > 0);
        }
    }

    #[test]
    fn warmup_boundary_never_straddles_a_window() {
        let trace = mixed_trace(2_000);
        let (warm, meas) = trace.split_at(700);
        let lat = LatencyModel::paper_tlc();

        let mut c1 = small_cache();
        let mut lru1 = LruPolicy::new(8, 2);
        let mut s1 = ConstantScore(1.0);
        let streaming = simulate_streaming_with_warmup(
            warm,
            meas,
            &mut c1,
            &mut AlwaysAdmit,
            &mut lru1,
            Some(&mut s1),
            &lat,
            None,
        );

        let mut c2 = small_cache();
        let mut lru2 = LruPolicy::new(8, 2);
        let mut s2 = ConstantScore(1.0);
        let batched = simulate_batched_with_warmup(
            warm,
            meas,
            &mut c2,
            &mut AlwaysAdmit,
            &mut lru2,
            Some(&mut s2),
            &lat,
            None,
        );
        assert_eq!(streaming, batched);
    }

    #[test]
    fn score_free_runs_delegate_to_streaming() {
        let trace = mixed_trace(1_000);
        let lat = LatencyModel::paper_tlc();
        let mut c1 = small_cache();
        let mut f1 = FifoPolicy::new(8, 2);
        let streaming =
            simulate_streaming(&trace, &mut c1, &mut AlwaysAdmit, &mut f1, None, &lat, None);
        let mut c2 = small_cache();
        let mut f2 = FifoPolicy::new(8, 2);
        let mut sim = WindowedSimulator::default();
        let batched = sim.run(
            &[],
            &trace,
            &mut c2,
            &mut AlwaysAdmit,
            &mut f2,
            None,
            &lat,
            None,
        );
        assert_eq!(streaming, batched);
        assert_eq!(sim.spec_stats(), &SpecStats::default());
    }

    #[test]
    fn bypass_heavy_trace_counts_admission_divergences() {
        // Every cold miss scores 0.0 < threshold, so each speculated insert
        // is bypassed by the real admission policy: the speculation must
        // diverge, cut and recover, and still be bit-identical.
        let trace = mixed_trace(2_000);
        let lat = LatencyModel::paper_tlc();
        let mut c1 = small_cache();
        let mut lru1 = LruPolicy::new(8, 2);
        let mut s1 = FnScore::new(|page, _| if page < 8 { 1.0 } else { 0.0 });
        let mut a1 = ThresholdAdmit::new(0.5);
        let streaming = simulate_streaming(
            &trace,
            &mut c1,
            &mut a1,
            &mut lru1,
            Some(&mut s1),
            &lat,
            None,
        );

        let mut c2 = small_cache();
        let mut lru2 = LruPolicy::new(8, 2);
        let mut s2 = FnScore::new(|page, _| if page < 8 { 1.0 } else { 0.0 });
        let mut a2 = ThresholdAdmit::new(0.5);
        let mut sim = WindowedSimulator::new(256);
        let batched = sim.run(
            &[],
            &trace,
            &mut c2,
            &mut a2,
            &mut lru2,
            Some(&mut s2),
            &lat,
            None,
        );
        assert_eq!(streaming, batched);
        let spec = sim.spec_stats();
        assert!(spec.admission_divergences > 0, "{spec:?}");
        assert!(spec.divergences() > 0);
    }

    #[test]
    fn hit_heavy_trace_flips_to_streaming_mode() {
        // 8 hot pages fit the cache: after the cold start everything
        // hits, so the mode probe must drop speculation and stream —
        // still bit-identically.
        let trace: Vec<TraceRecord> = (0..6_000u64)
            .map(|i| TraceRecord::read((i % 8) << 12))
            .collect();
        let lat = LatencyModel::paper_tlc();

        let mut c1 = small_cache();
        let mut lru1 = LruPolicy::new(8, 2);
        let mut s1 = FnScore::new(|page, seq| ((page * 37 + seq) % 100) as f64 / 100.0);
        let streaming = simulate_streaming(
            &trace,
            &mut c1,
            &mut ThresholdAdmit::new(0.5),
            &mut lru1,
            Some(&mut s1),
            &lat,
            None,
        );

        let mut c2 = small_cache();
        let mut lru2 = LruPolicy::new(8, 2);
        let mut s2 = FnScore::new(|page, seq| ((page * 37 + seq) % 100) as f64 / 100.0);
        let mut sim = WindowedSimulator::new(256);
        let batched = sim.run(
            &[],
            &trace,
            &mut c2,
            &mut ThresholdAdmit::new(0.5),
            &mut lru2,
            Some(&mut s2),
            &lat,
            None,
        );
        assert_eq!(streaming, batched);
        let spec = sim.spec_stats();
        assert!(
            spec.streamed_records > 4_000,
            "hit-heavy phases must stream: {spec:?}"
        );
    }

    #[test]
    fn probe_divisor_knob_changes_streaming_eagerness() {
        // Same mixed trace; a divisor of 1 can only stream all-miss-free
        // windows, so far fewer records stream than at the default 8.
        let trace: Vec<TraceRecord> = (0..6_000u64)
            .map(|i| TraceRecord::read((i % 24) << 12))
            .collect();
        let lat = LatencyModel::paper_tlc();
        let mut streamed = Vec::new();
        for div in [1usize, 8] {
            let mut c = small_cache();
            let mut lru = LruPolicy::new(8, 2);
            let mut s = ConstantScore(1.0);
            let mut sim = WindowedSimulator::with_params(SpecParams {
                window: 256,
                stream_miss_fraction_div: div,
                ..SpecParams::default()
            });
            sim.run(
                &[],
                &trace,
                &mut c,
                &mut AlwaysAdmit,
                &mut lru,
                Some(&mut s),
                &lat,
                None,
            );
            streamed.push(sim.spec_stats().streamed_records);
        }
        assert!(
            streamed[0] <= streamed[1],
            "divisor 1 must stream no more than divisor 8: {streamed:?}"
        );
    }

    #[test]
    fn miss_heavy_trace_batches_nearly_everything() {
        // Cyclic scan through 64 pages in a 16-page cache with LRU: every
        // access misses, speculation never diverges, one batched call per
        // window.
        let trace: Vec<TraceRecord> = (0..4_096u64)
            .map(|i| TraceRecord::read((i % 64) << 12))
            .collect();
        let lat = LatencyModel::paper_tlc();
        let mut c = small_cache();
        let mut lru = LruPolicy::new(8, 2);
        let mut s = ConstantScore(1.0);
        let mut sim = WindowedSimulator::new(1024);
        let rep = sim.run(
            &[],
            &trace,
            &mut c,
            &mut ThresholdAdmit::new(0.5),
            &mut lru,
            Some(&mut s),
            &lat,
            None,
        );
        assert!(rep.stats.miss_rate() > 0.99);
        let spec = sim.spec_stats();
        assert_eq!(spec.divergences(), 0, "{spec:?}");
        assert_eq!(spec.sync_scores, 0);
        assert_eq!(spec.batch_calls, 4); // 4096 / 1024
        assert!((spec.batched_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gmm_score_scan_speculates_exactly_with_run_splits() {
        // All-miss scan under gmm-score eviction: victims are ranked by
        // stored score, which the policy-aware shadow learns from its own
        // prefetches. Conflict misses whose victim depends on a score
        // still in flight split the run instead of diverging — so the
        // whole scan replays with zero divergence and (once the cache is
        // full) split-bounded batch calls.
        let trace: Vec<TraceRecord> = (0..4_096u64)
            .map(|i| TraceRecord::read((i % 64) << 12))
            .collect();
        let lat = LatencyModel::paper_tlc();

        let mut c1 = small_cache();
        let mut g1 = GmmScorePolicy::new(8, 2);
        let mut s1 = FnScore::new(|page, seq| ((page * 13 + seq * 7) % 101) as f64 / 101.0);
        let streaming = simulate_streaming(
            &trace,
            &mut c1,
            &mut AlwaysAdmit,
            &mut g1,
            Some(&mut s1),
            &lat,
            None,
        );

        let mut c2 = small_cache();
        let mut g2 = GmmScorePolicy::new(8, 2);
        let mut s2 = FnScore::new(|page, seq| ((page * 13 + seq * 7) % 101) as f64 / 101.0);
        let mut sim = WindowedSimulator::new(1024);
        let batched = sim.run(
            &[],
            &trace,
            &mut c2,
            &mut AlwaysAdmit,
            &mut g2,
            Some(&mut s2),
            &lat,
            None,
        );
        assert_eq!(streaming, batched);
        let spec = sim.spec_stats();
        assert_eq!(spec.divergences(), 0, "{spec:?}");
        assert_eq!(spec.victim_divergences, 0, "{spec:?}");
        assert!(spec.run_splits > 0, "conflict scan must split: {spec:?}");
        assert!((spec.batched_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lfu_and_fifo_scans_speculate_without_divergence() {
        let trace: Vec<TraceRecord> = (0..4_096u64)
            .map(|i| TraceRecord::read((i % 64) << 12))
            .collect();
        let lat = LatencyModel::paper_tlc();
        type MakeEviction = fn() -> Box<dyn EvictionPolicy>;
        let policies: [(&str, MakeEviction); 2] = [
            ("fifo", || Box::new(FifoPolicy::new(8, 2))),
            ("lfu", || Box::new(LfuPolicy::new(8, 2))),
        ];
        for (name, make) in policies {
            let mut c1 = small_cache();
            let mut e1 = make();
            let mut s1 = ConstantScore(0.5);
            let streaming = simulate_streaming(
                &trace,
                &mut c1,
                &mut AlwaysAdmit,
                e1.as_mut(),
                Some(&mut s1),
                &lat,
                None,
            );
            let mut c2 = small_cache();
            let mut e2 = make();
            let mut s2 = ConstantScore(0.5);
            let mut sim = WindowedSimulator::new(1024);
            let batched = sim.run(
                &[],
                &trace,
                &mut c2,
                &mut AlwaysAdmit,
                e2.as_mut(),
                Some(&mut s2),
                &lat,
                None,
            );
            assert_eq!(streaming, batched, "{name}");
            let spec = sim.spec_stats();
            assert_eq!(spec.divergences(), 0, "{name}: {spec:?}");
            assert_eq!(spec.run_splits, 0, "{name} needs no splits: {spec:?}");
        }
    }

    #[test]
    fn gmm_score_hit_bonus_is_mirrored_by_the_shadow() {
        // With a positive hit bonus the real policy rescales stored scores
        // on every hit; the shadow mirrors the same multiplies, so a
        // bypass-free mixed trace still speculates divergence-free.
        let trace = mixed_trace(3_000);
        let lat = LatencyModel::paper_tlc();

        let mut c1 = small_cache();
        let mut g1 = GmmScorePolicy::with_hit_bonus(8, 2, 0.25);
        let mut s1 = FnScore::new(|page, seq| ((page * 29 + seq * 3) % 89) as f64 / 89.0);
        let streaming = simulate_streaming(
            &trace,
            &mut c1,
            &mut AlwaysAdmit,
            &mut g1,
            Some(&mut s1),
            &lat,
            None,
        );

        let mut c2 = small_cache();
        let mut g2 = GmmScorePolicy::with_hit_bonus(8, 2, 0.25);
        let mut s2 = FnScore::new(|page, seq| ((page * 29 + seq * 3) % 89) as f64 / 89.0);
        let mut sim = WindowedSimulator::new(512);
        let batched = sim.run(
            &[],
            &trace,
            &mut c2,
            &mut AlwaysAdmit,
            &mut g2,
            Some(&mut s2),
            &lat,
            None,
        );
        assert_eq!(streaming, batched);
        let spec = sim.spec_stats();
        assert_eq!(spec.victim_divergences, 0, "{spec:?}");
        assert_eq!(spec.class_divergences(), 0, "{spec:?}");
    }

    #[test]
    fn chunked_continuation_matches_one_shot_streaming() {
        // The serving workers replay ragged queue-drain chunks through
        // `run_observed_from`: sequence numbers and shadow metadata must
        // be continuous across chunk boundaries, so the outcome stream is
        // bit-identical to one uninterrupted replay.
        use crate::sim::ReplayEvent;
        struct Collect(Vec<AccessOutcome>);
        impl ReplayObserver for Collect {
            fn on_record(&mut self, ev: &ReplayEvent<'_>) {
                self.0.push(*ev.outcome);
            }
        }
        let trace = mixed_trace(3_000);
        let lat = LatencyModel::paper_tlc();

        let mut c1 = small_cache();
        let mut ev1 = GmmScorePolicy::new(8, 2);
        let mut s1 = FnScore::new(|page, seq| ((page * 37 + seq) % 100) as f64 / 100.0);
        let mut a1 = ThresholdAdmit::new(0.4);
        let mut reference = Collect(Vec::new());
        let _ = crate::sim::simulate_streaming_observed_with_warmup(
            &[],
            &trace,
            &mut c1,
            &mut a1,
            &mut ev1,
            Some(&mut s1),
            &lat,
            None,
            &mut reference,
        );

        let mut c2 = small_cache();
        let mut ev2 = GmmScorePolicy::new(8, 2);
        let mut s2 = FnScore::new(|page, seq| ((page * 37 + seq) % 100) as f64 / 100.0);
        let mut a2 = ThresholdAdmit::new(0.4);
        let mut sim = WindowedSimulator::new(256);
        let mut got = Collect(Vec::new());
        let sizes = [1usize, 7, 64, 513, 300];
        let (mut base, mut k) = (0usize, 0usize);
        while base < trace.len() {
            let take = sizes[k % sizes.len()].min(trace.len() - base);
            k += 1;
            let _ = sim.run_observed_from(
                base as u64,
                &trace[base..base + take],
                &mut c2,
                &mut a2,
                &mut ev2,
                Some(&mut s2),
                &lat,
                &mut got,
            );
            base += take;
        }
        assert_eq!(reference.0, got.0, "chunk boundaries changed outcomes");
    }
}
