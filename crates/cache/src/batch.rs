//! Speculative miss-window batching: the simulator-side consumer of
//! [`ScoreSource::score_window`].
//!
//! The streaming simulator scores every miss one at a time because the
//! admission decision needs the score synchronously. The hardware does not
//! work that way: the scoring pipeline streams a whole miss window
//! back-to-back under the Algorithm 1 clock, and PR 1's batched scoring
//! kernel is 4–5× cheaper per point than the scalar path. This module
//! closes the gap with *speculation*:
//!
//! 1. **Classify.** The next `W` requests are classified into predicted
//!    hits and predicted misses against a *shadow* of the cache tag state
//!    (snapshotted when speculation starts, then kept in lock-step
//!    incrementally: clean windows speculate exactly, divergent ones are
//!    repaired through an undo log in `O(window)` — never an `O(cache)`
//!    copy per window), advanced speculatively with an admit-all,
//!    invalid-way-first, LRU-victim model.
//! 2. **Prefetch.** Each maximal run of predicted misses is pushed through
//!    [`ScoreSource::score_window`] in one batched call; predicted hits in
//!    between are observed individually (the Algorithm 1 clock counts every
//!    request, hits included, so observation order must match the trace
//!    exactly — this is why a window with interleaved hits batches per
//!    miss-run rather than in a single call).
//! 3. **Replay.** The window is replayed through the *real* cache and
//!    policies, consuming prefetched scores at actual misses. Scores
//!    depend only on observation position, never on the hit/miss outcome,
//!    so every prefetched score is bit-identical to what the streaming
//!    path would have computed at the same position.
//! 4. **Diverge & recover.** Every mismatch between a replayed outcome
//!    and the speculation is detected and counted — none is silent:
//!    * an **admission bypass** where an insert was speculated is
//!      *tolerated*: the window continues at full depth (this is the
//!      common divergence under the paper's threshold filter, and the one
//!      worth keeping cheap), leaving the speculated page in the shadow
//!      as a **phantom**. Every decision the phantom could skew is still
//!      verified record-by-record at replay, and the first cut it causes
//!      heals it (`apply_real` writes ground truth back);
//!    * every other mismatch — a predicted hit that missed, a predicted
//!      miss that hit, an unpredicted eviction victim — **cuts** the
//!      window: the undo log rolls the shadow back along its own timeline
//!      to the divergent record, the real outcomes replayed since are
//!      re-applied, and speculation restarts from the divergent point. A
//!      predicted hit that actually misses falls back to a synchronous
//!      [`ScoreSource::score_current`] (its observation just happened, so
//!      the clock is exactly right — bit-identical to streaming).
//!
//! # Why this stays exact
//!
//! Replay never trusts a prediction: every record's hit/miss status comes
//! from the *real* cache lookup, every admission/eviction decision runs
//! through the *real* policies, and every score consumed is positionally
//! exact (scores depend only on observation order, which speculation
//! never changes). Predictions only decide what gets *prefetched* — a
//! stale predicted hit that misses takes the synchronous fallback (one
//! [`SpecStats::sync_scores`] per [`SpecStats::pred_hit_missed`], always
//! equal), a stale predicted miss that hits wastes one prefetched score.
//! The shadow is thus a performance artifact, not a correctness one:
//! phantoms degrade prediction quality, never results.
//!
//! # Adaptive depth and the mode probe
//!
//! A cut discards the rest of the window's classification, so a
//! divergence storm (e.g. GMM-score eviction, whose victims an LRU shadow
//! cannot predict) would waste `O(W)` lookahead per cut. The simulator
//! therefore halves its effective window after a divergent window and
//! doubles it after a clean one (clamped to `[`[`MIN_SPEC_WINDOW`]`, W]`),
//! so divergence-heavy phases degrade gracefully toward streaming while
//! predictable phases ride the full configured depth.
//!
//! Batching also cannot pay for itself when there is almost nothing to
//! batch: a window whose replay misses fewer than 1-in-
//! [`STREAM_MISS_FRACTION_DIV`] records flips the simulator into plain
//! streaming for [`STREAM_SPAN_WINDOWS`] windows' worth of requests,
//! after which it re-snapshots the shadow and probes speculation again.
//! Hit-dominated phases thus run at streaming speed (no lookahead at
//! all), miss-heavy phases ride the batched kernel, and the probe cost is
//! one classification pass per span.
//!
//! The result is bit-identical to [`crate::simulate_streaming_with_warmup`]
//! — enforced by the property tests in `tests/batch_equivalence.rs` across
//! all policy pairs — while miss-heavy windows ride the batched kernel.

use crate::cache::{AccessOutcome, BlockState, SetAssocCache};
use crate::latency::LatencyModel;
use crate::policy::{AdmissionPolicy, EvictionPolicy};
use crate::score::ScoreSource;
use crate::sim::{simulate_streaming_with_warmup, Accounting, SimReport};
use icgmm_trace::{PageIndex, TraceRecord};
use serde::{Deserialize, Serialize};

/// Default speculation window, in requests.
///
/// Large enough that a miss-heavy window amortizes one shadow sync and one
/// batched scoring call over thousands of requests; small enough that a
/// divergence (which discards the rest of the window's speculation) stays
/// cheap.
pub const DEFAULT_SPEC_WINDOW: usize = 4096;

/// Floor of the adaptive window shrink (see the module docs): after a
/// divergence the effective window halves, but never below this (or below
/// the configured window, if smaller). Kept small: in a divergence storm
/// batching is lost regardless, so the floor mostly bounds how much
/// lookahead classification each cut can waste.
pub const MIN_SPEC_WINDOW: usize = 16;

/// Hit-dominance threshold of the mode probe: a speculative window whose
/// replay misses fewer than 1-in-8 records flips the simulator into plain
/// streaming (scoring so few misses cannot repay per-request lookahead),
/// for [`STREAM_SPAN_WINDOWS`] × window records before probing again.
pub const STREAM_MISS_FRACTION_DIV: usize = 8;

/// How many windows' worth of *observed evidence* each streaming span
/// covers before the simulator re-snapshots the shadow and probes
/// speculation again (the span is proportional to the window that
/// triggered it, so thin evidence cannot disable batching for long).
pub const STREAM_SPAN_WINDOWS: usize = 8;

/// Minimum records a window must have replayed (cleanly) before its miss
/// fraction is trusted as a mode-probe signal; windows shorter than this
/// (post-divergence shrink remnants, phase-boundary tails) never flip the
/// simulator into streaming.
pub const MIN_PROBE_EVIDENCE: usize = 256;

/// Speculation telemetry for one [`WindowedSimulator::run`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecStats {
    /// Speculation windows launched (including restarts after divergence).
    pub windows: u64,
    /// Batched [`ScoreSource::score_window`] calls issued.
    pub batch_calls: u64,
    /// Scores prefetched through the batched calls.
    pub batched_scores: u64,
    /// Synchronous [`ScoreSource::score_current`] fallbacks — always
    /// paired one-to-one with [`SpecStats::pred_hit_missed`]: the only
    /// stale predicted hits are pages a tolerated bypass left wrongly
    /// resident in the shadow (see the exactness invariant, module docs).
    pub sync_scores: u64,
    /// Predicted hit, replay missed (falls back to a synchronous score
    /// with the clock exactly at the record — bit-identical).
    pub pred_hit_missed: u64,
    /// Predicted miss, replay hit — a stale prediction downstream of a
    /// divergence; its prefetched score goes unused.
    pub pred_miss_hit: u64,
    /// Speculated an insertion, the admission policy bypassed — tolerated
    /// without cutting the window (the speculated page stays in the
    /// shadow as a *phantom* until a real outcome heals it; see the
    /// module docs).
    pub admission_divergences: u64,
    /// Insertion confirmed but the real eviction victim differed from the
    /// shadow's prediction.
    pub victim_divergences: u64,
    /// Times the adaptive depth halved after a divergent window.
    pub window_shrinks: u64,
    /// Records processed in plain streaming mode (hit-dominated phases,
    /// where lookahead cannot pay for itself — see the mode probe).
    pub streamed_records: u64,
    /// Scores computed synchronously inside streaming spans.
    pub streamed_scores: u64,
}

impl SpecStats {
    /// Total divergence events.
    pub fn divergences(&self) -> u64 {
        self.pred_hit_missed
            + self.pred_miss_hit
            + self.admission_divergences
            + self.victim_divergences
    }

    /// Fraction of scores that were produced by batched calls.
    pub fn batched_fraction(&self) -> f64 {
        let total = self.batched_scores + self.sync_scores + self.streamed_scores;
        if total == 0 {
            0.0
        } else {
            self.batched_scores as f64 / total as f64
        }
    }
}

/// Per-record speculation outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pred {
    /// The shadow found the page resident.
    Hit,
    /// The shadow missed; an admit was speculated, evicting `evicts` (the
    /// page the shadow displaced, `None` when an invalid way absorbed the
    /// insert).
    Miss { evicts: Option<PageIndex> },
}

/// One reversible shadow mutation, tagged with the window-record index
/// that caused it. Rolling the log back past a divergence restores the
/// shadow to the exact pre-speculation state in `O(window)` — the full
/// tag array is copied once per [`WindowedSimulator::run`], never per
/// window, so divergence repair stays cheap even on multi-MiB caches.
#[derive(Clone, Copy, Debug)]
struct UndoEntry {
    idx: usize,
    slot: usize,
    block: BlockState,
    last: u64,
}

/// The speculative miss-window batching simulator.
///
/// Reusable across runs: internal buffers (shadow tag state, predictions,
/// prefetched scores) are recycled, so a sweep driver can allocate one
/// `WindowedSimulator` and call [`WindowedSimulator::run`] per
/// configuration point.
#[derive(Clone, Debug)]
pub struct WindowedSimulator {
    window: usize,
    shadow: Vec<BlockState>,
    shadow_last: Vec<u64>,
    touch: u64,
    pred: Vec<Pred>,
    scores: Vec<f64>,
    undo: Vec<UndoEntry>,
    outcome_buf: Vec<AccessOutcome>,
    spec: SpecStats,
}

impl Default for WindowedSimulator {
    fn default() -> Self {
        WindowedSimulator::new(DEFAULT_SPEC_WINDOW)
    }
}

impl WindowedSimulator {
    /// Creates a simulator speculating `window` requests ahead.
    ///
    /// # Panics
    ///
    /// Panics when `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "speculation window must be >= 1");
        WindowedSimulator {
            window,
            shadow: Vec::new(),
            shadow_last: Vec::new(),
            touch: 0,
            pred: Vec::new(),
            scores: Vec::new(),
            undo: Vec::new(),
            outcome_buf: Vec::new(),
            spec: SpecStats::default(),
        }
    }

    /// The speculation depth `W`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Telemetry of the most recent [`WindowedSimulator::run`].
    pub fn spec_stats(&self) -> &SpecStats {
        &self.spec
    }

    /// Batched counterpart of [`crate::simulate_streaming_with_warmup`]:
    /// same arguments, bit-identical [`SimReport`].
    ///
    /// Without a score source there is nothing to batch, so the call
    /// delegates to the streaming loop unchanged (score-free baselines pay
    /// zero speculation overhead).
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &mut self,
        warmup: &[TraceRecord],
        measured: &[TraceRecord],
        cache: &mut SetAssocCache,
        admission: &mut dyn AdmissionPolicy,
        eviction: &mut dyn EvictionPolicy,
        score: Option<&mut dyn ScoreSource>,
        latency: &LatencyModel,
        series_window: Option<u64>,
    ) -> SimReport {
        self.spec = SpecStats::default();
        let Some(score) = score else {
            return simulate_streaming_with_warmup(
                warmup,
                measured,
                cache,
                admission,
                eviction,
                None,
                latency,
                series_window,
            );
        };

        let n_blocks = cache.config().num_blocks();
        self.shadow_last.clear();
        self.shadow_last.resize(n_blocks, 0);
        self.touch = 0;

        let mut acct = Accounting::new(warmup.len(), latency, series_window);

        let n = warmup.len() + measured.len();
        let min_depth = MIN_SPEC_WINDOW.min(self.window);
        let mut depth = self.window;
        let mut pos = 0usize;
        // Streaming records left before the next speculation probe, and
        // whether the shadow must be re-snapshotted (on entry, and after
        // every streaming span — the shadow did not see those requests).
        let mut stream_pending = 0usize;
        let mut need_sync = true;
        while pos < n {
            // Windows never straddle the warm-up/measured boundary so each
            // batched `score_window` call sees one contiguous slice.
            let (phase, phase_start) = if pos < warmup.len() {
                (warmup, 0)
            } else {
                (measured, warmup.len())
            };
            let local = pos - phase_start;
            if stream_pending > 0 {
                let take = stream_pending.min(phase.len() - local);
                self.stream_chunk(
                    &phase[local..local + take],
                    pos as u64,
                    cache,
                    admission,
                    eviction,
                    score,
                    &mut acct,
                );
                pos += take;
                stream_pending -= take;
                if stream_pending == 0 {
                    need_sync = true;
                }
                continue;
            }
            if need_sync {
                self.shadow.clear();
                self.shadow.extend_from_slice(cache.blocks());
                need_sync = false;
            }
            let end = (local + depth).min(phase.len());
            let (consumed, diverged, misses) = self.run_window(
                &phase[local..end],
                pos as u64,
                cache,
                admission,
                eviction,
                score,
                &mut acct,
            );
            debug_assert!(consumed > 0, "window must make progress");
            pos += consumed;
            // Adaptive depth: a cut wasted the rest of the window's
            // classification, so back off; a clean window earns it back.
            if diverged {
                if depth > min_depth {
                    depth = (depth / 2).max(min_depth);
                    self.spec.window_shrinks += 1;
                }
            } else {
                depth = (depth * 2).min(self.window);
            }
            // Mode probe: a hit-dominated window pays per-request
            // lookahead to batch almost nothing — switch to plain
            // streaming for a span, then probe again. Only a clean,
            // reasonably deep window counts as evidence, and the span is
            // proportional to it, so one post-shrink 16-record remnant
            // cannot turn batching off for tens of thousands of requests.
            if !diverged
                && consumed >= MIN_PROBE_EVIDENCE.min(self.window)
                && misses as usize * STREAM_MISS_FRACTION_DIV < consumed
            {
                stream_pending = STREAM_SPAN_WINDOWS * consumed;
            }
        }

        acct.into_report(measured.len(), eviction, admission)
    }

    /// Streams `chunk` through the real cache with synchronous scoring —
    /// the plain replay loop, used for hit-dominated spans where
    /// speculation cannot pay for itself. Bit-identical by construction.
    #[allow(clippy::too_many_arguments)]
    fn stream_chunk(
        &mut self,
        chunk: &[TraceRecord],
        base: u64,
        cache: &mut SetAssocCache,
        admission: &mut dyn AdmissionPolicy,
        eviction: &mut dyn EvictionPolicy,
        score: &mut dyn ScoreSource,
        acct: &mut Accounting<'_>,
    ) {
        for (i, r) in chunk.iter().enumerate() {
            score.observe(r);
            let sv = if cache.lookup(r.page()).is_none() {
                self.spec.streamed_scores += 1;
                Some(score.score_current())
            } else {
                None
            };
            let outcome = cache.access(r, base + i as u64, sv, admission, eviction);
            acct.record(base + i as u64, r, &outcome);
        }
        self.spec.streamed_records += chunk.len() as u64;
    }

    /// Speculates, prefetches and replays one window starting at absolute
    /// request index `base`. Returns how many records were fully replayed
    /// (the whole window, or the prefix up to and including a divergence),
    /// whether the window diverged, and how many replayed records missed
    /// (the mode probe's signal).
    #[allow(clippy::too_many_arguments)]
    fn run_window(
        &mut self,
        win: &[TraceRecord],
        base: u64,
        cache: &mut SetAssocCache,
        admission: &mut dyn AdmissionPolicy,
        eviction: &mut dyn EvictionPolicy,
        score: &mut dyn ScoreSource,
        acct: &mut Accounting<'_>,
    ) -> (usize, bool, u64) {
        self.spec.windows += 1;
        let mut misses = 0u64;

        // Phase 1 — classify against the shadow (an exact tag mirror on
        // window entry), logging every speculative mutation for rollback.
        self.undo.clear();
        self.pred.clear();
        for (idx, r) in win.iter().enumerate() {
            let p = self.classify(idx, r, cache);
            self.pred.push(p);
        }

        // Phases 2+3 — prefetch per predicted-miss run, replay, verify.
        let mut k = 0usize;
        while k < win.len() {
            let miss_run = matches!(self.pred[k], Pred::Miss { .. });
            let mut j = k + 1;
            while j < win.len() && matches!(self.pred[j], Pred::Miss { .. }) == miss_run {
                j += 1;
            }
            if miss_run {
                if self.scores.len() < j {
                    self.scores.resize(j, 0.0);
                }
                score.score_window(&win[k..j], &mut self.scores[k..j]);
                self.spec.batch_calls += 1;
                self.spec.batched_scores += (j - k) as u64;
                let mut first_div: Option<usize> = None;
                for (off, r) in win[k..j].iter().enumerate() {
                    let t = k + off;
                    let hit = cache.lookup(r.page()).is_some();
                    misses += u64::from(!hit);
                    let sv = (!hit).then(|| self.scores[t]);
                    let outcome = cache.access(r, base + t as u64, sv, admission, eviction);
                    acct.record(base + t as u64, r, &outcome);
                    match first_div {
                        None => {
                            let cut = if matches!(outcome, AccessOutcome::MissBypassed) {
                                // Admission divergence: the speculated
                                // insert did not happen, leaving a
                                // *phantom* resident in the shadow.
                                // Tolerating it (rather than cutting)
                                // keeps the window — and its batching —
                                // alive under bypass-heavy admission
                                // filters; every decision the phantom
                                // could skew is still verified at replay,
                                // and the first cut it causes clears it
                                // (`apply_real` writes the real state).
                                self.spec.admission_divergences += 1;
                                false
                            } else {
                                self.check_miss_divergence(t, &outcome)
                            };
                            if cut {
                                first_div = Some(t);
                                self.outcome_buf.clear();
                                self.outcome_buf.push(outcome);
                            }
                        }
                        Some(_) => {
                            // Stale prediction in the tail of a divergent
                            // run: the run still replays correctly
                            // (observations and scores are position-
                            // exact), the prefetched score just goes
                            // unused. Admission/victim mismatches past
                            // the first event are downstream consequences
                            // and are not re-counted.
                            if outcome.is_hit() {
                                self.spec.pred_miss_hit += 1;
                            }
                            self.outcome_buf.push(outcome);
                        }
                    }
                }
                if let Some(t0) = first_div {
                    // Cut after the already-observed run: roll the shadow
                    // back to the divergent record, replay the run tail's
                    // *real* transitions onto it, and let the next window
                    // re-speculate from that exact state.
                    self.roll_back(t0);
                    let outcomes = std::mem::take(&mut self.outcome_buf);
                    for (r, oc) in win[t0..j].iter().zip(outcomes.iter()) {
                        self.apply_real(r, oc, cache);
                    }
                    self.outcome_buf = outcomes;
                    return (j, true, misses);
                }
            } else {
                for (off, r) in win[k..j].iter().enumerate() {
                    let t = k + off;
                    score.observe(r);
                    let hit = cache.lookup(r.page()).is_some();
                    misses += u64::from(!hit);
                    let sv = if hit {
                        None
                    } else {
                        // Divergence: predicted hit actually missed. The
                        // observation above just happened, so the clock is
                        // exactly at this record — the synchronous score
                        // is bit-identical to the streaming path's.
                        self.spec.sync_scores += 1;
                        Some(score.score_current())
                    };
                    let outcome = cache.access(r, base + t as u64, sv, admission, eviction);
                    acct.record(base + t as u64, r, &outcome);
                    if !hit {
                        self.spec.pred_hit_missed += 1;
                        // Nothing beyond `t` has been observed yet: undo
                        // the speculation from `t` on, evict the phantom
                        // reality just disproved (otherwise a hot page
                        // the admission filter keeps bypassing would
                        // mispredict as a hit on every re-access,
                        // forever), apply the real transition, cut, and
                        // re-speculate from `t + 1`.
                        self.roll_back(t);
                        self.shadow_evict(r.page(), cache);
                        self.apply_real(r, &outcome, cache);
                        return (t + 1, true, misses);
                    }
                }
            }
            k = j;
        }
        (win.len(), false, misses)
    }

    /// Classifies window record `idx` against the shadow, applying the
    /// speculated transition (admit-all, invalid-way-first, shadow-LRU
    /// victim) and logging it for rollback.
    fn classify(&mut self, idx: usize, r: &TraceRecord, cache: &SetAssocCache) -> Pred {
        let cfg = cache.config();
        let page = r.page();
        let set = cfg.set_of(page);
        let tag = cfg.tag_of(page);
        let ways = cfg.ways;
        let slot0 = set * ways;
        self.touch += 1;
        for w in 0..ways {
            let b = self.shadow[slot0 + w];
            if b.valid && b.tag == tag {
                self.log_and_touch(idx, slot0 + w);
                return Pred::Hit;
            }
        }
        let invalid = (0..ways).find(|&w| !self.shadow[slot0 + w].valid);
        let (way, evicts) = match invalid {
            Some(w) => (w, None),
            None => {
                let w = (0..ways)
                    .min_by_key(|&w| self.shadow_last[slot0 + w])
                    .expect("set has at least one way");
                (w, Some(cfg.page_of(set, self.shadow[slot0 + w].tag)))
            }
        };
        self.log_and_touch(idx, slot0 + way);
        self.shadow[slot0 + way] = BlockState {
            tag,
            valid: true,
            dirty: false,
        };
        Pred::Miss { evicts }
    }

    /// Logs the pre-mutation state of `slot` under window record `idx`,
    /// then stamps its recency.
    fn log_and_touch(&mut self, idx: usize, slot: usize) {
        self.undo.push(UndoEntry {
            idx,
            slot,
            block: self.shadow[slot],
            last: self.shadow_last[slot],
        });
        self.shadow_last[slot] = self.touch;
    }

    /// Undoes every speculative shadow mutation made for window records
    /// `>= from_idx`, in reverse order.
    fn roll_back(&mut self, from_idx: usize) {
        while let Some(e) = self.undo.last() {
            if e.idx < from_idx {
                break;
            }
            let e = self.undo.pop().expect("just peeked");
            self.shadow[e.slot] = e.block;
            self.shadow_last[e.slot] = e.last;
        }
    }

    /// Drops `page` from the shadow (reality proved it absent). Ground-
    /// truth repair for a phantom left by a tolerated bypass; runs after
    /// a rollback, so no undo logging.
    fn shadow_evict(&mut self, page: PageIndex, cache: &SetAssocCache) {
        let cfg = cache.config();
        let set = cfg.set_of(page);
        let tag = cfg.tag_of(page);
        let slot0 = set * cfg.ways;
        for w in 0..cfg.ways {
            let b = &mut self.shadow[slot0 + w];
            if b.valid && b.tag == tag {
                b.valid = false;
                return;
            }
        }
    }

    /// Applies a *real* replay outcome to the shadow (used after a
    /// rollback to bring it back into lock-step with the cache).
    fn apply_real(&mut self, r: &TraceRecord, outcome: &AccessOutcome, cache: &SetAssocCache) {
        let cfg = cache.config();
        let page = r.page();
        let set = cfg.set_of(page);
        let slot0 = set * cfg.ways;
        self.touch += 1;
        match outcome {
            AccessOutcome::Hit { way } => {
                // Write the block too (not just recency): the shadow may
                // hold a phantom from a tolerated bypass here, and real
                // outcomes are the ground truth that heals it.
                self.shadow[slot0 + way] = BlockState {
                    tag: cfg.tag_of(page),
                    valid: true,
                    dirty: false,
                };
                self.shadow_last[slot0 + way] = self.touch;
            }
            AccessOutcome::MissInserted { way, .. } => {
                self.shadow[slot0 + way] = BlockState {
                    tag: cfg.tag_of(page),
                    valid: true,
                    dirty: false,
                };
                self.shadow_last[slot0 + way] = self.touch;
            }
            AccessOutcome::MissBypassed => {}
        }
    }

    /// Compares a replayed outcome against the speculation for record `t`
    /// of the current window. Returns `true` (and counts the kind) on a
    /// cutting divergence. Bypasses are handled by the replay loop.
    fn check_miss_divergence(&mut self, t: usize, outcome: &AccessOutcome) -> bool {
        let Pred::Miss { evicts, .. } = self.pred[t] else {
            unreachable!("miss-run replay only covers predicted misses");
        };
        match outcome {
            AccessOutcome::Hit { .. } => {
                self.spec.pred_miss_hit += 1;
                true
            }
            AccessOutcome::MissBypassed => {
                unreachable!("bypass divergence is handled by the replay loop")
            }
            AccessOutcome::MissInserted { evicted, .. } => {
                if evicted.map(|e| e.page) != evicts {
                    self.spec.victim_divergences += 1;
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// [`simulate_batched_with_warmup`] without a warm-up phase.
#[allow(clippy::too_many_arguments)]
pub fn simulate_batched(
    records: &[TraceRecord],
    cache: &mut SetAssocCache,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    score: Option<&mut dyn ScoreSource>,
    latency: &LatencyModel,
    series_window: Option<u64>,
) -> SimReport {
    simulate_batched_with_warmup(
        &[],
        records,
        cache,
        admission,
        eviction,
        score,
        latency,
        series_window,
    )
}

/// One-shot speculative batched simulation at [`DEFAULT_SPEC_WINDOW`].
///
/// Bit-identical to [`crate::simulate_streaming_with_warmup`]; this is the
/// path [`crate::simulate_with_warmup`] routes scored runs through.
#[allow(clippy::too_many_arguments)]
pub fn simulate_batched_with_warmup(
    warmup: &[TraceRecord],
    measured: &[TraceRecord],
    cache: &mut SetAssocCache,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    score: Option<&mut dyn ScoreSource>,
    latency: &LatencyModel,
    series_window: Option<u64>,
) -> SimReport {
    WindowedSimulator::default().run(
        warmup,
        measured,
        cache,
        admission,
        eviction,
        score,
        latency,
        series_window,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::policy::{AlwaysAdmit, FifoPolicy, LruPolicy, ThresholdAdmit};
    use crate::score::{ConstantScore, FnScore};
    use crate::sim::simulate_streaming;

    fn small_cache() -> SetAssocCache {
        SetAssocCache::new(CacheConfig {
            capacity_bytes: 16 * 4096,
            block_bytes: 4096,
            ways: 2,
        })
        .unwrap()
    }

    fn mixed_trace(n: usize) -> Vec<TraceRecord> {
        let mut v = Vec::with_capacity(n);
        let mut cold = 500u64;
        for i in 0..n {
            if i % 3 == 0 {
                v.push(TraceRecord::read(((i / 3) as u64 % 8) << 12));
            } else if i % 7 == 0 {
                v.push(TraceRecord::write((cold % 64) << 12));
            } else {
                v.push(TraceRecord::read(cold << 12));
                cold += 1;
            }
        }
        v
    }

    #[test]
    #[should_panic(expected = "speculation window must be >= 1")]
    fn zero_window_panics() {
        let _ = WindowedSimulator::new(0);
    }

    #[test]
    fn matches_streaming_with_score_source_across_windows() {
        let trace = mixed_trace(3_000);
        let lat = LatencyModel::paper_tlc();
        for w in [1usize, 3, 64, 4096] {
            let mut c1 = small_cache();
            let mut lru1 = LruPolicy::new(8, 2);
            let mut s1 = FnScore::new(|page, seq| ((page * 37 + seq) % 100) as f64 / 100.0);
            let mut a1 = ThresholdAdmit::new(0.5);
            let streaming = simulate_streaming(
                &trace,
                &mut c1,
                &mut a1,
                &mut lru1,
                Some(&mut s1),
                &lat,
                Some(128),
            );

            let mut c2 = small_cache();
            let mut lru2 = LruPolicy::new(8, 2);
            let mut s2 = FnScore::new(|page, seq| ((page * 37 + seq) % 100) as f64 / 100.0);
            let mut a2 = ThresholdAdmit::new(0.5);
            let mut sim = WindowedSimulator::new(w);
            let batched = sim.run(
                &[],
                &trace,
                &mut c2,
                &mut a2,
                &mut lru2,
                Some(&mut s2),
                &lat,
                Some(128),
            );
            assert_eq!(streaming, batched, "window {w}");
            assert!(sim.spec_stats().windows > 0);
        }
    }

    #[test]
    fn warmup_boundary_never_straddles_a_window() {
        let trace = mixed_trace(2_000);
        let (warm, meas) = trace.split_at(700);
        let lat = LatencyModel::paper_tlc();

        let mut c1 = small_cache();
        let mut lru1 = LruPolicy::new(8, 2);
        let mut s1 = ConstantScore(1.0);
        let streaming = simulate_streaming_with_warmup(
            warm,
            meas,
            &mut c1,
            &mut AlwaysAdmit,
            &mut lru1,
            Some(&mut s1),
            &lat,
            None,
        );

        let mut c2 = small_cache();
        let mut lru2 = LruPolicy::new(8, 2);
        let mut s2 = ConstantScore(1.0);
        let batched = simulate_batched_with_warmup(
            warm,
            meas,
            &mut c2,
            &mut AlwaysAdmit,
            &mut lru2,
            Some(&mut s2),
            &lat,
            None,
        );
        assert_eq!(streaming, batched);
    }

    #[test]
    fn score_free_runs_delegate_to_streaming() {
        let trace = mixed_trace(1_000);
        let lat = LatencyModel::paper_tlc();
        let mut c1 = small_cache();
        let mut f1 = FifoPolicy::new(8, 2);
        let streaming =
            simulate_streaming(&trace, &mut c1, &mut AlwaysAdmit, &mut f1, None, &lat, None);
        let mut c2 = small_cache();
        let mut f2 = FifoPolicy::new(8, 2);
        let mut sim = WindowedSimulator::default();
        let batched = sim.run(
            &[],
            &trace,
            &mut c2,
            &mut AlwaysAdmit,
            &mut f2,
            None,
            &lat,
            None,
        );
        assert_eq!(streaming, batched);
        assert_eq!(sim.spec_stats(), &SpecStats::default());
    }

    #[test]
    fn bypass_heavy_trace_counts_admission_divergences() {
        // Every cold miss scores 0.0 < threshold, so each speculated insert
        // is bypassed by the real admission policy: the speculation must
        // diverge, cut and recover, and still be bit-identical.
        let trace = mixed_trace(2_000);
        let lat = LatencyModel::paper_tlc();
        let mut c1 = small_cache();
        let mut lru1 = LruPolicy::new(8, 2);
        let mut s1 = FnScore::new(|page, _| if page < 8 { 1.0 } else { 0.0 });
        let mut a1 = ThresholdAdmit::new(0.5);
        let streaming = simulate_streaming(
            &trace,
            &mut c1,
            &mut a1,
            &mut lru1,
            Some(&mut s1),
            &lat,
            None,
        );

        let mut c2 = small_cache();
        let mut lru2 = LruPolicy::new(8, 2);
        let mut s2 = FnScore::new(|page, _| if page < 8 { 1.0 } else { 0.0 });
        let mut a2 = ThresholdAdmit::new(0.5);
        let mut sim = WindowedSimulator::new(256);
        let batched = sim.run(
            &[],
            &trace,
            &mut c2,
            &mut a2,
            &mut lru2,
            Some(&mut s2),
            &lat,
            None,
        );
        assert_eq!(streaming, batched);
        let spec = sim.spec_stats();
        assert!(spec.admission_divergences > 0, "{spec:?}");
        assert!(spec.divergences() > 0);
    }

    #[test]
    fn hit_heavy_trace_flips_to_streaming_mode() {
        // 8 hot pages fit the cache: after the cold start everything
        // hits, so the mode probe must drop speculation and stream —
        // still bit-identically.
        let trace: Vec<TraceRecord> = (0..6_000u64)
            .map(|i| TraceRecord::read((i % 8) << 12))
            .collect();
        let lat = LatencyModel::paper_tlc();

        let mut c1 = small_cache();
        let mut lru1 = LruPolicy::new(8, 2);
        let mut s1 = FnScore::new(|page, seq| ((page * 37 + seq) % 100) as f64 / 100.0);
        let streaming = simulate_streaming(
            &trace,
            &mut c1,
            &mut ThresholdAdmit::new(0.5),
            &mut lru1,
            Some(&mut s1),
            &lat,
            None,
        );

        let mut c2 = small_cache();
        let mut lru2 = LruPolicy::new(8, 2);
        let mut s2 = FnScore::new(|page, seq| ((page * 37 + seq) % 100) as f64 / 100.0);
        let mut sim = WindowedSimulator::new(256);
        let batched = sim.run(
            &[],
            &trace,
            &mut c2,
            &mut ThresholdAdmit::new(0.5),
            &mut lru2,
            Some(&mut s2),
            &lat,
            None,
        );
        assert_eq!(streaming, batched);
        let spec = sim.spec_stats();
        assert!(
            spec.streamed_records > 4_000,
            "hit-heavy phases must stream: {spec:?}"
        );
    }

    #[test]
    fn miss_heavy_trace_batches_nearly_everything() {
        // Cyclic scan through 64 pages in a 16-page cache with LRU: every
        // access misses, speculation never diverges, one batched call per
        // window.
        let trace: Vec<TraceRecord> = (0..4_096u64)
            .map(|i| TraceRecord::read((i % 64) << 12))
            .collect();
        let lat = LatencyModel::paper_tlc();
        let mut c = small_cache();
        let mut lru = LruPolicy::new(8, 2);
        let mut s = ConstantScore(1.0);
        let mut sim = WindowedSimulator::new(1024);
        let rep = sim.run(
            &[],
            &trace,
            &mut c,
            &mut ThresholdAdmit::new(0.5),
            &mut lru,
            Some(&mut s),
            &lat,
            None,
        );
        assert!(rep.stats.miss_rate() > 0.99);
        let spec = sim.spec_stats();
        assert_eq!(spec.divergences(), 0, "{spec:?}");
        assert_eq!(spec.sync_scores, 0);
        assert_eq!(spec.batch_calls, 4); // 4096 / 1024
        assert!((spec.batched_fraction() - 1.0).abs() < 1e-12);
    }
}
