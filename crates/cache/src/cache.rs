//! The set-associative DRAM-cache tag store.
//!
//! Models the cache-management module of the paper's cache control engine:
//! tag lookup (the hardware compares all tags of a set in parallel),
//! write-allocate insertion with write-back dirty tracking, and
//! policy-driven victim selection. Data payloads are not simulated — only
//! tags, dirty bits and policy metadata, exactly what the FPGA keeps in its
//! on-board tag/score buffer.

use crate::config::{CacheConfig, CacheConfigError};
use crate::policy::{AccessCtx, AdmissionPolicy, EvictionPolicy};
use icgmm_trace::{Op, PageIndex, TraceRecord};
use serde::{Deserialize, Serialize};

/// One tag-store entry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockState {
    /// Tag (page index divided by the set count).
    pub tag: u64,
    /// Whether the block holds a page.
    pub valid: bool,
    /// Whether the block was written since insertion (write-back).
    pub dirty: bool,
}

/// An evicted block, reported so the simulator can charge write-back cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Eviction {
    /// The page that was evicted.
    pub page: PageIndex,
    /// Whether it must be written back to the SSD (900 µs on TLC).
    pub dirty: bool,
}

/// Outcome of one cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessOutcome {
    /// The page was present; data served from DRAM.
    Hit {
        /// Way within the set where the page was found.
        way: usize,
    },
    /// The page missed and was inserted (possibly evicting a victim).
    MissInserted {
        /// Way the page was placed in.
        way: usize,
        /// The victim, if the set was full.
        evicted: Option<Eviction>,
    },
    /// The page missed and the admission policy bypassed the cache:
    /// data moves SSD↔host directly and the cache is untouched.
    MissBypassed,
}

impl AccessOutcome {
    /// `true` for [`AccessOutcome::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit { .. })
    }
}

/// The set-associative tag store.
///
/// ```
/// use icgmm_cache::{AlwaysAdmit, CacheConfig, LruPolicy, SetAssocCache};
/// use icgmm_trace::TraceRecord;
///
/// let cfg = CacheConfig { capacity_bytes: 4096 * 8, block_bytes: 4096, ways: 2 };
/// let mut cache = SetAssocCache::new(cfg)?;
/// let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
/// let mut admit = AlwaysAdmit;
/// let r = TraceRecord::read(0x5000);
/// let first = cache.access(&r, 0, None, &mut admit, &mut lru);
/// assert!(!first.is_hit());
/// let second = cache.access(&r, 1, None, &mut admit, &mut lru);
/// assert!(second.is_hit());
/// # Ok::<(), icgmm_cache::CacheConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    blocks: Vec<BlockState>,
}

impl SetAssocCache {
    /// Builds an empty cache.
    ///
    /// # Errors
    ///
    /// Returns [`CacheConfigError`] for invalid geometry.
    pub fn new(cfg: CacheConfig) -> Result<Self, CacheConfigError> {
        cfg.validate()?;
        Ok(SetAssocCache {
            cfg,
            blocks: vec![BlockState::default(); cfg.num_blocks()],
        })
    }

    /// The geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.cfg.ways + way
    }

    /// Parallel tag compare: the way holding `page`, if present.
    pub fn lookup(&self, page: PageIndex) -> Option<usize> {
        let set = self.cfg.set_of(page);
        let tag = self.cfg.tag_of(page);
        (0..self.cfg.ways).find(|&w| {
            let b = &self.blocks[self.slot(set, w)];
            b.valid && b.tag == tag
        })
    }

    /// `true` when `page` is cached.
    pub fn contains(&self, page: PageIndex) -> bool {
        self.lookup(page).is_some()
    }

    /// Number of valid blocks.
    pub fn occupancy(&self) -> usize {
        self.blocks.iter().filter(|b| b.valid).count()
    }

    /// Read-only view of a block (diagnostics and tests).
    pub fn block(&self, set: usize, way: usize) -> &BlockState {
        &self.blocks[self.slot(set, way)]
    }

    /// The full tag array, `set`-major (`set * ways + way`). The
    /// speculative batcher snapshots this into its shadow state at every
    /// window start.
    pub fn blocks(&self) -> &[BlockState] {
        &self.blocks
    }

    /// Full access path: lookup, hit handling, admission, insertion and
    /// eviction — one host request end-to-end.
    ///
    /// `score` is the policy-engine output for this page; pass `None` when
    /// the policy engine is disabled (the hardware then falls back to LRU,
    /// per §4.1). Hits never consult `score`.
    pub fn access(
        &mut self,
        record: &TraceRecord,
        seq: u64,
        score: Option<f64>,
        admission: &mut dyn AdmissionPolicy,
        eviction: &mut dyn EvictionPolicy,
    ) -> AccessOutcome {
        let page = record.page();
        if let Some(way) = self.lookup(page) {
            // Hit: bypass the policy engine entirely.
            let ctx = AccessCtx {
                page,
                op: record.op,
                seq,
                score: None,
            };
            let set = self.cfg.set_of(page);
            let slot = self.slot(set, way);
            if record.op == Op::Write {
                self.blocks[slot].dirty = true;
            }
            eviction.on_hit(set, way, &ctx);
            return AccessOutcome::Hit { way };
        }

        let ctx = AccessCtx {
            page,
            op: record.op,
            seq,
            score,
        };
        if !admission.should_admit(&ctx) {
            return AccessOutcome::MissBypassed;
        }
        let (way, evicted) = self.insert(page, record.op, &ctx, eviction);
        AccessOutcome::MissInserted { way, evicted }
    }

    /// Inserts `page` (which must not be present), evicting if needed.
    fn insert(
        &mut self,
        page: PageIndex,
        op: Op,
        ctx: &AccessCtx,
        eviction: &mut dyn EvictionPolicy,
    ) -> (usize, Option<Eviction>) {
        let set = self.cfg.set_of(page);
        let tag = self.cfg.tag_of(page);
        // Prefer an invalid way.
        let way = (0..self.cfg.ways)
            .find(|&w| !self.blocks[self.slot(set, w)].valid)
            .unwrap_or_else(|| eviction.choose_victim(set, self.cfg.ways, ctx));
        debug_assert!(way < self.cfg.ways, "policy returned way out of range");
        let slot = self.slot(set, way);
        let old = self.blocks[slot];
        let evicted = if old.valid {
            Some(Eviction {
                page: self.cfg.page_of(set, old.tag),
                dirty: old.dirty,
            })
        } else {
            None
        };
        self.blocks[slot] = BlockState {
            tag,
            valid: true,
            // Write-allocate: a write miss fetches the page then dirties it.
            dirty: op == Op::Write,
        };
        eviction.on_insert(set, way, ctx);
        (way, evicted)
    }

    /// Invalidates everything (keeps policy state; intended for tests and
    /// phase-reset experiments).
    pub fn clear(&mut self) {
        for b in &mut self.blocks {
            *b = BlockState::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AlwaysAdmit, LruPolicy, ThresholdAdmit};

    fn tiny() -> (SetAssocCache, LruPolicy) {
        // 2 sets × 2 ways.
        let cfg = CacheConfig {
            capacity_bytes: 4 * 4096,
            block_bytes: 4096,
            ways: 2,
        };
        let c = SetAssocCache::new(cfg).unwrap();
        let p = LruPolicy::new(cfg.num_sets(), cfg.ways);
        (c, p)
    }

    fn read(page: u64) -> TraceRecord {
        TraceRecord::read(page << 12)
    }

    fn write(page: u64) -> TraceRecord {
        TraceRecord::write(page << 12)
    }

    #[test]
    fn miss_then_hit() {
        let (mut c, mut lru) = tiny();
        let mut admit = AlwaysAdmit;
        assert!(!c.access(&read(4), 0, None, &mut admit, &mut lru).is_hit());
        assert!(c.access(&read(4), 1, None, &mut admit, &mut lru).is_hit());
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn lru_eviction_in_a_full_set() {
        let (mut c, mut lru) = tiny();
        let mut admit = AlwaysAdmit;
        // Pages 0, 2, 4 all map to set 0 (2 sets).
        c.access(&read(0), 0, None, &mut admit, &mut lru);
        c.access(&read(2), 1, None, &mut admit, &mut lru);
        // Touch page 0 so page 2 is LRU.
        c.access(&read(0), 2, None, &mut admit, &mut lru);
        let out = c.access(&read(4), 3, None, &mut admit, &mut lru);
        match out {
            AccessOutcome::MissInserted {
                evicted: Some(e), ..
            } => {
                assert_eq!(e.page.raw(), 2);
                assert!(!e.dirty);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(c.contains(PageIndex::new(0)));
        assert!(!c.contains(PageIndex::new(2)));
    }

    #[test]
    fn write_allocate_sets_dirty_and_writeback_reports_it() {
        let (mut c, mut lru) = tiny();
        let mut admit = AlwaysAdmit;
        c.access(&write(0), 0, None, &mut admit, &mut lru);
        c.access(&read(2), 1, None, &mut admit, &mut lru);
        c.access(&read(2), 2, None, &mut admit, &mut lru); // page 0 is LRU
        let out = c.access(&read(4), 3, None, &mut admit, &mut lru);
        match out {
            AccessOutcome::MissInserted {
                evicted: Some(e), ..
            } => {
                assert_eq!(e.page.raw(), 0);
                assert!(e.dirty, "written page must be dirty on eviction");
            }
            other => panic!("expected dirty eviction, got {other:?}"),
        }
    }

    #[test]
    fn write_hit_dirties_a_clean_block() {
        let (mut c, mut lru) = tiny();
        let mut admit = AlwaysAdmit;
        c.access(&read(4), 0, None, &mut admit, &mut lru);
        let set = c.config().set_of(PageIndex::new(4));
        let way = c.lookup(PageIndex::new(4)).unwrap();
        assert!(!c.block(set, way).dirty);
        c.access(&write(4), 1, None, &mut admit, &mut lru);
        assert!(c.block(set, way).dirty);
    }

    #[test]
    fn bypass_leaves_cache_untouched() {
        let (mut c, mut lru) = tiny();
        let mut admit = ThresholdAdmit::new(0.5);
        let out = c.access(&read(6), 0, Some(0.1), &mut admit, &mut lru);
        assert_eq!(out, AccessOutcome::MissBypassed);
        assert_eq!(c.occupancy(), 0);
        assert!(!c.contains(PageIndex::new(6)));
    }

    #[test]
    fn distinct_tags_same_set_coexist() {
        let (mut c, mut lru) = tiny();
        let mut admit = AlwaysAdmit;
        c.access(&read(0), 0, None, &mut admit, &mut lru);
        c.access(&read(2), 1, None, &mut admit, &mut lru);
        assert!(c.contains(PageIndex::new(0)));
        assert!(c.contains(PageIndex::new(2)));
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn clear_empties_the_cache() {
        let (mut c, mut lru) = tiny();
        let mut admit = AlwaysAdmit;
        c.access(&read(0), 0, None, &mut admit, &mut lru);
        c.clear();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.contains(PageIndex::new(0)));
    }
}
