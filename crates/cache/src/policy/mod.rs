//! Admission and eviction policy traits plus the standard implementations.
//!
//! The cache simulator is policy-agnostic: [`EvictionPolicy`] chooses
//! victims and maintains per-block replacement metadata, while
//! [`AdmissionPolicy`] decides whether a missed page enters the cache at
//! all. GMM scores reach the policies through [`AccessCtx::score`], which
//! the simulator fills in on misses only (hits bypass the policy engine,
//! exactly as in the paper's Fig. 4).

mod belady;
mod fifo;
mod gmm;
mod lfu;
mod lru;
mod random;

pub use belady::BeladyPolicy;
pub use fifo::FifoPolicy;
pub(crate) use gmm::min_by_score_then_recency;
pub use gmm::GmmScorePolicy;
pub use lfu::LfuPolicy;
pub use lru::LruPolicy;
pub use random::RandomPolicy;

use icgmm_trace::{Op, PageIndex};

/// How the speculative miss-window batcher's shadow should predict this
/// policy's victim choices (see `crate::WindowedSimulator`).
///
/// The shadow maintains per-slot recency, insertion-order, frequency and
/// stored-score metadata in lock-step with the replay; the model names
/// which of those the policy's [`EvictionPolicy::choose_victim`] actually
/// consults, so the shadow can rank the same way and speculated windows
/// stay divergence-free. A model is a *prediction* contract only — every
/// victim is still verified against the real policy at replay, so a policy
/// exposing a poor model (or the default) loses batching throughput, never
/// correctness.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum ShadowVictimModel {
    /// Victim = least-recently-touched block (LRU). Also the fallback for
    /// policies whose choices the shadow cannot rank (Random, Belady):
    /// their victims simply diverge and cut the window.
    #[default]
    Recency,
    /// Victim = oldest-inserted block; hits do not refresh (FIFO).
    Insertion,
    /// Victim = fewest hits since insertion, least-recently-touched
    /// tie-break (LFU).
    Frequency,
    /// Victim = lowest stored score, least-recently-touched tie-break (the
    /// paper's score-table eviction). `hit_bonus` mirrors
    /// [`GmmScorePolicy::with_hit_bonus`]: on every hit the stored score is
    /// multiplied by `1 + hit_bonus`.
    StoredScore {
        /// Multiplicative score bump the policy applies on hits.
        hit_bonus: f64,
    },
}

/// Per-request context handed to policies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccessCtx {
    /// The requested page.
    pub page: PageIndex,
    /// Read or write.
    pub op: Op,
    /// Zero-based request sequence number.
    pub seq: u64,
    /// Policy-engine score of the requested page; `None` on hits (the
    /// hardware does not invoke the GMM on a hit) and when running a
    /// score-free policy such as plain LRU.
    pub score: Option<f64>,
}

/// Chooses victims and maintains per-block replacement state.
///
/// Implementations are sized for a specific geometry at construction and
/// are driven by the cache through the three callbacks.
pub trait EvictionPolicy {
    /// Short policy name for reports.
    fn name(&self) -> &str;

    /// The requested page hit in `set` at `way`.
    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx);

    /// A page was inserted into `set` at `way`.
    fn on_insert(&mut self, set: usize, way: usize, ctx: &AccessCtx);

    /// Chooses the victim way in a full `set` (all `ways` valid).
    fn choose_victim(&mut self, set: usize, ways: usize, ctx: &AccessCtx) -> usize;

    /// The victim model the speculative batcher's shadow should use to
    /// predict this policy's [`EvictionPolicy::choose_victim`] choices.
    ///
    /// Defaults to [`ShadowVictimModel::Recency`]; policies ranked by
    /// something else override it so miss-heavy windows stay predictable
    /// (a wrong model only costs speed — replay verifies every victim).
    fn shadow_victim_model(&self) -> ShadowVictimModel {
        ShadowVictimModel::default()
    }

    /// Whether this policy's decisions depend only on the *relative order*
    /// of the events it sees within each set — never on cross-set
    /// interleaving, global call counts, or absolute sequence values.
    ///
    /// Set-partitioned replay ([`crate::ShardedSimulator`]) hands each
    /// shard the subsequence of requests touching its sets, with
    /// shard-local sequence numbers that are order-isomorphic to the
    /// global ones; a policy meeting this contract then makes bit-identical
    /// decisions in any shard count. Every deterministic policy in this
    /// crate qualifies (LRU/FIFO/LFU stamps and counts, gmm-score's stored
    /// scores, Belady's positions when built from the same shard
    /// subsequence). [`RandomPolicy`] does not — its RNG stream is a
    /// global interleaving artifact — and overrides this to `false`, which
    /// makes the sharded simulator refuse it above one shard.
    fn shard_deterministic(&self) -> bool {
        true
    }
}

/// Decides whether a missed page is inserted or bypassed.
pub trait AdmissionPolicy {
    /// Short policy name for reports.
    fn name(&self) -> &str;

    /// `true` to insert the missed page, `false` to bypass the cache.
    fn should_admit(&mut self, ctx: &AccessCtx) -> bool;
}

/// Admits every miss (the classic write-allocate cache; the paper's LRU
/// baseline and its "GMM eviction-only" mode use this).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AlwaysAdmit;

impl AdmissionPolicy for AlwaysAdmit {
    fn name(&self) -> &str {
        "always"
    }

    fn should_admit(&mut self, _ctx: &AccessCtx) -> bool {
        true
    }
}

/// The paper's smart-caching rule: admit on `score ≥ threshold`.
///
/// Writes can be exempted (`admit_writes_always`, default `true`): with
/// write-allocate semantics, bypassing a write would cost a full SSD
/// program (900 µs) on the critical path, so real deployments admit
/// write misses unconditionally. Set it to `false` for the strictly
/// score-driven variant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThresholdAdmit {
    /// Minimum score required for admission.
    pub threshold: f64,
    /// Admit write misses regardless of score.
    pub admit_writes_always: bool,
}

impl ThresholdAdmit {
    /// Creates the paper-style admission filter.
    pub fn new(threshold: f64) -> Self {
        ThresholdAdmit {
            threshold,
            admit_writes_always: true,
        }
    }
}

impl AdmissionPolicy for ThresholdAdmit {
    fn name(&self) -> &str {
        "gmm-threshold"
    }

    fn should_admit(&mut self, ctx: &AccessCtx) -> bool {
        if self.admit_writes_always && ctx.op.is_write() {
            return true;
        }
        match ctx.score {
            Some(s) => s >= self.threshold,
            // No score available (policy engine disabled): behave like a
            // normal cache.
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icgmm_trace::{Op, PageIndex};

    fn ctx(op: Op, score: Option<f64>) -> AccessCtx {
        AccessCtx {
            page: PageIndex::new(1),
            op,
            seq: 0,
            score,
        }
    }

    #[test]
    fn always_admit_admits() {
        let mut a = AlwaysAdmit;
        assert!(a.should_admit(&ctx(Op::Read, None)));
        assert!(a.should_admit(&ctx(Op::Write, Some(-1.0))));
        assert_eq!(a.name(), "always");
    }

    #[test]
    fn threshold_respects_score() {
        let mut a = ThresholdAdmit::new(0.5);
        assert!(a.should_admit(&ctx(Op::Read, Some(0.5))));
        assert!(a.should_admit(&ctx(Op::Read, Some(0.9))));
        assert!(!a.should_admit(&ctx(Op::Read, Some(0.1))));
        // Missing score ⇒ admit.
        assert!(a.should_admit(&ctx(Op::Read, None)));
    }

    #[test]
    fn writes_exempt_by_default_but_configurable() {
        let mut a = ThresholdAdmit::new(0.5);
        assert!(a.should_admit(&ctx(Op::Write, Some(0.0))));
        a.admit_writes_always = false;
        assert!(!a.should_admit(&ctx(Op::Write, Some(0.0))));
        assert!(a.should_admit(&ctx(Op::Write, Some(0.8))));
    }
}
