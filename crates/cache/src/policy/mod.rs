//! Admission and eviction policy traits plus the standard implementations.
//!
//! The cache simulator is policy-agnostic: [`EvictionPolicy`] chooses
//! victims and maintains per-block replacement metadata, while
//! [`AdmissionPolicy`] decides whether a missed page enters the cache at
//! all. GMM scores reach the policies through [`AccessCtx::score`], which
//! the simulator fills in on misses only (hits bypass the policy engine,
//! exactly as in the paper's Fig. 4).

mod belady;
mod fifo;
mod gmm;
mod lfu;
mod lru;
mod random;

pub use belady::BeladyPolicy;
pub use fifo::FifoPolicy;
pub use gmm::GmmScorePolicy;
pub use lfu::LfuPolicy;
pub use lru::LruPolicy;
pub use random::RandomPolicy;

use icgmm_trace::{Op, PageIndex};

/// Per-request context handed to policies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccessCtx {
    /// The requested page.
    pub page: PageIndex,
    /// Read or write.
    pub op: Op,
    /// Zero-based request sequence number.
    pub seq: u64,
    /// Policy-engine score of the requested page; `None` on hits (the
    /// hardware does not invoke the GMM on a hit) and when running a
    /// score-free policy such as plain LRU.
    pub score: Option<f64>,
}

/// Chooses victims and maintains per-block replacement state.
///
/// Implementations are sized for a specific geometry at construction and
/// are driven by the cache through the three callbacks.
pub trait EvictionPolicy {
    /// Short policy name for reports.
    fn name(&self) -> &str;

    /// The requested page hit in `set` at `way`.
    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx);

    /// A page was inserted into `set` at `way`.
    fn on_insert(&mut self, set: usize, way: usize, ctx: &AccessCtx);

    /// Chooses the victim way in a full `set` (all `ways` valid).
    fn choose_victim(&mut self, set: usize, ways: usize, ctx: &AccessCtx) -> usize;
}

/// Decides whether a missed page is inserted or bypassed.
pub trait AdmissionPolicy {
    /// Short policy name for reports.
    fn name(&self) -> &str;

    /// `true` to insert the missed page, `false` to bypass the cache.
    fn should_admit(&mut self, ctx: &AccessCtx) -> bool;
}

/// Admits every miss (the classic write-allocate cache; the paper's LRU
/// baseline and its "GMM eviction-only" mode use this).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AlwaysAdmit;

impl AdmissionPolicy for AlwaysAdmit {
    fn name(&self) -> &str {
        "always"
    }

    fn should_admit(&mut self, _ctx: &AccessCtx) -> bool {
        true
    }
}

/// The paper's smart-caching rule: admit on `score ≥ threshold`.
///
/// Writes can be exempted (`admit_writes_always`, default `true`): with
/// write-allocate semantics, bypassing a write would cost a full SSD
/// program (900 µs) on the critical path, so real deployments admit
/// write misses unconditionally. Set it to `false` for the strictly
/// score-driven variant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThresholdAdmit {
    /// Minimum score required for admission.
    pub threshold: f64,
    /// Admit write misses regardless of score.
    pub admit_writes_always: bool,
}

impl ThresholdAdmit {
    /// Creates the paper-style admission filter.
    pub fn new(threshold: f64) -> Self {
        ThresholdAdmit {
            threshold,
            admit_writes_always: true,
        }
    }
}

impl AdmissionPolicy for ThresholdAdmit {
    fn name(&self) -> &str {
        "gmm-threshold"
    }

    fn should_admit(&mut self, ctx: &AccessCtx) -> bool {
        if self.admit_writes_always && ctx.op.is_write() {
            return true;
        }
        match ctx.score {
            Some(s) => s >= self.threshold,
            // No score available (policy engine disabled): behave like a
            // normal cache.
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icgmm_trace::{Op, PageIndex};

    fn ctx(op: Op, score: Option<f64>) -> AccessCtx {
        AccessCtx {
            page: PageIndex::new(1),
            op,
            seq: 0,
            score,
        }
    }

    #[test]
    fn always_admit_admits() {
        let mut a = AlwaysAdmit;
        assert!(a.should_admit(&ctx(Op::Read, None)));
        assert!(a.should_admit(&ctx(Op::Write, Some(-1.0))));
        assert_eq!(a.name(), "always");
    }

    #[test]
    fn threshold_respects_score() {
        let mut a = ThresholdAdmit::new(0.5);
        assert!(a.should_admit(&ctx(Op::Read, Some(0.5))));
        assert!(a.should_admit(&ctx(Op::Read, Some(0.9))));
        assert!(!a.should_admit(&ctx(Op::Read, Some(0.1))));
        // Missing score ⇒ admit.
        assert!(a.should_admit(&ctx(Op::Read, None)));
    }

    #[test]
    fn writes_exempt_by_default_but_configurable() {
        let mut a = ThresholdAdmit::new(0.5);
        assert!(a.should_admit(&ctx(Op::Write, Some(0.0))));
        a.admit_writes_always = false;
        assert!(!a.should_admit(&ctx(Op::Write, Some(0.0))));
        assert!(a.should_admit(&ctx(Op::Write, Some(0.8))));
    }
}
