//! First-In-First-Out eviction (insertion order, ignores hits).

use super::{AccessCtx, EvictionPolicy, ShadowVictimModel};

/// FIFO: the victim is the block inserted longest ago.
#[derive(Clone, Debug)]
pub struct FifoPolicy {
    inserted: Vec<u64>,
    ways: usize,
}

impl FifoPolicy {
    /// Creates a FIFO policy for `sets × ways` blocks.
    ///
    /// # Panics
    ///
    /// Panics on a zero-way geometry — [`crate::CacheConfig::new`] rejects
    /// those before a policy is ever sized, so `choose_victim` always has a
    /// candidate.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(ways >= 1, "cache geometry must have at least one way");
        FifoPolicy {
            inserted: vec![0; sets * ways],
            ways,
        }
    }
}

impl EvictionPolicy for FifoPolicy {
    fn name(&self) -> &str {
        "fifo"
    }

    fn on_hit(&mut self, _set: usize, _way: usize, _ctx: &AccessCtx) {
        // FIFO ignores reuse.
    }

    fn on_insert(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        self.inserted[set * self.ways + way] = ctx.seq + 1;
    }

    fn choose_victim(&mut self, set: usize, ways: usize, _ctx: &AccessCtx) -> usize {
        (0..ways)
            .min_by_key(|&w| self.inserted[set * self.ways + w])
            .expect("set has at least one way")
    }

    fn shadow_victim_model(&self) -> ShadowVictimModel {
        ShadowVictimModel::Insertion
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icgmm_trace::{Op, PageIndex};

    fn ctx(seq: u64) -> AccessCtx {
        AccessCtx {
            page: PageIndex::new(0),
            op: Op::Read,
            seq,
            score: None,
        }
    }

    #[test]
    fn hits_do_not_save_a_block() {
        let mut p = FifoPolicy::new(1, 2);
        p.on_insert(0, 0, &ctx(1));
        p.on_insert(0, 1, &ctx(2));
        // Hit on way 0 should NOT update its position.
        p.on_hit(0, 0, &ctx(50));
        assert_eq!(p.choose_victim(0, 2, &ctx(51)), 0);
    }

    #[test]
    fn insertion_order_decides() {
        let mut p = FifoPolicy::new(1, 3);
        p.on_insert(0, 2, &ctx(5));
        p.on_insert(0, 0, &ctx(9));
        p.on_insert(0, 1, &ctx(7));
        assert_eq!(p.choose_victim(0, 3, &ctx(10)), 2);
    }
}
