//! Least-Frequently-Used eviction (frequency baseline).

use super::{AccessCtx, EvictionPolicy, ShadowVictimModel};

/// LFU with per-block hit counters; counters reset on insertion, and ties
/// break toward the least-recently touched block.
#[derive(Clone, Debug)]
pub struct LfuPolicy {
    count: Vec<u64>,
    last: Vec<u64>,
    ways: usize,
}

impl LfuPolicy {
    /// Creates an LFU policy for `sets × ways` blocks.
    ///
    /// # Panics
    ///
    /// Panics on a zero-way geometry — [`crate::CacheConfig::new`] rejects
    /// those before a policy is ever sized, so `choose_victim` always has a
    /// candidate.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(ways >= 1, "cache geometry must have at least one way");
        LfuPolicy {
            count: vec![0; sets * ways],
            last: vec![0; sets * ways],
            ways,
        }
    }

    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }
}

impl EvictionPolicy for LfuPolicy {
    fn name(&self) -> &str {
        "lfu"
    }

    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        let s = self.slot(set, way);
        self.count[s] = self.count[s].saturating_add(1);
        self.last[s] = ctx.seq + 1;
    }

    fn on_insert(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        let s = self.slot(set, way);
        self.count[s] = 1;
        self.last[s] = ctx.seq + 1;
    }

    fn choose_victim(&mut self, set: usize, ways: usize, _ctx: &AccessCtx) -> usize {
        (0..ways)
            .min_by_key(|&w| {
                let s = self.slot(set, w);
                (self.count[s], self.last[s])
            })
            .expect("set has at least one way")
    }

    fn shadow_victim_model(&self) -> ShadowVictimModel {
        ShadowVictimModel::Frequency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icgmm_trace::{Op, PageIndex};

    fn ctx(seq: u64) -> AccessCtx {
        AccessCtx {
            page: PageIndex::new(0),
            op: Op::Read,
            seq,
            score: None,
        }
    }

    #[test]
    fn victim_is_least_frequent() {
        let mut p = LfuPolicy::new(1, 3);
        for w in 0..3 {
            p.on_insert(0, w, &ctx(w as u64));
        }
        p.on_hit(0, 0, &ctx(10));
        p.on_hit(0, 0, &ctx(11));
        p.on_hit(0, 2, &ctx(12));
        assert_eq!(p.choose_victim(0, 3, &ctx(13)), 1);
    }

    #[test]
    fn ties_break_to_least_recent() {
        let mut p = LfuPolicy::new(1, 2);
        p.on_insert(0, 0, &ctx(5));
        p.on_insert(0, 1, &ctx(9));
        // Equal counts (both 1): way 0 is older.
        assert_eq!(p.choose_victim(0, 2, &ctx(10)), 0);
    }

    #[test]
    fn insert_resets_frequency() {
        let mut p = LfuPolicy::new(1, 2);
        p.on_insert(0, 0, &ctx(0));
        for s in 1..5 {
            p.on_hit(0, 0, &ctx(s));
        }
        p.on_insert(0, 1, &ctx(6));
        // Way 0 is frequent; replacing its contents must reset the counter.
        p.on_insert(0, 0, &ctx(7));
        p.on_hit(0, 1, &ctx(8));
        assert_eq!(p.choose_victim(0, 2, &ctx(9)), 0);
    }
}
