//! Least-Recently-Used eviction — the paper's baseline policy.

use super::{AccessCtx, EvictionPolicy};

/// Classic LRU: each block remembers the sequence number of its last touch;
/// the victim is the block with the smallest one.
#[derive(Clone, Debug)]
pub struct LruPolicy {
    last_used: Vec<u64>,
    ways: usize,
}

impl LruPolicy {
    /// Creates an LRU policy for `sets × ways` blocks.
    ///
    /// # Panics
    ///
    /// Panics on a zero-way geometry — [`crate::CacheConfig::new`] rejects
    /// those before a policy is ever sized, so `choose_victim` always has a
    /// candidate.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(ways >= 1, "cache geometry must have at least one way");
        LruPolicy {
            last_used: vec![0; sets * ways],
            ways,
        }
    }

    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }
}

impl EvictionPolicy for LruPolicy {
    fn name(&self) -> &str {
        "lru"
    }

    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        let s = self.slot(set, way);
        self.last_used[s] = ctx.seq + 1; // +1 so seq 0 differs from "never"
    }

    fn on_insert(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        let s = self.slot(set, way);
        self.last_used[s] = ctx.seq + 1;
    }

    fn choose_victim(&mut self, set: usize, ways: usize, _ctx: &AccessCtx) -> usize {
        (0..ways)
            .min_by_key(|&w| self.last_used[self.slot(set, w)])
            .expect("set has at least one way")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icgmm_trace::{Op, PageIndex};

    fn ctx(seq: u64) -> AccessCtx {
        AccessCtx {
            page: PageIndex::new(0),
            op: Op::Read,
            seq,
            score: None,
        }
    }

    #[test]
    fn victim_is_least_recent() {
        let mut p = LruPolicy::new(1, 4);
        for (way, seq) in [(0, 10), (1, 5), (2, 20), (3, 7)] {
            p.on_insert(0, way, &ctx(seq));
        }
        assert_eq!(p.choose_victim(0, 4, &ctx(30)), 1);
        // Touching way 1 moves the victim to way 3.
        p.on_hit(0, 1, &ctx(31));
        assert_eq!(p.choose_victim(0, 4, &ctx(32)), 3);
    }

    #[test]
    fn sets_are_independent() {
        let mut p = LruPolicy::new(2, 2);
        p.on_insert(0, 0, &ctx(100));
        p.on_insert(0, 1, &ctx(200));
        p.on_insert(1, 0, &ctx(1));
        p.on_insert(1, 1, &ctx(2));
        assert_eq!(p.choose_victim(0, 2, &ctx(300)), 0);
        assert_eq!(p.choose_victim(1, 2, &ctx(300)), 0);
        p.on_hit(1, 0, &ctx(301));
        assert_eq!(p.choose_victim(1, 2, &ctx(302)), 1);
    }

    #[test]
    fn name_is_lru() {
        assert_eq!(LruPolicy::new(1, 1).name(), "lru");
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_way_geometry_is_rejected_at_construction() {
        let _ = LruPolicy::new(8, 0);
    }
}
