//! Uniform-random eviction (a cheap hardware baseline).

use super::{AccessCtx, EvictionPolicy};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random replacement: the victim way is drawn uniformly.
#[derive(Clone, Debug)]
pub struct RandomPolicy {
    rng: SmallRng,
}

impl RandomPolicy {
    /// Creates a random policy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl EvictionPolicy for RandomPolicy {
    fn name(&self) -> &str {
        "random"
    }

    fn on_hit(&mut self, _set: usize, _way: usize, _ctx: &AccessCtx) {}

    fn on_insert(&mut self, _set: usize, _way: usize, _ctx: &AccessCtx) {}

    fn choose_victim(&mut self, _set: usize, ways: usize, _ctx: &AccessCtx) -> usize {
        self.rng.gen_range(0..ways)
    }

    /// The RNG stream advances once per victim anywhere in the cache, so
    /// a shard replaying only its own sets draws different victims than
    /// the single-threaded interleaving — not shardable.
    fn shard_deterministic(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icgmm_trace::{Op, PageIndex};

    #[test]
    fn victims_cover_all_ways() {
        let mut p = RandomPolicy::new(7);
        let ctx = AccessCtx {
            page: PageIndex::new(0),
            op: Op::Read,
            seq: 0,
            score: None,
        };
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = p.choose_victim(0, 4, &ctx);
            assert!(v < 4);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all ways chosen: {seen:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let ctx = AccessCtx {
            page: PageIndex::new(0),
            op: Op::Read,
            seq: 0,
            score: None,
        };
        let mut a = RandomPolicy::new(42);
        let mut b = RandomPolicy::new(42);
        for _ in 0..50 {
            assert_eq!(a.choose_victim(0, 8, &ctx), b.choose_victim(0, 8, &ctx));
        }
    }
}
