//! GMM-score eviction — the paper's smart eviction (§3.2).
//!
//! Each cached block stores the GMM score computed when the block was
//! inserted (the hardware keeps it in the cache-tag/score table buffer of
//! Fig. 5); on a full set, the victim is the block with the lowest stored
//! score. Hits do **not** recompute the score (they bypass the policy
//! engine), but an optional multiplicative `hit_bonus` can nudge stored
//! scores upward on reuse for ablation studies (default 0 = paper-faithful).

use super::{AccessCtx, EvictionPolicy, ShadowVictimModel};

/// Lexicographic strict-`<` scan over `(stored score, recency)` keys: the
/// way with the lowest score wins, equal scores fall back to the least
/// recent. Shared by [`GmmScorePolicy::choose_victim`] and the
/// speculative batcher's stored-score victim prediction — one
/// implementation, so the shadow's ranking (including NaN handling, which
/// the strict-`<` scan never selects past way 0) cannot drift from the
/// real policy's.
pub(crate) fn min_by_score_then_recency(keys: impl Iterator<Item = (f64, u64)>) -> usize {
    let mut victim = 0;
    let mut best = (f64::INFINITY, u64::MAX);
    for (w, key) in keys.enumerate() {
        if key.0 < best.0 || (key.0 == best.0 && key.1 < best.1) {
            best = key;
            victim = w;
        }
    }
    victim
}

/// Stored-score eviction with LRU tie-breaking.
#[derive(Clone, Debug)]
pub struct GmmScorePolicy {
    score: Vec<f64>,
    last: Vec<u64>,
    ways: usize,
    hit_bonus: f64,
}

impl GmmScorePolicy {
    /// Creates the policy for `sets × ways` blocks (paper behaviour:
    /// no hit bonus).
    pub fn new(sets: usize, ways: usize) -> Self {
        GmmScorePolicy {
            score: vec![0.0; sets * ways],
            last: vec![0; sets * ways],
            ways,
            hit_bonus: 0.0,
        }
    }

    /// Creates the policy with a multiplicative hit bonus: on every hit the
    /// stored score becomes `score × (1 + bonus)`. Used by the ablation
    /// benches; `bonus = 0` reproduces the paper.
    pub fn with_hit_bonus(sets: usize, ways: usize, bonus: f64) -> Self {
        GmmScorePolicy {
            hit_bonus: bonus,
            ..GmmScorePolicy::new(sets, ways)
        }
    }

    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Stored score of a block (tests and diagnostics).
    pub fn stored_score(&self, set: usize, way: usize) -> f64 {
        self.score[self.slot(set, way)]
    }
}

impl EvictionPolicy for GmmScorePolicy {
    fn name(&self) -> &str {
        "gmm-score"
    }

    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        let s = self.slot(set, way);
        self.last[s] = ctx.seq + 1;
        if self.hit_bonus > 0.0 {
            self.score[s] *= 1.0 + self.hit_bonus;
        }
    }

    fn on_insert(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        let s = self.slot(set, way);
        // A block inserted without a score (e.g. policy engine disabled for
        // a stretch) gets score 0 and is first in line for eviction.
        self.score[s] = ctx.score.unwrap_or(0.0);
        self.last[s] = ctx.seq + 1;
    }

    fn choose_victim(&mut self, set: usize, ways: usize, _ctx: &AccessCtx) -> usize {
        // Victim selection runs on every conflict miss: scan the set's
        // score/recency slots as two contiguous strips rather than
        // re-deriving the slot index per way.
        let base = set * self.ways;
        let scores = &self.score[base..base + ways];
        let lasts = &self.last[base..base + ways];
        min_by_score_then_recency(scores.iter().zip(lasts).map(|(s, l)| (*s, *l)))
    }

    fn shadow_victim_model(&self) -> ShadowVictimModel {
        ShadowVictimModel::StoredScore {
            hit_bonus: self.hit_bonus,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icgmm_trace::{Op, PageIndex};

    fn ctx(seq: u64, score: Option<f64>) -> AccessCtx {
        AccessCtx {
            page: PageIndex::new(0),
            op: Op::Read,
            seq,
            score,
        }
    }

    #[test]
    fn lowest_score_is_evicted() {
        let mut p = GmmScorePolicy::new(1, 3);
        p.on_insert(0, 0, &ctx(0, Some(0.9)));
        p.on_insert(0, 1, &ctx(1, Some(0.2)));
        p.on_insert(0, 2, &ctx(2, Some(0.5)));
        assert_eq!(p.choose_victim(0, 3, &ctx(3, Some(0.7))), 1);
        assert_eq!(p.stored_score(0, 0), 0.9);
    }

    #[test]
    fn equal_scores_fall_back_to_lru() {
        let mut p = GmmScorePolicy::new(1, 2);
        p.on_insert(0, 0, &ctx(10, Some(0.0)));
        p.on_insert(0, 1, &ctx(20, Some(0.0)));
        assert_eq!(p.choose_victim(0, 2, &ctx(30, None)), 0);
        p.on_hit(0, 0, &ctx(31, None));
        assert_eq!(p.choose_victim(0, 2, &ctx(32, None)), 1);
    }

    #[test]
    fn hits_do_not_change_score_by_default() {
        let mut p = GmmScorePolicy::new(1, 1);
        p.on_insert(0, 0, &ctx(0, Some(0.4)));
        p.on_hit(0, 0, &ctx(1, None));
        assert_eq!(p.stored_score(0, 0), 0.4);
    }

    #[test]
    fn hit_bonus_raises_score() {
        let mut p = GmmScorePolicy::with_hit_bonus(1, 1, 0.5);
        p.on_insert(0, 0, &ctx(0, Some(0.4)));
        p.on_hit(0, 0, &ctx(1, None));
        assert!((p.stored_score(0, 0) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn missing_score_means_first_victim() {
        let mut p = GmmScorePolicy::new(1, 2);
        p.on_insert(0, 0, &ctx(0, None));
        p.on_insert(0, 1, &ctx(1, Some(0.1)));
        assert_eq!(p.choose_victim(0, 2, &ctx(2, None)), 0);
    }
}
