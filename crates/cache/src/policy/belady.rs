//! Belady's MIN — the clairvoyant eviction oracle.
//!
//! Not part of the paper's evaluation, but invaluable for situating results:
//! it bounds how much *any* eviction policy (including the GMM) could gain.
//! The oracle is built from the full trace ahead of time and evicts the
//! block whose next use lies farthest in the future.

use super::{AccessCtx, EvictionPolicy};
use icgmm_trace::TraceRecord;
use std::collections::{HashMap, VecDeque};

/// Record count above which [`BeladyPolicy::from_records`] builds its
/// occurrence map in parallel chunks. Below this the serial sweep wins
/// (thread spawn + merge overhead dominates).
const PARALLEL_BUILD_MIN: usize = 1 << 16;

/// Offline optimal eviction (Belady's MIN).
#[derive(Clone, Debug, PartialEq)]
pub struct BeladyPolicy {
    /// Remaining occurrence positions per page, in increasing order.
    occurrences: HashMap<u64, VecDeque<u64>>,
    /// Next-use position stored per block slot (`u64::MAX` = never again).
    next_use: Vec<u64>,
    ways: usize,
}

impl BeladyPolicy {
    /// Builds the oracle from the exact record sequence that will be
    /// simulated (positions are 0-based request sequence numbers). Long
    /// traces build the occurrence map in parallel chunks (deterministic —
    /// see [`BeladyPolicy::from_records_chunked`]).
    ///
    /// # Panics
    ///
    /// Panics on a zero-way geometry — [`crate::CacheConfig::new`] rejects
    /// those before a policy is ever sized, so `choose_victim` always has a
    /// candidate.
    pub fn from_records(records: &[TraceRecord], sets: usize, ways: usize) -> Self {
        if records.len() >= PARALLEL_BUILD_MIN {
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8);
            if threads > 1 {
                return BeladyPolicy::from_records_chunked(records, sets, ways, threads);
            }
        }
        BeladyPolicy::from_pages(records.iter().map(|r| r.page().raw()), sets, ways)
    }

    /// Builds the oracle from a page sequence without materializing
    /// records — the zero-copy entry for sharded replay, where the shard
    /// subtrace exists only as an indexed view
    /// (`ctx.warmup.iter().chain(ctx.measured.iter())`).
    ///
    /// # Panics
    ///
    /// Panics on a zero-way geometry (see
    /// [`BeladyPolicy::from_records`]).
    pub fn from_pages<I>(pages: I, sets: usize, ways: usize) -> Self
    where
        I: IntoIterator<Item = u64>,
    {
        assert!(ways >= 1, "cache geometry must have at least one way");
        let mut occurrences: HashMap<u64, VecDeque<u64>> = HashMap::new();
        for (i, page) in pages.into_iter().enumerate() {
            occurrences.entry(page).or_default().push_back(i as u64);
        }
        BeladyPolicy {
            occurrences,
            next_use: vec![u64::MAX; sets * ways],
            ways,
        }
    }

    /// Chunked-parallel oracle build: `chunks` workers each sweep one
    /// contiguous span of `records` into a local occurrence map, and the
    /// locals merge *in chunk order* — per-page position lists stay
    /// ascending and the merged map's content is exactly the serial
    /// sweep's (hash-map iteration order never leaks into the result, and
    /// the oracle's decisions read only map content). The unit test
    /// `chunked_build_matches_serial` and the sharded-replay grid in
    /// `tests/shard_equivalence.rs` pin this down.
    pub fn from_records_chunked(
        records: &[TraceRecord],
        sets: usize,
        ways: usize,
        chunks: usize,
    ) -> Self {
        assert!(ways >= 1, "cache geometry must have at least one way");
        let chunks = chunks.max(1).min(records.len().max(1));
        let span = records.len().div_ceil(chunks);
        let locals: Vec<HashMap<u64, VecDeque<u64>>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = records
                .chunks(span.max(1))
                .enumerate()
                .map(|(c, chunk)| {
                    scope.spawn(move |_| {
                        let start = (c * span.max(1)) as u64;
                        let mut local: HashMap<u64, VecDeque<u64>> = HashMap::new();
                        for (i, r) in chunk.iter().enumerate() {
                            local
                                .entry(r.page().raw())
                                .or_default()
                                .push_back(start + i as u64);
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("oracle chunk sweep does not panic"))
                .collect()
        })
        .expect("scope completes once every handle is joined");
        let mut occurrences: HashMap<u64, VecDeque<u64>> = HashMap::new();
        for local in locals {
            for (page, mut positions) in local {
                occurrences.entry(page).or_default().append(&mut positions);
            }
        }
        BeladyPolicy {
            occurrences,
            next_use: vec![u64::MAX; sets * ways],
            ways,
        }
    }

    /// Next use of `page` strictly after `seq`.
    fn next_use_after(&mut self, page: u64, seq: u64) -> u64 {
        let Some(q) = self.occurrences.get_mut(&page) else {
            return u64::MAX;
        };
        while let Some(&front) = q.front() {
            if front <= seq {
                q.pop_front();
            } else {
                return front;
            }
        }
        u64::MAX
    }

    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }
}

impl EvictionPolicy for BeladyPolicy {
    fn name(&self) -> &str {
        "belady"
    }

    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        let nu = self.next_use_after(ctx.page.raw(), ctx.seq);
        let s = self.slot(set, way);
        self.next_use[s] = nu;
    }

    fn on_insert(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        let nu = self.next_use_after(ctx.page.raw(), ctx.seq);
        let s = self.slot(set, way);
        self.next_use[s] = nu;
    }

    fn choose_victim(&mut self, set: usize, ways: usize, _ctx: &AccessCtx) -> usize {
        (0..ways)
            .max_by_key(|&w| self.next_use[self.slot(set, w)])
            .expect("set has at least one way")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icgmm_trace::{Op, PageIndex};

    fn ctx(page: u64, seq: u64) -> AccessCtx {
        AccessCtx {
            page: PageIndex::new(page),
            op: Op::Read,
            seq,
            score: None,
        }
    }

    #[test]
    fn evicts_farthest_next_use() {
        // Trace: A B C A B D ... — at the miss on D (seq 5), C (never again)
        // must be the victim.
        let records: Vec<TraceRecord> = [0u64, 1, 2, 0, 1, 3]
            .iter()
            .map(|&p| TraceRecord::read(p << 12))
            .collect();
        let mut b = BeladyPolicy::from_records(&records, 1, 3);
        b.on_insert(0, 0, &ctx(0, 0)); // A next at 3
        b.on_insert(0, 1, &ctx(1, 1)); // B next at 4
        b.on_insert(0, 2, &ctx(2, 2)); // C never
        assert_eq!(b.choose_victim(0, 3, &ctx(3, 5)), 2);
    }

    #[test]
    fn hit_updates_next_use() {
        // A A B: after the hit at seq 1, A's next use is MAX.
        let records: Vec<TraceRecord> = [0u64, 0, 1]
            .iter()
            .map(|&p| TraceRecord::read(p << 12))
            .collect();
        let mut b = BeladyPolicy::from_records(&records, 1, 2);
        b.on_insert(0, 0, &ctx(0, 0));
        assert_eq!(b.next_use[0], 1);
        b.on_hit(0, 0, &ctx(0, 1));
        assert_eq!(b.next_use[0], u64::MAX);
    }

    #[test]
    fn unknown_page_never_reused() {
        let mut b = BeladyPolicy::from_records(&[], 1, 1);
        assert_eq!(b.next_use_after(99, 0), u64::MAX);
    }

    #[test]
    fn from_pages_matches_from_records() {
        let records: Vec<TraceRecord> = [0u64, 1, 2, 0, 1, 3, 2, 2]
            .iter()
            .map(|&p| TraceRecord::read(p << 12))
            .collect();
        let a = BeladyPolicy::from_records(&records, 2, 2);
        let b = BeladyPolicy::from_pages(records.iter().map(|r| r.page().raw()), 2, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn chunked_build_matches_serial() {
        // A reuse-heavy page sequence spread across chunk boundaries; the
        // chunk-order merge must reproduce the serial occurrence map
        // exactly for every chunk count (including chunks > records and
        // uneven final chunks).
        let records: Vec<TraceRecord> = (0..257u64)
            .map(|i| TraceRecord::read(((i * 7) % 23) << 12))
            .collect();
        let serial = BeladyPolicy::from_pages(records.iter().map(|r| r.page().raw()), 4, 2);
        for chunks in [1, 2, 3, 4, 8, 300] {
            let chunked = BeladyPolicy::from_records_chunked(&records, 4, 2, chunks);
            assert_eq!(chunked, serial, "chunks = {chunks}");
        }
    }
}
