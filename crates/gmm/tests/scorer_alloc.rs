//! Allocation accounting for scorer hand-off: cloning a [`GmmScorer`]
//! must allocate **zero** heap bytes.
//!
//! The flattened SoA tables (six K-length `f64` columns — 12 KiB at the
//! paper's K = 256) live behind an `Arc`, so handing a scorer to each
//! shard worker or serving thread is an atomic refcount bump that shares
//! one weight buffer, exactly like the paper's scoring pipelines all
//! reading one BRAM weight buffer. This test pins that with a counting
//! global allocator: a regression back to deep-copied tables (six `Vec`
//! clones per worker per model swap) fails on the exact byte count.
//!
//! One `#[test]` per binary: the byte counter is process-global, and a
//! sibling test running concurrently would perturb the delta.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use icgmm_gmm::{Gaussian2, Gmm, GmmScorer, Mat2};

/// Counts cumulative allocated bytes; frees are ignored so the delta
/// over a call is "bytes requested", not peak or net.
struct CountingAlloc;

static ALLOCATED: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates verbatim to `System`; the only addition is a relaxed
// counter bump, which cannot violate the `GlobalAlloc` contract.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size(), Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns its result plus the bytes allocated inside it.
fn allocated_by<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let before = ALLOCATED.load(Ordering::Relaxed);
    let r = f();
    (r, ALLOCATED.load(Ordering::Relaxed) - before)
}

#[test]
fn scorer_clone_allocates_zero_table_bytes() {
    const K: usize = 256; // the paper's component count
    let comps: Vec<Gaussian2> = (0..K)
        .map(|i| {
            let t = i as f64 / K as f64;
            Gaussian2::new(
                [t * 10.0 - 5.0, (t * std::f64::consts::TAU).sin()],
                Mat2::new(0.05 + t * 0.1, 0.01, 0.08),
            )
            .unwrap()
        })
        .collect();
    let gmm = Gmm::new(vec![1.0 / K as f64; K], comps).unwrap();

    // Flattening is where the table bytes are paid — once.
    let (scorer, build_bytes) = allocated_by(|| GmmScorer::from_gmm(&gmm));
    let table_bytes = 6 * K * std::mem::size_of::<f64>();
    assert!(
        build_bytes >= table_bytes,
        "flattening allocated {build_bytes} B, below the {table_bytes} B \
         the six K-length tables require — the tables went missing"
    );

    // Hand-off is free: one refcount bump, zero heap bytes.
    let (copy, clone_bytes) = allocated_by(|| scorer.clone());
    assert_eq!(
        clone_bytes, 0,
        "scorer.clone() allocated {clone_bytes} B; per-worker hand-off \
         must share the tables, not copy them"
    );

    // The shared clone scores bit-identically to the original.
    let x = [0.7, -0.3];
    assert_eq!(
        copy.log_density(x).to_bits(),
        scorer.log_density(x).to_bits()
    );
    assert_eq!(copy, scorer);
}
