//! Admission-threshold calibration.
//!
//! The paper caches a missed page only when its GMM score clears "a certain
//! threshold" (§3.2) but does not publish the value. We make the choice
//! explicit and reproducible: the threshold is a weighted quantile of the
//! scores that the trained model assigns to its own training cells. A
//! quantile of `q` means roughly the lowest-scoring `q` fraction of request
//! mass would be bypassed.

use crate::model::Gmm;
use serde::{Deserialize, Serialize};

/// Threshold selection policy.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThresholdConfig {
    /// Quantile of training-cell scores used as the admission threshold,
    /// in `[0, 1)`. `0` admits everything.
    pub quantile: f64,
}

impl Default for ThresholdConfig {
    fn default() -> Self {
        // A conservative default: under heavy access skew a few percent of
        // request mass already covers every page beyond cache reach, and
        // over-filtering multiplies misses on pages with genuine reuse.
        // Per-benchmark calibrated values live in `icgmm::benchmarks`.
        ThresholdConfig { quantile: 0.05 }
    }
}

/// Weighted quantile (lower interpolation) of `values` with non-negative
/// `weights` (`weights` empty ⇒ uniform).
///
/// # Panics
///
/// Panics when `q` is outside `[0, 1]`, when `values` is empty, or when a
/// non-empty `weights` has a different length.
pub fn weighted_quantile(values: &[f64], weights: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    assert!(!values.is_empty(), "cannot take quantile of empty data");
    assert!(
        weights.is_empty() || weights.len() == values.len(),
        "weights must be empty or match values"
    );
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite scores"));
    let w_at = |i: usize| if weights.is_empty() { 1.0 } else { weights[i] };
    let total: f64 = (0..values.len()).map(w_at).sum();
    let target = q * total;
    let mut acc = 0.0;
    for &i in &idx {
        acc += w_at(i);
        if acc >= target {
            return values[i];
        }
    }
    values[*idx.last().expect("non-empty")]
}

/// Scores every training cell under `gmm` and returns the calibrated
/// admission threshold.
///
/// # Panics
///
/// Propagates the panics of [`weighted_quantile`].
pub fn calibrate_threshold(gmm: &Gmm, xs: &[[f64; 2]], ws: &[f64], cfg: &ThresholdConfig) -> f64 {
    if cfg.quantile <= 0.0 {
        return 0.0; // admit everything
    }
    // Calibration scores every training cell (up to millions): use the
    // parallel batched kernel instead of point-at-a-time scoring.
    let mut scores = vec![0.0; xs.len()];
    gmm.scorer().score_batch_parallel(xs, &mut scores, 0);
    weighted_quantile(&scores, ws, cfg.quantile.min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::{Gaussian2, Mat2};

    #[test]
    fn unweighted_quantiles() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(weighted_quantile(&v, &[], 0.0), 1.0);
        assert_eq!(weighted_quantile(&v, &[], 0.2), 1.0);
        assert_eq!(weighted_quantile(&v, &[], 0.5), 3.0);
        assert_eq!(weighted_quantile(&v, &[], 1.0), 5.0);
    }

    #[test]
    fn weights_shift_the_quantile() {
        let v = [1.0, 2.0, 3.0];
        // Nearly all mass on 3.0 ⇒ median is 3.0.
        assert_eq!(weighted_quantile(&v, &[0.01, 0.01, 10.0], 0.5), 3.0);
        // Nearly all mass on 1.0 ⇒ median is 1.0.
        assert_eq!(weighted_quantile(&v, &[10.0, 0.01, 0.01], 0.5), 1.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn out_of_range_quantile_panics() {
        let _ = weighted_quantile(&[1.0], &[], 1.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_values_panic() {
        let _ = weighted_quantile(&[], &[], 0.5);
    }

    #[test]
    fn calibrate_splits_hot_and_cold() {
        let gmm = Gmm::new(
            vec![1.0],
            vec![Gaussian2::new([0.0, 0.0], Mat2::scaled_identity(1.0)).unwrap()],
        )
        .unwrap();
        // 80% of cells near the mean (hot), 20% far (cold).
        let mut xs = vec![[0.0, 0.0]; 80];
        xs.extend(vec![[6.0, 6.0]; 20]);
        let thr = calibrate_threshold(&gmm, &xs, &[], &ThresholdConfig { quantile: 0.25 });
        // The threshold should separate the far cells from the near cells.
        assert!(gmm.score([0.0, 0.0]) >= thr);
        assert!(gmm.score([6.0, 6.0]) <= thr);
    }

    #[test]
    fn zero_quantile_admits_everything() {
        let gmm = Gmm::new(
            vec![1.0],
            vec![Gaussian2::new([0.0, 0.0], Mat2::scaled_identity(1.0)).unwrap()],
        )
        .unwrap();
        let thr = calibrate_threshold(&gmm, &[[0.0, 0.0]], &[], &ThresholdConfig { quantile: 0.0 });
        assert_eq!(thr, 0.0);
    }
}
