//! Incremental (online) EM over persisted sufficient statistics.
//!
//! The batch trainer ([`crate::EmTrainer`]) recomputes its sufficient
//! statistics from scratch every iteration; a drift-triggered refit that
//! re-ran it cold would pay `max_iters` full E/M passes over the buffer.
//! [`IncrementalEm`] instead keeps the per-component statistics *between*
//! refits, exponentially decays them (`scale(decay)`), folds in one
//! E-step pass over the new observation batch, and runs a single M-step.
//! One refit therefore costs one E/M pass — the classic
//! sufficient-statistics recursion of incremental EM (Neal & Hinton) —
//! while the geometric decay window lets the mixture track workload
//! drift without forgetting everything it knew.
//!
//! The E-step reuses the same structure-of-arrays kernel
//! ([`crate::GmmScorer::log_terms_into`] via [`crate::em::e_step`]) that
//! serves online inference, and the M-step is byte-for-byte the batch
//! trainer's [`crate::em::m_step`], so a refit is deterministic from the
//! trainer's construction seed and the batch contents.

use crate::em::{e_step, m_step, EmConfig, SuffStats};
use crate::error::GmmError;
use crate::gaussian::{Gaussian2, Mat2, Vec2};
use crate::model::Gmm;
use crate::scorer::GmmScorer;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Online EM state: decayed sufficient statistics plus current parameters.
///
/// ```
/// use icgmm_gmm::{EmConfig, EmTrainer, IncrementalEm};
/// let xs: Vec<[f64; 2]> = (0..64).map(|i| [i as f64 * 0.1, (i % 7) as f64]).collect();
/// let cfg = EmConfig { k: 4, max_iters: 10, ..Default::default() };
/// let (gmm, _) = EmTrainer::new(cfg)?.fit(&xs, &[])?;
/// let mut inc = IncrementalEm::new(&gmm, cfg, 0.5)?;
/// let refit = inc.refit(&xs, &[])?;
/// assert_eq!(refit.k(), 4);
/// # Ok::<(), icgmm_gmm::GmmError>(())
/// ```
#[derive(Clone, Debug)]
pub struct IncrementalEm {
    cfg: EmConfig,
    decay: f64,
    stats: SuffStats,
    total_w: f64,
    weights: Vec<f64>,
    means: Vec<Vec2>,
    covs: Vec<Mat2>,
    rng: StdRng,
    refits: u64,
    last_batch_mll: f64,
}

impl IncrementalEm {
    /// Seeds the incremental state from an offline-trained mixture.
    ///
    /// `decay` is the per-refit forgetting factor applied to the
    /// accumulated sufficient statistics (effective window ≈
    /// `batch / (1 - decay)` observations); `1.0` never forgets.
    ///
    /// # Errors
    ///
    /// Returns [`GmmError::InvalidParam`] when the configuration fails
    /// [`EmConfig::validate`], when `decay` is not finite in `(0, 1]`,
    /// or when `reg_covar` is not strictly positive — the incremental
    /// path refits from small reservoir batches where a component can
    /// collapse onto few points, so the unregularized `reg_covar == 0`
    /// the batch trainer tolerates is rejected here.
    pub fn new(gmm: &Gmm, cfg: EmConfig, decay: f64) -> Result<Self, GmmError> {
        cfg.validate()?;
        if !(decay.is_finite() && decay > 0.0 && decay <= 1.0) {
            return Err(GmmError::InvalidParam(
                "decay must be finite in (0, 1]".into(),
            ));
        }
        if !(cfg.reg_covar.is_finite() && cfg.reg_covar > 0.0) {
            return Err(GmmError::InvalidParam(
                "incremental refits require reg_covar > 0".into(),
            ));
        }
        let k = gmm.k();
        Ok(IncrementalEm {
            cfg,
            decay,
            stats: SuffStats::zeros(k),
            total_w: 0.0,
            weights: gmm.weights().to_vec(),
            means: gmm.components().iter().map(|c| c.mean()).collect(),
            covs: gmm.components().iter().map(|c| c.cov()).collect(),
            rng: StdRng::seed_from_u64(cfg.seed),
            refits: 0,
            last_batch_mll: f64::NEG_INFINITY,
        })
    }

    /// One incremental refit: decay the persisted statistics, fold in an
    /// E-step over `xs` (weights `ws`, empty ⇒ uniform), run one M-step,
    /// and return the updated mixture.
    ///
    /// # Errors
    ///
    /// Returns [`GmmError::EmptyInput`] for an empty/zero-weight batch
    /// and propagates covariance failures from rebuilding the mixture.
    ///
    /// # Panics
    ///
    /// Panics if `ws` is non-empty and `ws.len() != xs.len()`.
    pub fn refit(&mut self, xs: &[Vec2], ws: &[f64]) -> Result<Gmm, GmmError> {
        assert!(
            ws.is_empty() || ws.len() == xs.len(),
            "weights must be empty or match samples"
        );
        let batch_w: f64 = if ws.is_empty() {
            xs.len() as f64
        } else {
            ws.iter().sum()
        };
        if xs.is_empty() || batch_w <= 0.0 {
            return Err(GmmError::EmptyInput);
        }
        let k = self.weights.len();
        let threads = if self.cfg.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(16)
        } else {
            self.cfg.threads
        };

        let scorer = GmmScorer::from_params(&self.weights, &self.means, &self.covs)?;
        let batch = e_step(&scorer, xs, ws, k, threads);
        self.last_batch_mll = batch.loglik / batch_w;

        self.stats.scale(self.decay);
        self.total_w *= self.decay;
        self.stats.merge(&batch);
        self.total_w += batch_w;

        let global = crate::init::global_cov(xs, ws);
        m_step(
            &self.stats,
            xs,
            self.total_w,
            self.cfg.reg_covar,
            global,
            &mut self.rng,
            &mut self.weights,
            &mut self.means,
            &mut self.covs,
            threads,
        );
        self.refits += 1;

        let components: Result<Vec<Gaussian2>, GmmError> = self
            .means
            .iter()
            .zip(&self.covs)
            .enumerate()
            .map(|(i, (m, c))| {
                Gaussian2::new(*m, *c).map_err(|_| GmmError::SingularCovariance { component: i })
            })
            .collect();
        Gmm::new(self.weights.clone(), components?)
    }

    /// Mean log-likelihood of the most recent batch under the *pre-refit*
    /// parameters (the E-step's likelihood), or `-inf` before any refit.
    pub fn last_batch_mll(&self) -> f64 {
        self.last_batch_mll
    }

    /// Refits performed since construction.
    pub fn refits(&self) -> u64 {
        self.refits
    }

    /// Component count carried by the incremental state.
    pub fn k(&self) -> usize {
        self.weights.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em::EmTrainer;

    fn cluster(center: [f64; 2], n: usize, salt: u64) -> Vec<Vec2> {
        (0..n)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(salt);
                let dx = ((h % 1000) as f64 / 1000.0 - 0.5) * 0.6;
                let dy = (((h >> 10) % 1000) as f64 / 1000.0 - 0.5) * 0.6;
                [center[0] + dx, center[1] + dy]
            })
            .collect()
    }

    fn fit_base(xs: &[Vec2], k: usize) -> (Gmm, EmConfig) {
        let cfg = EmConfig {
            k,
            max_iters: 30,
            threads: 1,
            ..Default::default()
        };
        let (gmm, _) = EmTrainer::new(cfg).unwrap().fit(xs, &[]).unwrap();
        (gmm, cfg)
    }

    #[test]
    fn invalid_decay_and_reg_covar_are_rejected() {
        let xs = cluster([0.0, 0.0], 64, 1);
        let (gmm, cfg) = fit_base(&xs, 2);
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                IncrementalEm::new(&gmm, cfg, bad),
                Err(GmmError::InvalidParam(_))
            ));
        }
        let zero_reg = EmConfig {
            reg_covar: 0.0,
            ..cfg
        };
        assert!(matches!(
            IncrementalEm::new(&gmm, zero_reg, 1.0),
            Err(GmmError::InvalidParam(_))
        ));
        // The batch validator still accepts reg_covar == 0 (documented).
        assert!(zero_reg.validate().is_ok());
        assert!(IncrementalEm::new(&gmm, cfg, 1.0).is_ok());
    }

    #[test]
    fn empty_batch_is_an_error() {
        let xs = cluster([0.0, 0.0], 64, 2);
        let (gmm, cfg) = fit_base(&xs, 2);
        let mut inc = IncrementalEm::new(&gmm, cfg, 0.7).unwrap();
        assert_eq!(inc.refit(&[], &[]).unwrap_err(), GmmError::EmptyInput);
        let one = [[1.0, 1.0]];
        assert_eq!(inc.refit(&one, &[0.0]).unwrap_err(), GmmError::EmptyInput);
        assert_eq!(inc.refits(), 0);
    }

    #[test]
    fn refit_tracks_a_shifted_cluster() {
        // Train on data near (-3, 0), then feed batches near (3, 2): the
        // refit mixture must score the new region far better than the
        // static one does.
        let old = cluster([-3.0, 0.0], 256, 3);
        let (gmm, cfg) = fit_base(&old, 2);
        let mut inc = IncrementalEm::new(&gmm, cfg, 0.5).unwrap();
        let new = cluster([3.0, 2.0], 256, 4);
        let mut refit = None;
        for _ in 0..6 {
            refit = Some(inc.refit(&new, &[]).unwrap());
        }
        let refit = refit.unwrap();
        assert_eq!(inc.refits(), 6);
        assert!(inc.last_batch_mll().is_finite());
        let probe = [3.0, 2.0];
        assert!(
            refit.log_density(probe) > gmm.log_density(probe) + 1.0,
            "refit {} vs static {}",
            refit.log_density(probe),
            gmm.log_density(probe)
        );
    }

    #[test]
    fn refits_are_deterministic_from_seed() {
        let old = cluster([-1.0, 1.0], 128, 5);
        let (gmm, cfg) = fit_base(&old, 3);
        let new = cluster([2.0, -1.0], 128, 6);
        let run = || {
            let mut inc = IncrementalEm::new(&gmm, cfg, 0.8).unwrap();
            let mut last = None;
            for _ in 0..4 {
                last = Some(inc.refit(&new, &[]).unwrap());
            }
            last.unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.components(), b.components());
    }

    #[test]
    fn decay_one_accumulates_without_forgetting() {
        // With decay = 1.0 two refits on the same batch keep total weight
        // growing and the model stable on stationary data.
        let xs = cluster([0.5, 0.5], 200, 7);
        let (gmm, cfg) = fit_base(&xs, 2);
        let mut inc = IncrementalEm::new(&gmm, cfg, 1.0).unwrap();
        let r1 = inc.refit(&xs, &[]).unwrap();
        let r2 = inc.refit(&xs, &[]).unwrap();
        let l1 = r1.mean_log_likelihood(&xs, &[]);
        let l2 = r2.mean_log_likelihood(&xs, &[]);
        assert!((l1 - l2).abs() < 0.05, "l1={l1} l2={l2}");
    }
}
