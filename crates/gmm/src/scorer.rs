//! Allocation-free structure-of-arrays (SoA) batch-scoring kernel — the
//! software mirror of the paper's FPGA scoring pipeline (§4.1).
//!
//! # Why this module exists
//!
//! The mixture density `G(x) = Σ_k π_k N(x | μ_k, Σ_k)` (Eq. 3) is the
//! hottest computation in the system: the EM E-step evaluates it for every
//! training cell × every iteration, and the online policy engine evaluates
//! it for every cache miss. The paper solves this with a dedicated
//! hardware pipeline that streams one Gaussian term per cycle out of an
//! on-chip weight buffer; the software analogue is [`GmmScorer`], which
//! flattens the mixture into parallel flat arrays
//!
//! * `coef[k] = ln π_k + log_norm_k` (the per-component constant, with
//!   `log_norm_k = −ln 2π − ½ ln |Σ_k|`),
//! * `mx/my[k] = μ_k`, and
//! * `ixx/ixy/iyy[k] = Σ_k⁻¹`,
//!
//! exactly the quantities the FPGA keeps in its weight buffer. Scoring
//! walks these arrays sequentially — cache-line-dense and trivially
//! vectorizable — instead of hopping through an array-of-structs
//! `Vec<Gaussian2>` (72 bytes/component of which 40 are used), and never
//! allocates: the scalar path keeps its running state in registers and the
//! batch path in fixed-size stack chunks.
//!
//! # The kernel
//!
//! Per point, the mixture log-density is a log-sum-exp over the
//! per-component joint log-densities `l_k = coef_k − ½ (x−μ_k)ᵀ Σ_k⁻¹
//! (x−μ_k)`. Both the scalar and the batched kernels use the same
//! two-pass max-trick formulation — pass 1 finds `m = max_k l_k`, pass 2
//! accumulates `Σ_k exp(l_k − m)` in component order — so batched results
//! are **bit-identical** to scalar results (the integration test suite
//! asserts this). Pass 2 evaluates `exp` through [`exp_unit`], a
//! branch-free ~2-ulp Cody–Waite + Cephes polynomial that the compiler
//! can vectorize right inside the component loop (a libm call cannot be),
//! with inputs clamped at [`EXP_CLAMP`] so fully-underflowed terms cost a
//! harmless ~3e-308 instead of a denormal stall.
//!
//! The scalar path recomputes the cheap quadratic form in pass 2 and so
//! needs no storage at all; the batch path stages one chunk's terms in a
//! `K × 64` scratch row reused across the whole batch, keeping the
//! working set at the SoA arrays (10 KiB at K = 256 — L1-resident, like
//! the paper's 8-BRAM weight buffer) plus that one scratch.
//!
//! [`GmmScorer::score_batch_parallel`] splits a batch across scoped worker
//! threads (the same crossbeam pattern as the EM E-step) for offline bulk
//! scoring such as admission-threshold calibration.
//!
//! The tables live behind an [`Arc`](std::sync::Arc): the mixture is
//! immutable once flattened, so every consumer — shard workers, serving
//! threads, the per-iteration E-step — shares one weight buffer, and
//! `scorer.clone()` is an atomic refcount bump rather than six `Vec`
//! copies (the hardware analogue: all scoring pipelines read the same
//! BRAM weight buffer; nobody duplicates it per lane).

use crate::error::GmmError;
use crate::gaussian::{Gaussian2, Mat2, Vec2, LN_2PI};
use crate::model::Gmm;

/// Pass-2 clamp: inputs below this are pinned before the polynomial
/// `exp`, so the smallest term is a *normal* ~3.3e-308 (no denormal
/// stalls) that vanishes against the leading `exp(0) = 1` term.
pub const EXP_CLAMP: f64 = -708.0;

/// `exp(x)` for `x ∈ [EXP_CLAMP, 0]`, accurate to ~2 ulp — a Cody–Waite
/// range reduction (`x = n·ln2 + r`, `|r| ≤ ln2/2`) followed by the
/// Cephes `exp` rational approximation and an exponent-bits scale.
///
/// Two reasons not to call libm here: this straight-line form (round,
/// polynomial, one division, integer scale) auto-vectorizes inside the
/// batch kernel where a libm call cannot, and being our own code it is
/// bit-stable across libc versions, which the scalar/batched
/// bit-agreement guarantee relies on.
#[inline(always)]
fn exp_unit(x: f64) -> f64 {
    const LOG2E: f64 = std::f64::consts::LOG2_E;
    // ln 2 split into a 32-bit-exact high part and the remainder, so
    // `x − n·ln2` is computed without cancellation error.
    const LN2_HI: f64 = 0.693_145_751_953_125;
    const LN2_LO: f64 = 1.428_606_820_309_417_2e-6;
    const P0: f64 = 1.261_771_930_748_105_9e-4;
    const P1: f64 = 3.029_944_077_074_419_6e-2;
    const P2: f64 = 1.0; // Cephes 9.999…e-1 rounds to exactly 1.0 in f64
    const Q0: f64 = 3.001_985_051_386_644_5e-6;
    const Q1: f64 = 2.524_483_403_496_841e-3;
    const Q2: f64 = 2.272_655_482_081_550_3e-1;
    const Q3: f64 = 2.0;

    // 2^52 + bias: adding it to the integer-valued `n` parks `n + 1023`
    // in the low mantissa bits, so a plain bit-shift builds `2^n` without
    // the float→int conversion that scalarizes on pre-AVX-512 targets.
    const MAGIC: f64 = 4_503_599_627_370_496.0 + 1_023.0;

    debug_assert!((EXP_CLAMP..=0.5).contains(&x));
    let n = (x * LOG2E).round_ties_even();
    let r = fmadd(n, -LN2_LO, fmadd(n, -LN2_HI, x));
    let rr = r * r;
    let p = r * fmadd(rr, fmadd(rr, P0, P1), P2);
    let q = fmadd(rr, fmadd(rr, fmadd(rr, Q0, Q1), Q2), Q3);
    let e = fmadd(2.0, p / (q - p), 1.0);
    // 2^n via exponent bits; n ∈ [−1022, 1] on the clamped domain.
    let scale = f64::from_bits((n + MAGIC).to_bits() << 52);
    e * scale
}

/// Fused multiply-add where the target has an FMA unit, plain
/// multiply-then-add elsewhere (calling `f64::mul_add` without hardware
/// FMA falls back to a slow correctly-rounded libm routine). Both scalar
/// and batched kernels go through this one helper, which is what keeps
/// them bit-identical on every target.
#[inline(always)]
fn fmadd(a: f64, b: f64, c: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        a * b + c
    }
}

/// Points per stack-resident batch chunk.
const CHUNK: usize = 64;

/// Minimum batch size for which spawning scoring workers pays off.
const PARALLEL_MIN: usize = 4_096;

/// Structure-of-arrays inference kernel for a [`Gmm`] (see the module
/// docs for layout and numerics).
///
/// ```
/// use icgmm_gmm::{Gaussian2, Gmm, GmmScorer, Mat2};
/// let gmm = Gmm::new(
///     vec![0.5, 0.5],
///     vec![
///         Gaussian2::new([-2.0, 0.0], Mat2::scaled_identity(1.0))?,
///         Gaussian2::new([2.0, 0.0], Mat2::scaled_identity(1.0))?,
///     ],
/// )?;
/// let scorer = GmmScorer::from_gmm(&gmm);
/// let points = [[-2.0, 0.0], [0.0, 0.0], [2.0, 0.0]];
/// let mut scores = [0.0; 3];
/// scorer.score_batch(&points, &mut scores);
/// assert_eq!(scores[0], gmm.score(points[0])); // bit-identical paths
/// assert!(scores[0] > scores[1]);
/// # Ok::<(), icgmm_gmm::GmmError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct GmmScorer {
    /// The flattened tables, shared by reference: every scorer handed to a
    /// shard worker or serving thread reads the *same* weight buffer, so
    /// cloning a scorer is one atomic refcount bump — zero table bytes
    /// copied (the allocator test in `tests/` pins this to 0 heap bytes).
    /// The tables are immutable after construction, which is what makes
    /// the sharing sound.
    tables: std::sync::Arc<ScorerTables>,
}

/// The six K-length SoA columns of a flattened mixture — the software
/// weight buffer. Built mutably by the constructors, then frozen behind
/// the [`GmmScorer`]'s `Arc`.
#[derive(Debug, PartialEq)]
struct ScorerTables {
    /// `ln π_k + log_norm_k`; `−∞` for zero-weight components.
    coef: Vec<f64>,
    mx: Vec<f64>,
    my: Vec<f64>,
    /// `−½ Σ⁻¹` with the quadratic-form cross factor folded in
    /// (`hxx = −½ Σ⁻¹ₓₓ`, `hxy = −Σ⁻¹ₓᵧ`, `hyy = −½ Σ⁻¹ᵧᵧ`), so the
    /// per-component term is three fused multiply-adds:
    /// `l = coef + hxx·dx² + hxy·dx·dy + hyy·dy²`.
    hxx: Vec<f64>,
    hxy: Vec<f64>,
    hyy: Vec<f64>,
}

impl ScorerTables {
    fn with_capacity(k: usize) -> Self {
        ScorerTables {
            coef: Vec::with_capacity(k),
            mx: Vec::with_capacity(k),
            my: Vec::with_capacity(k),
            hxx: Vec::with_capacity(k),
            hxy: Vec::with_capacity(k),
            hyy: Vec::with_capacity(k),
        }
    }

    fn push_component(&mut self, weight: f64, log_norm: f64, mean: Vec2, inv: Mat2) {
        let lw = if weight > 0.0 {
            weight.ln()
        } else {
            f64::NEG_INFINITY
        };
        self.coef.push(lw + log_norm);
        self.mx.push(mean[0]);
        self.my.push(mean[1]);
        self.hxx.push(-0.5 * inv.xx);
        self.hxy.push(-inv.xy);
        self.hyy.push(-0.5 * inv.yy);
    }
}

/// The shared per-component term `coef + hxx·dx² + hxy·dx·dy + hyy·dy²`,
/// used by the scalar, batched and E-step paths alike (bit-agreement).
#[inline(always)]
fn log_term_raw(coef: f64, hxx: f64, hxy: f64, hyy: f64, dx: f64, dy: f64) -> f64 {
    fmadd(hxx, dx * dx, fmadd(hxy, dx * dy, fmadd(hyy, dy * dy, coef)))
}

impl GmmScorer {
    /// Flattens a trained mixture into SoA form.
    pub fn from_gmm(gmm: &Gmm) -> Self {
        Self::from_components(gmm.weights(), gmm.components())
    }

    /// Flattens weights + components (inverses already cached).
    pub(crate) fn from_components(weights: &[f64], components: &[Gaussian2]) -> Self {
        let k = weights.len();
        let mut t = ScorerTables::with_capacity(k);
        for (w, c) in weights.iter().zip(components) {
            let inv = c.inv_cov();
            t.push_component(*w, c.log_norm(), c.mean(), inv);
        }
        GmmScorer {
            tables: std::sync::Arc::new(t),
        }
    }

    /// Flattens raw EM parameters, computing the inverses and
    /// log-normalizers the E-step needs.
    ///
    /// # Errors
    ///
    /// Returns [`GmmError::SingularCovariance`] naming the first component
    /// whose covariance is not positive definite.
    pub(crate) fn from_params(
        weights: &[f64],
        means: &[Vec2],
        covs: &[Mat2],
    ) -> Result<Self, GmmError> {
        let k = weights.len();
        let mut t = ScorerTables::with_capacity(k);
        for i in 0..k {
            let inv = covs[i]
                .inverse()
                .ok_or(GmmError::SingularCovariance { component: i })?;
            let log_norm = -LN_2PI - 0.5 * covs[i].det().ln();
            t.push_component(weights[i], log_norm, means[i], inv);
        }
        Ok(GmmScorer {
            tables: std::sync::Arc::new(t),
        })
    }

    /// Number of mixture components `K`.
    pub fn k(&self) -> usize {
        self.tables.coef.len()
    }

    /// The per-component joint log-density `l_j = ln π_j + ln N_j(x)`.
    #[inline(always)]
    fn log_term(&self, j: usize, x: Vec2) -> f64 {
        let t = &*self.tables;
        let dx = x[0] - t.mx[j];
        let dy = x[1] - t.my[j];
        log_term_raw(t.coef[j], t.hxx[j], t.hxy[j], t.hyy[j], dx, dy)
    }

    /// Log mixture density `ln G(x)` — allocation-free scalar path.
    ///
    /// Returns `−∞` when every component term underflows to `−∞` (only
    /// possible for non-finite input or an all-zero-weight mixture, which
    /// the [`Gmm`] constructor forbids).
    pub fn log_density(&self, x: Vec2) -> f64 {
        let mut m = f64::NEG_INFINITY;
        for j in 0..self.k() {
            let l = self.log_term(j, x);
            if l > m {
                m = l;
            }
        }
        if !m.is_finite() {
            return m;
        }
        let mut s = 0.0;
        for j in 0..self.k() {
            let t = self.log_term(j, x) - m;
            s += exp_unit(t.max(EXP_CLAMP));
        }
        m + s.ln()
    }

    /// Mixture density `G(x)` — the paper's access-frequency score.
    pub fn density(&self, x: Vec2) -> f64 {
        self.log_density(x).exp()
    }

    /// Alias for [`GmmScorer::density`], matching the paper's terminology.
    pub fn score(&self, x: Vec2) -> f64 {
        self.density(x)
    }

    /// Writes every `l_j = ln π_j + ln N_j(x)` into `out` and returns
    /// their maximum (`−∞` when all underflow). This is the E-step
    /// primitive: responsibilities are `exp(out[j] − lse)` with
    /// `lse = max + ln Σ exp(out[j] − max)`.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != self.k()`.
    pub fn log_terms_into(&self, x: Vec2, out: &mut [f64]) -> f64 {
        assert_eq!(out.len(), self.k(), "scratch length must equal K");
        let mut m = f64::NEG_INFINITY;
        for (j, o) in out.iter_mut().enumerate() {
            let l = self.log_term(j, x);
            *o = l;
            if l > m {
                m = l;
            }
        }
        m
    }

    /// Writes the posterior responsibilities `p(j | x)` into `out` and
    /// returns `ln G(x)`. When the log-density is `−∞` (no component
    /// reaches `x`), `out` is left holding `−∞` terms and the caller
    /// decides the fallback (the [`Gmm`] wrapper substitutes π).
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != self.k()`.
    pub fn responsibilities_into(&self, x: Vec2, out: &mut [f64]) -> f64 {
        let m = self.log_terms_into(x, out);
        if !m.is_finite() {
            return m;
        }
        let mut sum = 0.0;
        for o in out.iter_mut() {
            *o = exp_unit((*o - m).max(EXP_CLAMP));
            sum += *o;
        }
        let inv = 1.0 / sum;
        for o in out.iter_mut() {
            *o *= inv;
        }
        m + sum.ln()
    }

    /// One ≤[`CHUNK`]-point tile of the batched kernel. Identical
    /// component order and floating-point operations as
    /// [`GmmScorer::log_density`], so results bit-agree with the scalar
    /// path.
    fn log_density_chunk(&self, xs: &[Vec2], out: &mut [f64], lbuf: &mut [f64]) {
        debug_assert!(xs.len() <= CHUNK && xs.len() == out.len());
        debug_assert_eq!(lbuf.len() % self.k(), 0);
        // Row stride of the term buffer: CHUNK normally, smaller when the
        // whole batch is shorter than one chunk (the buffer is sized to
        // the batch in that case).
        let stride = lbuf.len() / self.k();
        debug_assert!(xs.len() <= stride);
        let n = xs.len();
        // Deinterleave the `[x, y]` pairs once so both passes read unit-
        // stride lanes instead of shuffling strided loads per component.
        let mut px = [0.0f64; CHUNK];
        let mut py = [0.0f64; CHUNK];
        for (b, x) in xs.iter().enumerate() {
            px[b] = x[0];
            py[b] = x[1];
        }
        let (px, py) = (&px[..n], &py[..n]);
        let t = &*self.tables;
        let mut m = [f64::NEG_INFINITY; CHUNK];
        for j in 0..self.k() {
            let (cj, mxj, myj) = (t.coef[j], t.mx[j], t.my[j]);
            let (hxxj, hxyj, hyyj) = (t.hxx[j], t.hxy[j], t.hyy[j]);
            let row = &mut lbuf[j * stride..j * stride + n];
            for b in 0..n {
                let dx = px[b] - mxj;
                let dy = py[b] - myj;
                let l = log_term_raw(cj, hxxj, hxyj, hyyj, dx, dy);
                row[b] = l;
                if l > m[b] {
                    m[b] = l;
                }
            }
        }
        let mut s = [0.0f64; CHUNK];
        for j in 0..self.k() {
            let row = &lbuf[j * stride..j * stride + n];
            for b in 0..n {
                let t = row[b] - m[b];
                s[b] += exp_unit(t.max(EXP_CLAMP));
            }
        }
        for b in 0..n {
            out[b] = if m[b].is_finite() {
                m[b] + s[b].ln()
            } else {
                m[b]
            };
        }
    }

    /// Batched `ln G(x)` over `xs` into `out`, processed in cache-friendly
    /// chunks of [`CHUNK`] points. Bit-identical to calling
    /// [`GmmScorer::log_density`] per point, with the per-call overhead
    /// and parameter re-streaming amortized across the chunk.
    ///
    /// # Panics
    ///
    /// Panics when `xs.len() != out.len()`.
    pub fn log_density_batch(&self, xs: &[Vec2], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "output length must match input");
        // One K×chunk term buffer per call (not per point): pass 2 reads
        // the pass-1 terms back instead of recomputing every quadratic
        // form. Reused across all chunks of the batch, and sized to the
        // batch when it is smaller than one chunk — the miss-window
        // batcher issues many short windows on hit-heavy traces, and a
        // full K×CHUNK zeroing per call would dwarf the scoring itself.
        let mut lbuf = vec![0.0f64; self.k() * CHUNK.min(xs.len())];
        for (xc, oc) in xs.chunks(CHUNK).zip(out.chunks_mut(CHUNK)) {
            self.log_density_chunk(xc, oc, &mut lbuf);
        }
    }

    /// Batched density `G(x)` — the batch analogue of
    /// [`GmmScorer::score`].
    ///
    /// # Panics
    ///
    /// Panics when `xs.len() != out.len()`.
    pub fn score_batch(&self, xs: &[Vec2], out: &mut [f64]) {
        self.log_density_batch(xs, out);
        for o in out.iter_mut() {
            *o = o.exp();
        }
    }

    /// [`GmmScorer::score_batch`] split across scoped worker threads —
    /// the same crossbeam pattern (and thread cap) as the parallel EM
    /// E-step. `threads = 0` selects the available parallelism; small
    /// batches fall back to the serial kernel. Results are bit-identical
    /// to the serial path (chunks are independent).
    ///
    /// # Panics
    ///
    /// Panics when `xs.len() != out.len()`.
    pub fn score_batch_parallel(&self, xs: &[Vec2], out: &mut [f64], threads: usize) {
        assert_eq!(xs.len(), out.len(), "output length must match input");
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(16)
        } else {
            threads
        };
        if threads <= 1 || xs.len() < PARALLEL_MIN {
            return self.score_batch(xs, out);
        }
        // Round the per-worker span to whole chunks so the tile boundaries
        // (and therefore the bit-exact results) match the serial kernel.
        let chunk = xs.len().div_ceil(threads).next_multiple_of(CHUNK);
        crossbeam::thread::scope(|scope| {
            for (xc, oc) in xs.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move |_| self.score_batch(xc, oc));
            }
        })
        .expect("scoring worker panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::log_sum_exp;

    fn spread_gmm(k: usize) -> Gmm {
        let comps: Vec<Gaussian2> = (0..k)
            .map(|i| {
                let t = i as f64 / k as f64;
                Gaussian2::new(
                    [t * 10.0 - 5.0, (t * std::f64::consts::TAU).sin()],
                    Mat2::new(0.05 + t * 0.1, 0.01, 0.08),
                )
                .unwrap()
            })
            .collect();
        Gmm::new(vec![1.0 / k as f64; k], comps).unwrap()
    }

    /// The seed's original scalar implementation (per-call `Vec`, per-call
    /// `ln π_k`, array-of-structs walk) as the numerical reference.
    fn reference_log_density(gmm: &Gmm, x: Vec2) -> f64 {
        let logs: Vec<f64> = gmm
            .weights()
            .iter()
            .zip(gmm.components())
            .map(|(w, c)| {
                if *w == 0.0 {
                    f64::NEG_INFINITY
                } else {
                    w.ln() + c.log_pdf(x)
                }
            })
            .collect();
        log_sum_exp(&logs)
    }

    fn probe_points(n: usize) -> Vec<Vec2> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                [t * 16.0 - 8.0, (t * 12.9898).sin() * 3.0]
            })
            .collect()
    }

    #[test]
    fn scalar_matches_reference_implementation() {
        for k in [1, 3, 256] {
            let gmm = spread_gmm(k);
            let scorer = GmmScorer::from_gmm(&gmm);
            for x in probe_points(64) {
                let got = scorer.log_density(x);
                let want = reference_log_density(&gmm, x);
                let tol = 1e-12 * want.abs().max(1.0);
                assert!((got - want).abs() <= tol, "K={k} x={x:?}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn batch_is_bit_identical_to_scalar() {
        for k in [1, 2, 3, 64, 256] {
            let gmm = spread_gmm(k);
            let scorer = GmmScorer::from_gmm(&gmm);
            // Sizes straddling the chunk boundary.
            for n in [0usize, 1, 63, 64, 65, 200] {
                let xs = probe_points(n);
                let mut batch = vec![0.0; n];
                scorer.score_batch(&xs, &mut batch);
                for (x, b) in xs.iter().zip(&batch) {
                    assert_eq!(
                        b.to_bits(),
                        scorer.score(*x).to_bits(),
                        "K={k} n={n} x={x:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let gmm = spread_gmm(8);
        let scorer = GmmScorer::from_gmm(&gmm);
        let xs = probe_points(10_000);
        let mut serial = vec![0.0; xs.len()];
        let mut parallel = vec![0.0; xs.len()];
        scorer.score_batch(&xs, &mut serial);
        scorer.score_batch_parallel(&xs, &mut parallel, 4);
        assert_eq!(serial, parallel);
        // threads = 0 (auto) must also agree.
        scorer.score_batch_parallel(&xs, &mut parallel, 0);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_weight_components_are_ignored() {
        let gmm = Gmm::new(
            vec![1.0, 0.0],
            vec![
                Gaussian2::new([0.0, 0.0], Mat2::scaled_identity(1.0)).unwrap(),
                Gaussian2::new([100.0, 0.0], Mat2::scaled_identity(1.0)).unwrap(),
            ],
        )
        .unwrap();
        let scorer = GmmScorer::from_gmm(&gmm);
        let only = gmm.components()[0].pdf([0.5, 0.0]);
        assert!((scorer.score([0.5, 0.0]) - only).abs() < 1e-12);
        // Even at the dead component's mean, the live one dominates.
        assert!(scorer.log_density([100.0, 0.0]).is_finite());
    }

    #[test]
    fn responsibilities_normalize_and_match_model() {
        let gmm = spread_gmm(3);
        let scorer = GmmScorer::from_gmm(&gmm);
        let mut out = vec![0.0; 3];
        let lse = scorer.responsibilities_into([0.3, -0.2], &mut out);
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(lse, scorer.log_density([0.3, -0.2]));
        assert_eq!(out, gmm.responsibilities([0.3, -0.2]));
    }

    #[test]
    fn log_terms_match_component_log_pdfs() {
        let gmm = spread_gmm(4);
        let scorer = GmmScorer::from_gmm(&gmm);
        let mut out = vec![0.0; 4];
        let x = [1.0, 0.5];
        let m = scorer.log_terms_into(x, &mut out);
        for (j, (w, c)) in gmm.weights().iter().zip(gmm.components()).enumerate() {
            let want = w.ln() + c.log_pdf(x);
            assert!((out[j] - want).abs() < 1e-12 * want.abs().max(1.0));
        }
        assert_eq!(m, out.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn clone_shares_tables_and_scores_identically() {
        let scorer = GmmScorer::from_gmm(&spread_gmm(256));
        let copy = scorer.clone();
        // The clone aliases the same flattened tables — no table bytes
        // were copied (the integration allocator test pins the byte count
        // to zero; this asserts the sharing itself).
        assert!(std::sync::Arc::ptr_eq(&scorer.tables, &copy.tables));
        assert_eq!(scorer, copy);
        let x = [0.7, -0.3];
        assert_eq!(
            scorer.log_density(x).to_bits(),
            copy.log_density(x).to_bits()
        );
    }

    #[test]
    fn from_params_agrees_with_from_gmm() {
        let gmm = spread_gmm(5);
        let means: Vec<Vec2> = gmm.components().iter().map(|c| c.mean()).collect();
        let covs: Vec<Mat2> = gmm.components().iter().map(|c| c.cov()).collect();
        let a = GmmScorer::from_gmm(&gmm);
        let b = GmmScorer::from_params(gmm.weights(), &means, &covs).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn from_params_rejects_singular_covariance() {
        let err = GmmScorer::from_params(
            &[0.5, 0.5],
            &[[0.0, 0.0], [1.0, 1.0]],
            &[Mat2::scaled_identity(1.0), Mat2::new(1.0, 2.0, 1.0)],
        )
        .unwrap_err();
        assert_eq!(err, GmmError::SingularCovariance { component: 1 });
    }

    #[test]
    fn far_points_go_to_negative_infinity_density_zero() {
        let scorer = GmmScorer::from_gmm(&spread_gmm(2));
        let s = scorer.score([1e9, 1e9]);
        assert!((0.0..1e-300).contains(&s));
        let mut out = [0.0];
        scorer.score_batch(&[[1e9, 1e9]], &mut out);
        assert_eq!(out[0].to_bits(), s.to_bits());
    }

    #[test]
    #[should_panic(expected = "output length must match input")]
    fn mismatched_batch_lengths_panic() {
        let scorer = GmmScorer::from_gmm(&spread_gmm(2));
        let mut out = [0.0; 2];
        scorer.score_batch(&[[0.0, 0.0]], &mut out);
    }
}
