//! Parameter initialization for EM: weighted k-means++ seeding with a short
//! Lloyd refinement, or plain random data points.

use crate::gaussian::{Mat2, Vec2};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How EM initializes means, covariances and weights.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum InitMethod {
    /// Weighted k-means++ seeding followed by `lloyd_iters` Lloyd steps.
    /// This is the default; it makes K=256 EM converge in a handful of
    /// iterations on trace data.
    KmeansPlusPlus {
        /// Number of Lloyd refinement iterations after seeding.
        lloyd_iters: usize,
    },
    /// Means drawn uniformly (weight-proportionally) from the data;
    /// covariances set to the global data covariance.
    RandomPoints,
}

impl Default for InitMethod {
    fn default() -> Self {
        InitMethod::KmeansPlusPlus { lloyd_iters: 3 }
    }
}

/// Initial `(weights, means, covariances)` for EM.
pub(crate) fn init_params<R: Rng + ?Sized>(
    xs: &[Vec2],
    ws: &[f64],
    k: usize,
    method: InitMethod,
    reg_covar: f64,
    rng: &mut R,
) -> (Vec<f64>, Vec<Vec2>, Vec<Mat2>) {
    debug_assert!(!xs.is_empty() && k >= 1);
    let w_at = |i: usize| if ws.is_empty() { 1.0 } else { ws[i] };
    let global = global_cov(xs, ws);

    let means = match method {
        InitMethod::RandomPoints => (0..k)
            .map(|_| xs[weighted_index(xs.len(), ws, rng)])
            .collect::<Vec<_>>(),
        InitMethod::KmeansPlusPlus { lloyd_iters } => {
            let mut means = kmeanspp_seed(xs, ws, k, rng);
            for _ in 0..lloyd_iters {
                lloyd_step(xs, ws, &mut means, rng);
            }
            means
        }
    };

    // Cluster-responsibility hard assignment for weights and covariances.
    let mut nk = vec![0.0f64; k];
    let mut sums = vec![[0.0f64; 2]; k];
    let mut sq = vec![[0.0f64; 3]; k]; // xx, xy, yy
    for (i, x) in xs.iter().enumerate() {
        let c = nearest(&means, *x);
        let w = w_at(i);
        nk[c] += w;
        sums[c][0] += w * x[0];
        sums[c][1] += w * x[1];
        sq[c][0] += w * x[0] * x[0];
        sq[c][1] += w * x[0] * x[1];
        sq[c][2] += w * x[1] * x[1];
    }
    let total: f64 = nk.iter().sum();
    let mut weights = Vec::with_capacity(k);
    let mut covs = Vec::with_capacity(k);
    let mut out_means = Vec::with_capacity(k);
    for c in 0..k {
        if nk[c] > 1e-12 {
            let m = [sums[c][0] / nk[c], sums[c][1] / nk[c]];
            let cov = Mat2::new(
                (sq[c][0] / nk[c] - m[0] * m[0]).max(0.0) + reg_covar,
                sq[c][1] / nk[c] - m[0] * m[1],
                (sq[c][2] / nk[c] - m[1] * m[1]).max(0.0) + reg_covar,
            );
            out_means.push(m);
            covs.push(if cov.is_spd() {
                cov
            } else {
                spd_fallback(global, reg_covar)
            });
            weights.push(nk[c] / total);
        } else {
            // Empty cluster: park it on a random data point with the global
            // covariance and a tiny weight; EM will reassign mass.
            out_means.push(xs[weighted_index(xs.len(), ws, rng)]);
            covs.push(spd_fallback(global, reg_covar));
            weights.push(1e-6);
        }
    }
    let wsum: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= wsum;
    }
    (weights, out_means, covs)
}

/// Global weighted covariance with regularization, always SPD.
pub(crate) fn global_cov(xs: &[Vec2], ws: &[f64]) -> Mat2 {
    let w_at = |i: usize| if ws.is_empty() { 1.0 } else { ws[i] };
    let total: f64 = (0..xs.len()).map(w_at).sum();
    if total <= 0.0 {
        return Mat2::scaled_identity(1.0);
    }
    let mut mean = [0.0f64; 2];
    for (i, x) in xs.iter().enumerate() {
        mean[0] += w_at(i) * x[0];
        mean[1] += w_at(i) * x[1];
    }
    mean[0] /= total;
    mean[1] /= total;
    let (mut xx, mut xy, mut yy) = (0.0f64, 0.0f64, 0.0f64);
    for (i, x) in xs.iter().enumerate() {
        let dx = x[0] - mean[0];
        let dy = x[1] - mean[1];
        xx += w_at(i) * dx * dx;
        xy += w_at(i) * dx * dy;
        yy += w_at(i) * dy * dy;
    }
    let m = Mat2::new(xx / total + 1e-9, xy / total, yy / total + 1e-9);
    if m.is_spd() {
        m
    } else {
        Mat2::scaled_identity(1.0)
    }
}

fn spd_fallback(global: Mat2, reg: f64) -> Mat2 {
    let m = Mat2::new(global.xx + reg, 0.0, global.yy + reg);
    if m.is_spd() {
        m
    } else {
        Mat2::scaled_identity(1.0 + reg)
    }
}

fn nearest(means: &[Vec2], x: Vec2) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, m) in means.iter().enumerate() {
        let d = (x[0] - m[0]) * (x[0] - m[0]) + (x[1] - m[1]) * (x[1] - m[1]);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Index drawn proportionally to sample weight (uniform when `ws` empty).
fn weighted_index<R: Rng + ?Sized>(n: usize, ws: &[f64], rng: &mut R) -> usize {
    if ws.is_empty() {
        return rng.gen_range(0..n);
    }
    let total: f64 = ws.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    for (i, w) in ws.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    n - 1
}

/// Weighted k-means++ D² seeding.
fn kmeanspp_seed<R: Rng + ?Sized>(xs: &[Vec2], ws: &[f64], k: usize, rng: &mut R) -> Vec<Vec2> {
    let w_at = |i: usize| if ws.is_empty() { 1.0 } else { ws[i] };
    let mut means = Vec::with_capacity(k);
    means.push(xs[weighted_index(xs.len(), ws, rng)]);
    let mut d2: Vec<f64> = xs.iter().map(|x| dist2(*x, means[0])).collect();
    while means.len() < k {
        let total: f64 = d2.iter().enumerate().map(|(i, d)| d * w_at(i)).sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centers.
            xs[weighted_index(xs.len(), ws, rng)]
        } else {
            let mut u = rng.gen::<f64>() * total;
            let mut idx = xs.len() - 1;
            for (i, d) in d2.iter().enumerate() {
                u -= d * w_at(i);
                if u <= 0.0 {
                    idx = i;
                    break;
                }
            }
            xs[idx]
        };
        means.push(next);
        for (i, x) in xs.iter().enumerate() {
            let d = dist2(*x, next);
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    means
}

fn dist2(a: Vec2, b: Vec2) -> f64 {
    (a[0] - b[0]) * (a[0] - b[0]) + (a[1] - b[1]) * (a[1] - b[1])
}

/// One weighted Lloyd iteration; empty clusters are re-seeded randomly.
fn lloyd_step<R: Rng + ?Sized>(xs: &[Vec2], ws: &[f64], means: &mut [Vec2], rng: &mut R) {
    let w_at = |i: usize| if ws.is_empty() { 1.0 } else { ws[i] };
    let k = means.len();
    let mut nk = vec![0.0f64; k];
    let mut sums = vec![[0.0f64; 2]; k];
    for (i, x) in xs.iter().enumerate() {
        let c = nearest(means, *x);
        let w = w_at(i);
        nk[c] += w;
        sums[c][0] += w * x[0];
        sums[c][1] += w * x[1];
    }
    for c in 0..k {
        if nk[c] > 1e-12 {
            means[c] = [sums[c][0] / nk[c], sums[c][1] / nk[c]];
        } else {
            means[c] = xs[weighted_index(xs.len(), ws, rng)];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_cluster_data() -> Vec<Vec2> {
        let mut v = Vec::new();
        for i in 0..100 {
            let t = i as f64 * 0.01;
            v.push([t, t * 0.5]);
            v.push([10.0 + t, 5.0 + t * 0.5]);
        }
        v
    }

    #[test]
    fn kmeanspp_finds_both_clusters() {
        let xs = two_cluster_data();
        let mut rng = StdRng::seed_from_u64(1);
        let (w, m, c) = init_params(&xs, &[], 2, InitMethod::default(), 1e-6, &mut rng);
        assert_eq!(w.len(), 2);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // One mean near each cluster centre.
        let near_low = m.iter().any(|m| m[0] < 2.0);
        let near_high = m.iter().any(|m| m[0] > 8.0);
        assert!(near_low && near_high, "means: {m:?}");
        assert!(c.iter().all(|c| c.is_spd()));
    }

    #[test]
    fn random_points_init_is_valid() {
        let xs = two_cluster_data();
        let mut rng = StdRng::seed_from_u64(2);
        let (w, m, c) = init_params(&xs, &[], 8, InitMethod::RandomPoints, 1e-6, &mut rng);
        assert_eq!(m.len(), 8);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(c.iter().all(|c| c.is_spd()));
    }

    #[test]
    fn more_components_than_points_is_survivable() {
        let xs = vec![[0.0, 0.0], [1.0, 1.0]];
        let mut rng = StdRng::seed_from_u64(3);
        let (w, m, c) = init_params(&xs, &[], 5, InitMethod::default(), 1e-6, &mut rng);
        assert_eq!(m.len(), 5);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(c.iter().all(|c| c.is_spd()));
    }

    #[test]
    fn weights_bias_seeding() {
        // With all mass on the second cluster, seeds should land there.
        let xs = two_cluster_data();
        let ws: Vec<f64> = xs
            .iter()
            .map(|x| if x[0] > 8.0 { 1.0 } else { 1e-12 })
            .collect();
        let mut rng = StdRng::seed_from_u64(4);
        let seeds = kmeanspp_seed(&xs, &ws, 3, &mut rng);
        assert!(seeds.iter().all(|m| m[0] > 8.0), "seeds: {seeds:?}");
    }

    #[test]
    fn global_cov_is_spd_even_degenerate() {
        assert!(global_cov(&[[1.0, 1.0], [1.0, 1.0]], &[]).is_spd());
        assert!(global_cov(&[[0.0, 0.0]], &[0.0]).is_spd());
    }

    #[test]
    fn identical_points_do_not_hang_seeding() {
        let xs = vec![[2.0, 2.0]; 10];
        let mut rng = StdRng::seed_from_u64(5);
        let seeds = kmeanspp_seed(&xs, &[], 4, &mut rng);
        assert_eq!(seeds.len(), 4);
    }
}
