//! Error type for GMM construction and training.

use std::error::Error;
use std::fmt;

/// Error raised by GMM construction, training, or inference setup.
#[derive(Clone, Debug, PartialEq)]
pub enum GmmError {
    /// A parameter was out of its valid range.
    InvalidParam(String),
    /// A covariance matrix was not symmetric positive definite.
    SingularCovariance {
        /// Index of the offending component.
        component: usize,
    },
    /// Training data was empty (or all weights were zero).
    EmptyInput,
    /// Mixture weights and component list disagree in length, or weights
    /// do not form a distribution.
    InvalidWeights(String),
}

impl fmt::Display for GmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GmmError::InvalidParam(s) => write!(f, "invalid parameter: {s}"),
            GmmError::SingularCovariance { component } => {
                write!(
                    f,
                    "covariance of component {component} is not positive definite"
                )
            }
            GmmError::EmptyInput => f.write_str("training data is empty"),
            GmmError::InvalidWeights(s) => write!(f, "invalid mixture weights: {s}"),
        }
    }
}

impl Error for GmmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(GmmError::EmptyInput.to_string().contains("empty"));
        assert!(GmmError::SingularCovariance { component: 3 }
            .to_string()
            .contains('3'));
        assert!(GmmError::InvalidParam("k".into()).to_string().contains('k'));
        assert!(GmmError::InvalidWeights("sum".into())
            .to_string()
            .contains("sum"));
    }
}
