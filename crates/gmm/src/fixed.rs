//! Fixed-point GMM inference — the software mirror of the FPGA datapath.
//!
//! The paper's policy engine evaluates Eq. 3 in programmable logic. HLS
//! synthesizes fixed-point arithmetic with a look-up-table `exp`; this
//! module reproduces that datapath bit-for-bit in software so that
//!
//! * accuracy claims ("GMM scores survive quantization") are testable, and
//! * the cycle-level model in `icgmm-hw` can report what the hardware
//!   would actually compute, not an f64 idealization.
//!
//! Layout: Q39.24 signed fixed point (i64 storage, 24 fractional bits),
//! products computed through i128 and truncated. Per component `k`, the
//! engine computes `q_k = (x−μ_k)ᵀ Σ_k⁻¹ (x−μ_k)` in fixed point, looks up
//! `exp(−q_k/2)` in a 4096-entry table over `[−32, 0]` with linear
//! interpolation, scales by the precomputed coefficient
//! `π_k / (2π |Σ_k|^{1/2})` and accumulates.

use crate::error::GmmError;
use crate::gaussian::Vec2;
use crate::model::Gmm;
use serde::{Deserialize, Serialize};

/// Fractional bits of the fixed-point format.
pub const FRAC_BITS: u32 = 24;
const ONE_RAW: i64 = 1 << FRAC_BITS;

/// Exponent clamp: `exp(x)` is evaluated for `x ∈ [−EXP_RANGE, 0]`; lower
/// inputs flush to zero (below fixed-point resolution anyway).
pub const EXP_RANGE: f64 = 32.0;

/// Entries in the `exp` look-up table.
pub const EXP_LUT_ENTRIES: usize = 4096;

/// A Q39.24 signed fixed-point number.
///
/// ```
/// use icgmm_gmm::fixed::Fixed;
/// let a = Fixed::from_f64(1.5);
/// let b = Fixed::from_f64(-0.25);
/// assert!((a.mul(b).to_f64() + 0.375).abs() < 1e-6);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Fixed(i64);

impl Fixed {
    /// Zero.
    pub const ZERO: Fixed = Fixed(0);
    /// One.
    pub const ONE: Fixed = Fixed(ONE_RAW);

    /// Converts from `f64`, saturating at the representable range.
    pub fn from_f64(x: f64) -> Fixed {
        if x.is_nan() {
            return Fixed(0);
        }
        let scaled = x * ONE_RAW as f64;
        if scaled >= i64::MAX as f64 {
            Fixed(i64::MAX)
        } else if scaled <= i64::MIN as f64 {
            Fixed(i64::MIN)
        } else {
            Fixed(scaled.round() as i64)
        }
    }

    /// Converts to `f64`.
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / ONE_RAW as f64
    }

    /// Raw two's-complement payload.
    pub fn raw(self) -> i64 {
        self.0
    }

    /// Wraps a raw payload.
    pub fn from_raw(raw: i64) -> Fixed {
        Fixed(raw)
    }

    /// Saturating addition.
    #[allow(clippy::should_implement_trait)] // HLS-style explicit datapath op
    pub fn add(self, o: Fixed) -> Fixed {
        Fixed(self.0.saturating_add(o.0))
    }

    /// Saturating subtraction.
    #[allow(clippy::should_implement_trait)] // HLS-style explicit datapath op
    pub fn sub(self, o: Fixed) -> Fixed {
        Fixed(self.0.saturating_sub(o.0))
    }

    /// Fixed-point multiplication (i128 intermediate, truncating).
    #[allow(clippy::should_implement_trait)] // HLS-style explicit datapath op
    pub fn mul(self, o: Fixed) -> Fixed {
        let p = (self.0 as i128 * o.0 as i128) >> FRAC_BITS;
        if p > i64::MAX as i128 {
            Fixed(i64::MAX)
        } else if p < i64::MIN as i128 {
            Fixed(i64::MIN)
        } else {
            Fixed(p as i64)
        }
    }

    /// Arithmetic shift right (cheap divide by a power of two).
    #[allow(clippy::should_implement_trait)] // HLS-style explicit datapath op
    pub fn shr(self, bits: u32) -> Fixed {
        Fixed(self.0 >> bits)
    }
}

/// Look-up-table `exp` over `[−EXP_RANGE, 0]` with linear interpolation —
/// what HLS synthesizes from a bounded `exp` under resource constraints.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExpLut {
    table: Vec<Fixed>,
    /// LUT cells per unit of input (entries / EXP_RANGE), in fixed point.
    scale: Fixed,
}

impl ExpLut {
    /// Builds the table with [`EXP_LUT_ENTRIES`] entries.
    pub fn new() -> Self {
        let entries = EXP_LUT_ENTRIES;
        let mut table = Vec::with_capacity(entries + 1);
        for i in 0..=entries {
            let x = -EXP_RANGE + EXP_RANGE * i as f64 / entries as f64;
            table.push(Fixed::from_f64(x.exp()));
        }
        ExpLut {
            table,
            scale: Fixed::from_f64(entries as f64 / EXP_RANGE),
        }
    }

    /// Evaluates `exp(x)` for `x ≤ 0`; inputs below `−EXP_RANGE` return 0,
    /// inputs above 0 are clamped to `exp(0) = 1`.
    pub fn eval(&self, x: Fixed) -> Fixed {
        if x >= Fixed::ZERO {
            return Fixed::ONE;
        }
        if x.to_f64() <= -EXP_RANGE {
            return Fixed::ZERO;
        }
        // Position within the table: (x + RANGE) * scale.
        let pos = x.add(Fixed::from_f64(EXP_RANGE)).mul(self.scale);
        let idx = (pos.raw() >> FRAC_BITS) as usize;
        let frac = Fixed::from_raw(pos.raw() & (ONE_RAW - 1));
        let lo = self.table[idx.min(self.table.len() - 1)];
        let hi = self.table[(idx + 1).min(self.table.len() - 1)];
        lo.add(hi.sub(lo).mul(frac))
    }
}

impl Default for ExpLut {
    fn default() -> Self {
        ExpLut::new()
    }
}

/// Per-component quantized parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
struct FixedComponent {
    mx: Fixed,
    my: Fixed,
    inv_xx: Fixed,
    inv_xy: Fixed,
    inv_yy: Fixed,
    /// `π_k / (2π |Σ_k|^{1/2})`.
    coeff: Fixed,
}

/// A [`Gmm`] quantized for the fixed-point datapath.
///
/// ```
/// use icgmm_gmm::{EmConfig, EmTrainer};
/// use icgmm_gmm::fixed::FixedGmm;
/// let xs = vec![[0.0, 0.0], [0.2, -0.1], [4.0, 4.0], [4.1, 3.8]];
/// let (gmm, _) = EmTrainer::new(EmConfig { k: 2, ..Default::default() })?
///     .fit(&xs, &[])?;
/// let fx = FixedGmm::from_gmm(&gmm)?;
/// let err = (fx.score([0.0, 0.0]) - gmm.score([0.0, 0.0])).abs();
/// assert!(err < 1e-2 * gmm.score([0.0, 0.0]).max(1e-9));
/// # Ok::<(), icgmm_gmm::GmmError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FixedGmm {
    components: Vec<FixedComponent>,
    lut: ExpLut,
}

impl FixedGmm {
    /// Quantizes a trained mixture.
    ///
    /// # Errors
    ///
    /// Returns [`GmmError::InvalidParam`] when a coefficient overflows the
    /// fixed-point range (pathologically tiny covariance determinant) —
    /// increase `reg_covar` in training if this occurs.
    pub fn from_gmm(gmm: &Gmm) -> Result<Self, GmmError> {
        let mut components = Vec::with_capacity(gmm.k());
        for (i, (w, c)) in gmm.weights().iter().zip(gmm.components()).enumerate() {
            let det = c.cov().det();
            let coeff = w / (2.0 * std::f64::consts::PI * det.sqrt());
            if !coeff.is_finite() || coeff >= (1i64 << (62 - FRAC_BITS)) as f64 {
                return Err(GmmError::InvalidParam(format!(
                    "component {i}: coefficient {coeff} exceeds fixed-point range"
                )));
            }
            let inv = c.inv_cov();
            components.push(FixedComponent {
                mx: Fixed::from_f64(c.mean()[0]),
                my: Fixed::from_f64(c.mean()[1]),
                inv_xx: Fixed::from_f64(inv.xx),
                inv_xy: Fixed::from_f64(inv.xy),
                inv_yy: Fixed::from_f64(inv.yy),
                coeff: Fixed::from_f64(coeff),
            });
        }
        Ok(FixedGmm {
            components,
            lut: ExpLut::new(),
        })
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.components.len()
    }

    /// Fixed-point mixture score, returned in fixed point.
    pub fn score_fixed(&self, x: [Fixed; 2]) -> Fixed {
        let mut acc = Fixed::ZERO;
        for c in &self.components {
            let dx = x[0].sub(c.mx);
            let dy = x[1].sub(c.my);
            // q = inv_xx·dx² + 2·inv_xy·dx·dy + inv_yy·dy²
            let q = c
                .inv_xx
                .mul(dx)
                .mul(dx)
                .add(c.inv_xy.mul(dx).mul(dy).add(c.inv_xy.mul(dx).mul(dy)))
                .add(c.inv_yy.mul(dy).mul(dy));
            // exponent = −q/2
            let e = Fixed::ZERO.sub(q.shr(1));
            let g = self.lut.eval(e);
            acc = acc.add(c.coeff.mul(g));
        }
        acc
    }

    /// Convenience: score from f64 inputs, returned as f64.
    pub fn score(&self, x: Vec2) -> f64 {
        self.score_fixed([Fixed::from_f64(x[0]), Fixed::from_f64(x[1])])
            .to_f64()
    }

    /// Batched scoring through the fixed-point datapath — the software
    /// image of streaming a miss window through the FPGA pipeline
    /// back-to-back. Each point takes the exact same quantized path as
    /// [`FixedGmm::score`], so results are bit-identical to the scalar
    /// mirror and the f64/fixed parity bound is unchanged by batching.
    ///
    /// # Panics
    ///
    /// Panics when `xs.len() != out.len()`.
    pub fn score_batch(&self, xs: &[Vec2], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "output length must match input");
        for (x, o) in xs.iter().zip(out.iter_mut()) {
            *o = self.score(*x);
        }
    }

    /// Bytes of parameter storage the hardware needs for this model
    /// (6 fixed-point words per component) — the paper's "GMM size is small
    /// enough to be stored within an on-board weight buffer".
    pub fn weight_buffer_bytes(&self) -> usize {
        self.components.len() * 6 * std::mem::size_of::<i64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::{Gaussian2, Mat2};

    #[test]
    fn fixed_round_trip_and_arith() {
        for v in [0.0, 1.0, -1.0, 0.123456, -7.875, 1000.5] {
            assert!((Fixed::from_f64(v).to_f64() - v).abs() < 1e-6);
        }
        let a = Fixed::from_f64(2.5);
        let b = Fixed::from_f64(4.0);
        assert!((a.mul(b).to_f64() - 10.0).abs() < 1e-6);
        assert!((a.add(b).to_f64() - 6.5).abs() < 1e-9);
        assert!((a.sub(b).to_f64() + 1.5).abs() < 1e-9);
        assert!((Fixed::from_f64(8.0).shr(2).to_f64() - 2.0).abs() < 1e-9);
        assert_eq!(Fixed::from_f64(f64::NAN), Fixed::ZERO);
    }

    #[test]
    fn fixed_saturates_instead_of_wrapping() {
        let big = Fixed::from_f64(1e30);
        assert_eq!(big.raw(), i64::MAX);
        assert_eq!(big.add(big).raw(), i64::MAX);
        let small = Fixed::from_f64(-1e30);
        assert_eq!(small.raw(), i64::MIN);
    }

    #[test]
    fn exp_lut_accuracy() {
        let lut = ExpLut::new();
        for x in [-0.01, -0.5, -1.0, -2.0, -5.0, -10.0, -20.0, -31.0] {
            let got = lut.eval(Fixed::from_f64(x)).to_f64();
            let want = x.exp();
            let tol = (want * 1e-3).max(2e-7);
            assert!((got - want).abs() < tol, "exp({x}): got {got}, want {want}");
        }
        assert_eq!(lut.eval(Fixed::from_f64(0.5)), Fixed::ONE);
        assert_eq!(lut.eval(Fixed::from_f64(-40.0)), Fixed::ZERO);
    }

    fn test_gmm() -> Gmm {
        Gmm::new(
            vec![0.6, 0.4],
            vec![
                Gaussian2::new([-1.0, 0.5], Mat2::new(0.5, 0.1, 0.8)).unwrap(),
                Gaussian2::new([2.0, -1.0], Mat2::new(1.2, -0.2, 0.6)).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn fixed_score_tracks_f64_score() {
        let gmm = test_gmm();
        let fx = FixedGmm::from_gmm(&gmm).unwrap();
        for x in [
            [-1.0, 0.5],
            [2.0, -1.0],
            [0.0, 0.0],
            [1.0, 1.0],
            [-3.0, 2.0],
        ] {
            let f = gmm.score(x);
            let q = fx.score(x);
            assert!(
                (f - q).abs() < f.max(1e-6) * 0.01 + 1e-6,
                "score({x:?}): f64 {f} vs fixed {q}"
            );
        }
    }

    #[test]
    fn fixed_preserves_score_ordering() {
        let gmm = test_gmm();
        let fx = FixedGmm::from_gmm(&gmm).unwrap();
        // Hot point (near a mean) must outrank a cold point after
        // quantization, which is all the cache policy needs.
        assert!(fx.score([-1.0, 0.5]) > fx.score([8.0, 8.0]));
        assert!(fx.score([2.0, -1.0]) > fx.score([-8.0, -8.0]));
    }

    #[test]
    fn batched_mirror_is_bit_identical_to_scalar() {
        let gmm = test_gmm();
        let fx = FixedGmm::from_gmm(&gmm).unwrap();
        let xs: Vec<[f64; 2]> = (0..100)
            .map(|i| [i as f64 * 0.1 - 5.0, (i as f64 * 0.37).sin()])
            .collect();
        let mut out = vec![0.0; xs.len()];
        fx.score_batch(&xs, &mut out);
        for (x, o) in xs.iter().zip(&out) {
            assert_eq!(o.to_bits(), fx.score(*x).to_bits());
        }
    }

    #[test]
    fn far_points_flush_to_zero_not_garbage() {
        let gmm = test_gmm();
        let fx = FixedGmm::from_gmm(&gmm).unwrap();
        let s = fx.score([1e6, 1e6]);
        assert!((0.0..1e-6).contains(&s), "far score {s}");
    }

    #[test]
    fn weight_buffer_is_kilobytes_at_k256() {
        // The paper stores the whole model on-chip; confirm the K=256 model
        // is a few KiB (it reports 8 BRAMs).
        let comps: Vec<Gaussian2> = (0..256)
            .map(|i| Gaussian2::new([i as f64, 0.0], Mat2::scaled_identity(1.0)).unwrap())
            .collect();
        let gmm = Gmm::new(vec![1.0 / 256.0; 256], comps).unwrap();
        let fx = FixedGmm::from_gmm(&gmm).unwrap();
        assert_eq!(fx.k(), 256);
        assert_eq!(fx.weight_buffer_bytes(), 256 * 48);
        assert!(fx.weight_buffer_bytes() < 16 * 1024);
    }

    #[test]
    fn pathological_coefficient_is_rejected() {
        // Covariance determinant ~1e-40 ⇒ coefficient ~1e19 ⇒ overflow.
        let g = Gaussian2::new([0.0, 0.0], Mat2::scaled_identity(1e-20)).unwrap();
        let gmm = Gmm::new(vec![1.0], vec![g]).unwrap();
        assert!(FixedGmm::from_gmm(&gmm).is_err());
    }
}
