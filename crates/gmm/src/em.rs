//! Expectation-Maximization training (paper §3.3).
//!
//! Full-covariance weighted EM with log-sum-exp responsibilities, k-means++
//! initialization, covariance regularization, empty-component re-seeding,
//! and a crossbeam-parallel E-step (the paper trains offline on millions of
//! trace cells; the parallel E-step keeps K = 256 practical on a laptop).
//! The per-sample responsibilities come from the same structure-of-arrays
//! kernel ([`crate::scorer::GmmScorer`]) that serves online inference, so
//! the E-step walks flat parameter arrays and allocates nothing per sample.
//!
//! Convergence follows the paper: after each iteration the change in the
//! (weighted mean) log-likelihood is compared against a threshold.

use crate::error::GmmError;
use crate::gaussian::{Gaussian2, Mat2, Vec2};
use crate::init::{init_params, InitMethod};
use crate::model::Gmm;
use crate::scorer::GmmScorer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// EM hyper-parameters. `k = 256` is the paper's component count.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EmConfig {
    /// Number of mixture components `K`.
    pub k: usize,
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence threshold on the change in mean log-likelihood.
    pub tol: f64,
    /// Diagonal regularization added to every covariance at each M-step.
    pub reg_covar: f64,
    /// RNG seed (initialization and empty-component re-seeding).
    pub seed: u64,
    /// Initialization strategy.
    pub init: InitMethod,
    /// E-step worker threads; `0` selects the available parallelism.
    pub threads: usize,
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig {
            k: 256,
            max_iters: 60,
            tol: 1e-4,
            reg_covar: 1e-6,
            seed: 0x0D0C_5EED,
            init: InitMethod::default(),
            threads: 0,
        }
    }
}

impl EmConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`GmmError::InvalidParam`] when `k == 0`, `max_iters == 0`,
    /// or tolerances are non-positive/non-finite.
    pub fn validate(&self) -> Result<(), GmmError> {
        if self.k == 0 {
            return Err(GmmError::InvalidParam("k must be >= 1".into()));
        }
        if self.max_iters == 0 {
            return Err(GmmError::InvalidParam("max_iters must be >= 1".into()));
        }
        if !(self.tol.is_finite() && self.tol > 0.0) {
            return Err(GmmError::InvalidParam("tol must be finite and > 0".into()));
        }
        if !(self.reg_covar.is_finite() && self.reg_covar >= 0.0) {
            return Err(GmmError::InvalidParam(
                "reg_covar must be finite and >= 0".into(),
            ));
        }
        Ok(())
    }
}

/// Outcome of an EM fit.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EmReport {
    /// Iterations actually executed.
    pub iterations: usize,
    /// Whether the tolerance was reached before `max_iters`.
    pub converged: bool,
    /// Mean log-likelihood after each iteration (non-decreasing up to
    /// regularization/re-seeding effects).
    pub log_likelihood: Vec<f64>,
}

/// Trains a [`Gmm`] on weighted 2-D samples.
///
/// ```
/// use icgmm_gmm::{EmConfig, EmTrainer};
/// let xs = vec![[0.0, 0.0], [0.1, 0.1], [5.0, 5.0], [5.1, 4.9]];
/// let trainer = EmTrainer::new(EmConfig { k: 2, ..Default::default() })?;
/// let (gmm, report) = trainer.fit(&xs, &[])?;
/// assert_eq!(gmm.k(), 2);
/// assert!(report.iterations >= 1);
/// # Ok::<(), icgmm_gmm::GmmError>(())
/// ```
#[derive(Clone, Debug)]
pub struct EmTrainer {
    cfg: EmConfig,
}

/// Per-component sufficient statistics gathered by the E-step.
///
/// Crate-visible so the incremental trainer
/// ([`crate::incremental::IncrementalEm`]) can persist and decay them
/// between refits; the batch trainer treats them as E-step scratch.
#[derive(Clone, Debug, Default)]
pub(crate) struct SuffStats {
    pub(crate) nk: Vec<f64>,
    pub(crate) sx: Vec<[f64; 2]>,
    pub(crate) sq: Vec<[f64; 3]>, // xx, xy, yy
    pub(crate) loglik: f64,
}

impl SuffStats {
    pub(crate) fn zeros(k: usize) -> Self {
        SuffStats {
            nk: vec![0.0; k],
            sx: vec![[0.0; 2]; k],
            sq: vec![[0.0; 3]; k],
            loglik: 0.0,
        }
    }

    pub(crate) fn merge(&mut self, other: &SuffStats) {
        for k in 0..self.nk.len() {
            self.nk[k] += other.nk[k];
            self.sx[k][0] += other.sx[k][0];
            self.sx[k][1] += other.sx[k][1];
            self.sq[k][0] += other.sq[k][0];
            self.sq[k][1] += other.sq[k][1];
            self.sq[k][2] += other.sq[k][2];
        }
        self.loglik += other.loglik;
    }

    /// Exponentially decays the accumulated statistics: the incremental
    /// trainer ages out stale evidence before merging a new batch, so
    /// the effective sample window is geometric with factor `decay`.
    pub(crate) fn scale(&mut self, decay: f64) {
        for k in 0..self.nk.len() {
            self.nk[k] *= decay;
            self.sx[k][0] *= decay;
            self.sx[k][1] *= decay;
            self.sq[k][0] *= decay;
            self.sq[k][1] *= decay;
            self.sq[k][2] *= decay;
        }
        self.loglik *= decay;
    }
}

/// E-step over a slice, accumulating sufficient statistics into `stats`.
///
/// The per-component joint log-densities come from the shared SoA kernel
/// ([`GmmScorer::log_terms_into`]); `logs` is a per-worker scratch buffer
/// of length K, so the inner loop performs no allocation.
fn accumulate(
    scorer: &GmmScorer,
    xs: &[Vec2],
    ws: &[f64],
    offset: usize,
    stats: &mut SuffStats,
    logs: &mut [f64],
) {
    for (i, x) in xs.iter().enumerate() {
        let w = if ws.is_empty() { 1.0 } else { ws[offset + i] };
        let m = scorer.log_terms_into(*x, logs);
        if !m.is_finite() {
            continue;
        }
        let mut sum = 0.0;
        for l in logs.iter_mut() {
            *l = (*l - m).exp();
            sum += *l;
        }
        let lse = m + sum.ln();
        stats.loglik += w * lse;
        let inv_sum = 1.0 / sum;
        for (j, lj) in logs.iter().enumerate() {
            let r = lj * inv_sum * w;
            if r == 0.0 {
                continue;
            }
            stats.nk[j] += r;
            stats.sx[j][0] += r * x[0];
            stats.sx[j][1] += r * x[1];
            stats.sq[j][0] += r * x[0] * x[0];
            stats.sq[j][1] += r * x[0] * x[1];
            stats.sq[j][2] += r * x[1] * x[1];
        }
    }
}

impl EmTrainer {
    /// Creates a trainer after validating the configuration.
    ///
    /// # Errors
    ///
    /// See [`EmConfig::validate`].
    pub fn new(cfg: EmConfig) -> Result<Self, GmmError> {
        cfg.validate()?;
        Ok(EmTrainer { cfg })
    }

    /// The configuration in use.
    pub fn config(&self) -> &EmConfig {
        &self.cfg
    }

    /// Fits a mixture to weighted samples (`ws` empty ⇒ uniform weights).
    ///
    /// # Errors
    ///
    /// Returns [`GmmError::EmptyInput`] for empty/zero-weight data and
    /// propagates covariance failures (which regularization makes rare).
    ///
    /// # Panics
    ///
    /// Panics if `ws` is non-empty and `ws.len() != xs.len()`.
    pub fn fit(&self, xs: &[Vec2], ws: &[f64]) -> Result<(Gmm, EmReport), GmmError> {
        assert!(
            ws.is_empty() || ws.len() == xs.len(),
            "weights must be empty or match samples"
        );
        let total_w: f64 = if ws.is_empty() {
            xs.len() as f64
        } else {
            ws.iter().sum()
        };
        if xs.is_empty() || total_w <= 0.0 {
            return Err(GmmError::EmptyInput);
        }
        let k = self.cfg.k.min(xs.len());
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let (mut weights, mut means, mut covs) = init_params(
            xs,
            ws,
            k,
            self.cfg.init,
            self.cfg.reg_covar.max(1e-9),
            &mut rng,
        );

        let threads = if self.cfg.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(16)
        } else {
            self.cfg.threads
        };

        let mut history = Vec::with_capacity(self.cfg.max_iters);
        let mut converged = false;
        let mut iterations = 0;
        let mut prev_mll = f64::NEG_INFINITY;

        for _ in 0..self.cfg.max_iters {
            iterations += 1;
            let scorer = GmmScorer::from_params(&weights, &means, &covs)?;
            let stats = e_step(&scorer, xs, ws, k, threads);

            // M-step: per-component updates, parallel at high K.
            let global = crate::init::global_cov(xs, ws);
            m_step(
                &stats,
                xs,
                total_w,
                self.cfg.reg_covar.max(1e-9),
                global,
                &mut rng,
                &mut weights,
                &mut means,
                &mut covs,
                threads,
            );

            let mll = stats.loglik / total_w;
            history.push(mll);
            if (mll - prev_mll).abs() < self.cfg.tol {
                converged = true;
                break;
            }
            prev_mll = mll;
        }

        let components: Result<Vec<Gaussian2>, GmmError> = means
            .iter()
            .zip(&covs)
            .enumerate()
            .map(|(i, (m, c))| {
                Gaussian2::new(*m, *c).map_err(|_| GmmError::SingularCovariance { component: i })
            })
            .collect();
        let gmm = Gmm::new(weights, components?)?;
        Ok((
            gmm,
            EmReport {
                iterations,
                converged,
                log_likelihood: history,
            },
        ))
    }
}

use rand::Rng;

/// Minimum component count for which spawning M-step workers pays off —
/// below this the per-component update is cheaper than a thread handoff.
const PARALLEL_MSTEP_MIN: usize = 64;

/// M-step: recomputes `weights`/`means`/`covs` from the sufficient
/// statistics and renormalizes the weights.
///
/// The only order-sensitive part is the starved-component re-seeding,
/// which consumes the RNG stream: those draws happen in a serial
/// pre-scan in ascending component order, exactly as the historical
/// serial loop consumed them. After that every component's update is a
/// pure function of `stats` (or its pre-drawn re-seed index), so the
/// parallel path splits the components across scoped workers and is
/// **bit-identical** to the serial path for any thread count — the
/// property suite drives this directly.
#[allow(clippy::too_many_arguments)]
pub(crate) fn m_step(
    stats: &SuffStats,
    xs: &[Vec2],
    total_w: f64,
    reg_covar: f64,
    global: Mat2,
    rng: &mut StdRng,
    weights: &mut [f64],
    means: &mut [Vec2],
    covs: &mut [Mat2],
    threads: usize,
) {
    let k = weights.len();
    // Serial RNG pre-scan: re-seed indices for starved components, drawn
    // in ascending j so the seed stream matches the serial loop.
    let reseed: Vec<Option<usize>> = (0..k)
        .map(|j| {
            let live = stats.nk[j] > 1e-10;
            (!live).then(|| rng.gen_range(0..xs.len()))
        })
        .collect();
    let update = |j: usize, w: &mut f64, m: &mut Vec2, c: &mut Mat2| {
        if let Some(idx) = reseed[j] {
            // Re-seed a starved component on a random data point.
            *m = xs[idx];
            *c = global;
            *w = 1.0 / total_w;
        } else {
            let nk = stats.nk[j];
            *w = nk / total_w;
            *m = [stats.sx[j][0] / nk, stats.sx[j][1] / nk];
            let mv = *m;
            let cov = Mat2::new(
                (stats.sq[j][0] / nk - mv[0] * mv[0]).max(0.0) + reg_covar,
                stats.sq[j][1] / nk - mv[0] * mv[1],
                (stats.sq[j][2] / nk - mv[1] * mv[1]).max(0.0) + reg_covar,
            );
            *c = if cov.is_spd() {
                cov
            } else {
                Mat2::new(cov.xx, 0.0, cov.yy)
            };
        }
    };
    if threads <= 1 || k < PARALLEL_MSTEP_MIN {
        for j in 0..k {
            let (w, m, c) = (&mut weights[j], &mut means[j], &mut covs[j]);
            update(j, w, m, c);
        }
    } else {
        let chunk = k.div_ceil(threads);
        crossbeam::thread::scope(|scope| {
            for (t, ((wc, mc), cc)) in weights
                .chunks_mut(chunk)
                .zip(means.chunks_mut(chunk))
                .zip(covs.chunks_mut(chunk))
                .enumerate()
            {
                let update = &update;
                scope.spawn(move |_| {
                    for (i, ((w, m), c)) in wc
                        .iter_mut()
                        .zip(mc.iter_mut())
                        .zip(cc.iter_mut())
                        .enumerate()
                    {
                        update(t * chunk + i, w, m, c);
                    }
                });
            }
        })
        .expect("M-step worker panicked");
    }
    let wsum: f64 = weights.iter().sum();
    for w in weights.iter_mut() {
        *w /= wsum;
    }
}

/// Runs the E-step, splitting samples across `threads` workers.
pub(crate) fn e_step(
    scorer: &GmmScorer,
    xs: &[Vec2],
    ws: &[f64],
    k: usize,
    threads: usize,
) -> SuffStats {
    let threads = threads.max(1);
    if threads == 1 || xs.len() < 4_096 {
        let mut stats = SuffStats::zeros(k);
        let mut logs = vec![0.0f64; k];
        accumulate(scorer, xs, ws, 0, &mut stats, &mut logs);
        return stats;
    }
    let chunk = xs.len().div_ceil(threads);
    let mut partials: Vec<SuffStats> = Vec::with_capacity(threads);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * chunk;
            if lo >= xs.len() {
                break;
            }
            let hi = ((t + 1) * chunk).min(xs.len());
            let slice = &xs[lo..hi];
            handles.push(scope.spawn(move |_| {
                let mut stats = SuffStats::zeros(k);
                let mut logs = vec![0.0f64; k];
                accumulate(scorer, slice, ws, lo, &mut stats, &mut logs);
                stats
            }));
        }
        for h in handles {
            partials.push(h.join().expect("E-step worker panicked"));
        }
    })
    .expect("crossbeam scope failed");
    let mut stats = SuffStats::zeros(k);
    for p in &partials {
        stats.merge(p);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn synth_mixture(n: usize, seed: u64) -> Vec<Vec2> {
        // Ground truth: 2 well-separated Gaussians, weights 0.75/0.25.
        let g = Gmm::new(
            vec![0.75, 0.25],
            vec![
                Gaussian2::new([-4.0, 0.0], Mat2::new(0.5, 0.1, 0.3)).unwrap(),
                Gaussian2::new([4.0, 2.0], Mat2::new(0.4, -0.05, 0.6)).unwrap(),
            ],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| g.sample(&mut rng)).collect()
    }

    #[test]
    fn config_validation() {
        assert!(EmConfig::default().validate().is_ok());
        assert!(EmConfig {
            k: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EmConfig {
            max_iters: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EmConfig {
            tol: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EmConfig {
            reg_covar: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EmTrainer::new(EmConfig {
            k: 0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn recovers_two_component_mixture() {
        let xs = synth_mixture(4_000, 7);
        let trainer = EmTrainer::new(EmConfig {
            k: 2,
            max_iters: 100,
            tol: 1e-7,
            ..Default::default()
        })
        .unwrap();
        let (gmm, report) = trainer.fit(&xs, &[]).unwrap();
        assert!(report.converged, "EM did not converge");
        // Recover weights within 3%.
        let mut w: Vec<f64> = gmm.weights().to_vec();
        w.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((w[0] - 0.25).abs() < 0.03, "weights {w:?}");
        // Means near ±4.
        let found_left = gmm
            .components()
            .iter()
            .any(|c| (c.mean()[0] + 4.0).abs() < 0.3);
        let found_right = gmm
            .components()
            .iter()
            .any(|c| (c.mean()[0] - 4.0).abs() < 0.3);
        assert!(found_left && found_right);
    }

    #[test]
    fn log_likelihood_is_monotone_nondecreasing() {
        let xs = synth_mixture(2_000, 8);
        let trainer = EmTrainer::new(EmConfig {
            k: 4,
            max_iters: 30,
            tol: 1e-12, // force full run
            ..Default::default()
        })
        .unwrap();
        let (_, report) = trainer.fit(&xs, &[]).unwrap();
        for pair in report.log_likelihood.windows(2) {
            assert!(
                pair[1] >= pair[0] - 1e-6,
                "log-likelihood decreased: {} -> {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn weighted_fit_equals_expanded_fit() {
        // Duplicate-count weights must match an expanded multiset.
        let base: Vec<Vec2> = vec![[0.0, 0.0], [1.0, 1.0], [8.0, 8.0]];
        let ws = [3.0, 1.0, 2.0];
        let mut expanded = Vec::new();
        for (x, &w) in base.iter().zip(&ws) {
            for _ in 0..w as usize {
                expanded.push(*x);
            }
        }
        let cfg = EmConfig {
            k: 2,
            max_iters: 50,
            seed: 3,
            ..Default::default()
        };
        let (g1, _) = EmTrainer::new(cfg).unwrap().fit(&base, &ws).unwrap();
        let (g2, _) = EmTrainer::new(cfg).unwrap().fit(&expanded, &[]).unwrap();
        // Same mean log-likelihood on the expanded set (models equivalent).
        let l1 = g1.mean_log_likelihood(&expanded, &[]);
        let l2 = g2.mean_log_likelihood(&expanded, &[]);
        assert!((l1 - l2).abs() < 0.05, "l1={l1} l2={l2}");
    }

    #[test]
    fn empty_input_is_an_error() {
        let trainer = EmTrainer::new(EmConfig::default()).unwrap();
        assert_eq!(trainer.fit(&[], &[]).unwrap_err(), GmmError::EmptyInput);
        let xs = [[1.0, 1.0]];
        assert_eq!(trainer.fit(&xs, &[0.0]).unwrap_err(), GmmError::EmptyInput);
    }

    #[test]
    fn k_is_clamped_to_sample_count() {
        let xs = vec![[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]];
        let trainer = EmTrainer::new(EmConfig {
            k: 64,
            max_iters: 5,
            ..Default::default()
        })
        .unwrap();
        let (gmm, _) = trainer.fit(&xs, &[]).unwrap();
        assert!(gmm.k() <= 3);
    }

    #[test]
    fn parallel_and_serial_estep_agree() {
        let xs = synth_mixture(6_000, 9);
        let mk = |threads| {
            EmTrainer::new(EmConfig {
                k: 3,
                max_iters: 8,
                tol: 1e-12,
                threads,
                seed: 42,
                ..Default::default()
            })
            .unwrap()
            .fit(&xs, &[])
            .unwrap()
        };
        let (_, r1) = mk(1);
        let (_, r4) = mk(4);
        for (a, b) in r1.log_likelihood.iter().zip(&r4.log_likelihood) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    /// Synthetic sufficient statistics with a controllable set of starved
    /// components, exercising both M-step branches (including the SPD
    /// fallback, via near-singular cross moments at every 7th component).
    fn synth_stats(k: usize, starve_every: usize, salt: u64) -> SuffStats {
        let mut stats = SuffStats::zeros(k);
        for j in 0..k {
            if starve_every != 0 && j % starve_every == 0 {
                continue; // nk stays 0.0 → starved branch
            }
            let h = (j as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(salt);
            let nk = 1.0 + (h % 1_000) as f64 / 7.0;
            let mx = ((h >> 10) % 100) as f64 / 10.0 - 5.0;
            let my = ((h >> 20) % 100) as f64 / 10.0 - 5.0;
            let (vx, vy) = (0.1 + (j % 5) as f64 * 0.3, 0.2 + (j % 3) as f64 * 0.4);
            // Every 7th live component gets a cross moment so large the
            // covariance goes indefinite, forcing the SPD fallback.
            let cxy = if j % 7 == 0 {
                10.0 * (vx * vy).sqrt()
            } else {
                0.05
            };
            stats.nk[j] = nk;
            stats.sx[j] = [nk * mx, nk * my];
            stats.sq[j] = [
                nk * (vx + mx * mx),
                nk * (cxy + mx * my),
                nk * (vy + my * my),
            ];
        }
        stats
    }

    use proptest::prelude::*;

    proptest! {
        /// The parallel M-step must be bit-identical to the serial one
        /// for any thread count: the RNG pre-scan keeps the re-seed
        /// draws in serial ascending order, and each component update is
        /// pure. (The mirror of `parallel_and_serial_estep_agree`, but
        /// exact — the E-step's chunked f64 sums carry a tolerance, the
        /// M-step's per-component updates must not.)
        #[test]
        fn parallel_mstep_is_bit_identical_to_serial(
            k in 1usize..301,
            starve_every in 0usize..10,
            salt in any::<u64>(),
            threads in 2usize..17,
        ) {
            let xs: Vec<Vec2> = (0..64)
                .map(|i| [i as f64 * 0.3 - 9.0, (i as f64 * 1.7).sin()])
                .collect();
            let stats = synth_stats(k, starve_every, salt);
            let global = crate::init::global_cov(&xs, &[]);
            let total_w = xs.len() as f64;

            let run = |threads: usize| {
                let mut rng = StdRng::seed_from_u64(salt);
                let mut weights = vec![0.5; k];
                let mut means = vec![[1.0, -1.0]; k];
                let mut covs = vec![Mat2::scaled_identity(1.0); k];
                m_step(
                    &stats,
                    &xs,
                    total_w,
                    1e-6,
                    global,
                    &mut rng,
                    &mut weights,
                    &mut means,
                    &mut covs,
                    threads,
                );
                (weights, means, covs)
            };
            let serial = run(1);
            let parallel = run(threads);
            // PartialEq on f64 vectors: bit-identity up to 0.0 sign and
            // NaN, neither of which the M-step produces here.
            prop_assert_eq!(&serial.0, &parallel.0);
            prop_assert_eq!(&serial.1, &parallel.1);
            prop_assert_eq!(&serial.2, &parallel.2);
        }
    }

    #[test]
    fn degenerate_duplicate_data_survives() {
        let xs = vec![[5.0, 5.0]; 100];
        let trainer = EmTrainer::new(EmConfig {
            k: 3,
            max_iters: 10,
            ..Default::default()
        })
        .unwrap();
        let (gmm, _) = trainer.fit(&xs, &[]).unwrap();
        assert!(gmm.density([5.0, 5.0]).is_finite());
        assert!(gmm.density([5.0, 5.0]) > gmm.density([100.0, 100.0]));
    }
}
