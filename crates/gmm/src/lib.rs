//! # icgmm-gmm
//!
//! Two-dimensional Gaussian Mixture Model for the ICGMM reproduction
//! (DAC 2024): the paper's cache policy engine models the joint
//! distribution of `(page index, transformed timestamp)` with a `K`-component
//! mixture (Eq. 1–3), trained offline with Expectation-Maximization (§3.3),
//! and uses the mixture density as an access-frequency score for cache
//! admission and eviction decisions.
//!
//! * [`Gaussian2`]/[`Mat2`] — exact 2-D Gaussian components;
//! * [`Gmm`] — the mixture: density/score, responsibilities, sampling;
//! * [`GmmScorer`] — the allocation-free structure-of-arrays scoring
//!   kernel behind every hot path (scalar, batched and parallel);
//! * [`EmTrainer`]/[`EmConfig`] — weighted EM with k-means++ init and a
//!   crossbeam-parallel E-step (responsibilities via the SoA kernel);
//! * [`IncrementalEm`] — online refits over decayed sufficient
//!   statistics: one E/M pass per refit instead of a cold `fit`;
//! * [`StandardScaler`] — the affine feature map stored with the model;
//! * [`calibrate_threshold`] — quantile-based admission threshold;
//! * [`fixed`] — the fixed-point (FPGA-style) inference datapath.
//!
//! ## Example
//!
//! ```
//! use icgmm_gmm::{EmConfig, EmTrainer, StandardScaler};
//!
//! // Two clusters of (page, time) cells.
//! let mut cells = vec![];
//! for i in 0..50 {
//!     cells.push([1000.0 + i as f64, 10.0]);
//!     cells.push([9000.0 + i as f64, 90.0]);
//! }
//! let scaler = StandardScaler::fit(&cells, &[]);
//! scaler.transform_all(&mut cells);
//!
//! let trainer = EmTrainer::new(EmConfig { k: 2, ..Default::default() })?;
//! let (gmm, report) = trainer.fit(&cells, &[])?;
//! assert!(report.iterations >= 1);
//! // In-distribution cells score higher than out-of-distribution ones.
//! let hot = gmm.score(scaler.transform([1025.0, 10.0]));
//! let cold = gmm.score(scaler.transform([5000.0, 50.0]));
//! assert!(hot > cold);
//! # Ok::<(), icgmm_gmm::GmmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod em;
mod error;
mod gaussian;
mod incremental;
mod init;
mod model;
mod scaler;
mod threshold;

pub mod fixed;
pub mod scorer;

pub use em::{EmConfig, EmReport, EmTrainer};
pub use incremental::IncrementalEm;
pub use error::GmmError;
pub use gaussian::{Gaussian2, Mat2, Vec2};
pub use init::InitMethod;
pub use model::Gmm;
pub use scaler::StandardScaler;
pub use scorer::GmmScorer;
pub use threshold::{calibrate_threshold, weighted_quantile, ThresholdConfig};

use rand::Rng;

/// Standard-normal draw shared by sampling helpers (Box–Muller).
pub(crate) fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}
