//! Two-dimensional Gaussian components and the minimal linear algebra they
//! need (paper Eq. 1–2).
//!
//! The feature space is fixed at 2-D — `(page index, timestamp)` — so we
//! carry exact 2×2 formulas instead of a general linear-algebra dependency;
//! this also keeps the fixed-point hardware mirror (`crate::fixed`) an
//! instruction-for-instruction match.

use crate::error::GmmError;
use serde::{Deserialize, Serialize};

/// A point in the 2-D feature space `[P, T]`.
pub type Vec2 = [f64; 2];

/// Natural log of 2π.
pub(crate) const LN_2PI: f64 = 1.837_877_066_409_345_4;

/// A symmetric 2×2 matrix `[[xx, xy], [xy, yy]]`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Mat2 {
    /// Top-left entry (variance of the first feature).
    pub xx: f64,
    /// Off-diagonal entry (covariance).
    pub xy: f64,
    /// Bottom-right entry (variance of the second feature).
    pub yy: f64,
}

impl Mat2 {
    /// Constructs a symmetric matrix.
    pub fn new(xx: f64, xy: f64, yy: f64) -> Self {
        Mat2 { xx, xy, yy }
    }

    /// The identity matrix scaled by `s`.
    pub fn scaled_identity(s: f64) -> Self {
        Mat2::new(s, 0.0, s)
    }

    /// Determinant.
    pub fn det(&self) -> f64 {
        self.xx * self.yy - self.xy * self.xy
    }

    /// Inverse, or `None` if the determinant is not strictly positive
    /// (positive-definiteness requires `det > 0` and `xx > 0`).
    pub fn inverse(&self) -> Option<Mat2> {
        let d = self.det();
        if !(d.is_finite() && d > 0.0 && self.xx > 0.0) {
            return None;
        }
        Some(Mat2::new(self.yy / d, -self.xy / d, self.xx / d))
    }

    /// `true` when the matrix is symmetric positive definite.
    pub fn is_spd(&self) -> bool {
        self.xx > 0.0 && self.det() > 0.0 && self.xx.is_finite() && self.yy.is_finite()
    }

    /// Quadratic form `vᵀ M v`.
    pub fn quad_form(&self, v: Vec2) -> f64 {
        self.xx * v[0] * v[0] + 2.0 * self.xy * v[0] * v[1] + self.yy * v[1] * v[1]
    }

    /// Lower-triangular Cholesky factor `L` with `L Lᵀ = M`, or `None` if
    /// the matrix is not positive definite. Used for sampling in tests.
    pub fn cholesky(&self) -> Option<(f64, f64, f64)> {
        if !self.is_spd() {
            return None;
        }
        let l11 = self.xx.sqrt();
        let l21 = self.xy / l11;
        let t = self.yy - l21 * l21;
        if t <= 0.0 {
            return None;
        }
        Some((l11, l21, t.sqrt()))
    }
}

/// One 2-D Gaussian `N(x | μ, Σ)` with cached inverse covariance and
/// log-normalizer (paper Eq. 1).
///
/// ```
/// use icgmm_gmm::{Gaussian2, Mat2};
/// let g = Gaussian2::new([0.0, 0.0], Mat2::scaled_identity(1.0)).unwrap();
/// // Peak density of a standard 2-D normal is 1/(2π).
/// assert!((g.pdf([0.0, 0.0]) - 1.0 / (2.0 * std::f64::consts::PI)).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Gaussian2 {
    mean: Vec2,
    cov: Mat2,
    inv: Mat2,
    /// `-ln(2π) - ½ ln|Σ|`, so `log_pdf = log_norm - ½ quad_form`.
    log_norm: f64,
}

impl Gaussian2 {
    /// Creates a Gaussian from a mean and covariance.
    ///
    /// # Errors
    ///
    /// Returns [`GmmError::SingularCovariance`] when `cov` is not symmetric
    /// positive definite (component index 0 is reported; the mixture
    /// constructor re-maps it).
    pub fn new(mean: Vec2, cov: Mat2) -> Result<Self, GmmError> {
        let inv = cov
            .inverse()
            .ok_or(GmmError::SingularCovariance { component: 0 })?;
        if !(mean[0].is_finite() && mean[1].is_finite()) {
            return Err(GmmError::InvalidParam("mean must be finite".into()));
        }
        let log_norm = -LN_2PI - 0.5 * cov.det().ln();
        Ok(Gaussian2 {
            mean,
            cov,
            inv,
            log_norm,
        })
    }

    /// Mean vector μ.
    pub fn mean(&self) -> Vec2 {
        self.mean
    }

    /// Covariance matrix Σ.
    pub fn cov(&self) -> Mat2 {
        self.cov
    }

    /// Cached inverse covariance Σ⁻¹.
    pub fn inv_cov(&self) -> Mat2 {
        self.inv
    }

    /// Cached log-normalizer `-ln(2π) - ½ ln|Σ|`.
    pub fn log_norm(&self) -> f64 {
        self.log_norm
    }

    /// Mahalanobis quadratic form `(x−μ)ᵀ Σ⁻¹ (x−μ)`.
    pub fn mahalanobis_sq(&self, x: Vec2) -> f64 {
        let d = [x[0] - self.mean[0], x[1] - self.mean[1]];
        self.inv.quad_form(d)
    }

    /// Log probability density at `x`.
    pub fn log_pdf(&self, x: Vec2) -> f64 {
        self.log_norm - 0.5 * self.mahalanobis_sq(x)
    }

    /// Probability density at `x` (Eq. 1).
    pub fn pdf(&self, x: Vec2) -> f64 {
        self.log_pdf(x).exp()
    }
}

/// Numerically stable `ln Σ exp(vals)` (log-sum-exp).
///
/// The production paths now stream this computation inside
/// [`crate::scorer::GmmScorer`] without materializing `vals`; this
/// buffer-based form is kept as the reference implementation the scorer
/// tests compare against.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn log_sum_exp(vals: &[f64]) -> f64 {
    let m = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m;
    }
    let s: f64 = vals.iter().map(|v| (v - m).exp()).sum();
    m + s.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_round_trips() {
        let m = Mat2::new(4.0, 1.0, 3.0);
        let inv = m.inverse().unwrap();
        // M * M⁻¹ = I
        let a = m.xx * inv.xx + m.xy * inv.xy;
        let b = m.xx * inv.xy + m.xy * inv.yy;
        let d = m.xy * inv.xy + m.yy * inv.yy;
        assert!((a - 1.0).abs() < 1e-12);
        assert!(b.abs() < 1e-12);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_spd_matrices_are_rejected() {
        assert!(Mat2::new(1.0, 2.0, 1.0).inverse().is_none()); // det < 0
        assert!(Mat2::new(-1.0, 0.0, 1.0).inverse().is_none());
        assert!(Mat2::new(0.0, 0.0, 0.0).inverse().is_none());
        assert!(!Mat2::new(1.0, 0.0, f64::NAN).is_spd());
        assert!(Gaussian2::new([0.0, 0.0], Mat2::new(1.0, 2.0, 1.0)).is_err());
    }

    #[test]
    fn nan_mean_is_rejected() {
        let err = Gaussian2::new([f64::NAN, 0.0], Mat2::scaled_identity(1.0)).unwrap_err();
        assert!(matches!(err, GmmError::InvalidParam(_)));
    }

    #[test]
    fn pdf_integrates_to_one_on_a_grid() {
        let g = Gaussian2::new([1.0, -2.0], Mat2::new(0.8, 0.2, 1.5)).unwrap();
        // Riemann sum over ±6σ box.
        let (mut sum, step, half) = (0.0f64, 0.05, 8.0);
        let mut x = 1.0 - half;
        while x < 1.0 + half {
            let mut y = -2.0 - half;
            while y < -2.0 + half {
                sum += g.pdf([x, y]) * step * step;
                y += step;
            }
            x += step;
        }
        assert!((sum - 1.0).abs() < 1e-3, "integral {sum}");
    }

    #[test]
    fn mahalanobis_is_zero_at_mean_and_grows() {
        let g = Gaussian2::new([3.0, 4.0], Mat2::new(2.0, 0.5, 1.0)).unwrap();
        assert!(g.mahalanobis_sq([3.0, 4.0]).abs() < 1e-15);
        assert!(g.mahalanobis_sq([4.0, 4.0]) > 0.0);
        assert!(g.log_pdf([3.0, 4.0]) > g.log_pdf([10.0, 10.0]));
    }

    #[test]
    fn cholesky_reconstructs() {
        let m = Mat2::new(4.0, 1.2, 2.0);
        let (l11, l21, l22) = m.cholesky().unwrap();
        assert!((l11 * l11 - m.xx).abs() < 1e-12);
        assert!((l11 * l21 - m.xy).abs() < 1e-12);
        assert!((l21 * l21 + l22 * l22 - m.yy).abs() < 1e-12);
        assert!(Mat2::new(1.0, 2.0, 1.0).cholesky().is_none());
    }

    #[test]
    fn log_sum_exp_matches_naive_and_survives_extremes() {
        let vals = [-1.0f64, 0.5, 2.0];
        let naive: f64 = vals.iter().map(|v| v.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&vals) - naive).abs() < 1e-12);
        // Would overflow naively.
        let big = [1000.0, 1000.0];
        assert!((log_sum_exp(&big) - (1000.0 + 2.0f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }

    #[test]
    fn quad_form_symmetric() {
        let m = Mat2::new(2.0, 0.3, 1.0);
        let q = m.quad_form([1.0, -2.0]);
        assert!((q - (2.0 + 2.0 * 0.3 * -2.0 + 4.0)).abs() < 1e-12);
    }
}
