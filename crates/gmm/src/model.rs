//! The Gaussian mixture model (paper Eq. 3).

use crate::error::GmmError;
use crate::gaussian::{Gaussian2, Vec2};
use crate::scorer::GmmScorer;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A mixture of `K` two-dimensional Gaussians with weights `π`
/// (`0 ≤ π_k ≤ 1`, `Σ π_k = 1`).
///
/// The mixture density `G(x) = Σ_k π_k N(x | μ_k, Σ_k)` is the paper's
/// access-frequency score: higher `G` ⇒ the page/time cell is in a more
/// frequently accessed region of the trace distribution.
///
/// ```
/// use icgmm_gmm::{Gaussian2, Gmm, Mat2};
/// let g = Gmm::new(
///     vec![0.5, 0.5],
///     vec![
///         Gaussian2::new([-2.0, 0.0], Mat2::scaled_identity(1.0))?,
///         Gaussian2::new([2.0, 0.0], Mat2::scaled_identity(1.0))?,
///     ],
/// )?;
/// assert!(g.score([-2.0, 0.0]) > g.score([0.0, 5.0]));
/// # Ok::<(), icgmm_gmm::GmmError>(())
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Gmm {
    weights: Vec<f64>,
    components: Vec<Gaussian2>,
    /// Lazily built SoA inference kernel (caches `ln π_k + log_norm_k`,
    /// so the hot paths never recompute logarithms or allocate).
    /// Derived state: excluded from equality and serialization.
    #[serde(skip)]
    scorer: OnceLock<GmmScorer>,
}

impl PartialEq for Gmm {
    fn eq(&self, other: &Self) -> bool {
        // The cached scorer is derived from (weights, components); two
        // mixtures are equal iff their parameters are.
        self.weights == other.weights && self.components == other.components
    }
}

impl Gmm {
    /// Builds a mixture from weights and components.
    ///
    /// # Errors
    ///
    /// Returns [`GmmError::InvalidWeights`] when lengths differ, the list is
    /// empty, any weight is negative/non-finite, or weights do not sum to 1
    /// (tolerance 1e-6; sums off by more than 1e-12 are renormalized,
    /// already-normalized weights pass through bit-unchanged so that
    /// construction is idempotent).
    pub fn new(weights: Vec<f64>, components: Vec<Gaussian2>) -> Result<Self, GmmError> {
        if weights.len() != components.len() {
            return Err(GmmError::InvalidWeights(format!(
                "{} weights vs {} components",
                weights.len(),
                components.len()
            )));
        }
        if weights.is_empty() {
            return Err(GmmError::InvalidWeights("mixture must be non-empty".into()));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(GmmError::InvalidWeights(
                "weights must be finite and non-negative".into(),
            ));
        }
        let sum: f64 = weights.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(GmmError::InvalidWeights(format!("weights sum to {sum}")));
        }
        // Renormalize only when the sum is meaningfully off 1.0.
        // Already-normalized weights (an EM fit, or a mixture's own
        // weights fed back through the save→load round-trip) sit within a
        // few ulp of 1.0, where re-dividing would only churn low bits —
        // skipping them makes construction idempotent and keeps model
        // persistence bit-exact.
        let mut weights = weights;
        if (sum - 1.0).abs() > 1e-12 {
            for w in &mut weights {
                *w /= sum;
            }
        }
        Ok(Gmm {
            weights,
            components,
            scorer: OnceLock::new(),
        })
    }

    /// Number of mixture components `K`.
    pub fn k(&self) -> usize {
        self.components.len()
    }

    /// Mixture weights π.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Mixture components.
    pub fn components(&self) -> &[Gaussian2] {
        &self.components
    }

    /// The flat structure-of-arrays inference kernel, built on first use
    /// and cached for the lifetime of the mixture (see [`GmmScorer`]).
    pub fn scorer(&self) -> &GmmScorer {
        self.scorer
            .get_or_init(|| GmmScorer::from_components(&self.weights, &self.components))
    }

    /// Log mixture density `ln G(x)` via the allocation-free streaming
    /// max-trick log-sum-exp of the cached [`GmmScorer`].
    pub fn log_density(&self, x: Vec2) -> f64 {
        self.scorer().log_density(x)
    }

    /// Mixture density `G(x)` — the paper's access-frequency score (Eq. 3).
    pub fn density(&self, x: Vec2) -> f64 {
        self.log_density(x).exp()
    }

    /// Alias for [`Gmm::density`], matching the paper's terminology.
    pub fn score(&self, x: Vec2) -> f64 {
        self.density(x)
    }

    /// Batched scores through the cached [`GmmScorer`] — bit-identical to
    /// calling [`Gmm::score`] per point, several times faster per point.
    ///
    /// # Panics
    ///
    /// Panics when `xs.len() != out.len()`.
    pub fn score_batch(&self, xs: &[Vec2], out: &mut [f64]) {
        self.scorer().score_batch(xs, out)
    }

    /// Posterior responsibilities `p(k | x)` (the E-step quantity).
    pub fn responsibilities(&self, x: Vec2) -> Vec<f64> {
        let mut out = vec![0.0; self.k()];
        let lse = self.scorer().responsibilities_into(x, &mut out);
        if !lse.is_finite() {
            // x is impossibly far from every component: fall back to π.
            return self.weights.clone();
        }
        out
    }

    /// Draws one sample from the mixture (tests and synthetic-data use).
    ///
    /// # Panics
    ///
    /// Panics if a component covariance lost positive-definiteness after
    /// construction (cannot happen through the public API).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec2 {
        let mut u = rng.gen::<f64>();
        let mut idx = self.components.len() - 1;
        for (k, w) in self.weights.iter().enumerate() {
            u -= w;
            if u <= 0.0 {
                idx = k;
                break;
            }
        }
        let c = &self.components[idx];
        let (l11, l21, l22) = c
            .cov()
            .cholesky()
            .expect("component covariance is positive definite");
        let z0 = crate::sample_standard_normal(rng);
        let z1 = crate::sample_standard_normal(rng);
        let m = c.mean();
        [m[0] + l11 * z0, m[1] + l21 * z0 + l22 * z1]
    }

    /// Average log-likelihood of weighted data under the mixture.
    pub fn mean_log_likelihood(&self, xs: &[Vec2], ws: &[f64]) -> f64 {
        assert!(
            ws.is_empty() || ws.len() == xs.len(),
            "weights must be empty or match samples"
        );
        if xs.is_empty() {
            return f64::NEG_INFINITY;
        }
        let w_at = |i: usize| if ws.is_empty() { 1.0 } else { ws[i] };
        let total: f64 = (0..xs.len()).map(w_at).sum();
        let ll: f64 = xs
            .iter()
            .enumerate()
            .map(|(i, x)| w_at(i) * self.log_density(*x))
            .sum();
        ll / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::Mat2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_bump() -> Gmm {
        Gmm::new(
            vec![0.7, 0.3],
            vec![
                Gaussian2::new([-3.0, 0.0], Mat2::scaled_identity(0.5)).unwrap(),
                Gaussian2::new([3.0, 1.0], Mat2::scaled_identity(0.5)).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_weights() {
        let c = Gaussian2::new([0.0, 0.0], Mat2::scaled_identity(1.0)).unwrap();
        assert!(Gmm::new(vec![0.5], vec![c, c]).is_err());
        assert!(Gmm::new(vec![], vec![]).is_err());
        assert!(Gmm::new(vec![-0.5, 1.5], vec![c, c]).is_err());
        assert!(Gmm::new(vec![0.2, 0.2], vec![c, c]).is_err()); // sums to 0.4
        assert!(Gmm::new(vec![f64::NAN, 1.0], vec![c, c]).is_err());
        assert!(Gmm::new(vec![0.5, 0.5], vec![c, c]).is_ok());
    }

    #[test]
    fn density_is_weighted_sum_of_pdfs() {
        let g = two_bump();
        let x = [0.3, 0.2];
        let manual = 0.7 * g.components()[0].pdf(x) + 0.3 * g.components()[1].pdf(x);
        assert!((g.density(x) - manual).abs() < 1e-12);
        assert_eq!(g.score(x), g.density(x));
    }

    #[test]
    fn responsibilities_sum_to_one_and_pick_near_component() {
        let g = two_bump();
        let r = g.responsibilities([-3.0, 0.0]);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(r[0] > 0.99);
        let far = g.responsibilities([1e9, 1e9]);
        assert!((far.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_weight_component_is_ignored() {
        let g = Gmm::new(
            vec![1.0, 0.0],
            vec![
                Gaussian2::new([0.0, 0.0], Mat2::scaled_identity(1.0)).unwrap(),
                Gaussian2::new([100.0, 0.0], Mat2::scaled_identity(1.0)).unwrap(),
            ],
        )
        .unwrap();
        let only = g.components()[0].pdf([0.5, 0.0]);
        assert!((g.density([0.5, 0.0]) - only).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_mixture_proportions() {
        let g = two_bump();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let left = (0..n).filter(|_| g.sample(&mut rng)[0] < 0.0).count() as f64 / n as f64;
        assert!((left - 0.7).abs() < 0.02, "left fraction {left}");
    }

    #[test]
    fn mean_log_likelihood_prefers_matching_data() {
        let g = two_bump();
        let mut rng = StdRng::seed_from_u64(6);
        let data: Vec<Vec2> = (0..500).map(|_| g.sample(&mut rng)).collect();
        let shifted: Vec<Vec2> = data.iter().map(|x| [x[0] + 50.0, x[1]]).collect();
        assert!(g.mean_log_likelihood(&data, &[]) > g.mean_log_likelihood(&shifted, &[]));
    }

    #[test]
    fn serde_round_trip_via_debug_equality() {
        // serde_json is not in the dependency set; use bincode-free check:
        // clone + PartialEq covers the Serialize/Deserialize derive shape.
        let g = two_bump();
        let h = g.clone();
        assert_eq!(g, h);
    }
}
