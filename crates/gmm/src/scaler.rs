//! Feature standardization.
//!
//! Raw GMM inputs span wildly different ranges (page indices up to 2³⁰,
//! timestamps up to 10⁴), which makes f64 EM ill-conditioned and a
//! fixed-point hardware implementation impossible. The FPGA fixes feature
//! ranges at design time; we do the software equivalent — an affine
//! standardization whose parameters are stored with the model.

use crate::gaussian::Vec2;
use serde::{Deserialize, Serialize};

/// Per-feature affine map `x ↦ (x − mean) / std`.
///
/// ```
/// use icgmm_gmm::StandardScaler;
/// let s = StandardScaler::fit(&[[0.0, 10.0], [2.0, 30.0]], &[1.0, 1.0]);
/// let z = s.transform([1.0, 20.0]);
/// assert!((z[0]).abs() < 1e-12 && (z[1]).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    mean: Vec2,
    std: Vec2,
}

impl StandardScaler {
    /// Identity scaler (useful for pre-scaled data and tests).
    pub fn identity() -> Self {
        StandardScaler {
            mean: [0.0, 0.0],
            std: [1.0, 1.0],
        }
    }

    /// Reconstructs a scaler from stored parameters (model loading).
    ///
    /// # Errors
    ///
    /// Returns a message when any parameter is non-finite or a standard
    /// deviation is not strictly positive.
    pub fn from_parts(mean: Vec2, std: Vec2) -> Result<Self, String> {
        if !(mean[0].is_finite() && mean[1].is_finite()) {
            return Err("scaler mean must be finite".into());
        }
        if !(std[0].is_finite() && std[1].is_finite() && std[0] > 0.0 && std[1] > 0.0) {
            return Err("scaler std must be finite and > 0".into());
        }
        Ok(StandardScaler { mean, std })
    }

    /// Fits mean and standard deviation on weighted samples.
    ///
    /// Weights must be non-negative; an empty or zero-weight input yields
    /// the identity scaler. Degenerate (constant) features get `std = 1` so
    /// the transform stays invertible.
    pub fn fit(xs: &[Vec2], ws: &[f64]) -> Self {
        assert!(
            ws.is_empty() || ws.len() == xs.len(),
            "weights must be empty or match samples"
        );
        let total: f64 = if ws.is_empty() {
            xs.len() as f64
        } else {
            ws.iter().sum()
        };
        if xs.is_empty() || total <= 0.0 {
            return StandardScaler::identity();
        }
        let w_at = |i: usize| if ws.is_empty() { 1.0 } else { ws[i] };
        let mut mean = [0.0f64; 2];
        for (i, x) in xs.iter().enumerate() {
            mean[0] += w_at(i) * x[0];
            mean[1] += w_at(i) * x[1];
        }
        mean[0] /= total;
        mean[1] /= total;
        let mut var = [0.0f64; 2];
        for (i, x) in xs.iter().enumerate() {
            var[0] += w_at(i) * (x[0] - mean[0]) * (x[0] - mean[0]);
            var[1] += w_at(i) * (x[1] - mean[1]) * (x[1] - mean[1]);
        }
        var[0] /= total;
        var[1] /= total;
        let std = [
            if var[0] > 0.0 { var[0].sqrt() } else { 1.0 },
            if var[1] > 0.0 { var[1].sqrt() } else { 1.0 },
        ];
        StandardScaler { mean, std }
    }

    /// Maps a raw feature vector into standardized space.
    pub fn transform(&self, x: Vec2) -> Vec2 {
        [
            (x[0] - self.mean[0]) / self.std[0],
            (x[1] - self.mean[1]) / self.std[1],
        ]
    }

    /// Maps a standardized vector back to raw space.
    pub fn inverse_transform(&self, z: Vec2) -> Vec2 {
        [
            z[0] * self.std[0] + self.mean[0],
            z[1] * self.std[1] + self.mean[1],
        ]
    }

    /// Transforms a batch in place.
    pub fn transform_all(&self, xs: &mut [Vec2]) {
        for x in xs.iter_mut() {
            *x = self.transform(*x);
        }
    }

    /// Fitted per-feature mean.
    pub fn mean(&self) -> Vec2 {
        self.mean
    }

    /// Fitted per-feature standard deviation.
    pub fn std(&self) -> Vec2 {
        self.std
    }
}

impl Default for StandardScaler {
    fn default() -> Self {
        StandardScaler::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_fit_centers_and_scales() {
        let xs = [[0.0, 0.0], [10.0, 100.0]];
        let ws = [3.0, 1.0];
        let s = StandardScaler::fit(&xs, &ws);
        // Weighted mean = 2.5, 25.
        assert!((s.mean()[0] - 2.5).abs() < 1e-12);
        assert!((s.mean()[1] - 25.0).abs() < 1e-12);
        let z = s.transform([2.5, 25.0]);
        assert!(z[0].abs() < 1e-12 && z[1].abs() < 1e-12);
    }

    #[test]
    fn unweighted_fit_uses_uniform_weights() {
        let xs = [[1.0, 2.0], [3.0, 6.0]];
        let a = StandardScaler::fit(&xs, &[]);
        let b = StandardScaler::fit(&xs, &[1.0, 1.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn inverse_round_trips() {
        let xs = [[1.0, 5.0], [2.0, 9.0], [4.0, -3.0]];
        let s = StandardScaler::fit(&xs, &[]);
        for x in xs {
            let back = s.inverse_transform(s.transform(x));
            assert!((back[0] - x[0]).abs() < 1e-10);
            assert!((back[1] - x[1]).abs() < 1e-10);
        }
    }

    #[test]
    fn constant_feature_keeps_unit_std() {
        let xs = [[7.0, 1.0], [7.0, 2.0]];
        let s = StandardScaler::fit(&xs, &[]);
        assert_eq!(s.std()[0], 1.0);
        assert!(s.std()[1] > 0.0);
        // Transform stays finite.
        let z = s.transform([7.0, 1.5]);
        assert!(z[0].is_finite() && z[1].is_finite());
    }

    #[test]
    fn empty_input_gives_identity() {
        let s = StandardScaler::fit(&[], &[]);
        assert_eq!(s, StandardScaler::identity());
        assert_eq!(s.transform([3.0, 4.0]), [3.0, 4.0]);
    }

    #[test]
    fn transform_all_matches_pointwise() {
        let s = StandardScaler::fit(&[[0.0, 0.0], [4.0, 2.0]], &[]);
        let mut batch = [[1.0, 1.0], [2.0, 0.5]];
        let expect: Vec<_> = batch.iter().map(|&x| s.transform(x)).collect();
        s.transform_all(&mut batch);
        assert_eq!(batch.to_vec(), expect);
    }

    #[test]
    #[should_panic(expected = "weights")]
    fn mismatched_weights_panic() {
        let _ = StandardScaler::fit(&[[0.0, 0.0]], &[1.0, 2.0]);
    }

    #[test]
    fn from_parts_validates() {
        assert!(StandardScaler::from_parts([0.0, 0.0], [1.0, 1.0]).is_ok());
        assert!(StandardScaler::from_parts([f64::NAN, 0.0], [1.0, 1.0]).is_err());
        assert!(StandardScaler::from_parts([0.0, 0.0], [0.0, 1.0]).is_err());
        assert!(StandardScaler::from_parts([0.0, 0.0], [1.0, -2.0]).is_err());
        let s = StandardScaler::from_parts([5.0, 2.0], [2.0, 4.0]).unwrap();
        assert_eq!(s.transform([7.0, 6.0]), [1.0, 1.0]);
    }
}
