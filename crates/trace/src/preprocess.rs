//! Trace preprocessing for GMM training (paper §3.1 and Algorithm 1).
//!
//! Three steps:
//!
//! 1. **Warm-up trimming** — discard the initial 20 % and final 10 % of the
//!    trace to remove program warm-up and tear-down bias.
//! 2. **Page consolidation** — map 64 B host addresses onto 4 KiB SSD pages
//!    ([`crate::PageIndex`]).
//! 3. **Timestamp transformation** — Algorithm 1: requests are grouped into
//!    *time windows* of `len_window` requests sharing one timestamp; the
//!    timestamp wraps to zero after `len_access_shot` windows (an *access
//!    shot*), which teaches the GMM the periodic structure of the workload.
//!
//! The paper's prose describes an access shot as containing
//! `len_access_shot` *traces*, while its Algorithm 1 resets when
//! `timestamp >= len_access_shot`, i.e. after `len_access_shot` *windows*.
//! We implement Algorithm 1 literally (timestamps live in
//! `[0, len_access_shot)`) and keep both knobs configurable.

use crate::record::TraceRecord;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the preprocessing pipeline.
///
/// Defaults are the paper's choices: trim 20 %/10 %, `len_window = 32`,
/// `len_access_shot = 10_000`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PreprocessConfig {
    /// Fraction of the trace discarded from the front (program warm-up).
    pub warmup_frac: f64,
    /// Fraction of the trace discarded from the back (tear-down).
    pub tail_frac: f64,
    /// Requests per time window (Algorithm 1 `len_window`).
    pub len_window: u32,
    /// Windows per access shot (Algorithm 1 `len_access_shot`).
    pub len_access_shot: u32,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            warmup_frac: 0.20,
            tail_frac: 0.10,
            len_window: 32,
            len_access_shot: 10_000,
        }
    }
}

impl PreprocessConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message when fractions are out of `[0, 1)` or together
    /// exceed 1, or when either Algorithm 1 length is zero.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.warmup_frac) || !(0.0..1.0).contains(&self.tail_frac) {
            return Err("trim fractions must be in [0, 1)".into());
        }
        if self.warmup_frac + self.tail_frac >= 1.0 {
            return Err("trim fractions must leave a non-empty middle".into());
        }
        if self.len_window == 0 || self.len_access_shot == 0 {
            return Err("len_window and len_access_shot must be >= 1".into());
        }
        Ok(())
    }

    /// The record range `[start, end)` kept after trimming a trace of
    /// length `n`.
    pub fn kept_range(&self, n: usize) -> (usize, usize) {
        let start = (n as f64 * self.warmup_frac).floor() as usize;
        let end = n - (n as f64 * self.tail_frac).floor() as usize;
        (start.min(n), end.max(start.min(n)))
    }
}

/// Returns the trimmed middle portion of a trace as a slice
/// (first `warmup_frac` and last `tail_frac` removed).
///
/// ```
/// use icgmm_trace::{PreprocessConfig, Trace, TraceRecord};
/// let t: Trace = (0..100u64).map(|i| TraceRecord::read(i * 64)).collect();
/// let kept = icgmm_trace::trim(&t, &PreprocessConfig::default());
/// assert_eq!(kept.len(), 70);
/// assert_eq!(kept[0].paddr, 20 * 64);
/// ```
pub fn trim<'a>(trace: &'a Trace, cfg: &PreprocessConfig) -> &'a [TraceRecord] {
    let (start, end) = cfg.kept_range(trace.len());
    &trace.records()[start..end]
}

/// Online implementation of the paper's Algorithm 1.
///
/// Call [`TimestampTransformer::next`] once per request, in trace order; it
/// returns the transformed timestamp assigned to that request. The same
/// transformer is used during training (offline pass) and at run time inside
/// the policy engine (the algorithm is causal: it depends only on the number
/// of requests seen so far).
///
/// ```
/// use icgmm_trace::TimestampTransformer;
/// let mut t = TimestampTransformer::new(2, 3); // 2 requests/window, 3 windows/shot
/// let ts: Vec<u64> = (0..10).map(|_| t.next()).collect();
/// assert_eq!(ts, [0, 0, 1, 1, 2, 2, 0, 0, 1, 1]);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimestampTransformer {
    len_window: u32,
    len_access_shot: u32,
    timestamp: u64,
    index: u32,
}

impl TimestampTransformer {
    /// Creates a transformer with the given window and shot lengths.
    ///
    /// # Panics
    ///
    /// Panics if either length is zero.
    pub fn new(len_window: u32, len_access_shot: u32) -> Self {
        assert!(len_window > 0, "len_window must be >= 1");
        assert!(len_access_shot > 0, "len_access_shot must be >= 1");
        TimestampTransformer {
            len_window,
            len_access_shot,
            timestamp: 0,
            index: 0,
        }
    }

    /// Creates a transformer from a [`PreprocessConfig`].
    pub fn from_config(cfg: &PreprocessConfig) -> Self {
        TimestampTransformer::new(cfg.len_window, cfg.len_access_shot)
    }

    /// Advances the transformer by one request and returns that request's
    /// timestamp (Algorithm 1, lines 3–11).
    #[allow(clippy::should_implement_trait)] // not an Iterator: never ends
    pub fn next(&mut self) -> u64 {
        if self.index >= self.len_window {
            self.timestamp += 1;
            self.index = 0;
        }
        if self.timestamp >= u64::from(self.len_access_shot) {
            self.timestamp = 0;
        }
        self.index += 1;
        self.timestamp
    }

    /// Advances the clock over `n` requests in one step, exactly as if
    /// [`TimestampTransformer::next`] had been called `n` times with the
    /// returned timestamps discarded.
    ///
    /// Algorithm 1 is a pure function of the *count* of requests observed
    /// so far, so skipped requests need no content — this is what lets a
    /// set-partitioned replay shard keep its clock in global trace order
    /// while observing only its own records (`icgmm-cache`'s sharded
    /// simulator): gaps of foreign-shard requests fast-forward in O(1)
    /// arithmetic instead of O(gap) calls.
    pub fn advance(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        let w = u64::from(self.len_window);
        let shot = u64::from(self.len_access_shot);
        // State after m >= 1 calls: index = ((m-1) mod w) + 1,
        // timestamp = floor((m-1) / w) mod shot. `index == 0` is the
        // fresh state (m = 0).
        let (ticks, carry_base) = if self.index == 0 {
            (n - 1, 0)
        } else {
            (u64::from(self.index) - 1 + n, self.timestamp * w)
        };
        // `carry_base` folds the current timestamp into the tick count so
        // one mod/div pair lands both fields (timestamp wraps modulo the
        // shot, index modulo the window).
        let total = carry_base + ticks;
        self.index = (ticks % w) as u32 + 1;
        self.timestamp = (total / w) % shot;
    }

    /// Resets to the initial state.
    pub fn reset(&mut self) {
        self.timestamp = 0;
        self.index = 0;
    }

    /// Largest timestamp this transformer can emit.
    pub fn max_timestamp(&self) -> u64 {
        u64::from(self.len_access_shot) - 1
    }
}

/// A `(page index, timestamp)` pair with a multiplicity weight — the GMM
/// training representation of one or more identical trace cells.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WeightedSample {
    /// Page index (feature *P*).
    pub page: f64,
    /// Transformed timestamp (feature *T*).
    pub time: f64,
    /// Number of requests that mapped to this `(page, window)` cell.
    pub weight: f64,
}

/// Extracts per-request GMM input features `[page_index, timestamp]` from a
/// (pre-trimmed) record slice.
pub fn extract_features(records: &[TraceRecord], cfg: &PreprocessConfig) -> Vec<[f64; 2]> {
    let mut t = TimestampTransformer::from_config(cfg);
    records
        .iter()
        .map(|r| [r.page().raw() as f64, t.next() as f64])
        .collect()
}

/// Deduplicates per-request features into weighted `(page, timestamp)`
/// cells. Weighted EM over these cells is mathematically identical to EM
/// over the expanded per-request multiset, and typically 10–50× smaller.
pub fn extract_weighted_cells(
    records: &[TraceRecord],
    cfg: &PreprocessConfig,
) -> Vec<WeightedSample> {
    extract_weighted_cells_range(records, cfg, 0, records.len())
}

/// [`extract_weighted_cells`] over `records[start..end]` with the
/// Algorithm 1 clock running from `records[0]` — how training must see a
/// trimmed trace: the warm-up prefix advances the timestamp (the paper's
/// algorithm counts every request from program start) but contributes no
/// training cells.
///
/// # Panics
///
/// Panics when `start > end` or `end > records.len()`.
pub fn extract_weighted_cells_range(
    records: &[TraceRecord],
    cfg: &PreprocessConfig,
    start: usize,
    end: usize,
) -> Vec<WeightedSample> {
    assert!(start <= end && end <= records.len(), "invalid cell range");
    let mut t = TimestampTransformer::from_config(cfg);
    let mut cells: HashMap<(u64, u64), u64> = HashMap::new();
    for (i, r) in records[..end].iter().enumerate() {
        let ts = t.next();
        if i >= start {
            *cells.entry((r.page().raw(), ts)).or_insert(0) += 1;
        }
    }
    let mut out: Vec<WeightedSample> = cells
        .into_iter()
        .map(|((p, ts), w)| WeightedSample {
            page: p as f64,
            time: ts as f64,
            weight: w as f64,
        })
        .collect();
    // Deterministic order regardless of hash state.
    out.sort_by(|a, b| {
        (a.page, a.time)
            .partial_cmp(&(b.page, b.time))
            .expect("page/time are finite")
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;

    #[test]
    fn default_config_matches_paper() {
        let c = PreprocessConfig::default();
        assert_eq!(c.warmup_frac, 0.20);
        assert_eq!(c.tail_frac, 0.10);
        assert_eq!(c.len_window, 32);
        assert_eq!(c.len_access_shot, 10_000);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = PreprocessConfig {
            warmup_frac: 0.8,
            tail_frac: 0.3,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c = PreprocessConfig {
            len_window: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c = PreprocessConfig {
            warmup_frac: -0.1,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn trim_keeps_the_middle() {
        let t: Trace = (0..10u64).map(|i| TraceRecord::read(i << 12)).collect();
        let cfg = PreprocessConfig::default();
        let kept = trim(&t, &cfg);
        assert_eq!(kept.len(), 7); // drop 2 front, 1 back
        assert_eq!(kept[0].page().raw(), 2);
        assert_eq!(kept.last().unwrap().page().raw(), 8);
    }

    #[test]
    fn trim_of_empty_trace_is_empty() {
        let t = Trace::new();
        assert!(trim(&t, &PreprocessConfig::default()).is_empty());
    }

    #[test]
    fn algorithm1_window_grouping() {
        let mut tr = TimestampTransformer::new(32, 10_000);
        // First 32 requests share timestamp 0.
        for _ in 0..32 {
            assert_eq!(tr.next(), 0);
        }
        // Next 32 share timestamp 1.
        for _ in 0..32 {
            assert_eq!(tr.next(), 1);
        }
    }

    #[test]
    fn algorithm1_shot_wraps() {
        let mut tr = TimestampTransformer::new(1, 4);
        let ts: Vec<u64> = (0..9).map(|_| tr.next()).collect();
        assert_eq!(ts, [0, 1, 2, 3, 0, 1, 2, 3, 0]);
        assert_eq!(tr.max_timestamp(), 3);
    }

    #[test]
    fn advance_matches_repeated_next() {
        // Every (window, shot) shape × interleaving of advance(n) with
        // next() must land in exactly the state repeated next() reaches.
        for (w, shot) in [(1u32, 1u32), (2, 3), (32, 10_000), (7, 5), (3, 1)] {
            let mut stepped = TimestampTransformer::new(w, shot);
            let mut jumped = TimestampTransformer::new(w, shot);
            let mut consumed = 0u64;
            for n in [0u64, 1, 2, 5, 31, 32, 33, 1000, 7] {
                for _ in 0..n {
                    stepped.next();
                }
                jumped.advance(n);
                consumed += n;
                assert_eq!(
                    stepped.next(),
                    jumped.next(),
                    "w={w} shot={shot} after {consumed} requests"
                );
                consumed += 1;
            }
        }
    }

    #[test]
    fn advance_from_fresh_state() {
        let mut t = TimestampTransformer::new(2, 3);
        t.advance(4); // as if requests 1..=4 were observed: ts = 0,0,1,1
        assert_eq!(t.next(), 2); // request 5
    }

    #[test]
    fn transformer_reset_restores_initial_state() {
        let mut tr = TimestampTransformer::new(2, 5);
        for _ in 0..7 {
            tr.next();
        }
        tr.reset();
        assert_eq!(tr.next(), 0);
        assert_eq!(tr.next(), 0);
        assert_eq!(tr.next(), 1);
    }

    #[test]
    #[should_panic(expected = "len_window")]
    fn zero_window_panics() {
        let _ = TimestampTransformer::new(0, 1);
    }

    #[test]
    fn features_pair_page_and_time() {
        let t: Trace = (0..6u64).map(|i| TraceRecord::read(i << 12)).collect();
        let cfg = PreprocessConfig {
            len_window: 2,
            len_access_shot: 100,
            ..Default::default()
        };
        let f = extract_features(t.records(), &cfg);
        assert_eq!(f.len(), 6);
        assert_eq!(f[0], [0.0, 0.0]);
        assert_eq!(f[1], [1.0, 0.0]);
        assert_eq!(f[2], [2.0, 1.0]);
        assert_eq!(f[5], [5.0, 2.0]);
    }

    #[test]
    fn weighted_cells_preserve_total_mass() {
        // Repeated accesses to one page in one window collapse to one cell.
        let t: Trace = (0..8u64).map(|_| TraceRecord::read(0x5000)).collect();
        let cfg = PreprocessConfig {
            len_window: 4,
            len_access_shot: 100,
            ..Default::default()
        };
        let cells = extract_weighted_cells(t.records(), &cfg);
        assert_eq!(cells.len(), 2); // windows 0 and 1
        let total: f64 = cells.iter().map(|c| c.weight).sum();
        assert_eq!(total, 8.0);
        assert!(cells.iter().all(|c| c.page == 5.0));
    }

    #[test]
    fn range_extraction_keeps_the_clock_but_skips_prefix_cells() {
        // Pages 0..6, window = 2. Full extraction sees windows 0,0,1,1,2,2;
        // range (2, 6) must keep those timestamps but drop the prefix.
        let t: Trace = (0..6u64).map(|i| TraceRecord::read(i << 12)).collect();
        let cfg = PreprocessConfig {
            len_window: 2,
            len_access_shot: 100,
            ..Default::default()
        };
        let cells = extract_weighted_cells_range(t.records(), &cfg, 2, 6);
        assert_eq!(cells.len(), 4);
        // Page 2 was in window 1 (not 0): the clock ran over the prefix.
        assert!(cells.iter().any(|c| c.page == 2.0 && c.time == 1.0));
        assert!(cells.iter().all(|c| c.page >= 2.0));
        let total: f64 = cells.iter().map(|c| c.weight).sum();
        assert_eq!(total, 4.0);
    }

    #[test]
    #[should_panic(expected = "range")]
    fn bad_cell_range_panics() {
        let t: Trace = (0..3u64).map(|i| TraceRecord::read(i << 12)).collect();
        let _ = extract_weighted_cells_range(t.records(), &PreprocessConfig::default(), 2, 1);
    }

    #[test]
    fn weighted_cells_are_sorted_deterministically() {
        let t = Trace::from_records(vec![
            TraceRecord::read(0x3000),
            TraceRecord::read(0x1000),
            TraceRecord::read(0x2000),
        ]);
        let cfg = PreprocessConfig {
            len_window: 1,
            len_access_shot: 10,
            ..Default::default()
        };
        let cells = extract_weighted_cells(t.records(), &cfg);
        let pages: Vec<f64> = cells.iter().map(|c| c.page).collect();
        assert_eq!(pages, vec![1.0, 2.0, 3.0]);
    }
}
