//! In-memory trace container and summary statistics.

use crate::record::{Op, PageIndex, TraceRecord};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// An ordered sequence of memory requests.
///
/// The trace is the unit of exchange between workload generators, the
/// preprocessing pipeline, the GMM trainer and the cache simulator.
///
/// ```
/// use icgmm_trace::{Trace, TraceRecord};
/// let mut t = Trace::new();
/// t.push(TraceRecord::read(0x1000));
/// t.push(TraceRecord::write(0x2000));
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.stats().write_fraction(), 0.5);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace with room for `n` records.
    pub fn with_capacity(n: usize) -> Self {
        Trace {
            records: Vec::with_capacity(n),
        }
    }

    /// Wraps an existing record vector.
    pub fn from_records(records: Vec<TraceRecord>) -> Self {
        Trace { records }
    }

    /// Appends a record.
    pub fn push(&mut self, r: TraceRecord) {
        self.records.push(r);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the trace has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Immutable view of the records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Iterator over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceRecord> {
        self.records.iter()
    }

    /// Consumes the trace, returning the record vector.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }

    /// Computes one-pass summary statistics.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_records(&self.records)
    }
}

impl Extend<TraceRecord> for Trace {
    fn extend<T: IntoIterator<Item = TraceRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

impl FromIterator<TraceRecord> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceRecord>>(iter: T) -> Self {
        Trace {
            records: Vec::from_iter(iter),
        }
    }
}

impl IntoIterator for Trace {
    type Item = TraceRecord;
    type IntoIter = std::vec::IntoIter<TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceRecord;
    type IntoIter = std::slice::Iter<'a, TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

/// Summary statistics over a trace (or a slice of one).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total number of requests.
    pub requests: usize,
    /// Number of write requests.
    pub writes: usize,
    /// Number of distinct 4 KiB pages touched (the page-level footprint).
    pub distinct_pages: usize,
    /// Smallest page index touched.
    pub min_page: u64,
    /// Largest page index touched.
    pub max_page: u64,
}

impl TraceStats {
    /// Computes statistics over a record slice.
    pub fn from_records(records: &[TraceRecord]) -> Self {
        let mut pages: HashSet<PageIndex> = HashSet::new();
        let mut writes = 0usize;
        let mut min_page = u64::MAX;
        let mut max_page = 0u64;
        for r in records {
            if r.op == Op::Write {
                writes += 1;
            }
            let p = r.page();
            min_page = min_page.min(p.raw());
            max_page = max_page.max(p.raw());
            pages.insert(p);
        }
        if records.is_empty() {
            min_page = 0;
        }
        TraceStats {
            requests: records.len(),
            writes,
            distinct_pages: pages.len(),
            min_page,
            max_page,
        }
    }

    /// Fraction of requests that are writes (0 for an empty trace).
    pub fn write_fraction(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.writes as f64 / self.requests as f64
        }
    }

    /// Page-level footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.distinct_pages as u64 * crate::record::PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;

    fn sample_trace() -> Trace {
        Trace::from_records(vec![
            TraceRecord::read(0x0000),
            TraceRecord::read(0x0040),
            TraceRecord::write(0x1000),
            TraceRecord::read(0x2000),
            TraceRecord::write(0x2080),
        ])
    }

    #[test]
    fn stats_counts_distinct_pages() {
        let s = sample_trace().stats();
        assert_eq!(s.requests, 5);
        assert_eq!(s.writes, 2);
        assert_eq!(s.distinct_pages, 3);
        assert_eq!(s.min_page, 0);
        assert_eq!(s.max_page, 2);
        assert_eq!(s.footprint_bytes(), 3 * 4096);
    }

    #[test]
    fn empty_trace_stats_are_zeroed() {
        let s = Trace::new().stats();
        assert_eq!(s.requests, 0);
        assert_eq!(s.write_fraction(), 0.0);
        assert_eq!(s.min_page, 0);
    }

    #[test]
    fn collect_and_extend() {
        let t: Trace = sample_trace().into_iter().collect();
        assert_eq!(t.len(), 5);
        let mut t2 = Trace::with_capacity(8);
        t2.extend(t.iter().copied());
        assert_eq!(t2, t);
    }

    #[test]
    fn iterate_by_reference() {
        let t = sample_trace();
        let n = (&t).into_iter().count();
        assert_eq!(n, t.len());
    }
}
