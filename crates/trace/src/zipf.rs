//! Zipf-distributed sampling without external dependencies.
//!
//! Key-popularity skew is the dominant statistical feature of the database
//! and recommendation workloads the paper evaluates (memtier, sysbench,
//! dlrm). We implement Hörmann & Derflinger's *rejection-inversion* method,
//! which samples `P(k) ∝ k^{-s}` over `{1..n}` in O(1) per draw with no
//! per-element table, so key spaces of many millions cost nothing to set up.

use rand::Rng;

/// Zipf distribution over ranks `1..=n` with exponent `s > 0`.
///
/// Smaller ranks are more popular: `P(k) ∝ k^{-s}`.
///
/// ```
/// use icgmm_trace::Zipf;
/// use rand::SeedableRng;
/// let z = Zipf::new(1_000_000, 0.99).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let k = z.sample(&mut rng);
/// assert!((1..=1_000_000).contains(&k));
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    s: f64,
    // Precomputed constants of the rejection-inversion scheme.
    h_x1: f64,
    h_n_half: f64,
    shift: f64,
}

/// Error returned by [`Zipf::new`] for invalid parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZipfError {
    what: &'static str,
}

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid zipf parameter: {}", self.what)
    }
}

impl std::error::Error for ZipfError {}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n` with exponent `s`.
    ///
    /// # Errors
    ///
    /// Returns an error when `n == 0`, or `s` is not finite and positive.
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n == 0 {
            return Err(ZipfError {
                what: "n must be >= 1",
            });
        }
        if !(s.is_finite() && s > 0.0) {
            return Err(ZipfError {
                what: "exponent must be finite and > 0",
            });
        }
        let h_x1 = Self::h(s, 1.5) - 1.0;
        let h_n_half = Self::h(s, n as f64 + 0.5);
        let shift = 1.0 - Self::h_inv(s, Self::h(s, 1.5) - 1.0);
        Ok(Zipf {
            n,
            s,
            h_x1,
            h_n_half,
            shift,
        })
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    // H(x) = ∫ x^{-s} dx ; the s == 1 limit is ln(x).
    fn h(s: f64, x: f64) -> f64 {
        if (s - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            (x.powf(1.0 - s) - 1.0) / (1.0 - s)
        }
    }

    fn h_inv(s: f64, y: f64) -> f64 {
        if (s - 1.0).abs() < 1e-12 {
            y.exp()
        } else {
            (1.0 + (1.0 - s) * y).powf(1.0 / (1.0 - s))
        }
    }

    /// Draws one rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 1;
        }
        loop {
            // u uniform in [H(n + 1/2), H(3/2) - 1)
            let u = self.h_n_half + rng.gen::<f64>() * (self.h_x1 - self.h_n_half);
            let x = Self::h_inv(self.s, u);
            let k = x.round().clamp(1.0, self.n as f64);
            if k - x <= self.shift {
                return k as u64;
            }
            if u >= Self::h(self.s, k + 0.5) - (k.powf(-self.s)) {
                return k as u64;
            }
        }
    }

    /// Exact probability of rank `k` (O(n); intended for tests/analysis).
    pub fn pmf(&self, k: u64) -> f64 {
        assert!(k >= 1 && k <= self.n, "rank out of range");
        let z: f64 = (1..=self.n).map(|i| (i as f64).powf(-self.s)).sum();
        (k as f64).powf(-self.s) / z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, 0.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        let e = Zipf::new(0, 1.0).unwrap_err();
        assert!(e.to_string().contains("zipf"));
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(100, 1.3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=100).contains(&k));
        }
    }

    #[test]
    fn single_rank_always_one() {
        let z = Zipf::new(1, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(z.sample(&mut rng), 1);
    }

    #[test]
    fn empirical_matches_pmf() {
        // Chi-square-style sanity check on a small support.
        let n = 50u64;
        let z = Zipf::new(n, 0.9).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let draws = 200_000usize;
        let mut counts = vec![0u64; n as usize + 1];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for k in [1u64, 2, 5, 10, 25, 50] {
            let expected = z.pmf(k) * draws as f64;
            let got = counts[k as usize] as f64;
            // Allow 10% relative error plus slack for small expectations.
            let tol = (expected * 0.10).max(60.0);
            assert!(
                (got - expected).abs() < tol,
                "rank {k}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn exponent_one_is_handled() {
        let z = Zipf::new(1000, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mean_top: f64 = (0..50_000)
            .map(|_| u64::from(z.sample(&mut rng) <= 10) as u32 as f64)
            .sum::<f64>()
            / 50_000.0;
        // P(k <= 10) for s=1, n=1000 is H(10)/H(1000) ≈ 2.93/7.49 ≈ 0.39.
        assert!((mean_top - 0.39).abs() < 0.03, "got {mean_top}");
    }

    #[test]
    fn skew_orders_popularity() {
        let z = Zipf::new(1000, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut ones = 0;
        let mut hundreds = 0;
        for _ in 0..100_000 {
            match z.sample(&mut rng) {
                1 => ones += 1,
                100 => hundreds += 1,
                _ => {}
            }
        }
        assert!(ones > hundreds * 10, "ones={ones} hundreds={hundreds}");
    }
}
