//! Spatial and temporal access-distribution histograms (paper Fig. 2).
//!
//! The paper motivates the 2-D GMM with two views of a trace:
//!
//! * the **spatial distribution** — number of accesses per physical-address
//!   group (a histogram over page index), which empirically looks like a
//!   mixture of Gaussians, and
//! * the **temporal distribution** — which address groups are touched in
//!   which time windows (a page × time heat map), which shows that access
//!   frequency is uneven in time.

use crate::preprocess::{PreprocessConfig, TimestampTransformer};
use crate::record::TraceRecord;
use serde::{Deserialize, Serialize};

/// Histogram of access counts over equal-width page-index buckets.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpatialHistogram {
    /// Lowest page index covered (inclusive).
    pub min_page: u64,
    /// Pages per bucket.
    pub bucket_pages: u64,
    /// Access count per bucket.
    pub counts: Vec<u64>,
}

impl SpatialHistogram {
    /// Builds a histogram with `buckets` equal-width buckets spanning the
    /// page range touched by `records`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`.
    pub fn from_records(records: &[TraceRecord], buckets: usize) -> Self {
        assert!(buckets > 0, "buckets must be >= 1");
        if records.is_empty() {
            return SpatialHistogram {
                min_page: 0,
                bucket_pages: 1,
                counts: vec![0; buckets],
            };
        }
        let mut min_page = u64::MAX;
        let mut max_page = 0u64;
        for r in records {
            let p = r.page().raw();
            min_page = min_page.min(p);
            max_page = max_page.max(p);
        }
        let span = max_page - min_page + 1;
        let bucket_pages = span.div_ceil(buckets as u64).max(1);
        let mut counts = vec![0u64; buckets];
        for r in records {
            let b = ((r.page().raw() - min_page) / bucket_pages) as usize;
            counts[b.min(buckets - 1)] += 1;
        }
        SpatialHistogram {
            min_page,
            bucket_pages,
            counts,
        }
    }

    /// Total number of accesses counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of accesses landing in the `k` most-accessed buckets.
    pub fn top_k_share(&self, k: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut sorted = self.counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = sorted.iter().take(k).sum();
        top as f64 / total as f64
    }

    /// Number of local maxima in the (lightly smoothed) histogram — a crude
    /// count of spatial "Gaussian bumps" used by tests to confirm that
    /// generated workloads are multi-modal as in Fig. 2.
    pub fn mode_count(&self) -> usize {
        let n = self.counts.len();
        if n < 3 {
            return usize::from(self.total() > 0);
        }
        // 3-point moving average to suppress noise.
        let sm: Vec<f64> = (0..n)
            .map(|i| {
                let lo = i.saturating_sub(1);
                let hi = (i + 1).min(n - 1);
                (lo..=hi).map(|j| self.counts[j] as f64).sum::<f64>() / (hi - lo + 1) as f64
            })
            .collect();
        let peak_floor = sm.iter().cloned().fold(0.0f64, f64::max) * 0.05;
        let mut modes = 0;
        for i in 0..n {
            let left_ok = i == 0 || sm[i] >= sm[i - 1];
            let right_ok = i == n - 1 || sm[i] > sm[i + 1];
            if sm[i] > peak_floor && left_ok && right_ok {
                modes += 1;
            }
        }
        modes
    }
}

/// Page × time access heat map (the Fig. 2 right-hand panels).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TemporalHeatmap {
    /// Lowest page index covered.
    pub min_page: u64,
    /// Pages per spatial row.
    pub bucket_pages: u64,
    /// Requests per temporal column (derived from Algorithm 1 windows).
    pub window_per_col: u64,
    /// Row-major counts: `counts[row * cols + col]`.
    pub counts: Vec<u64>,
    /// Number of spatial rows.
    pub rows: usize,
    /// Number of temporal columns.
    pub cols: usize,
}

impl TemporalHeatmap {
    /// Builds a `rows × cols` heat map. Time is measured in Algorithm-1
    /// windows of `cfg.len_window` requests (without the shot wrap, so the
    /// full run is visible as in Fig. 2).
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`.
    pub fn from_records(
        records: &[TraceRecord],
        cfg: &PreprocessConfig,
        rows: usize,
        cols: usize,
    ) -> Self {
        assert!(rows > 0 && cols > 0, "rows and cols must be >= 1");
        if records.is_empty() {
            return TemporalHeatmap {
                min_page: 0,
                bucket_pages: 1,
                window_per_col: 1,
                counts: vec![0; rows * cols],
                rows,
                cols,
            };
        }
        let mut min_page = u64::MAX;
        let mut max_page = 0u64;
        for r in records {
            let p = r.page().raw();
            min_page = min_page.min(p);
            max_page = max_page.max(p);
        }
        let span = max_page - min_page + 1;
        let bucket_pages = span.div_ceil(rows as u64).max(1);
        let total_windows = (records.len() as u64)
            .div_ceil(u64::from(cfg.len_window))
            .max(1);
        let window_per_col = total_windows.div_ceil(cols as u64).max(1);

        let mut counts = vec![0u64; rows * cols];
        for (i, r) in records.iter().enumerate() {
            let window = i as u64 / u64::from(cfg.len_window);
            let col = ((window / window_per_col) as usize).min(cols - 1);
            let row = (((r.page().raw() - min_page) / bucket_pages) as usize).min(rows - 1);
            counts[row * cols + col] += 1;
        }
        TemporalHeatmap {
            min_page,
            bucket_pages,
            window_per_col,
            counts,
            rows,
            cols,
        }
    }

    /// Count at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    pub fn at(&self, row: usize, col: usize) -> u64 {
        assert!(
            row < self.rows && col < self.cols,
            "heatmap index out of range"
        );
        self.counts[row * self.cols + col]
    }

    /// Coefficient of variation of per-column activity for the busiest row —
    /// large values mean the hot address range is *unevenly* hot in time,
    /// the paper's argument for adding the temporal feature.
    pub fn busiest_row_cv(&self) -> f64 {
        let mut best_row = 0;
        let mut best_sum = 0u64;
        for r in 0..self.rows {
            let s: u64 = (0..self.cols).map(|c| self.at(r, c)).sum();
            if s > best_sum {
                best_sum = s;
                best_row = r;
            }
        }
        if best_sum == 0 {
            return 0.0;
        }
        self.row_cv(best_row)
    }

    /// Temporal coefficient of variation of one row.
    fn row_cv(&self, row: usize) -> f64 {
        let vals: Vec<f64> = (0..self.cols).map(|c| self.at(row, c) as f64).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
        var.sqrt() / mean
    }

    /// Largest temporal CV among rows carrying at least `min_mass_frac` of
    /// all accesses. The busiest row is often steadily hot; the Fig. 2
    /// unevenness usually lives in the *other* significant rows (phase
    /// rotation, sweeps), which this metric surfaces.
    pub fn max_significant_row_cv(&self, min_mass_frac: f64) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let floor = (total as f64 * min_mass_frac).max(1.0);
        (0..self.rows)
            .filter(|&r| {
                let s: u64 = (0..self.cols).map(|c| self.at(r, c)).sum();
                s as f64 >= floor
            })
            .map(|r| self.row_cv(r))
            .fold(0.0, f64::max)
    }
}

/// Per-window distinct-page counts — a cheap proxy for working-set drift.
pub fn working_set_series(records: &[TraceRecord], cfg: &PreprocessConfig) -> Vec<usize> {
    let mut t = TimestampTransformer::from_config(cfg);
    let mut out = Vec::new();
    let mut current_ts = 0u64;
    let mut set = std::collections::HashSet::new();
    let mut first = true;
    for r in records {
        let ts = t.next();
        if first {
            current_ts = ts;
            first = false;
        }
        if ts != current_ts {
            out.push(set.len());
            set.clear();
            current_ts = ts;
        }
        set.insert(r.page());
    }
    if !set.is_empty() {
        out.push(set.len());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;

    fn bimodal_records() -> Vec<TraceRecord> {
        // Two hot clusters around pages 100 and 900 within [0, 1000).
        let mut v = Vec::new();
        for i in 0..500u64 {
            v.push(TraceRecord::read(((95 + i % 10) << 12) + 8));
            v.push(TraceRecord::read(((895 + i % 10) << 12) + 16));
        }
        v.push(TraceRecord::read(0)); // pin range start
        v.push(TraceRecord::read(999 << 12)); // pin range end
        v
    }

    #[test]
    fn spatial_histogram_counts_everything() {
        let recs = bimodal_records();
        let h = SpatialHistogram::from_records(&recs, 50);
        assert_eq!(h.total(), recs.len() as u64);
        assert_eq!(h.counts.len(), 50);
    }

    #[test]
    fn spatial_histogram_sees_two_modes() {
        let recs = bimodal_records();
        let h = SpatialHistogram::from_records(&recs, 50);
        assert_eq!(h.mode_count(), 2, "expected a bimodal histogram");
        // Each cluster may straddle a bucket boundary, so check top-4.
        assert!(h.top_k_share(4) > 0.9);
    }

    #[test]
    fn empty_inputs_are_harmless() {
        let h = SpatialHistogram::from_records(&[], 8);
        assert_eq!(h.total(), 0);
        assert_eq!(h.top_k_share(3), 0.0);
        let hm = TemporalHeatmap::from_records(&[], &PreprocessConfig::default(), 4, 4);
        assert_eq!(hm.counts.iter().sum::<u64>(), 0);
        assert_eq!(hm.busiest_row_cv(), 0.0);
    }

    #[test]
    fn heatmap_localizes_a_phase_change() {
        // Phase 1 touches low pages, phase 2 high pages.
        let mut recs = Vec::new();
        for i in 0..1000u64 {
            recs.push(TraceRecord::read((i % 16) << 12));
        }
        for i in 0..1000u64 {
            recs.push(TraceRecord::read((1000 + i % 16) << 12));
        }
        let cfg = PreprocessConfig {
            len_window: 10,
            ..Default::default()
        };
        let hm = TemporalHeatmap::from_records(&recs, &cfg, 2, 2);
        // Low pages active only early, high pages only late.
        assert!(hm.at(0, 0) > 0);
        assert_eq!(hm.at(0, 1), 0);
        assert_eq!(hm.at(1, 0), 0);
        assert!(hm.at(1, 1) > 0);
        assert!(hm.busiest_row_cv() > 0.5);
        assert!(hm.max_significant_row_cv(0.01) > 0.5);
        assert_eq!(hm.max_significant_row_cv(2.0), 0.0); // impossible floor
    }

    #[test]
    fn working_set_series_tracks_windows() {
        let recs: Vec<TraceRecord> = (0..100u64).map(|i| TraceRecord::read(i << 12)).collect();
        let cfg = PreprocessConfig {
            len_window: 10,
            len_access_shot: 1000,
            ..Default::default()
        };
        let ws = working_set_series(&recs, &cfg);
        assert_eq!(ws.len(), 10);
        assert!(ws.iter().all(|&n| n == 10));
    }

    #[test]
    #[should_panic(expected = "buckets")]
    fn zero_buckets_panics() {
        let _ = SpatialHistogram::from_records(&[], 0);
    }
}
