//! PARSEC-style HPC workload model.
//!
//! The paper's Fig. 2(b) shows parsec's spatial distribution as a handful of
//! Gaussian bumps with a mostly-resident working set, and its temporal view
//! shows slowly drifting phases. We model: several Gaussian working-set
//! clusters with unequal, phase-rotated popularity, slow mean drift between
//! phases, and a small uniform cold background (capacity-miss floor).

use super::{clamp_page, normal, push_read, push_write, Workload};
use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the parsec workload model. Defaults are calibrated for the
/// paper's 64 MiB / 4 KiB / 8-way cache operating point (~1.5 % LRU miss).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ParsecWorkload {
    /// Number of Gaussian working-set clusters.
    pub clusters: usize,
    /// Standard deviation of each cluster, in pages.
    pub cluster_sigma_pages: f64,
    /// Distance between consecutive cluster centres, in pages.
    pub cluster_spacing_pages: u64,
    /// First page of the clustered region.
    pub region_base_page: u64,
    /// Pages in the uniform cold background region.
    pub background_pages: u64,
    /// Probability that a request goes to the cold background.
    pub background_prob: f64,
    /// Probability that a request is a write.
    pub write_prob: f64,
    /// Requests per phase; cluster popularity rotates and means drift
    /// between phases.
    pub phase_len: usize,
    /// Cluster-mean drift per phase, in pages.
    pub drift_pages: f64,
}

impl Default for ParsecWorkload {
    fn default() -> Self {
        ParsecWorkload {
            clusters: 6,
            cluster_sigma_pages: 320.0,
            cluster_spacing_pages: 6_000,
            region_base_page: 0x10_0000,
            background_pages: 1_500_000,
            background_prob: 0.008,
            write_prob: 0.30,
            phase_len: 80_000,
            drift_pages: 220.0,
        }
    }
}

impl ParsecWorkload {
    /// Centre of cluster `c` during `phase`.
    fn cluster_mean(&self, c: usize, phase: usize) -> f64 {
        let base = self.region_base_page + c as u64 * self.cluster_spacing_pages;
        // Drift back and forth so the footprint stays bounded.
        let dir = if phase.is_multiple_of(2) { 1.0 } else { -1.0 };
        base as f64 + dir * self.drift_pages * ((phase % 4) as f64 / 2.0)
    }

    /// Unnormalized popularity of cluster `c` during `phase` (rotates so the
    /// temporally hot cluster changes — the Fig. 2 unevenness).
    fn cluster_weight(&self, c: usize, phase: usize) -> f64 {
        let rank = (c + phase) % self.clusters;
        1.0 / (1.0 + rank as f64)
    }
}

impl Workload for ParsecWorkload {
    fn name(&self) -> &str {
        "parsec"
    }

    fn generate(&self, n: usize, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Trace::with_capacity(n);
        let region_pages =
            self.clusters as u64 * self.cluster_spacing_pages + 8 * self.cluster_sigma_pages as u64;
        let bg_base = self.region_base_page + region_pages + 1_000_000;

        while t.len() < n {
            let i = t.len();
            let phase = i / self.phase_len.max(1);
            let page = if rng.gen::<f64>() < self.background_prob {
                bg_base + rng.gen_range(0..self.background_pages)
            } else {
                // Pick a cluster by phase-rotated weight.
                let total: f64 = (0..self.clusters)
                    .map(|c| self.cluster_weight(c, phase))
                    .sum();
                let mut u = rng.gen::<f64>() * total;
                let mut chosen = 0;
                for c in 0..self.clusters {
                    u -= self.cluster_weight(c, phase);
                    if u <= 0.0 {
                        chosen = c;
                        break;
                    }
                }
                let mean = self.cluster_mean(chosen, phase);
                let x = normal(&mut rng, mean, self.cluster_sigma_pages);
                clamp_page(x, self.region_base_page, region_pages)
            };
            if rng.gen::<f64>() < self.write_prob {
                push_write(&mut t, &mut rng, page);
            } else {
                push_read(&mut t, &mut rng, page);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::SpatialHistogram;
    use crate::preprocess::PreprocessConfig;

    #[test]
    fn write_fraction_tracks_parameter() {
        let w = ParsecWorkload::default();
        let t = w.generate(40_000, 9);
        let wf = t.stats().write_fraction();
        assert!((wf - 0.30).abs() < 0.02, "write fraction {wf}");
    }

    #[test]
    fn spatial_distribution_is_multimodal() {
        let w = ParsecWorkload {
            background_prob: 0.0,
            drift_pages: 0.0,
            clusters: 3,
            ..Default::default()
        };
        let t = w.generate(60_000, 5);
        // Restrict the histogram to the clustered region.
        let h = SpatialHistogram::from_records(t.records(), 120);
        assert!(
            h.mode_count() >= 2,
            "expected multimodal spatial histogram, got {} modes",
            h.mode_count()
        );
    }

    #[test]
    fn hot_footprint_is_cache_scale() {
        let w = ParsecWorkload::default();
        let t = w.generate(120_000, 3);
        let s = t.stats();
        // Hot region should be tens of thousands of pages, not millions.
        assert!(s.distinct_pages > 2_000, "{}", s.distinct_pages);
        assert!(s.distinct_pages < 60_000, "{}", s.distinct_pages);
    }

    #[test]
    fn phases_change_the_hot_cluster() {
        let w = ParsecWorkload {
            background_prob: 0.0,
            phase_len: 10_000,
            ..Default::default()
        };
        let t = w.generate(20_000, 7);
        let cfg = PreprocessConfig {
            len_window: 32,
            ..Default::default()
        };
        let hm = crate::histogram::TemporalHeatmap::from_records(t.records(), &cfg, 8, 2);
        // The busiest row in the first half differs from the second half.
        let busiest = |col: usize| {
            (0..8usize)
                .max_by_key(|&r| hm.at(r, col))
                .expect("rows exist")
        };
        assert_ne!(busiest(0), busiest(1), "phase rotation had no effect");
    }
}
