//! Synthetic binary-heap workload (the paper's `heap` benchmark).
//!
//! An array-backed binary heap: pushes append at the frontier and sift up a
//! few levels; pops read the root, move the frontier element down and sift
//! through the full depth. Shallow levels are extremely hot (they fit in a
//! handful of pages), deep levels are touched on random root-to-leaf paths.
//! The occupied size oscillates slowly, drifting the frontier — a temporal
//! signal. Sift operations write at every level, making this benchmark
//! write-heavy (large dirty-eviction penalty, as in the paper's Table 1).

use super::Workload;
use crate::record::TraceRecord;
use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the heap workload model (defaults ≈ paper operating point:
/// ~2 % LRU miss, write-heavy).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HeapWorkload {
    /// Maximum number of elements (sets the depth; 2^21 ⇒ 21 levels).
    pub elements: u64,
    /// Element size in bytes (64 B ⇒ 64 elements per page).
    pub elem_bytes: u64,
    /// Probability that an operation is a push (the rest are pops).
    pub push_prob: f64,
    /// Mean number of levels a push sifts up (geometric-ish).
    pub sift_up_mean_levels: f64,
    /// Fraction around which the occupied size oscillates.
    pub fill_mid: f64,
    /// Amplitude of the occupancy oscillation (as a fraction).
    pub fill_wave: f64,
    /// Operations per oscillation period.
    pub wave_period_ops: usize,
    /// First page of the heap array.
    pub base_page: u64,
}

impl Default for HeapWorkload {
    fn default() -> Self {
        HeapWorkload {
            elements: 1_500_000,
            elem_bytes: 64,
            push_prob: 0.76,
            sift_up_mean_levels: 2.0,
            fill_mid: 0.80,
            fill_wave: 0.15,
            wave_period_ops: 120_000,
            base_page: 0x80_0000,
        }
    }
}

impl HeapWorkload {
    /// Page containing heap slot `idx`.
    fn slot_page(&self, idx: u64) -> u64 {
        let per_page = (crate::record::PAGE_SIZE / self.elem_bytes).max(1);
        self.base_page + idx / per_page
    }

    /// Address of heap slot `idx` (element-aligned).
    fn slot_addr(&self, idx: u64) -> u64 {
        let per_page = (crate::record::PAGE_SIZE / self.elem_bytes).max(1);
        (self.slot_page(idx) << crate::record::PAGE_SHIFT) + (idx % per_page) * self.elem_bytes
    }

    /// Current occupancy given the operation counter.
    fn occupancy(&self, ops: usize) -> u64 {
        let phase = (ops % self.wave_period_ops.max(1)) as f64 / self.wave_period_ops.max(1) as f64;
        let f = self.fill_mid + self.fill_wave * (std::f64::consts::TAU * phase).sin();
        ((self.elements as f64) * f.clamp(0.05, 0.99)) as u64
    }
}

impl Workload for HeapWorkload {
    fn name(&self) -> &str {
        "heap"
    }

    fn generate(&self, n: usize, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Trace::with_capacity(n);
        let mut ops = 0usize;

        while t.len() < n {
            ops += 1;
            let size = self.occupancy(ops).max(2);
            let push = |t: &mut Trace, addr: u64, write: bool| {
                if write {
                    t.push(TraceRecord::write(addr));
                } else {
                    t.push(TraceRecord::read(addr));
                }
            };
            if rng.gen::<f64>() < self.push_prob {
                // Push: append at the frontier...
                let mut idx = size - 1;
                push(&mut t, self.slot_addr(idx), true);
                // ...then sift up a geometric number of levels.
                let mut levels = 0.0f64;
                while t.len() < n
                    && idx > 0
                    && rng.gen::<f64>()
                        < self.sift_up_mean_levels / (self.sift_up_mean_levels + levels + 1.0)
                {
                    let parent = (idx - 1) / 2;
                    push(&mut t, self.slot_addr(parent), false); // compare
                    if t.len() < n {
                        push(&mut t, self.slot_addr(parent), true); // swap
                    }
                    idx = parent;
                    levels += 1.0;
                }
            } else {
                // Pop: read root, move frontier element to root...
                push(&mut t, self.slot_addr(0), false);
                if t.len() < n {
                    push(&mut t, self.slot_addr(size - 1), false);
                }
                if t.len() < n {
                    push(&mut t, self.slot_addr(0), true);
                }
                // ...then sift down a random root-to-leaf path.
                let mut idx = 0u64;
                while t.len() < n {
                    let left = 2 * idx + 1;
                    let right = 2 * idx + 2;
                    if right >= size {
                        break;
                    }
                    push(&mut t, self.slot_addr(left), false);
                    if t.len() < n {
                        push(&mut t, self.slot_addr(right), false);
                    }
                    let chosen = if rng.gen::<bool>() { left } else { right };
                    if t.len() < n {
                        push(&mut t, self.slot_addr(chosen), true);
                    }
                    idx = chosen;
                }
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn write_heavy() {
        let t = HeapWorkload::default().generate(60_000, 1);
        let wf = t.stats().write_fraction();
        assert!(wf > 0.30, "write fraction {wf} too low for heap");
    }

    #[test]
    fn root_page_is_the_hottest() {
        let w = HeapWorkload::default();
        let t = w.generate(60_000, 2);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for r in &t {
            *counts.entry(r.page().raw()).or_insert(0) += 1;
        }
        let hottest = counts
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(&p, _)| p)
            .expect("non-empty");
        assert_eq!(hottest, w.base_page, "root page should dominate");
    }

    #[test]
    fn footprint_spans_deep_levels() {
        let w = HeapWorkload::default();
        let t = w.generate(120_000, 3);
        let s = t.stats();
        // Deep random paths must reach far beyond the top levels.
        assert!(
            s.max_page - w.base_page > 10_000,
            "max page offset {}",
            s.max_page - w.base_page
        );
    }

    #[test]
    fn occupancy_oscillates_within_bounds() {
        let w = HeapWorkload::default();
        let lo = (0..w.wave_period_ops)
            .step_by(1000)
            .map(|o| w.occupancy(o))
            .min()
            .expect("non-empty");
        let hi = (0..w.wave_period_ops)
            .step_by(1000)
            .map(|o| w.occupancy(o))
            .max()
            .expect("non-empty");
        assert!(lo < hi);
        assert!(hi <= w.elements);
        assert!(lo as f64 >= w.elements as f64 * 0.05);
    }

    #[test]
    fn slot_addresses_are_element_aligned() {
        let w = HeapWorkload::default();
        for idx in [0u64, 1, 63, 64, 65, 1 << 20] {
            let a = w.slot_addr(idx);
            assert_eq!(a % w.elem_bytes, 0);
            assert_eq!(a >> 12, w.slot_page(idx));
        }
    }
}
