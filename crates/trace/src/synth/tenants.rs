//! Multi-tenant CXL-pool workload: many independent clients sharing one
//! expanded memory space.
//!
//! CXL-at-scale studies ("Dissecting CXL Memory Performance at Scale")
//! describe pooled deployments serving many concurrent tenants, not one
//! replayed client: each tenant has its own working set and its own
//! popularity skew, and the device sees their requests interleaved by an
//! arrival process. This generator reproduces that shape:
//!
//! * each tenant owns a disjoint page region with a Zipf-skewed working
//!   set (rank-to-page mapping shuffled per tenant so hot pages are not
//!   all region-initial — spatially, each region contributes its own
//!   mixture bump, like the paper's Fig. 2);
//! * tenants themselves are Zipf-popular (a few large tenants dominate
//!   traffic, a long tail trickles), and arrivals are drawn per request —
//!   the memoryless interleaving of many independent clients;
//! * each tenant drifts through *phases*: its hot-rank window rotates on
//!   a per-tenant period, so the GMM sees per-tenant temporal structure,
//!   not one global phase clock.
//!
//! Deterministic given `(n, seed)`, like every generator in this module.

use super::{push_read, push_write, Workload};
use crate::trace::Trace;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the multi-tenant workload model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MultiTenantWorkload {
    /// Number of tenants sharing the pool.
    pub tenants: usize,
    /// Pages in each tenant's region (the per-tenant footprint).
    pub pages_per_tenant: u64,
    /// Zipf exponent of page popularity *within* a tenant.
    pub page_skew: f64,
    /// Zipf exponent of traffic share *across* tenants (0.0 < s; larger
    /// values concentrate traffic on a few hot tenants).
    pub tenant_skew: f64,
    /// Percentage of writes, `0..=100`.
    pub write_pct: u8,
    /// First page of tenant 0's region (regions are laid out contiguously
    /// above it).
    pub base_page: u64,
    /// Base length of a tenant's popularity phase, in *that tenant's*
    /// requests; each tenant's actual period is jittered around this so
    /// phases do not align across tenants. `0` disables rotation.
    pub phase_len: u64,
    /// How many ranks a tenant's hot window advances per phase.
    pub rotate_ranks: u64,
}

impl Default for MultiTenantWorkload {
    fn default() -> Self {
        MultiTenantWorkload {
            tenants: 16,
            pages_per_tenant: 24_000,
            page_skew: 1.1,
            tenant_skew: 0.8,
            write_pct: 15,
            base_page: 1 << 20,
            phase_len: 20_000,
            rotate_ranks: 512,
        }
    }
}

/// Per-tenant generator state.
struct TenantState {
    /// Odd multiplier of the rank→page map (coprime with the region size,
    /// so the map is a bijection).
    mult: u64,
    /// Offset of the rank→page map.
    off: u64,
    /// This tenant's phase period, in its own requests (jittered around
    /// the configured base so tenant phases never align).
    period: u64,
    /// Requests this tenant has issued.
    seen: u64,
    /// Current hot-rank rotation.
    rot: u64,
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl Workload for MultiTenantWorkload {
    fn name(&self) -> &str {
        "multi-tenant"
    }

    fn generate(&self, n: usize, seed: u64) -> Trace {
        assert!(self.tenants > 0, "need at least one tenant");
        assert!(self.pages_per_tenant > 0, "tenant regions cannot be empty");
        let pages = self.pages_per_tenant;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7E4A_17ED);
        let tenant_zipf =
            Zipf::new(self.tenants as u64, self.tenant_skew).expect("valid tenant skew");
        let page_zipf = Zipf::new(pages, self.page_skew).expect("valid page skew");

        let mut tenants: Vec<TenantState> = (0..self.tenants)
            .map(|_| {
                // Draw an invertible affine rank→page map so each tenant's
                // hot ranks land on its own page pattern (one mixture bump
                // per tenant, not N copies of the same one).
                let mut mult = rng.gen_range(1..pages.max(2)) | 1;
                while gcd(mult, pages) != 1 {
                    mult = ((mult + 2) % pages.max(2)) | 1;
                }
                let jitter = self.phase_len / 4;
                TenantState {
                    mult,
                    off: rng.gen_range(0..pages),
                    period: (self.phase_len + rng.gen_range(0..jitter.max(1))).max(1),
                    seen: 0,
                    rot: 0,
                }
            })
            .collect();

        let mut t = Trace::with_capacity(n);
        for _ in 0..n {
            let who = (tenant_zipf.sample(&mut rng) - 1) as usize;
            let st = &mut tenants[who];
            let mut rank = page_zipf.sample(&mut rng) - 1;
            if self.phase_len > 0 {
                rank = (rank + st.rot) % pages;
            }
            let in_region = (rank.wrapping_mul(st.mult).wrapping_add(st.off)) % pages;
            let page = self.base_page + who as u64 * pages + in_region;
            if rng.gen_range(0u8..100) < self.write_pct {
                push_write(&mut t, &mut rng, page);
            } else {
                push_read(&mut t, &mut rng, page);
            }
            st.seen += 1;
            if self.phase_len > 0 && st.seen.is_multiple_of(st.period) {
                st.rot = (st.rot + self.rotate_ranks) % pages;
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::PAGE_SHIFT;
    use std::collections::HashMap;

    #[test]
    fn deterministic_given_seed_and_sensitive_to_it() {
        let w = MultiTenantWorkload::default();
        let a = w.generate(5_000, 9);
        let b = w.generate(5_000, 9);
        assert_eq!(a, b);
        let c = w.generate(5_000, 10);
        assert_ne!(a, c);
        assert_eq!(a.len(), 5_000);
        assert_eq!(w.name(), "multi-tenant");
    }

    #[test]
    fn every_access_lands_in_some_tenant_region() {
        let w = MultiTenantWorkload {
            tenants: 4,
            pages_per_tenant: 100,
            ..Default::default()
        };
        let t = w.generate(2_000, 3);
        for r in t.iter() {
            let page = r.paddr >> PAGE_SHIFT;
            assert!(
                (w.base_page..w.base_page + 4 * 100).contains(&page),
                "page {page:#x} outside the pool"
            );
        }
    }

    #[test]
    fn tenant_traffic_is_skewed_but_broad() {
        let w = MultiTenantWorkload {
            tenants: 8,
            pages_per_tenant: 1_000,
            ..Default::default()
        };
        let t = w.generate(20_000, 5);
        let mut per_tenant: HashMap<u64, usize> = HashMap::new();
        for r in t.iter() {
            let page = r.paddr >> PAGE_SHIFT;
            *per_tenant
                .entry((page - w.base_page) / w.pages_per_tenant)
                .or_default() += 1;
        }
        assert_eq!(per_tenant.len(), 8, "every tenant should appear");
        let max = *per_tenant.values().max().unwrap();
        let min = *per_tenant.values().min().unwrap();
        assert!(
            max > 2 * min,
            "tenant skew should concentrate traffic: max {max}, min {min}"
        );
    }

    #[test]
    fn writes_track_the_configured_percentage() {
        let w = MultiTenantWorkload {
            write_pct: 30,
            ..Default::default()
        };
        let t = w.generate(20_000, 11);
        let writes = t.iter().filter(|r| r.op.is_write()).count();
        let frac = writes as f64 / t.len() as f64;
        assert!((frac - 0.30).abs() < 0.02, "write fraction {frac}");
    }

    #[test]
    fn phase_rotation_shifts_the_hot_set() {
        // With rotation on, the most popular pages of the first quarter
        // and the last quarter should differ for the hottest tenant.
        let w = MultiTenantWorkload {
            tenants: 2,
            pages_per_tenant: 5_000,
            phase_len: 2_000,
            rotate_ranks: 1_000,
            ..Default::default()
        };
        let t = w.generate(40_000, 7);
        let quarter = t.len() / 4;
        let hot = |records: &[crate::record::TraceRecord]| -> u64 {
            let mut counts: HashMap<u64, usize> = HashMap::new();
            for r in records {
                *counts.entry(r.paddr >> PAGE_SHIFT).or_default() += 1;
            }
            counts.into_iter().max_by_key(|&(_, c)| c).unwrap().0
        };
        let early = hot(&t.records()[..quarter]);
        let late = hot(&t.records()[t.len() - quarter..]);
        assert_ne!(early, late, "hot page never rotated");
    }
}
