//! DLRM (deep-learning recommendation model) inference workload model.
//!
//! The paper's Fig. 2(a) is a dlrm trace: several embedding tables, each a
//! spatially compact Gaussian-looking bump of hot rows, with table emphasis
//! shifting over time. Embedding gathers dominate: per inference sample,
//! a few Zipf-distributed rows are read from every table. The combined
//! footprint is far larger than the device cache, which is why dlrm has the
//! highest miss rate in the paper (36.78 % under LRU). Dense MLP weights are
//! streamed cyclically, and the interaction output is written back.

use super::{line_addr, Workload};
use crate::record::TraceRecord;
use crate::trace::Trace;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Parameters of the dlrm workload model (defaults ≈ paper operating point:
/// ~37 % LRU miss).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DlrmWorkload {
    /// Number of embedding tables.
    pub tables: usize,
    /// Rows per embedding table.
    pub rows_per_table: u64,
    /// Row size in bytes.
    pub row_bytes: u64,
    /// Embedding lookups per table per sample (multi-hot).
    pub lookups_per_table: usize,
    /// Zipf exponent of row popularity (mild skew ⇒ high miss rate).
    pub zipf_exponent: f64,
    /// Pages of dense MLP weights streamed per batch.
    pub mlp_pages: u64,
    /// Sequential MLP lines read per sample.
    pub mlp_lines_per_sample: usize,
    /// Samples per table-emphasis phase.
    pub phase_len_samples: usize,
    /// First page of the embedding region.
    pub base_page: u64,
}

impl Default for DlrmWorkload {
    fn default() -> Self {
        DlrmWorkload {
            tables: 8,
            rows_per_table: 1_000_000,
            row_bytes: 128,
            lookups_per_table: 2,
            zipf_exponent: 0.78,
            mlp_pages: 768,
            mlp_lines_per_sample: 12,
            phase_len_samples: 15_000,
            base_page: 0x400_0000,
        }
    }
}

impl DlrmWorkload {
    fn rows_per_page(&self) -> u64 {
        (crate::record::PAGE_SIZE / self.row_bytes).max(1)
    }

    fn table_pages(&self) -> u64 {
        self.rows_per_table.div_ceil(self.rows_per_page())
    }

    fn table_base(&self, t: usize) -> u64 {
        self.base_page + t as u64 * (self.table_pages() + 8_192)
    }

    fn mlp_base(&self) -> u64 {
        self.table_base(self.tables) + 65_536
    }

    fn out_base(&self) -> u64 {
        self.mlp_base() + self.mlp_pages + 4_096
    }

    /// Which table gets extra lookups during `phase` (emphasis rotation).
    fn emphasized_table(&self, phase: usize) -> usize {
        phase % self.tables.max(1)
    }
}

impl Workload for DlrmWorkload {
    fn name(&self) -> &str {
        "dlrm"
    }

    fn generate(&self, n: usize, seed: u64) -> Trace {
        let zipf = Zipf::new(self.rows_per_table, self.zipf_exponent)
            .expect("workload parameters form a valid Zipf distribution");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Trace::with_capacity(n);
        let mut mlp_line = 0u64;
        let mut sample = 0usize;

        while t.len() < n {
            sample += 1;
            let phase = sample / self.phase_len_samples.max(1);
            let hot_table = self.emphasized_table(phase);

            // Embedding gathers.
            for table in 0..self.tables {
                let lookups = self.lookups_per_table
                    + usize::from(table == hot_table) * self.lookups_per_table;
                for _ in 0..lookups {
                    if t.len() >= n {
                        break;
                    }
                    let rank = zipf.sample(&mut rng) - 1;
                    let page = self.table_base(table) + rank / self.rows_per_page();
                    let slot = (rank % self.rows_per_page()) * (self.row_bytes / 64).max(1);
                    t.push(TraceRecord::read(line_addr(page, slot)));
                }
            }
            // Dense MLP weight stream (cyclic).
            for _ in 0..self.mlp_lines_per_sample {
                if t.len() >= n {
                    break;
                }
                let page = self.mlp_base() + (mlp_line / 64) % self.mlp_pages;
                t.push(TraceRecord::read(line_addr(page, mlp_line)));
                mlp_line += 1;
            }
            // Interaction output write.
            if t.len() < n {
                let page = self.out_base() + (sample as u64 % 512);
                t.push(TraceRecord::write(line_addr(page, sample as u64)));
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::SpatialHistogram;

    #[test]
    fn mostly_reads() {
        let t = DlrmWorkload::default().generate(50_000, 1);
        let wf = t.stats().write_fraction();
        assert!(wf < 0.10, "write fraction {wf} too high for dlrm");
    }

    #[test]
    fn footprint_far_exceeds_cache() {
        let t = DlrmWorkload::default().generate(200_000, 2);
        let s = t.stats();
        // 64 MiB cache = 16384 pages; dlrm must be much bigger.
        assert!(
            s.distinct_pages > 60_000,
            "distinct pages {} too small",
            s.distinct_pages
        );
    }

    #[test]
    fn tables_form_separate_spatial_modes() {
        let w = DlrmWorkload {
            tables: 4,
            mlp_lines_per_sample: 0,
            ..Default::default()
        };
        let t = w.generate(80_000, 3);
        let h = SpatialHistogram::from_records(t.records(), 200);
        assert!(
            h.mode_count() >= 3,
            "expected per-table modes, got {}",
            h.mode_count()
        );
    }

    #[test]
    fn emphasis_rotates_between_phases() {
        let w = DlrmWorkload::default();
        assert_ne!(w.emphasized_table(0), w.emphasized_table(1));
        assert_eq!(w.emphasized_table(0), w.emphasized_table(w.tables));
    }

    #[test]
    fn regions_are_disjoint() {
        let w = DlrmWorkload::default();
        for t in 1..w.tables {
            assert!(w.table_base(t) > w.table_base(t - 1) + w.table_pages());
        }
        assert!(w.mlp_base() > w.table_base(w.tables - 1) + w.table_pages());
        assert!(w.out_base() > w.mlp_base() + w.mlp_pages);
    }
}
