//! memtier_benchmark (redis/memcached) key–value workload model.
//!
//! GET/SET traffic against a value heap laid out in insertion order, with
//! Zipf-skewed key popularity. Because popular keys are inserted early and
//! stay popular, the head of the key space is spatially compact — the
//! paper's Fig. 2 Gaussian bumps. The hot key range drifts slowly between
//! phases (working-set rotation), giving the GMM a temporal signal.

use super::{push_read, push_write, Workload};
use crate::record::PAGE_SIZE;
use crate::trace::Trace;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the memtier workload model (defaults ≈ the paper's
/// memtier operating point: ~2.7 % LRU miss, ~10 % writes).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemtierWorkload {
    /// Number of distinct keys.
    pub keys: u64,
    /// Value size in bytes (values are contiguous in the heap).
    pub value_bytes: u64,
    /// Zipf exponent of key popularity.
    pub zipf_exponent: f64,
    /// Probability that an operation is a GET (the rest are SETs).
    pub get_prob: f64,
    /// First page of the value heap.
    pub heap_base_page: u64,
    /// Hot dictionary/metadata pages consulted by every operation.
    pub meta_pages: u64,
    /// Probability that an operation also touches a metadata page.
    pub meta_prob: f64,
    /// Requests per popularity-rotation phase.
    pub phase_len: usize,
    /// Key-rank offset applied per phase (0 disables rotation).
    pub rotate_keys: u64,
    /// Probability of an active-expiration probe: a read of a uniformly
    /// random key (redis expiration-cycle sampling — cold, pollutes LRU).
    pub expire_prob: f64,
}

impl Default for MemtierWorkload {
    fn default() -> Self {
        MemtierWorkload {
            keys: 2_000_000,
            value_bytes: 1024,
            zipf_exponent: 1.42,
            get_prob: 0.90,
            heap_base_page: 0x40_0000,
            meta_pages: 192,
            meta_prob: 0.15,
            phase_len: 300_000,
            rotate_keys: 8_000,
            expire_prob: 0.015,
        }
    }
}

impl MemtierWorkload {
    /// Page of the value belonging to popularity rank `rank` in `phase`.
    fn value_page(&self, rank: u64, phase: usize) -> u64 {
        let values_per_page = (PAGE_SIZE / self.value_bytes).max(1);
        let key = (rank - 1 + phase as u64 * self.rotate_keys) % self.keys;
        self.heap_base_page + key / values_per_page
    }
}

impl Workload for MemtierWorkload {
    fn name(&self) -> &str {
        "memtier"
    }

    fn generate(&self, n: usize, seed: u64) -> Trace {
        let zipf = Zipf::new(self.keys, self.zipf_exponent)
            .expect("workload parameters form a valid Zipf distribution");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Trace::with_capacity(n);
        let meta_base = self.heap_base_page.saturating_sub(self.meta_pages + 16);

        while t.len() < n {
            let phase = t.len() / self.phase_len.max(1);
            if self.meta_pages > 0 && rng.gen::<f64>() < self.meta_prob {
                // Dictionary probe: hot, read-only.
                let mp = meta_base + rng.gen_range(0..self.meta_pages);
                push_read(&mut t, &mut rng, mp);
                if t.len() >= n {
                    break;
                }
            }
            if rng.gen::<f64>() < self.expire_prob {
                // Expiration-cycle probe: uniformly random key, usually
                // cold — a compulsory miss either way, but only an
                // admission-less cache lets it evict something useful.
                let key = rng.gen_range(0..self.keys);
                let values_per_page = (PAGE_SIZE / self.value_bytes).max(1);
                push_read(
                    &mut t,
                    &mut rng,
                    self.heap_base_page + key / values_per_page,
                );
                if t.len() >= n {
                    break;
                }
            }
            let rank = zipf.sample(&mut rng);
            let page = self.value_page(rank, phase);
            if rng.gen::<f64>() < self.get_prob {
                push_read(&mut t, &mut rng, page);
            } else {
                // SET: write the value (two lines: header + payload start).
                push_write(&mut t, &mut rng, page);
                if t.len() < n {
                    push_write(&mut t, &mut rng, page);
                }
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn mostly_reads() {
        let t = MemtierWorkload::default().generate(30_000, 1);
        let wf = t.stats().write_fraction();
        // 10% SETs × 2 writes each + meta reads ⇒ ~17% writes.
        assert!(wf > 0.05 && wf < 0.30, "write fraction {wf}");
    }

    #[test]
    fn popularity_is_skewed() {
        let w = MemtierWorkload {
            meta_prob: 0.0,
            rotate_keys: 0,
            ..Default::default()
        };
        let t = w.generate(60_000, 2);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for r in &t {
            *counts.entry(r.page().raw()).or_insert(0) += 1;
        }
        let mut by_count: Vec<u64> = counts.values().copied().collect();
        by_count.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = by_count.iter().sum();
        let top100: u64 = by_count.iter().take(100).sum();
        assert!(
            top100 as f64 / total as f64 > 0.35,
            "top-100 pages carry {}",
            top100 as f64 / total as f64
        );
    }

    #[test]
    fn head_pages_are_contiguous() {
        // The most popular pages should sit at the start of the heap.
        let w = MemtierWorkload {
            meta_prob: 0.0,
            rotate_keys: 0,
            ..Default::default()
        };
        let t = w.generate(40_000, 3);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for r in &t {
            *counts.entry(r.page().raw()).or_insert(0) += 1;
        }
        let hottest = counts
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(&p, _)| p)
            .expect("non-empty");
        assert!(
            hottest < w.heap_base_page + 64,
            "hottest page {hottest:#x} not near heap base"
        );
    }

    #[test]
    fn rotation_moves_the_hot_set() {
        let w = MemtierWorkload {
            meta_prob: 0.0,
            phase_len: 10_000,
            rotate_keys: 100_000,
            ..Default::default()
        };
        let t = w.generate(20_000, 4);
        let hottest_in = |lo: usize, hi: usize| {
            let mut counts: HashMap<u64, u64> = HashMap::new();
            for r in &t.records()[lo..hi] {
                *counts.entry(r.page().raw()).or_insert(0) += 1;
            }
            counts
                .iter()
                .max_by_key(|(_, &c)| c)
                .map(|(&p, _)| p)
                .expect("non-empty")
        };
        assert_ne!(hottest_in(0, 10_000), hottest_in(10_000, 20_000));
    }

    #[test]
    fn value_page_wraps_at_key_space() {
        let w = MemtierWorkload::default();
        let p = w.value_page(w.keys, 0); // last rank maps inside the heap
        let values_per_page = PAGE_SIZE / w.value_bytes;
        assert!(p < w.heap_base_page + w.keys / values_per_page + 1);
    }
}
