//! Synthetic workload models for the paper's seven trace benchmarks.
//!
//! The paper evaluates ICGMM on two synthetic benchmarks (`hashmap`, `heap`,
//! from the CXL-SSD tool of Yang et al.) and five real applications (`dlrm`,
//! `parsec`, `stream`, `memtier`, `sysbench`). We cannot replay the authors'
//! captured traces, so each generator here reproduces the *documented
//! statistical structure* of its application — the spatial mixture-of-
//! Gaussians and phase-structured temporal locality shown in the paper's
//! Fig. 2 — and is calibrated (in `icgmm::benchmarks`) so that the LRU
//! baseline lands near the paper's published miss rate for that benchmark.
//!
//! All generators are deterministic given `(n, seed)`.

mod dlrm;
mod hashmap;
mod heap;
mod memtier;
mod parsec;
mod stream;
mod sysbench;
mod tenants;

pub use dlrm::DlrmWorkload;
pub use hashmap::HashmapWorkload;
pub use heap::HeapWorkload;
pub use memtier::MemtierWorkload;
pub use parsec::ParsecWorkload;
pub use stream::StreamWorkload;
pub use sysbench::SysbenchWorkload;
pub use tenants::MultiTenantWorkload;

use crate::record::{TraceRecord, PAGE_SHIFT};
use crate::trace::Trace;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A synthetic application that can emit a memory-request trace.
///
/// Implementations are deterministic: the same `(n, seed)` always produces
/// the same trace.
pub trait Workload {
    /// Human-readable benchmark name (matches the paper's tables).
    fn name(&self) -> &str;

    /// Generates `n` requests using the given RNG seed.
    fn generate(&self, n: usize, seed: u64) -> Trace;
}

/// The seven benchmarks of the paper's evaluation (§5.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// PARSEC-style HPC working-set benchmark.
    Parsec,
    /// memtier / redis key–value benchmark.
    Memtier,
    /// Synthetic hash-map benchmark (write-heavy, periodic rehash scans).
    Hashmap,
    /// Synthetic binary-heap benchmark (write-heavy, level-structured).
    Heap,
    /// sysbench OLTP point-query benchmark.
    Sysbench,
    /// DLRM embedding-gather benchmark (huge skewed footprint).
    Dlrm,
    /// STREAM sequential-sweep benchmark (cyclic, LRU-hostile).
    Stream,
}

impl WorkloadKind {
    /// All seven benchmarks in the paper's Fig. 6 order.
    pub fn all() -> [WorkloadKind; 7] {
        [
            WorkloadKind::Parsec,
            WorkloadKind::Memtier,
            WorkloadKind::Hashmap,
            WorkloadKind::Heap,
            WorkloadKind::Sysbench,
            WorkloadKind::Dlrm,
            WorkloadKind::Stream,
        ]
    }

    /// Builds the default-parameter generator for this benchmark.
    pub fn default_workload(self) -> Box<dyn Workload + Send + Sync> {
        match self {
            WorkloadKind::Parsec => Box::new(ParsecWorkload::default()),
            WorkloadKind::Memtier => Box::new(MemtierWorkload::default()),
            WorkloadKind::Hashmap => Box::new(HashmapWorkload::default()),
            WorkloadKind::Heap => Box::new(HeapWorkload::default()),
            WorkloadKind::Sysbench => Box::new(SysbenchWorkload::default()),
            WorkloadKind::Dlrm => Box::new(DlrmWorkload::default()),
            WorkloadKind::Stream => Box::new(StreamWorkload::default()),
        }
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WorkloadKind::Parsec => "parsec",
            WorkloadKind::Memtier => "memtier",
            WorkloadKind::Hashmap => "hashmap",
            WorkloadKind::Heap => "heap",
            WorkloadKind::Sysbench => "sysbench",
            WorkloadKind::Dlrm => "dlrm",
            WorkloadKind::Stream => "stream",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for WorkloadKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "parsec" => Ok(WorkloadKind::Parsec),
            "memtier" => Ok(WorkloadKind::Memtier),
            "hashmap" => Ok(WorkloadKind::Hashmap),
            "heap" => Ok(WorkloadKind::Heap),
            "sysbench" => Ok(WorkloadKind::Sysbench),
            "dlrm" => Ok(WorkloadKind::Dlrm),
            "stream" => Ok(WorkloadKind::Stream),
            other => Err(format!("unknown workload: {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Shared generator building blocks (crate-private).
// ---------------------------------------------------------------------------

/// Standard-normal draw via Box–Muller (rand itself ships no normal sampler
/// and rand_distr is outside the approved dependency set).
pub(crate) fn normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    // Box–Muller; discard the second variate for simplicity.
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mu + sigma * z
}

/// A 64 B-aligned address inside page `page` at cache-line slot `slot`
/// (wrapped to the 64 slots of a 4 KiB page).
pub(crate) fn line_addr(page: u64, slot: u64) -> u64 {
    (page << PAGE_SHIFT) + (slot % 64) * 64
}

/// A uniformly random 64 B-aligned address inside `page`.
pub(crate) fn rand_line_addr<R: Rng + ?Sized>(rng: &mut R, page: u64) -> u64 {
    line_addr(page, rng.gen_range(0..64))
}

/// Clamps a real-valued page coordinate into `[base, base + pages)`.
pub(crate) fn clamp_page(x: f64, base: u64, pages: u64) -> u64 {
    let lo = base as f64;
    let hi = (base + pages - 1) as f64;
    x.clamp(lo, hi) as u64
}

/// Pushes a read of a random line in `page`.
pub(crate) fn push_read<R: Rng + ?Sized>(t: &mut Trace, rng: &mut R, page: u64) {
    t.push(TraceRecord::read(rand_line_addr(rng, page)));
}

/// Pushes a write of a random line in `page`.
pub(crate) fn push_write<R: Rng + ?Sized>(t: &mut Trace, rng: &mut R, page: u64) {
    t.push(TraceRecord::write(rand_line_addr(rng, page)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::str::FromStr;

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn line_addr_stays_inside_page() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let a = rand_line_addr(&mut rng, 7);
            assert_eq!(a >> PAGE_SHIFT, 7);
            assert_eq!(a % 64, 0);
        }
        assert_eq!(line_addr(3, 65), (3 << 12) + 64);
    }

    #[test]
    fn clamp_page_bounds() {
        assert_eq!(clamp_page(-5.0, 10, 4), 10);
        assert_eq!(clamp_page(11.4, 10, 4), 11);
        assert_eq!(clamp_page(1e12, 10, 4), 13);
    }

    #[test]
    fn kind_round_trips_through_str() {
        for k in WorkloadKind::all() {
            let s = k.to_string();
            assert_eq!(WorkloadKind::from_str(&s).unwrap(), k);
        }
        assert!(WorkloadKind::from_str("nope").is_err());
    }

    #[test]
    fn default_workloads_are_deterministic() {
        for k in WorkloadKind::all() {
            let w = k.default_workload();
            let a = w.generate(2_000, 42);
            let b = w.generate(2_000, 42);
            assert_eq!(a, b, "{k} not deterministic");
            assert_eq!(a.len(), 2_000, "{k} wrong length");
            let c = w.generate(2_000, 43);
            assert_ne!(a, c, "{k} ignores seed");
        }
    }
}
