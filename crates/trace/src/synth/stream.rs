//! STREAM (McCalpin) sequential-bandwidth workload model.
//!
//! Repeated copy/scale/add/triad sweeps over three large arrays. The arrays
//! are much larger than the device cache and are re-traversed cyclically —
//! the canonical LRU-hostile pattern: by the time a sweep returns to a page,
//! LRU has long evicted it, so LRU gets essentially zero reuse hits. An
//! admission-filtering policy can *pin* a subset of pages and collect their
//! reuse on every subsequent sweep, which is exactly how ICGMM improves on
//! LRU here (paper: 13.45 % → 11.09 %).
//!
//! Element stride is 512 B (8 touches per 4 KiB page), matching the paper's
//! ~13 % LRU miss floor: one compulsory miss per page per sweep, 7 hits.

use super::{line_addr, Workload};
use crate::record::TraceRecord;
use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The four STREAM kernels.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
enum Kernel {
    /// `c[i] = a[i]`
    Copy,
    /// `b[i] = s * c[i]`
    Scale,
    /// `c[i] = a[i] + b[i]`
    Add,
    /// `a[i] = b[i] + s * c[i]`
    Triad,
}

const KERNELS: [Kernel; 4] = [Kernel::Copy, Kernel::Scale, Kernel::Add, Kernel::Triad];

/// Parameters of the STREAM workload model (defaults ≈ paper operating
/// point: ~13.5 % LRU miss).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamWorkload {
    /// Pages per array (three arrays: a, b, c).
    pub array_pages: u64,
    /// Access stride in bytes (512 ⇒ 8 touches per page).
    pub stride_bytes: u64,
    /// Hot control/index pages touched throughout the run.
    pub hot_pages: u64,
    /// Probability of an extra hot-region access per element step.
    pub hot_prob: f64,
    /// First page of array `a`.
    pub base_page: u64,
}

impl Default for StreamWorkload {
    fn default() -> Self {
        StreamWorkload {
            array_pages: 6_144, // 24 MiB per array, 72 MiB total (> 64 MiB cache)
            stride_bytes: 512,
            hot_pages: 14_336,
            hot_prob: 0.25,
            base_page: 0x100_0000,
        }
    }
}

impl StreamWorkload {
    fn array_base(&self, which: usize) -> u64 {
        self.base_page + which as u64 * (self.array_pages + 2_048)
    }

    fn hot_base(&self) -> u64 {
        self.base_page.saturating_sub(self.hot_pages + 1_024)
    }

    /// Elements per array at the configured stride.
    fn elements(&self) -> u64 {
        self.array_pages * crate::record::PAGE_SIZE / self.stride_bytes
    }

    fn elem_addr(&self, array: usize, elem: u64) -> u64 {
        let byte = elem * self.stride_bytes;
        let page = self.array_base(array) + byte / crate::record::PAGE_SIZE;
        (page << crate::record::PAGE_SHIFT) + byte % crate::record::PAGE_SIZE
    }
}

impl Workload for StreamWorkload {
    fn name(&self) -> &str {
        "stream"
    }

    fn generate(&self, n: usize, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Trace::with_capacity(n);
        let elems = self.elements();
        let mut kernel_idx = 0usize;
        let mut elem = 0u64;

        // a=0, b=1, c=2
        while t.len() < n {
            let kernel = KERNELS[kernel_idx % KERNELS.len()];
            if self.hot_pages > 0 && rng.gen::<f64>() < self.hot_prob {
                // Gaussian-profiled control/index region: a dense core the
                // GMM can pin, with a colder fringe that LRU churns.
                let x = super::normal(
                    &mut rng,
                    self.hot_pages as f64 / 2.0,
                    self.hot_pages as f64 / 5.0,
                );
                let hp = self.hot_base() + super::clamp_page(x, 0, self.hot_pages);
                t.push(TraceRecord::read(line_addr(hp, rng.gen_range(0..64))));
                if t.len() >= n {
                    break;
                }
            }
            match kernel {
                Kernel::Copy => {
                    t.push(TraceRecord::read(self.elem_addr(0, elem)));
                    if t.len() < n {
                        t.push(TraceRecord::write(self.elem_addr(2, elem)));
                    }
                }
                Kernel::Scale => {
                    t.push(TraceRecord::read(self.elem_addr(2, elem)));
                    if t.len() < n {
                        t.push(TraceRecord::write(self.elem_addr(1, elem)));
                    }
                }
                Kernel::Add => {
                    t.push(TraceRecord::read(self.elem_addr(0, elem)));
                    if t.len() < n {
                        t.push(TraceRecord::read(self.elem_addr(1, elem)));
                    }
                    if t.len() < n {
                        t.push(TraceRecord::write(self.elem_addr(2, elem)));
                    }
                }
                Kernel::Triad => {
                    t.push(TraceRecord::read(self.elem_addr(1, elem)));
                    if t.len() < n {
                        t.push(TraceRecord::read(self.elem_addr(2, elem)));
                    }
                    if t.len() < n {
                        t.push(TraceRecord::write(self.elem_addr(0, elem)));
                    }
                }
            }
            elem += 1;
            if elem >= elems {
                elem = 0;
                kernel_idx += 1;
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_gives_eight_touches_per_page() {
        let w = StreamWorkload::default();
        assert_eq!(crate::record::PAGE_SIZE / w.stride_bytes, 8);
    }

    #[test]
    fn accesses_are_sequential_within_an_array() {
        let w = StreamWorkload {
            hot_prob: 0.0,
            ..Default::default()
        };
        let t = w.generate(10_000, 1);
        // Array-a reads in the copy kernel advance monotonically.
        let a_base = w.array_base(0);
        let a_pages: Vec<u64> = t
            .iter()
            .filter(|r| {
                let p = r.page().raw();
                p >= a_base && p < a_base + w.array_pages && !r.op.is_write()
            })
            .map(|r| r.page().raw())
            .collect();
        assert!(a_pages.len() > 100);
        assert!(
            a_pages.windows(2).all(|w2| w2[1] >= w2[0]),
            "array sweep not sequential"
        );
    }

    #[test]
    fn write_fraction_matches_kernel_mix() {
        let w = StreamWorkload {
            hot_prob: 0.0,
            ..Default::default()
        };
        let t = w.generate(50_000, 2);
        let wf = t.stats().write_fraction();
        // copy/scale: 1 of 2; add/triad: 1 of 3 ⇒ between 1/3 and 1/2.
        assert!(wf > 0.30 && wf < 0.52, "write fraction {wf}");
    }

    #[test]
    fn footprint_is_three_arrays() {
        let w = StreamWorkload {
            array_pages: 64,
            hot_prob: 0.0,
            ..Default::default()
        };
        // Enough requests for one full kernel cycle over tiny arrays.
        let t = w.generate(5_000, 3);
        let s = t.stats();
        assert!(s.distinct_pages >= 3 * 64 - 3, "{}", s.distinct_pages);
    }

    #[test]
    fn kernels_rotate_after_full_sweeps() {
        let w = StreamWorkload {
            array_pages: 2,
            hot_prob: 0.0,
            ..Default::default()
        };
        // 2 pages × 8 elems/page = 16 elems per sweep; copy emits 2 records
        // per elem, so after 32 records the kernel switches to scale (which
        // touches array c first).
        let t = w.generate(40, 4);
        let c_base = w.array_base(2);
        assert_eq!(t.records()[32].page().raw(), c_base);
        assert!(!t.records()[32].op.is_write());
    }
}
