//! sysbench OLTP point-query workload model.
//!
//! Index traversals over a B-tree: a tiny hot root/inner level, Zipf-skewed
//! leaf pages, row reads, and (for updates) row writes plus a sequentially
//! advancing circular redo log — the log sweep is the LRU-hostile component.
//! The hot leaf range rotates slowly between phases.

use super::{line_addr, push_read, push_write, Workload};
use crate::record::TraceRecord;
use crate::trace::Trace;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the sysbench workload model (defaults ≈ paper operating
/// point: ~3.9 % LRU miss, ~25 % updates).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SysbenchWorkload {
    /// Number of table rows.
    pub rows: u64,
    /// Rows per leaf page.
    pub rows_per_leaf: u64,
    /// Number of inner (branch) pages — always warm.
    pub inner_pages: u64,
    /// Zipf exponent of row popularity.
    pub zipf_exponent: f64,
    /// Probability that a query is an UPDATE.
    pub update_prob: f64,
    /// Pages in the circular redo log.
    pub log_pages: u64,
    /// Requests per hot-range rotation phase.
    pub phase_len: usize,
    /// Row-rank offset applied per phase.
    pub rotate_rows: u64,
    /// Probability that a query is a range SELECT (sequential leaf scan —
    /// the LRU-hostile component of the OLTP mix).
    pub range_prob: f64,
    /// Leaf pages touched by one range SELECT.
    pub range_leaves: u64,
    /// First page of the B-tree region.
    pub base_page: u64,
}

impl Default for SysbenchWorkload {
    fn default() -> Self {
        SysbenchWorkload {
            rows: 4_000_000,
            rows_per_leaf: 16,
            inner_pages: 384,
            zipf_exponent: 1.18,
            update_prob: 0.25,
            log_pages: 4_096,
            phase_len: 250_000,
            rotate_rows: 20_000,
            range_prob: 0.008,
            range_leaves: 8,
            base_page: 0x200_0000,
        }
    }
}

impl SysbenchWorkload {
    fn root_page(&self) -> u64 {
        self.base_page
    }

    fn inner_base(&self) -> u64 {
        self.base_page + 1
    }

    fn leaf_base(&self) -> u64 {
        self.inner_base() + self.inner_pages
    }

    fn leaf_pages(&self) -> u64 {
        self.rows.div_ceil(self.rows_per_leaf)
    }

    fn log_base(&self) -> u64 {
        self.leaf_base() + self.leaf_pages() + 65_536
    }

    /// Leaf page of popularity rank `rank` during `phase`.
    fn leaf_page(&self, rank: u64, phase: usize) -> u64 {
        let row = (rank - 1 + phase as u64 * self.rotate_rows) % self.rows;
        self.leaf_base() + row / self.rows_per_leaf
    }

    /// Inner page covering a leaf (contiguous key ranges per branch).
    fn inner_page_for(&self, leaf: u64) -> u64 {
        let leaf_off = leaf - self.leaf_base();
        let per_inner = self.leaf_pages().div_ceil(self.inner_pages).max(1);
        self.inner_base() + (leaf_off / per_inner).min(self.inner_pages - 1)
    }
}

impl Workload for SysbenchWorkload {
    fn name(&self) -> &str {
        "sysbench"
    }

    fn generate(&self, n: usize, seed: u64) -> Trace {
        let zipf = Zipf::new(self.rows, self.zipf_exponent)
            .expect("workload parameters form a valid Zipf distribution");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Trace::with_capacity(n);
        let mut log_line = 0u64;

        while t.len() < n {
            let phase = t.len() / self.phase_len.max(1);
            let rank = zipf.sample(&mut rng);
            let leaf = self.leaf_page(rank, phase);

            // Root → inner → leaf traversal.
            push_read(&mut t, &mut rng, self.root_page());
            if t.len() >= n {
                break;
            }
            push_read(&mut t, &mut rng, self.inner_page_for(leaf));
            if t.len() >= n {
                break;
            }

            if rng.gen::<f64>() < self.range_prob {
                // Range SELECT: sequential sweep of sibling leaves starting
                // at a uniformly random position (mostly cold pages).
                let start = rng.gen_range(0..self.leaf_pages());
                for i in 0..self.range_leaves {
                    if t.len() >= n {
                        break;
                    }
                    let page = self.leaf_base() + (start + i) % self.leaf_pages();
                    push_read(&mut t, &mut rng, page);
                }
                continue;
            }
            push_read(&mut t, &mut rng, leaf);

            if rng.gen::<f64>() < self.update_prob {
                if t.len() < n {
                    // Row update in place.
                    push_write(&mut t, &mut rng, leaf);
                }
                if t.len() < n {
                    // Redo-log append: strictly sequential circular stream.
                    let page = self.log_base() + (log_line / 64) % self.log_pages;
                    t.push(TraceRecord::write(line_addr(page, log_line)));
                    log_line += 1;
                }
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn update_fraction_shows_in_writes() {
        let t = SysbenchWorkload::default().generate(50_000, 1);
        let wf = t.stats().write_fraction();
        // 25% updates × 2 writes per ~4.5-record op ⇒ ~11-15% writes.
        assert!(wf > 0.06 && wf < 0.25, "write fraction {wf}");
    }

    #[test]
    fn root_is_hot() {
        let w = SysbenchWorkload::default();
        let t = w.generate(40_000, 2);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for r in &t {
            *counts.entry(r.page().raw()).or_insert(0) += 1;
        }
        let root = counts.get(&w.root_page()).copied().unwrap_or(0);
        assert!(
            root as f64 > t.len() as f64 * 0.2,
            "root page carries only {root} of {}",
            t.len()
        );
    }

    #[test]
    fn regions_do_not_overlap() {
        let w = SysbenchWorkload::default();
        assert!(w.inner_base() > w.root_page());
        assert!(w.leaf_base() > w.inner_base() + w.inner_pages - 1);
        assert!(w.log_base() > w.leaf_base() + w.leaf_pages());
        // Inner page mapping stays in range for extreme leaves.
        let first = w.leaf_page(1, 0);
        let last = w.leaf_page(w.rows, 0);
        for leaf in [first, last] {
            let ip = w.inner_page_for(leaf);
            assert!(ip >= w.inner_base() && ip < w.inner_base() + w.inner_pages);
        }
    }

    #[test]
    fn log_writes_are_sequential() {
        let w = SysbenchWorkload {
            update_prob: 1.0,
            ..Default::default()
        };
        let t = w.generate(20_000, 3);
        let log_pages: Vec<u64> = t
            .iter()
            .filter(|r| r.page().raw() >= w.log_base())
            .map(|r| r.page().raw())
            .collect();
        assert!(!log_pages.is_empty());
        // Non-decreasing until wrap.
        let mut violations = 0;
        for pair in log_pages.windows(2) {
            if pair[1] < pair[0] && pair[0] - pair[1] < w.log_pages - 1 {
                violations += 1;
            }
        }
        assert_eq!(violations, 0, "log pages not sequential");
    }
}
