//! Synthetic hash-map workload (the paper's `hashmap` benchmark, after the
//! CXL-SSD tool of Yang et al.).
//!
//! A bucket array (compact, warm) fronts an entry heap (large, skewed).
//! Inserts are frequent — this is the write-heaviest benchmark, which is why
//! the paper's Table 1 shows it with a large average access time (dirty
//! 4 KiB blocks cost a 900 µs SSD program on eviction). Periodic incremental
//! rehash sweeps scan the bucket array sequentially, polluting an LRU cache.

use super::{line_addr, push_read, push_write, Workload};
use crate::record::TraceRecord;
use crate::trace::Trace;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the hashmap workload model (defaults ≈ paper operating
/// point: ~2 % LRU miss, write-heavy).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HashmapWorkload {
    /// Number of hash buckets (64 B each, 64 per page).
    pub buckets: u64,
    /// Number of entries in the entry heap.
    pub entries: u64,
    /// Entry size in bytes.
    pub entry_bytes: u64,
    /// Zipf exponent of entry popularity.
    pub zipf_exponent: f64,
    /// Probability that an operation is an insert/update (writes).
    pub insert_prob: f64,
    /// Operations between incremental-rehash scan bursts (0 disables).
    pub rehash_every: usize,
    /// Bucket pages scanned per rehash burst.
    pub rehash_scan_pages: u64,
    /// Pages in the relocation target region the rehash writes through
    /// (cold, write-once-per-lap — the LRU-hostile component).
    pub relocation_pages: u64,
    /// First page of the bucket array.
    pub bucket_base_page: u64,
}

impl Default for HashmapWorkload {
    fn default() -> Self {
        HashmapWorkload {
            buckets: 262_144,
            entries: 2_000_000,
            entry_bytes: 256,
            zipf_exponent: 1.28,
            insert_prob: 0.45,
            rehash_every: 60_000,
            rehash_scan_pages: 768,
            relocation_pages: 8_192,
            bucket_base_page: 0x20_0000,
        }
    }
}

impl HashmapWorkload {
    fn bucket_pages(&self) -> u64 {
        self.buckets.div_ceil(64)
    }

    fn entry_heap_base(&self) -> u64 {
        self.bucket_base_page + self.bucket_pages() + 4096
    }

    fn relocation_base(&self) -> u64 {
        let per_page = (crate::record::PAGE_SIZE / self.entry_bytes).max(1);
        self.entry_heap_base() + self.entries.div_ceil(per_page) + 65_536
    }

    /// Page and line of the bucket for `key` (multiplicative hash).
    fn bucket_loc(&self, key: u64) -> (u64, u64) {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let b = h % self.buckets;
        (self.bucket_base_page + b / 64, b % 64)
    }

    /// Page of entry `key` (rank-ordered heap: hot entries are compact).
    fn entry_page(&self, key: u64) -> u64 {
        let per_page = (crate::record::PAGE_SIZE / self.entry_bytes).max(1);
        self.entry_heap_base() + key / per_page
    }
}

impl Workload for HashmapWorkload {
    fn name(&self) -> &str {
        "hashmap"
    }

    fn generate(&self, n: usize, seed: u64) -> Trace {
        let zipf = Zipf::new(self.entries, self.zipf_exponent)
            .expect("workload parameters form a valid Zipf distribution");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Trace::with_capacity(n);
        let mut ops = 0usize;
        let mut rehash_cursor = 0u64;

        while t.len() < n {
            ops += 1;
            if self.rehash_every > 0 && ops.is_multiple_of(self.rehash_every) {
                // Incremental rehash: sequentially scan bucket pages and
                // relocate their entries into a cold target region — reads
                // of warm buckets plus write-once dirty pages that pollute
                // an LRU cache (and cost SSD write-backs on eviction).
                for i in 0..self.rehash_scan_pages {
                    if t.len() + 2 > n {
                        break;
                    }
                    let bucket_page =
                        self.bucket_base_page + (rehash_cursor + i) % self.bucket_pages();
                    t.push(TraceRecord::read(line_addr(bucket_page, i)));
                    let reloc_page =
                        self.relocation_base() + (rehash_cursor + i) % self.relocation_pages.max(1);
                    t.push(TraceRecord::write(line_addr(reloc_page, i)));
                }
                rehash_cursor = rehash_cursor.wrapping_add(self.rehash_scan_pages);
                continue;
            }
            let key = zipf.sample(&mut rng) - 1;
            let (bpage, bline) = self.bucket_loc(key);
            t.push(TraceRecord::read(line_addr(bpage, bline)));
            if t.len() >= n {
                break;
            }
            let epage = self.entry_page(key);
            if rng.gen::<f64>() < self.insert_prob {
                // Insert/update: write the entry, then update the bucket head.
                push_write(&mut t, &mut rng, epage);
                if t.len() < n {
                    t.push(TraceRecord::write(line_addr(bpage, bline)));
                }
            } else {
                push_read(&mut t, &mut rng, epage);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_heavy() {
        let t = HashmapWorkload::default().generate(50_000, 1);
        let wf = t.stats().write_fraction();
        assert!(wf > 0.25, "write fraction {wf} too low for hashmap");
    }

    #[test]
    fn buckets_and_entries_are_disjoint_regions() {
        let w = HashmapWorkload::default();
        assert!(w.entry_heap_base() > w.bucket_base_page + w.bucket_pages());
        let (bp, _) = w.bucket_loc(123);
        assert!(bp >= w.bucket_base_page && bp < w.bucket_base_page + w.bucket_pages());
        assert!(w.entry_page(0) >= w.entry_heap_base());
    }

    #[test]
    fn rehash_emits_sequential_scans_and_cold_writes() {
        let w = HashmapWorkload {
            rehash_every: 100,
            rehash_scan_pages: 32,
            ..Default::default()
        };
        let t = w.generate(5_000, 2);
        // Bucket-region *reads* must contain a run of >= 16 consecutive
        // pages (the scan), and the relocation region must receive writes.
        let bucket_reads: Vec<u64> = t
            .iter()
            .filter(|r| {
                let p = r.page().raw();
                !r.op.is_write()
                    && p >= w.bucket_base_page
                    && p < w.bucket_base_page + w.bucket_pages()
            })
            .map(|r| r.page().raw())
            .collect();
        let mut best_run = 0u64;
        let mut run = 0u64;
        for pair in bucket_reads.windows(2) {
            if pair[1] == pair[0] + 1 || pair[1] == pair[0] {
                run += 1;
                best_run = best_run.max(run);
            } else {
                run = 0;
            }
        }
        assert!(best_run >= 16, "no rehash scan found (best run {best_run})");
        let reloc_writes = t
            .iter()
            .filter(|r| r.op.is_write() && r.page().raw() >= w.relocation_base())
            .count();
        assert!(reloc_writes > 0, "rehash produced no relocation writes");
    }

    #[test]
    fn rehash_disabled_means_no_scans() {
        let w = HashmapWorkload {
            rehash_every: 0,
            ..Default::default()
        };
        let t = w.generate(3_000, 3);
        assert_eq!(t.len(), 3_000);
    }

    #[test]
    fn respects_request_budget_exactly() {
        for n in [1usize, 2, 3, 100, 1001] {
            let t = HashmapWorkload::default().generate(n, 4);
            assert_eq!(t.len(), n);
        }
    }
}
