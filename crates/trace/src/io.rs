//! Plain-text trace serialization.
//!
//! Format: one request per line, `R <hex paddr>` or `W <hex paddr>`, with
//! `#`-prefixed comment lines — compatible in spirit with the trace dumps of
//! the open-source collection tool the paper uses, so externally collected
//! traces can be fed to the simulator.

use crate::record::{Op, TraceRecord};
use crate::trace::Trace;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Error produced when parsing a text trace.
#[derive(Debug)]
pub enum ParseTraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that is neither a comment nor a valid record.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ParseTraceError::Malformed { line, text } => {
                write!(f, "malformed trace record at line {line}: {text:?}")
            }
        }
    }
}

impl Error for ParseTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseTraceError::Io(e) => Some(e),
            ParseTraceError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseTraceError {
    fn from(e: std::io::Error) -> Self {
        ParseTraceError::Io(e)
    }
}

/// Writes a trace in text form. A `&mut` reference may be passed for `w`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_text<W: Write>(trace: &Trace, w: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "# icgmm trace v1: <R|W> <hex paddr>")?;
    for r in trace {
        writeln!(w, "{} {:#x}", r.op, r.paddr)?;
    }
    w.flush()
}

/// Reads a text trace. A `&mut` reference may be passed for `r`.
///
/// # Errors
///
/// Returns [`ParseTraceError::Malformed`] on the first bad line, or
/// [`ParseTraceError::Io`] on reader failure.
pub fn read_text<R: Read>(r: R) -> Result<Trace, ParseTraceError> {
    let reader = BufReader::new(r);
    let mut trace = Trace::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let s = line.trim();
        if s.is_empty() || s.starts_with('#') {
            continue;
        }
        let malformed = || ParseTraceError::Malformed {
            line: i + 1,
            text: s.to_string(),
        };
        let (op_s, addr_s) = s.split_once(char::is_whitespace).ok_or_else(malformed)?;
        let op = match op_s {
            "R" | "r" => Op::Read,
            "W" | "w" => Op::Write,
            _ => return Err(malformed()),
        };
        let addr_s = addr_s.trim();
        let paddr = if let Some(hex) = addr_s
            .strip_prefix("0x")
            .or_else(|| addr_s.strip_prefix("0X"))
        {
            u64::from_str_radix(hex, 16).map_err(|_| malformed())?
        } else {
            addr_s.parse::<u64>().map_err(|_| malformed())?
        };
        trace.push(TraceRecord::new(op, paddr));
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::from_records(vec![
            TraceRecord::read(0x1000),
            TraceRecord::write(0x2040),
            TraceRecord::read(0xdead_beef),
        ])
    }

    #[test]
    fn round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_text(&t, &mut buf).unwrap();
        let back = read_text(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# header\n\nR 0x10\n  \nW 32\n";
        let t = read_text(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[0].paddr, 0x10);
        assert_eq!(t.records()[1].paddr, 32); // decimal accepted
        assert_eq!(t.records()[1].op, Op::Write);
    }

    #[test]
    fn malformed_line_is_reported_with_position() {
        let text = "R 0x10\nX 0x20\n";
        let err = read_text(text.as_bytes()).unwrap_err();
        match err {
            ParseTraceError::Malformed { line, text } => {
                assert_eq!(line, 2);
                assert!(text.contains('X'));
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn bad_address_is_malformed() {
        assert!(read_text("R zzz".as_bytes()).is_err());
        assert!(read_text("R 0xzz".as_bytes()).is_err());
        assert!(read_text("R".as_bytes()).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let err = read_text("Q 1".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "{msg}");
    }
}
