//! Basic memory-access trace record types.
//!
//! The trace-collection tool cited by the paper (Yang et al., USENIX ATC'23)
//! records `(read/write, physical address, access time)` tuples. We keep the
//! same information: the access time is implicit in the record's position in
//! the trace (the paper's Algorithm 1 derives its timestamps purely from
//! trace position, not wall-clock time).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Base-2 logarithm of the SSD page size (4 KiB), the minimum SSD access
/// granularity and therefore the DRAM-cache block size (paper §2.1).
pub const PAGE_SHIFT: u32 = 12;

/// SSD page size in bytes (4 KiB).
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// Host memory-access granularity in bytes (one cache line, paper §1: 64 B).
pub const HOST_ACCESS_BYTES: u64 = 64;

/// Direction of a memory request.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// A load from the expanded memory space.
    Read,
    /// A store to the expanded memory space.
    Write,
}

impl Op {
    /// Returns `true` for [`Op::Write`].
    ///
    /// ```
    /// use icgmm_trace::Op;
    /// assert!(Op::Write.is_write());
    /// assert!(!Op::Read.is_write());
    /// ```
    pub fn is_write(self) -> bool {
        matches!(self, Op::Write)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read => f.write_str("R"),
            Op::Write => f.write_str("W"),
        }
    }
}

/// Index of a 4 KiB page in the expanded (SSD-backed) memory space.
///
/// The paper consolidates 64 B host accesses into SSD pages by deriving a
/// page index from the physical address. (The paper prints `PI = PA << 12`,
/// which is a typographical slip — grouping addresses into 4 KiB pages
/// requires a *right* shift, which is what this type performs.)
///
/// ```
/// use icgmm_trace::PageIndex;
/// let pi = PageIndex::from_paddr(0x1234_5678);
/// assert_eq!(pi.raw(), 0x1234_5678 >> 12);
/// assert_eq!(pi.base_paddr(), (0x1234_5678 >> 12) << 12);
/// ```
#[derive(
    Copy, Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct PageIndex(u64);

impl PageIndex {
    /// Wraps a raw page number.
    pub fn new(raw: u64) -> Self {
        PageIndex(raw)
    }

    /// Derives the page index from a physical byte address.
    pub fn from_paddr(paddr: u64) -> Self {
        PageIndex(paddr >> PAGE_SHIFT)
    }

    /// The raw page number.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The physical address of the first byte of this page.
    pub fn base_paddr(self) -> u64 {
        self.0 << PAGE_SHIFT
    }
}

impl fmt::Display for PageIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg{:#x}", self.0)
    }
}

impl From<u64> for PageIndex {
    fn from(raw: u64) -> Self {
        PageIndex(raw)
    }
}

/// One host memory request observed at the CXL device.
///
/// ```
/// use icgmm_trace::{Op, TraceRecord};
/// let r = TraceRecord::new(Op::Read, 0x8000);
/// assert_eq!(r.page().raw(), 8);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Read or write.
    pub op: Op,
    /// Physical byte address in the expanded memory space.
    pub paddr: u64,
}

impl TraceRecord {
    /// Creates a record.
    pub fn new(op: Op, paddr: u64) -> Self {
        TraceRecord { op, paddr }
    }

    /// Convenience constructor for a read.
    pub fn read(paddr: u64) -> Self {
        TraceRecord::new(Op::Read, paddr)
    }

    /// Convenience constructor for a write.
    pub fn write(paddr: u64) -> Self {
        TraceRecord::new(Op::Write, paddr)
    }

    /// The 4 KiB page this request falls in.
    pub fn page(&self) -> PageIndex {
        PageIndex::from_paddr(self.paddr)
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:#x}", self.op, self.paddr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_index_from_paddr_shifts_right() {
        assert_eq!(PageIndex::from_paddr(0).raw(), 0);
        assert_eq!(PageIndex::from_paddr(4095).raw(), 0);
        assert_eq!(PageIndex::from_paddr(4096).raw(), 1);
        assert_eq!(PageIndex::from_paddr(u64::MAX).raw(), u64::MAX >> 12);
    }

    #[test]
    fn page_base_is_aligned() {
        let pi = PageIndex::from_paddr(0xdead_beef);
        assert_eq!(pi.base_paddr() % PAGE_SIZE, 0);
        assert!(pi.base_paddr() <= 0xdead_beef);
        assert!(0xdead_beef < pi.base_paddr() + PAGE_SIZE);
    }

    #[test]
    fn record_page_matches_manual_shift() {
        let r = TraceRecord::write(0x12_3456);
        assert_eq!(r.page().raw(), 0x12_3456 >> 12);
        assert!(r.op.is_write());
    }

    #[test]
    fn display_formats() {
        assert_eq!(TraceRecord::read(0x1000).to_string(), "R 0x1000");
        assert_eq!(TraceRecord::write(0x2a).to_string(), "W 0x2a");
        assert_eq!(PageIndex::new(16).to_string(), "pg0x10");
    }

    #[test]
    fn ordering_on_page_index() {
        assert!(PageIndex::new(1) < PageIndex::new(2));
        assert_eq!(PageIndex::from(7u64), PageIndex::new(7));
    }
}
