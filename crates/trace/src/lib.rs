//! # icgmm-trace
//!
//! Memory-access trace substrate for the ICGMM reproduction (Chen, Wang,
//! et al., *ICGMM: CXL-enabled Memory Expansion with Intelligent Caching
//! Using Gaussian Mixture Model*, DAC 2024).
//!
//! This crate provides everything the paper's pipeline needs *before* the
//! GMM sees data:
//!
//! * [`TraceRecord`]/[`Trace`] — the `(read/write, physical address)`
//!   request stream observed at the CXL device;
//! * [`synth`] — seven synthetic workload models standing in for the
//!   paper's trace benchmarks (`parsec`, `memtier`, `hashmap`, `heap`,
//!   `sysbench`, `dlrm`, `stream`);
//! * [`preprocess`] — warm-up trimming, page consolidation and the paper's
//!   Algorithm 1 timestamp transformation ([`TimestampTransformer`]);
//! * [`histogram`] — the spatial/temporal distribution views of Fig. 2;
//! * [`io`] — a plain-text trace format for interchange with external
//!   trace-collection tools.
//!
//! ## Example
//!
//! ```
//! use icgmm_trace::synth::{Workload, WorkloadKind};
//! use icgmm_trace::{extract_weighted_cells, trim, PreprocessConfig};
//!
//! // Generate a small parsec-like trace and prepare GMM training cells.
//! let workload = WorkloadKind::Parsec.default_workload();
//! let trace = workload.generate(10_000, 42);
//! let cfg = PreprocessConfig::default();
//! let kept = trim(&trace, &cfg);
//! let cells = extract_weighted_cells(kept, &cfg);
//! assert!(!cells.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod preprocess;
mod record;
mod trace;
mod zipf;

pub mod histogram;
pub mod io;
pub mod synth;

pub use preprocess::{
    extract_features, extract_weighted_cells, extract_weighted_cells_range, trim, PreprocessConfig,
    TimestampTransformer, WeightedSample,
};
pub use record::{Op, PageIndex, TraceRecord, HOST_ACCESS_BYTES, PAGE_SHIFT, PAGE_SIZE};
pub use trace::{Trace, TraceStats};
pub use zipf::{Zipf, ZipfError};
