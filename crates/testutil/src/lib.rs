//! Shared fixtures for the workspace's differential test suites.
//!
//! Every bit-identity suite in this repository — streaming vs speculative
//! batching (`crates/cache/tests/batch_equivalence.rs`), streaming vs
//! batched dataflow replay (`crates/hw/tests/dataflow_equivalence.rs`),
//! single-threaded vs sharded replay
//! (`crates/cache/tests/shard_equivalence.rs`,
//! `tests/shard_differential.rs`) and the real-engine integration tests
//! (`tests/batch_sim.rs`, `tests/dataflow_batch.rs`) — exercises the same
//! grid: Zipf-skewed traces over a conflict-heavy small cache × the
//! eviction policies × the admission policies × the score-source shapes.
//! These builders are that grid's single source of truth; suites differ
//! only in which replay engines they pit against each other.
//!
//! A dev-dependency-only crate: it never appears in a production
//! dependency graph (the dev-dependency cycle back into `icgmm-cache` is
//! the standard Cargo pattern for shared test support).

use icgmm::{GmmPolicyEngine, TrainedModel};
use icgmm_cache::{
    AdmissionPolicy, AlwaysAdmit, BeladyPolicy, CacheConfig, ConstantScore, EvictionPolicy,
    FifoPolicy, FnScore, GmmScorePolicy, LfuPolicy, LruPolicy, RandomPolicy, ScoreSource,
    ThresholdAdmit,
};
use icgmm_gmm::{Gaussian2, Gmm, Mat2, StandardScaler};
use icgmm_trace::{PreprocessConfig, TraceRecord, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The eviction-policy grid every differential suite sweeps.
pub const EVICTIONS: [&str; 6] = ["lru", "fifo", "lfu", "belady", "gmm-score", "random"];

/// [`EVICTIONS`] minus the policies whose victims are not reproducible
/// under set-partitioned replay (`random`) — the sharded suites' grid.
pub const SHARDABLE_EVICTIONS: [&str; 5] = ["lru", "fifo", "lfu", "belady", "gmm-score"];

/// The admission-policy grid.
pub const ADMISSIONS: [&str; 2] = ["always", "threshold"];

/// The score-source shapes.
pub const SCORES: [&str; 3] = ["none", "constant", "fn"];

/// The conflict-heavy small cache the equivalence suites run against:
/// 32 blocks, 4-way — small enough that Zipf traces conflict constantly,
/// the regime where speculation (and shard merging) is hard.
pub fn small_cfg() -> CacheConfig {
    CacheConfig {
        capacity_bytes: 32 * 4096,
        block_bytes: 4096,
        ways: 4,
    }
}

/// A Zipf-skewed read/write trace over a compact page space (small enough
/// that sets conflict constantly).
pub fn zipf_trace(seed: u64, n: usize, pages: u64, skew: f64, write_pct: u8) -> Vec<TraceRecord> {
    let zipf = Zipf::new(pages, skew).expect("valid zipf");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let page = zipf.sample(&mut rng) - 1;
            if rng.gen_range(0u8..100) < write_pct {
                TraceRecord::write(page << 12)
            } else {
                TraceRecord::read(page << 12)
            }
        })
        .collect()
}

/// A mixed random/strided conflict trace (the real-engine integration
/// suites' workload): enough re-access for hits, enough churn for
/// constant eviction pressure.
pub fn conflict_trace(n: usize, pages: u64, seed: u64) -> Vec<TraceRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let page = if i % 4 == 0 {
                rng.gen_range(0..pages)
            } else {
                (i as u64 * 13 + 7) % pages
            };
            if i % 11 == 0 {
                TraceRecord::write(page << 12)
            } else {
                TraceRecord::read(page << 12)
            }
        })
        .collect()
}

/// Builds the named eviction policy sized for `cfg`. Belady's oracle is
/// built from `records` — pass exactly the record sequence the policy
/// will replay (its positions are the sequence numbers the simulator
/// presents).
pub fn eviction_for(
    name: &str,
    cfg: CacheConfig,
    records: &[TraceRecord],
) -> Box<dyn EvictionPolicy + Send> {
    let (sets, ways) = (cfg.num_sets(), cfg.ways);
    match name {
        "lru" => Box::new(LruPolicy::new(sets, ways)),
        "fifo" => Box::new(FifoPolicy::new(sets, ways)),
        "lfu" => Box::new(LfuPolicy::new(sets, ways)),
        "belady" => Box::new(BeladyPolicy::from_records(records, sets, ways)),
        "gmm-score" => Box::new(GmmScorePolicy::new(sets, ways)),
        "random" => Box::new(RandomPolicy::new(0xDECADE)),
        other => panic!("unknown eviction {other}"),
    }
}

/// Builds the named admission policy (`threshold` admits on score ≥ 0.5,
/// which the `fn` score source straddles constantly).
pub fn admission_for(name: &str) -> Box<dyn AdmissionPolicy + Send> {
    match name {
        "always" => Box::new(AlwaysAdmit),
        "threshold" => Box::new(ThresholdAdmit::new(0.5)),
        other => panic!("unknown admission {other}"),
    }
}

/// Builds the named score source.
///
/// `"fn"` produces deterministic per-`(page, seq)` pseudo-random scores:
/// roughly half fall under the 0.5 admission threshold, so the threshold
/// policy bypasses constantly and speculation must keep recovering.
pub fn score_for(name: &str) -> Option<Box<dyn ScoreSource + Send>> {
    match name {
        "none" => None,
        "constant" => Some(Box::new(ConstantScore(0.75))),
        "fn" => Some(Box::new(FnScore::new(|page, seq| {
            let h = (page ^ 0x9E37_79B9)
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                .wrapping_add(seq);
            (h >> 32) as f64 / u32::MAX as f64
        }))),
        other => panic!("unknown score {other}"),
    }
}

/// A hand-built K-component mixture (no EM) so real-engine integration
/// tests are fast and deterministic.
pub fn hand_model(k: usize) -> TrainedModel {
    let mut comps = Vec::with_capacity(k);
    for i in 0..k {
        let t = i as f64 / k as f64;
        comps.push(
            Gaussian2::new(
                [t * 8.0 - 4.0, (t * std::f64::consts::TAU).cos() * 2.0],
                Mat2::new(0.3 + t, 0.05, 0.4 + t * 0.5),
            )
            .expect("valid component"),
        );
    }
    let gmm = Gmm::new(vec![1.0 / k as f64; k], comps).expect("valid mixture");
    let scaler = StandardScaler::fit(&[[0.0, 0.0], [4096.0, 512.0]], &[1.0, 1.0]);
    TrainedModel {
        scaler,
        gmm,
        threshold: -6.0,
    }
}

/// A real [`GmmPolicyEngine`] over [`hand_model`] (K ≥ 64 prefers the
/// batched replay path; `fixed` selects the FPGA-style fixed-point
/// datapath).
pub fn hand_engine(k: usize, fixed: bool) -> GmmPolicyEngine {
    let cfg = PreprocessConfig {
        len_window: 16,
        len_access_shot: 1_000,
        ..Default::default()
    };
    GmmPolicyEngine::new(&hand_model(k), &cfg, fixed).expect("engine builds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_cover_the_grids() {
        let cfg = small_cfg();
        let trace = zipf_trace(1, 200, 64, 0.9, 20);
        for e in EVICTIONS {
            assert_eq!(eviction_for(e, cfg, &trace).name(), e);
        }
        for a in ADMISSIONS {
            let _ = admission_for(a);
        }
        assert!(score_for("none").is_none());
        assert!(score_for("constant").is_some());
        assert!(score_for("fn").is_some());
        assert!(SHARDABLE_EVICTIONS.iter().all(|e| EVICTIONS.contains(e)));
    }

    #[test]
    fn traces_are_deterministic() {
        assert_eq!(
            zipf_trace(7, 300, 64, 0.9, 10),
            zipf_trace(7, 300, 64, 0.9, 10)
        );
        assert_eq!(conflict_trace(300, 96, 3), conflict_trace(300, 96, 3));
        assert_ne!(
            zipf_trace(7, 300, 64, 0.9, 10),
            zipf_trace(8, 300, 64, 0.9, 10)
        );
    }

    #[test]
    fn hand_engine_scores_and_prefers_batching_at_scale() {
        let mut e = hand_engine(64, false);
        use icgmm_cache::ScoreSource as _;
        assert!(e.prefers_batching());
        assert!(e.shardable());
        e.observe(&TraceRecord::read(0x5000));
        assert!(e.score_current().is_finite());
        assert!(!hand_engine(8, false).prefers_batching());
    }
}
