//! # icgmm-bench
//!
//! Harness support for regenerating every table and figure of the ICGMM
//! paper. The binaries in `src/bin/` print the paper's published values
//! next to this reproduction's measurements:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig2` | Fig. 2 — spatial/temporal access distributions |
//! | `fig6` | Fig. 6 — miss rates of LRU vs the three GMM strategies |
//! | `table1` | Table 1 — average SSD access time, LRU vs GMM |
//! | `table2` | Table 2 — resources & latency, LSTM vs GMM |
//! | `fig5_dataflow` | Fig. 5/§4.3 — dataflow overlap evidence |
//! | `ablation` | extension — threshold/K/shot/SSD/cache sweeps |
//!
//! Pass `--quick` to any binary for a reduced-size run (~200 k requests,
//! K = 64); default runs use the paper-scale presets (~1.2 M requests,
//! K = 256) and take minutes.

use icgmm::benchmarks::BenchmarkSpec;
use icgmm::IcgmmConfig;
use icgmm_gmm::EmConfig;

/// Harness scale selected on the command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale run (~1.2 M requests, K = 256).
    Full,
    /// Reduced run for smoke tests (~200 k requests, K = 64).
    Quick,
}

impl Scale {
    /// Parses process arguments (`--quick` selects [`Scale::Quick`]).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick" || a == "-q") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// The benchmark suite at this scale. `--requests N` overrides the
    /// per-benchmark request budget on either scale.
    pub fn suite(self) -> Vec<BenchmarkSpec> {
        let base = match self {
            Scale::Full => BenchmarkSpec::paper_suite(),
            Scale::Quick => BenchmarkSpec::quick_suite(),
        };
        match arg_value("--requests") {
            Some(n) => base
                .into_iter()
                .map(|mut s| {
                    s.requests = n as usize;
                    s
                })
                .collect(),
            None => base,
        }
    }

    /// System configuration for a spec at this scale (quick runs shrink K
    /// and the training-cell budget; `--k N` overrides K on either scale).
    pub fn config(self, spec: &BenchmarkSpec) -> IcgmmConfig {
        let base = spec.config();
        let mut cfg = match self {
            Scale::Full => base,
            Scale::Quick => IcgmmConfig {
                em: EmConfig {
                    k: 64,
                    max_iters: 30,
                    ..base.em
                },
                max_train_cells: 40_000,
                ..base
            },
        };
        if let Some(k) = arg_value("--k") {
            cfg.em.k = k as usize;
        }
        cfg
    }
}

/// Parses `--flag value` from the process arguments.
fn arg_value(flag: &str) -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Prints a section header in the style all binaries share.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_shrinks_k() {
        let spec = &BenchmarkSpec::quick_suite()[0];
        let full = Scale::Full.config(spec);
        let quick = Scale::Quick.config(spec);
        assert_eq!(full.em.k, 256);
        assert_eq!(quick.em.k, 64);
        assert!(quick.max_train_cells < full.max_train_cells);
        // The per-benchmark quantile survives scaling.
        assert_eq!(full.threshold.quantile, quick.threshold.quantile);
    }

    #[test]
    fn suites_have_seven_benchmarks() {
        assert_eq!(Scale::Full.suite().len(), 7);
        assert_eq!(Scale::Quick.suite().len(), 7);
    }
}
