//! CI perf-regression gate over the criterion shim's JSON-lines output.
//!
//! Reads a `BENCH_*.json` file (one JSON object per benchmark, written by
//! the shim when `CRITERION_JSON` is set) and fails unless the speculative
//! batched simulator is at least `--min-ratio` (default 2.0) times faster
//! than the streaming simulator *in the same run*. Comparing two
//! benchmarks of one run on one runner makes the gate a relative check,
//! immune to the heterogeneous-runner problem that absolute thresholds
//! have.
//!
//! Usage:
//!
//! ```text
//! perf_gate BENCH_sim.json \
//!     [--baseline sim_batch/streaming_k256_w4096] \
//!     [--candidate sim_batch/batched_k256_w4096] \
//!     [--min-ratio 2.0] \
//!     [--gate BASELINE,CANDIDATE,MIN_RATIO]...
//! ```
//!
//! `--gate` is repeatable: each occurrence adds one `baseline ≥ min_ratio
//! × candidate` check, so one invocation can gate several benchmark pairs
//! of the same run (e.g. the LRU scan at ≥ 2× *and* the gmm-score
//! eviction pairs at ≥ 2× / ≥ 1×). The `--baseline`/`--candidate`/
//! `--min-ratio` trio describes one more gate: the implicit default when
//! no `--gate` is given, or an additional explicit check when any of the
//! three is set alongside `--gate` (explicit flags are never silently
//! dropped). All gates are evaluated (the worst offender is not masked by
//! an earlier failure) and any failure fails the run.
//!
//! Exit codes: 0 all gates pass, 1 any gate failed or entries missing,
//! 2 usage error.

use std::process::ExitCode;

const DEFAULT_BASELINE: &str = "sim_batch/streaming_k256_w4096";
const DEFAULT_CANDIDATE: &str = "sim_batch/batched_k256_w4096";

/// One `baseline ≥ min_ratio × candidate` check.
struct Gate {
    baseline: String,
    candidate: String,
    min_ratio: f64,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut baseline = DEFAULT_BASELINE.to_string();
    let mut candidate = DEFAULT_CANDIDATE.to_string();
    let mut min_ratio = 2.0f64;
    let mut single_flags = false;
    let mut gates: Vec<Gate> = Vec::new();

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => match it.next() {
                Some(v) => {
                    baseline = v.clone();
                    single_flags = true;
                }
                None => return usage("--baseline needs a value"),
            },
            "--candidate" => match it.next() {
                Some(v) => {
                    candidate = v.clone();
                    single_flags = true;
                }
                None => return usage("--candidate needs a value"),
            },
            "--min-ratio" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => {
                    min_ratio = v;
                    single_flags = true;
                }
                None => return usage("--min-ratio needs a number"),
            },
            "--gate" => {
                let Some(spec) = it.next() else {
                    return usage("--gate needs BASELINE,CANDIDATE,MIN_RATIO");
                };
                let parts: Vec<&str> = spec.split(',').collect();
                let [b, c, r] = parts.as_slice() else {
                    return usage(&format!("malformed --gate {spec:?} (need 3 fields)"));
                };
                let Ok(r) = r.parse::<f64>() else {
                    return usage(&format!("malformed --gate ratio {r:?}"));
                };
                gates.push(Gate {
                    baseline: b.to_string(),
                    candidate: c.to_string(),
                    min_ratio: r,
                });
            }
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(other.to_string());
            }
            other => return usage(&format!("unexpected argument {other}")),
        }
    }
    let Some(path) = path else {
        return usage("missing JSON file path");
    };
    // The single-check flags form their own gate: by default when no
    // --gate was given, and as one more gate when they were explicitly
    // set alongside --gate (never silently dropped).
    if gates.is_empty() || single_flags {
        gates.insert(
            0,
            Gate {
                baseline,
                candidate,
                min_ratio,
            },
        );
    }

    let content = match std::fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("perf_gate: cannot read {path}: {e}");
            return ExitCode::from(1);
        }
    };

    let mut failed = false;
    for g in &gates {
        failed |= !check_gate(&content, &path, g);
    }
    if !failed {
        println!("perf_gate: PASS ({} gate(s))", gates.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("perf_gate: FAIL — batched path regressed below a gate");
        ExitCode::from(1)
    }
}

/// Evaluates one gate against the JSON-lines content; `true` on pass.
fn check_gate(content: &str, path: &str, gate: &Gate) -> bool {
    let base = median_ns(content, &gate.baseline);
    let cand = median_ns(content, &gate.candidate);
    let (Some(base), Some(cand)) = (base, cand) else {
        eprintln!(
            "perf_gate: missing entries in {path} (baseline {:?}: {}, candidate {:?}: {})",
            gate.baseline,
            base.map_or("absent".into(), |v| format!("{v} ns")),
            gate.candidate,
            cand.map_or("absent".into(), |v| format!("{v} ns")),
        );
        return false;
    };
    if cand <= 0.0 {
        eprintln!("perf_gate: candidate median {cand} ns is not positive");
        return false;
    }
    let ratio = base / cand;
    let verdict = if ratio >= gate.min_ratio {
        "ok"
    } else {
        "FAIL"
    };
    println!(
        "perf_gate: {} = {base:.0} ns, {} = {cand:.0} ns, speedup {ratio:.2}x (required >= {:.2}x) {verdict}",
        gate.baseline, gate.candidate, gate.min_ratio
    );
    ratio >= gate.min_ratio
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("perf_gate: {msg}");
    eprintln!(
        "usage: perf_gate <bench.json> [--baseline ID] [--candidate ID] [--min-ratio X] \
         [--gate BASELINE,CANDIDATE,RATIO]..."
    );
    ExitCode::from(2)
}

/// Extracts `median_ns` of the *last* record with the given id (the last
/// line wins if a file accumulated several runs).
fn median_ns(content: &str, id: &str) -> Option<f64> {
    let mut found = None;
    for line in content.lines() {
        let Some(lid) = field_str(line, "id") else {
            continue;
        };
        if lid == id {
            if let Some(v) = field_num(line, "median_ns") {
                found = Some(v);
            }
        }
    }
    found
}

/// Pulls a `"key":"value"` string field out of one JSON line. Handles the
/// escapes the criterion shim emits (`\"`, `\\`, `\uXXXX`).
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'u' => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Pulls a `"key":number` field out of one JSON line.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
