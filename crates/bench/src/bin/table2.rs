//! Regenerates **Table 2**: FPGA resource utilization and inference
//! latency, LSTM baseline vs GMM policy engine — plus measured software
//! wall-clock for both models as corroborating evidence (see also the
//! Criterion benches `gmm_inference` and `lstm_inference`).
//!
//! Usage: `cargo run -p icgmm-bench --release --bin table2 [--quick]`

use icgmm::report::{f, format_table};
use icgmm_bench::banner;
use icgmm_gmm::{EmConfig, EmTrainer};
use icgmm_hw::{table2, GmmEngineModel, GmmResourceModel};
use icgmm_lstm::{LstmArch, LstmCostModel, LstmNetwork};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    banner("Table 2 — resources & latency, LSTM vs GMM policy engine");

    // Modeled FPGA numbers.
    let gmm_res = GmmResourceModel::paper_k256().estimate();
    let gmm_lat = GmmEngineModel::paper_k256().latency_us();
    let lstm_cost = LstmCostModel::paper_calibrated().estimate(&LstmArch::paper_baseline());

    let rows = vec![
        vec![
            "LSTM (paper)".into(),
            table2::LSTM.bram_36k.to_string(),
            table2::LSTM.dsp.to_string(),
            table2::LSTM.lut.to_string(),
            table2::LSTM.ff.to_string(),
            format!("{:.1} ms", table2::LSTM_LATENCY_US / 1000.0),
        ],
        vec![
            "LSTM (our model)".into(),
            lstm_cost.bram_36k.to_string(),
            lstm_cost.dsp.to_string(),
            lstm_cost.lut.to_string(),
            lstm_cost.ff.to_string(),
            format!("{:.1} ms", lstm_cost.latency_us / 1000.0),
        ],
        vec![
            "GMM (paper)".into(),
            table2::GMM.bram_36k.to_string(),
            table2::GMM.dsp.to_string(),
            table2::GMM.lut.to_string(),
            table2::GMM.ff.to_string(),
            format!("{:.1} µs", table2::GMM_LATENCY_US),
        ],
        vec![
            "GMM (our model)".into(),
            gmm_res.bram_36k.to_string(),
            gmm_res.dsp.to_string(),
            gmm_res.lut.to_string(),
            gmm_res.ff.to_string(),
            format!("{:.1} µs", gmm_lat),
        ],
    ];
    println!(
        "{}",
        format_table(&["engine", "BRAM", "DSP", "LUT", "FF", "latency"], &rows)
    );
    let modeled_gain = lstm_cost.latency_us / gmm_lat;
    println!(
        "modeled latency gain: {:.0}x (paper: {:.0}x)",
        modeled_gain,
        table2::LSTM_LATENCY_US / table2::GMM_LATENCY_US
    );

    // Software wall-clock corroboration: one GMM score vs one LSTM forward.
    banner("software wall-clock cross-check (this machine)");
    let mut rng = StdRng::seed_from_u64(1);
    let xs: Vec<[f64; 2]> = (0..4_000)
        .map(|_| [rng.gen::<f64>() * 4.0 - 2.0, rng.gen::<f64>() * 4.0 - 2.0])
        .collect();
    let (gmm, _) = EmTrainer::new(EmConfig {
        k: 256,
        max_iters: 5,
        ..Default::default()
    })
    .expect("valid config")
    .fit(&xs, &[])
    .expect("training succeeds");

    let n = 2_000;
    let t0 = Instant::now();
    let mut acc = 0.0;
    for i in 0..n {
        acc += gmm.score(xs[i % xs.len()]);
    }
    let gmm_sw_us = t0.elapsed().as_secs_f64() * 1e6 / n as f64;

    let net = LstmNetwork::new(LstmArch::paper_baseline(), &mut rng);
    let seq: Vec<Vec<f32>> = (0..32).map(|t| vec![t as f32 * 0.01, 0.5]).collect();
    let m = 50;
    let t1 = Instant::now();
    let mut acc2 = 0.0f32;
    for _ in 0..m {
        acc2 += net.forward(&seq);
    }
    let lstm_sw_us = t1.elapsed().as_secs_f64() * 1e6 / f64::from(m);

    println!(
        "{}",
        format_table(
            &["engine", "software latency (µs)", "ratio"],
            &[
                vec!["GMM K=256 score".into(), f(gmm_sw_us, 2), "1x".into()],
                vec![
                    "LSTM 3x128 seq-32 forward".into(),
                    f(lstm_sw_us, 2),
                    format!("{:.0}x", lstm_sw_us / gmm_sw_us),
                ],
            ],
        )
    );
    println!("(sink values: {acc:.3} {acc2:.3})");
    println!("Expected shape: the GMM is orders of magnitude cheaper per decision in");
    println!("software too; on hardware the gap widens to >10,000x because the GMM");
    println!("pipelines its K Gaussians at II=1 while the LSTM serializes 32 timesteps.");
}
