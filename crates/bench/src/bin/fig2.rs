//! Regenerates **Fig. 2**: memory-access spatial distributions (left
//! panels) and temporal distributions (right panels) for dlrm, parsec and
//! sysbench — the observation that motivates a 2-D GMM.
//!
//! Prints the histogram series as text (bucket index, count) plus ASCII
//! sparklines, and the statistics the figure is arguing from: multimodal
//! spatial histograms and temporally uneven activity in the hot range.
//!
//! Usage: `cargo run -p icgmm-bench --release --bin fig2 [--quick]`

use icgmm::benchmarks::BenchmarkSpec;
use icgmm::report::format_table;
use icgmm_bench::{banner, Scale};
use icgmm_trace::histogram::{SpatialHistogram, TemporalHeatmap};
use icgmm_trace::synth::WorkloadKind;
use icgmm_trace::PreprocessConfig;

const SPATIAL_BUCKETS: usize = 60;
const HEAT_ROWS: usize = 16;
const HEAT_COLS: usize = 48;

fn sparkline(counts: &[u64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = counts.iter().copied().max().unwrap_or(0).max(1);
    counts
        .iter()
        .map(|&c| GLYPHS[((c * 7).div_ceil(max)) as usize % 8])
        .collect()
}

/// Restricts records to the page range carrying the central 98% of
/// accesses — Fig. 2 plots the populated address range, and a single
/// outlying background access would otherwise stretch the axis until the
/// clusters collapse into one bucket.
fn central_range(records: &[icgmm_trace::TraceRecord]) -> Vec<icgmm_trace::TraceRecord> {
    let mut pages: Vec<u64> = records.iter().map(|r| r.page().raw()).collect();
    pages.sort_unstable();
    let lo = pages[(pages.len() as f64 * 0.01) as usize];
    let hi = pages[((pages.len() as f64 * 0.99) as usize).min(pages.len() - 1)];
    records
        .iter()
        .filter(|r| (lo..=hi).contains(&r.page().raw()))
        .copied()
        .collect()
}

fn main() {
    let scale = Scale::from_args();
    banner("Fig. 2 — spatial (left) and temporal (right) access distributions");
    let kinds = [
        WorkloadKind::Dlrm,
        WorkloadKind::Parsec,
        WorkloadKind::Sysbench,
    ];
    let suite = scale.suite();
    let cfg = PreprocessConfig::default();

    let mut summary_rows = Vec::new();
    for kind in kinds {
        let spec: &BenchmarkSpec = suite
            .iter()
            .find(|s| s.kind == kind)
            .expect("kind in suite");
        let trace = spec.workload().generate(spec.requests, spec.seed);
        let records = central_range(icgmm_trace::trim(&trace, &cfg));
        let records = records.as_slice();

        let spatial = SpatialHistogram::from_records(records, SPATIAL_BUCKETS);
        let heat = TemporalHeatmap::from_records(records, &cfg, HEAT_ROWS, HEAT_COLS);

        println!("--- {kind} ---");
        println!("spatial histogram ({SPATIAL_BUCKETS} buckets over the touched page range):");
        println!("  {}", sparkline(&spatial.counts));
        println!(
            "  bucket,count series: {}",
            spatial
                .counts
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{i}:{c}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        println!("temporal heat map (rows = page buckets, cols = time):");
        for r in 0..heat.rows {
            let row: Vec<u64> = (0..heat.cols).map(|c| heat.at(r, c)).collect();
            println!("  {}", sparkline(&row));
        }
        println!();
        summary_rows.push(vec![
            kind.to_string(),
            spatial.mode_count().to_string(),
            format!("{:.2}", spatial.top_k_share(8)),
            format!("{:.2}", heat.max_significant_row_cv(0.02)),
        ]);
        eprintln!("[fig2] {kind} done");
    }
    println!(
        "{}",
        format_table(
            &[
                "benchmark",
                "spatial modes",
                "top-8-bucket share",
                "temporal CV (hot row)",
            ],
            &summary_rows,
        )
    );
    println!("Expected shape (paper Fig. 2): >=2 spatial modes per trace (a mixture");
    println!("of Gaussians fits), concentrated mass, and temporal CV >> 0 (access");
    println!("frequency within the hot range is uneven over time, so the GMM needs");
    println!("the timestamp feature).");
}
