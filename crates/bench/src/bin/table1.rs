//! Regenerates **Table 1**: average SSD access time (µs) under LRU vs the
//! best GMM strategy, on the paper's TLC latency constants (hit 1 µs, read
//! 75 µs, program 900 µs, GMM overlapped).
//!
//! Usage: `cargo run -p icgmm-bench --release --bin table1 [--quick]`

use icgmm::benchmarks::paper_numbers;
use icgmm::experiment::{best_gmm, find, run_benchmark_with};
use icgmm::report::{f, format_table};
use icgmm::PolicyMode;
use icgmm_bench::{banner, Scale};

fn main() {
    let scale = Scale::from_args();
    banner("Table 1 — average SSD access time (µs), LRU vs GMM");
    println!("scale: {scale:?} (pass --quick for a fast run)");

    let modes = PolicyMode::fig6_modes();
    let mut rows = Vec::new();
    for spec in scale.suite() {
        let results =
            run_benchmark_with(&spec, scale.config(&spec), &modes).expect("benchmark run failed");
        let name = spec.kind.to_string();
        let lru = find(&results, &name, PolicyMode::Lru).expect("lru present");
        // Paper presentation: pick the best GMM strategy per benchmark
        // (by miss rate, as in Fig. 6), report its latency.
        let best = best_gmm(&results, &name).expect("gmm modes present");
        let reduction = (1.0 - best.avg_us / lru.avg_us) * 100.0;
        let paper = paper_numbers(spec.kind);
        rows.push(vec![
            name.clone(),
            f(lru.avg_us, 2),
            f(best.avg_us, 2),
            f(reduction, 2),
            format!(
                "{} -> {} ({}%)",
                f(paper.lru_avg_us, 2),
                f(paper.gmm_avg_us, 2),
                f(paper.reduction_pct, 2)
            ),
        ]);
        eprintln!(
            "[table1] {name} done (miss-window batcher: {:.1}% of scores batched, {} divergences \
             = {} victim + {} class + {} bypass)",
            best.batched_score_fraction * 100.0,
            best.spec_divergences,
            best.spec_victim_divergences,
            best.spec_class_divergences,
            best.spec_admission_bypasses
        );
    }
    println!(
        "{}",
        format_table(
            &[
                "benchmark",
                "lru (µs)",
                "gmm (µs)",
                "reduction (%)",
                "paper"
            ],
            &rows,
        )
    );
    println!("Expected shape: double-digit percentage reductions on every row");
    println!("(paper: 16.23%-39.14%); hashmap/heap large via fewer dirty write-backs,");
    println!("stream/dlrm large in absolute µs via miss-rate cuts.");
}
