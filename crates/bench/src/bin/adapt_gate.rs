//! CI's static-vs-adaptive miss-rate scenario: runs the online-refit
//! experiment axis on the phase-rotating multi-tenant workload and
//! appends the four miss rates to `BENCH_adapt.json` in the criterion
//! shim's JSON-lines schema, so the existing `perf_gate` binary can gate
//! them as same-run relative pairs:
//!
//! * **drift** — tenants rotate their hot windows and the offline model
//!   is fit on the first third of the trace only, so it goes stale;
//!   `adapt/static_drift` vs `adapt/adaptive_drift` must show the refit
//!   loop repairing the damage (gated ≥ 1.05×);
//! * **stable** — rotation disabled, same prefix fit; adaptation has
//!   nothing to repair and must stay within noise of the static scorer
//!   (`adapt/static_stable` vs `adapt/adaptive_stable`, gated ≥ 0.90×).
//!
//! `median_ns` carries the **miss rate** (percent, scaled ×10⁶) rather
//! than a wall-clock time: `perf_gate` only ever forms the
//! baseline/candidate ratio, and the miss-rate ratio is exactly the
//! relative improvement the gate is after. Both runs share the trace,
//! the offline model and the runner, so the pair is as
//! heterogeneity-immune as the wall-clock gates.
//!
//! Usage: `adapt_gate [BENCH_adapt.json]` (default `BENCH_adapt.json`).

use std::fmt::Write as _;
use std::process::ExitCode;

use icgmm::experiment::{run_static_vs_adaptive, AdaptComparison};
use icgmm::{AdaptPlan, IcgmmConfig, PolicyMode};
use icgmm_cache::CacheConfig;
use icgmm_gmm::EmConfig;
use icgmm_trace::synth::{MultiTenantWorkload, Workload};
use icgmm_trace::PreprocessConfig;

const REQUESTS: usize = 60_000;

/// Serving-scale config: K = 64 rides the batched replay path, and the
/// 2048-block cache covers ~6 % of one pool's footprint — large enough
/// that decision quality (not raw capacity pressure) sets the miss rate.
fn cfg() -> IcgmmConfig {
    IcgmmConfig {
        cache: CacheConfig {
            capacity_bytes: 2_048 * 4096,
            block_bytes: 4096,
            ways: 8,
        },
        em: EmConfig {
            k: 64,
            max_iters: 15,
            ..Default::default()
        },
        preprocess: PreprocessConfig {
            len_window: 32,
            len_access_shot: 1_000,
            ..Default::default()
        },
        max_train_cells: 20_000,
        adapt: AdaptPlan::drifty(7),
        ..Default::default()
    }
}

/// The pooled multi-tenant workload rooted at `base_page`, popularity
/// rankings frozen (`phase_len = 0`): within one pool the distribution
/// is stationary, so all drift comes from *which* pool is live.
fn pool(base_page: u64, seed: u64) -> icgmm_trace::Trace {
    MultiTenantWorkload {
        tenants: 12,
        pages_per_tenant: 3_000,
        base_page,
        phase_len: 0,
        ..Default::default()
    }
    .generate(REQUESTS / 2, seed)
}

/// The drift scenario: halfway through, the served footprint migrates to
/// a disjoint page region (tenants churn on a shared device — the pool
/// the offline model was fit on drains away). The model is fit on the
/// first half only, so the static arm scores every post-migration page
/// as noise while the refit loop re-learns the new region.
fn drift_trace() -> icgmm_trace::Trace {
    let mut records = pool(1 << 20, 4242).into_records();
    records.extend(pool((1 << 20) + 50_000, 977).into_records());
    icgmm_trace::Trace::from_records(records)
}

/// The drift-free control: the same page region for the whole trace
/// (the second half re-seeds the generators, so the request *sequence*
/// is fresh but the feature distribution is not), fit on the same
/// first-half prefix. Anything adaptation loses here is pure
/// false-positive damage.
fn stable_trace() -> icgmm_trace::Trace {
    let mut records = pool(1 << 20, 4242).into_records();
    records.extend(pool(1 << 20, 977).into_records());
    icgmm_trace::Trace::from_records(records)
}

fn run_scenario(name: &str) -> Result<AdaptComparison, icgmm::IcgmmError> {
    let t = if name == "drift" {
        drift_trace()
    } else {
        stable_trace()
    };
    run_static_vs_adaptive(name, &t, cfg(), PolicyMode::GmmCachingEviction, t.len() / 2)
}

/// One criterion-shim JSON line carrying a miss rate as the gated
/// metric (see the module docs), plus human-facing context fields.
fn json_line(out: &mut String, id: &str, miss_pct: f64, swaps: u64) {
    writeln!(
        out,
        "{{\"id\":\"adapt/{id}\",\"median_ns\":{:.1},\"miss_pct\":{miss_pct:.4},\
         \"swaps\":{swaps},\"samples\":1,\"iters_per_sample\":1}}",
        miss_pct * 1e6,
    )
    .expect("writing to a String cannot fail");
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_adapt.json".into());

    let mut lines = String::new();
    for scenario in ["drift", "stable"] {
        let cmp = match run_scenario(scenario) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("adapt_gate: {scenario} scenario failed: {e}");
                return ExitCode::from(1);
            }
        };
        json_line(
            &mut lines,
            &format!("static_{scenario}"),
            cmp.static_run.miss_pct,
            cmp.static_run.adapt.swaps,
        );
        json_line(
            &mut lines,
            &format!("adaptive_{scenario}"),
            cmp.adaptive_run.miss_pct,
            cmp.adaptive_run.adapt.swaps,
        );
        println!(
            "adapt_gate: {scenario:<6} static {:.2}% -> adaptive {:.2}% miss \
             ({:+.2} pts, {} refits / {} checks / {} drifts)",
            cmp.static_run.miss_pct,
            cmp.adaptive_run.miss_pct,
            cmp.miss_improvement_pts(),
            cmp.adaptive_run.adapt.refits,
            cmp.adaptive_run.adapt.checks,
            cmp.adaptive_run.adapt.drifts,
        );
    }

    use std::io::Write as _;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(lines.as_bytes()))
    {
        Ok(()) => {
            println!("adapt_gate: appended 4 records to {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("adapt_gate: cannot write {path}: {e}");
            ExitCode::from(1)
        }
    }
}
