//! Regenerates **Fig. 6**: cache miss rates of the LRU baseline vs the
//! three GMM strategies (caching-only, eviction-only, caching-eviction)
//! across the seven benchmarks.
//!
//! Usage: `cargo run -p icgmm-bench --release --bin fig6 [--quick]`

use icgmm::benchmarks::{paper_best_strategy, paper_numbers};
use icgmm::experiment::{best_gmm, find, run_benchmark_with};
use icgmm::report::{f, format_table};
use icgmm::PolicyMode;
use icgmm_bench::{banner, Scale};

fn main() {
    let scale = Scale::from_args();
    banner("Fig. 6 — cache miss rate (%), LRU vs GMM strategies");
    println!("scale: {scale:?} (pass --quick for a fast run)");

    let modes = PolicyMode::fig6_modes();
    let mut rows = Vec::new();
    for spec in scale.suite() {
        let results =
            run_benchmark_with(&spec, scale.config(&spec), &modes).expect("benchmark run failed");
        let name = spec.kind.to_string();
        let get = |m: PolicyMode| find(&results, &name, m).expect("mode present").miss_pct;
        let best = best_gmm(&results, &name).expect("gmm modes present");
        let paper = paper_numbers(spec.kind);
        rows.push(vec![
            name.clone(),
            f(get(PolicyMode::Lru), 2),
            f(get(PolicyMode::GmmCachingOnly), 2),
            f(get(PolicyMode::GmmEvictionOnly), 2),
            f(get(PolicyMode::GmmCachingEviction), 2),
            format!("{} ({})", f(best.miss_pct, 2), best.mode),
            f(get(PolicyMode::Lru) - best.miss_pct, 2),
            format!(
                "{} -> {}",
                f(paper.lru_miss_pct, 2),
                f(paper.gmm_miss_pct, 2)
            ),
            paper_best_strategy(spec.kind).to_string(),
        ]);
        eprintln!(
            "[fig6] {name} done (miss-window batcher: {:.1}% of scores batched, {} divergences \
             = {} victim + {} class + {} bypass)",
            best.batched_score_fraction * 100.0,
            best.spec_divergences,
            best.spec_victim_divergences,
            best.spec_class_divergences,
            best.spec_admission_bypasses
        );
    }
    println!(
        "{}",
        format_table(
            &[
                "benchmark",
                "lru",
                "gmm-caching",
                "gmm-eviction",
                "gmm-both",
                "best (ours)",
                "abs. reduction",
                "paper lru->best",
                "paper best mode",
            ],
            &rows,
        )
    );
    println!("Expected shape: GMM best <= LRU on every row; the paper's absolute");
    println!("reductions span 0.32%-6.14% (largest on dlrm, smallest on parsec).");
}
