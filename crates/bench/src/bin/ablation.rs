//! Extension ablations for the design choices DESIGN.md calls out:
//!
//! 1. admission-threshold quantile sweep (the paper's unpublished knob),
//! 2. GMM component count K (accuracy/latency/area trade-off),
//! 3. `len_access_shot` (Algorithm 1 periodicity),
//! 4. SSD device class (TLC vs Z-NAND vs QLC),
//! 5. cache size sweep,
//! 6. fixed-point vs f64 inference,
//! 7. eviction hit-bonus (recency blended back into stored scores),
//! 8. speculation window W of the miss-window batcher (results invariant,
//!    wall-time tracks batching).
//!
//! One benchmark per ablation keeps the run minutes-scale; `--quick`
//! shrinks it further.
//!
//! Usage: `cargo run -p icgmm-bench --release --bin ablation [--quick]`

use icgmm::benchmarks::BenchmarkSpec;
use icgmm::report::{f, format_table};
use icgmm::{Icgmm, IcgmmConfig, PolicyMode};
use icgmm_bench::{banner, Scale};
use icgmm_cache::{CacheConfig, LatencyModel};
use icgmm_gmm::{EmConfig, ThresholdConfig};
use icgmm_trace::synth::WorkloadKind;
use icgmm_trace::{PreprocessConfig, Trace};

fn spec_for(scale: Scale, kind: WorkloadKind) -> (BenchmarkSpec, IcgmmConfig, Trace) {
    let spec = scale
        .suite()
        .into_iter()
        .find(|s| s.kind == kind)
        .expect("kind in suite");
    let cfg = scale.config(&spec);
    let trace = spec.workload().generate(spec.requests, spec.seed);
    (spec, cfg, trace)
}

fn run_pair(cfg: IcgmmConfig, trace: &Trace, mode: PolicyMode) -> (f64, f64) {
    let mut sys = Icgmm::new(cfg).expect("valid config");
    if mode.uses_gmm() {
        sys.fit(trace).expect("training succeeds");
    }
    let rep = sys.run(trace, mode).expect("run succeeds");
    (rep.miss_rate_pct(), rep.avg_us())
}

fn main() {
    let scale = Scale::from_args();

    // 1. Threshold quantile sweep on stream (the most filter-sensitive).
    banner("ablation 1 — admission quantile sweep (stream, gmm-both)");
    let (_, base_cfg, trace) = spec_for(scale, WorkloadKind::Stream);
    let mut rows = Vec::new();
    for q in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let cfg = IcgmmConfig {
            threshold: ThresholdConfig { quantile: q },
            ..base_cfg
        };
        let (miss, avg) = run_pair(cfg, &trace, PolicyMode::GmmCachingEviction);
        rows.push(vec![f(q, 2), f(miss, 2), f(avg, 2)]);
        eprintln!("[ablation] quantile {q} done");
    }
    let (lru_miss, lru_avg) = run_pair(base_cfg, &trace, PolicyMode::Lru);
    rows.push(vec!["lru".into(), f(lru_miss, 2), f(lru_avg, 2)]);
    println!("{}", format_table(&["quantile", "miss %", "avg µs"], &rows));

    // 2. K sweep on memtier.
    banner("ablation 2 — GMM component count K (memtier, gmm-both)");
    let (_, base_cfg, trace) = spec_for(scale, WorkloadKind::Memtier);
    let mut rows = Vec::new();
    for k in [16usize, 64, 256] {
        let cfg = IcgmmConfig {
            em: EmConfig { k, ..base_cfg.em },
            ..base_cfg
        };
        let (miss, avg) = run_pair(cfg, &trace, PolicyMode::GmmCachingEviction);
        let lat = icgmm_hw::GmmEngineModel::with_k(k).latency_us();
        rows.push(vec![k.to_string(), f(miss, 2), f(avg, 2), f(lat, 2)]);
        eprintln!("[ablation] K={k} done");
    }
    println!(
        "{}",
        format_table(&["K", "miss %", "avg µs", "engine latency µs"], &rows)
    );

    // 3. Access-shot length (Algorithm 1 periodicity) on parsec.
    banner("ablation 3 — len_access_shot (parsec, gmm-eviction)");
    let (_, base_cfg, trace) = spec_for(scale, WorkloadKind::Parsec);
    let mut rows = Vec::new();
    for shot in [1_000u32, 10_000, 100_000] {
        let cfg = IcgmmConfig {
            preprocess: PreprocessConfig {
                len_access_shot: shot,
                ..base_cfg.preprocess
            },
            ..base_cfg
        };
        let (miss, avg) = run_pair(cfg, &trace, PolicyMode::GmmEvictionOnly);
        rows.push(vec![shot.to_string(), f(miss, 2), f(avg, 2)]);
        eprintln!("[ablation] shot {shot} done");
    }
    println!(
        "{}",
        format_table(&["len_access_shot", "miss %", "avg µs"], &rows)
    );

    // 4. SSD device class on hashmap (write-back sensitive).
    banner("ablation 4 — SSD device class (hashmap, lru vs gmm-both)");
    let (_, base_cfg, trace) = spec_for(scale, WorkloadKind::Hashmap);
    let mut rows = Vec::new();
    for (name, lat) in [
        ("z-nand 10/100", LatencyModel::low_latency_ssd()),
        ("tlc 75/900", LatencyModel::paper_tlc()),
        ("qlc 150/2200", LatencyModel::qlc_ssd()),
    ] {
        let cfg = IcgmmConfig {
            latency: lat,
            ..base_cfg
        };
        let (_, lru) = run_pair(cfg, &trace, PolicyMode::Lru);
        let (_, gmm) = run_pair(cfg, &trace, PolicyMode::GmmCachingEviction);
        rows.push(vec![
            name.into(),
            f(lru, 2),
            f(gmm, 2),
            f((1.0 - gmm / lru) * 100.0, 2),
        ]);
        eprintln!("[ablation] ssd {name} done");
    }
    println!(
        "{}",
        format_table(
            &["device", "lru avg µs", "gmm avg µs", "reduction %"],
            &rows
        )
    );

    // 5. Cache size sweep on dlrm.
    banner("ablation 5 — cache size (dlrm, lru vs gmm-both)");
    let (_, base_cfg, trace) = spec_for(scale, WorkloadKind::Dlrm);
    let mut rows = Vec::new();
    for mib in [16u64, 64, 256] {
        let cfg = IcgmmConfig {
            cache: CacheConfig {
                capacity_bytes: mib * 1024 * 1024,
                ..base_cfg.cache
            },
            ..base_cfg
        };
        let (lru_miss, _) = run_pair(cfg, &trace, PolicyMode::Lru);
        let (gmm_miss, _) = run_pair(cfg, &trace, PolicyMode::GmmCachingEviction);
        rows.push(vec![format!("{mib} MiB"), f(lru_miss, 2), f(gmm_miss, 2)]);
        eprintln!("[ablation] cache {mib} MiB done");
    }
    println!(
        "{}",
        format_table(&["cache", "lru miss %", "gmm miss %"], &rows)
    );

    // 6. Fixed-point vs f64 inference on sysbench.
    banner("ablation 6 — fixed-point (FPGA) vs f64 inference (sysbench)");
    let (_, base_cfg, trace) = spec_for(scale, WorkloadKind::Sysbench);
    let (f64_miss, f64_avg) = run_pair(base_cfg, &trace, PolicyMode::GmmCachingEviction);
    let fx_cfg = IcgmmConfig {
        fixed_point_inference: true,
        ..base_cfg
    };
    let (fx_miss, fx_avg) = run_pair(fx_cfg, &trace, PolicyMode::GmmCachingEviction);
    println!(
        "{}",
        format_table(
            &["datapath", "miss %", "avg µs"],
            &[
                vec!["f64".into(), f(f64_miss, 2), f(f64_avg, 2)],
                vec!["fixed Q39.24".into(), f(fx_miss, 2), f(fx_avg, 2)],
            ],
        )
    );
    println!("Expected: quantization changes policy decisions marginally (<0.5% miss).");

    // 7. Eviction hit-bonus: blend recency back into the stored score.
    banner("ablation 7 — eviction hit-bonus (dlrm, gmm-eviction)");
    let (_, base_cfg, trace) = spec_for(scale, WorkloadKind::Dlrm);
    let mut rows = Vec::new();
    for bonus in [0.0, 0.05, 0.25, 1.0] {
        let cfg = IcgmmConfig {
            eviction_hit_bonus: bonus,
            ..base_cfg
        };
        let (miss, avg) = run_pair(cfg, &trace, PolicyMode::GmmEvictionOnly);
        rows.push(vec![f(bonus, 2), f(miss, 2), f(avg, 2)]);
        eprintln!("[ablation] hit-bonus {bonus} done");
    }
    println!(
        "{}",
        format_table(&["hit bonus", "miss %", "avg µs"], &rows)
    );
    println!("bonus = 0 is the paper's stored-score design; positive values test");
    println!("whether mixing recency back in helps (it should matter little when");
    println!("the GMM already separates hot from cold).");

    // 8. Speculation window W of the miss-window batcher: the simulated
    //    metrics must be invariant (the batcher is bit-identical to
    //    streaming at any W) while the replay wall-time tracks how much of
    //    the scoring rides the batched kernel.
    banner("ablation 8 — speculation window W (memtier, gmm-both)");
    let (_, base_cfg, trace) = spec_for(scale, WorkloadKind::Memtier);
    let mut sys = Icgmm::new(base_cfg).expect("valid config");
    sys.fit(&trace).expect("training succeeds");
    let mut rows = Vec::new();
    for w in [1usize, 16, 256, 4096] {
        let mut cfg = base_cfg;
        cfg.sim_window = w;
        let sys_w = Icgmm::new(cfg).expect("valid config");
        let mut sys_w = sys_w;
        sys_w.set_model(sys.model().expect("fitted").clone());
        let t0 = std::time::Instant::now();
        let rep = sys_w
            .run(&trace, PolicyMode::GmmCachingEviction)
            .expect("run succeeds");
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let spec = rep.spec.expect("gmm mode speculates");
        rows.push(vec![
            w.to_string(),
            f(rep.miss_rate_pct(), 4),
            f(wall_ms, 1),
            f(spec.batched_fraction() * 100.0, 1),
            spec.victim_divergences.to_string(),
            spec.class_divergences().to_string(),
            spec.admission_divergences.to_string(),
            spec.run_splits.to_string(),
        ]);
        eprintln!("[ablation] W={w} done");
    }
    println!(
        "{}",
        format_table(
            &[
                "W",
                "miss % (invariant)",
                "replay ms",
                "batched %",
                "victim div",
                "class div",
                "bypass div",
                "run splits"
            ],
            &rows
        )
    );
    println!("victim divergences should be ~0: the shadow predicts victims with the");
    println!("eviction policy's own model (stored scores for gmm-both), so only");
    println!("phantom-poisoned sets can still mispredict; bypass divergences track");
    println!("the admission filter and are tolerated without cutting the window.");
    println!("miss % must be identical on every row — the speculative batcher is");
    println!("bit-identical to streaming replay; only the wall-time may move.");
}
