//! Evidence for the **Fig. 5 / §4.3 dataflow architecture claims**: GMM
//! inference fully overlaps SSD accesses, trace prefetch hides HBM loads,
//! and the free-running policy engine never blocks the cache engine.
//!
//! Runs the cycle-approximate dataflow model on one miss-heavy benchmark
//! with overlap on and off, and reports per-module busy time, FIFO stalls
//! and the latency the overlap buys back — plus the host-replay
//! speculation telemetry (batched score fraction, divergences, run
//! splits), so dataflow runs are diagnosable exactly like analytic runs.
//!
//! Usage: `cargo run -p icgmm-bench --release --bin fig5_dataflow [--quick]`

use icgmm::report::{f, format_table};
use icgmm::{Icgmm, PolicyMode};
use icgmm_bench::{banner, Scale};
use icgmm_hw::DataflowConfig;
use icgmm_trace::synth::WorkloadKind;

fn main() {
    let scale = Scale::from_args();
    banner("Fig. 5 — dataflow architecture: overlap & utilization");

    let spec = scale
        .suite()
        .into_iter()
        .find(|s| s.kind == WorkloadKind::Stream)
        .expect("stream in suite");
    let trace = spec.workload().generate(spec.requests, spec.seed);
    let mut sys = Icgmm::new(scale.config(&spec)).expect("valid config");
    sys.fit(&trace).expect("training succeeds");
    eprintln!("[fig5] trained");

    let run = |overlap: bool| {
        sys.run_dataflow(
            &trace,
            PolicyMode::GmmCachingEviction,
            &DataflowConfig {
                overlap_policy_with_ssd: overlap,
                ..Default::default()
            },
        )
        .expect("dataflow run succeeds")
    };
    let with = run(true);
    eprintln!("[fig5] overlapped run done");
    let without = run(false);
    eprintln!("[fig5] sequential run done");

    let rows = vec![
        vec![
            "avg request latency (µs)".into(),
            f(with.avg_request_us, 3),
            f(without.avg_request_us, 3),
        ],
        vec![
            "makespan (s)".into(),
            f(with.makespan_us / 1e6, 3),
            f(without.makespan_us / 1e6, 3),
        ],
        vec![
            "GMM busy (s)".into(),
            f(with.gmm_busy_us / 1e6, 3),
            f(without.gmm_busy_us / 1e6, 3),
        ],
        vec![
            "SSD busy (s)".into(),
            f(with.ssd.busy_us / 1e6, 3),
            f(without.ssd.busy_us / 1e6, 3),
        ],
        vec![
            "SSD utilization".into(),
            f(with.ssd_utilization(), 3),
            f(without.ssd_utilization(), 3),
        ],
        vec![
            "overlap saved (s)".into(),
            f(with.overlap_saved_us / 1e6, 3),
            f(without.overlap_saved_us / 1e6, 3),
        ],
        vec![
            "loader stalls".into(),
            with.loader_stalls.to_string(),
            without.loader_stalls.to_string(),
        ],
    ];
    println!(
        "{}",
        format_table(&["metric", "dataflow (overlap)", "sequential"], &rows)
    );

    // Host-replay speculation telemetry: the modeled timing above is
    // bit-identical between the streaming and batched replay engines, so
    // these columns are pure host-side diagnostics (`None` would mean the
    // engine streamed — small K below the `prefers_batching` floor).
    let spec_cell = |r: &icgmm_hw::DataflowReport,
                     get: &dyn Fn(&icgmm_cache::SpecStats) -> String| {
        r.spec.as_ref().map_or_else(|| "streamed".into(), get)
    };
    let spec_row = |label: &str, get: &dyn Fn(&icgmm_cache::SpecStats) -> String| {
        vec![
            label.to_string(),
            spec_cell(&with, get),
            spec_cell(&without, get),
        ]
    };
    let spec_rows = vec![
        spec_row("batched score fraction (%)", &|s| {
            f(s.batched_fraction() * 100.0, 1)
        }),
        spec_row("batch calls", &|s| s.batch_calls.to_string()),
        spec_row("dense windows", &|s| s.dense_windows.to_string()),
        spec_row("run splits", &|s| s.run_splits.to_string()),
        spec_row("divergences (total)", &|s| s.divergences().to_string()),
        spec_row("  victim", &|s| s.victim_divergences.to_string()),
        spec_row("  class (hit/miss)", &|s| s.class_divergences().to_string()),
        spec_row("  admission bypass", &|s| {
            s.admission_divergences.to_string()
        }),
        spec_row("streamed records", &|s| s.streamed_records.to_string()),
    ];
    println!(
        "{}",
        format_table(
            &["host replay telemetry", "dataflow (overlap)", "sequential"],
            &spec_rows
        )
    );
    let gain = (without.avg_request_us - with.avg_request_us) / without.avg_request_us * 100.0;
    println!("overlap removes {gain:.2}% of average latency on this miss-heavy trace;");
    println!("per miss it hides the full 3 µs GMM inference behind the >=75 µs SSD access,");
    println!("which is the paper's justification for the free-running-kernel design.");
}
