//! Criterion bench: cycle-approximate dataflow replay, streaming vs the
//! speculative miss-window batcher under the timing model — the tracked
//! pair behind CI's dataflow perf gate (`perf_gate` requires batched
//! ≥ 2× streaming at K = 256, W = 4096, same runner, same run).
//!
//! Mirrors the `sim_batch` workloads: an 8 k-request all-miss scan (every
//! request triggers a policy-engine inference, isolating exactly what the
//! batcher accelerates) and a Zipf(0.9) interleave (the mixed regime).
//! The modeled `DataflowReport` is bit-identical between the two replay
//! engines (property-enforced in `icgmm-hw`); only the host wall-clock
//! measured here differs — which is the point: the dataflow model was the
//! last streaming-only hot loop in the repo.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use icgmm::{GmmPolicyEngine, TrainedModel};
use icgmm_cache::{CacheConfig, LruPolicy, ScoreSource, SpecParams, ThresholdAdmit};
use icgmm_gmm::{Gaussian2, Gmm, Mat2, StandardScaler};
use icgmm_hw::{
    run_dataflow_batched_with_warmup, run_dataflow_streaming_with_warmup, DataflowConfig,
};
use icgmm_trace::{PreprocessConfig, TraceRecord, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const K: usize = 256;
const WINDOW: usize = 4096;
const REQUESTS: usize = 8192;

fn build_model(k: usize) -> TrainedModel {
    let comps: Vec<Gaussian2> = (0..k)
        .map(|i| {
            let t = i as f64 / k as f64;
            Gaussian2::new(
                [t * 10.0 - 5.0, (t * std::f64::consts::TAU).sin()],
                Mat2::new(0.05 + t * 0.1, 0.01, 0.08),
            )
            .expect("valid component")
        })
        .collect();
    TrainedModel {
        scaler: StandardScaler::fit(&[[0.0, 0.0], [REQUESTS as f64, 256.0]], &[1.0, 1.0]),
        gmm: Gmm::new(vec![1.0 / k as f64; k], comps).expect("valid mixture"),
        threshold: f64::NEG_INFINITY, // admit everything: no bypass noise
    }
}

fn engine(k: usize) -> GmmPolicyEngine {
    let pre = PreprocessConfig {
        len_window: 32,
        len_access_shot: 10_000,
        ..Default::default()
    };
    GmmPolicyEngine::new(&build_model(k), &pre, false).expect("engine builds")
}

fn cache_cfg() -> CacheConfig {
    // 512 blocks / 8-way: small enough that per-iteration construction is
    // noise, large enough for realistic set pressure.
    CacheConfig {
        capacity_bytes: 512 * 4096,
        block_bytes: 4096,
        ways: 8,
    }
}

/// Sequential scan: 8 k distinct pages, 100 % miss — the pure miss-window.
fn scan_trace() -> Vec<TraceRecord> {
    (0..REQUESTS as u64)
        .map(|p| TraceRecord::read(p << 12))
        .collect()
}

/// Zipf-skewed reuse: realistic hit/miss interleaving.
fn zipf_trace() -> Vec<TraceRecord> {
    let zipf = Zipf::new(4096, 0.9).expect("valid zipf");
    let mut rng = StdRng::seed_from_u64(1234);
    (0..REQUESTS)
        .map(|_| TraceRecord::read((zipf.sample(&mut rng) - 1) << 12))
        .collect()
}

fn bench_dataflow(c: &mut Criterion) {
    let eng = engine(K);
    let scan = scan_trace();
    let zipf = zipf_trace();
    let cfg = cache_cfg();
    let df_cfg = DataflowConfig::default();

    let mut group = c.benchmark_group("dataflow");
    group.sample_size(12);
    group.throughput(Throughput::Elements(REQUESTS as u64));

    group.bench_function("streaming_scan_k256", |b| {
        let mut e = eng.clone();
        b.iter(|| {
            e.reset();
            let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
            let mut adm = ThresholdAdmit::new(f64::NEG_INFINITY);
            black_box(
                run_dataflow_streaming_with_warmup(
                    &[],
                    black_box(&scan),
                    cfg,
                    &mut adm,
                    &mut lru,
                    Some(&mut e as &mut dyn ScoreSource),
                    &df_cfg,
                )
                .expect("valid geometry"),
            )
        })
    });

    group.bench_function("batched_scan_k256_w4096", |b| {
        let mut e = eng.clone();
        b.iter(|| {
            e.reset();
            let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
            let mut adm = ThresholdAdmit::new(f64::NEG_INFINITY);
            black_box(
                run_dataflow_batched_with_warmup(
                    &[],
                    black_box(&scan),
                    cfg,
                    &mut adm,
                    &mut lru,
                    Some(&mut e as &mut dyn ScoreSource),
                    &df_cfg,
                    SpecParams::with_window(WINDOW),
                )
                .expect("valid geometry"),
            )
        })
    });

    group.bench_function("streaming_zipf_k256", |b| {
        let mut e = eng.clone();
        b.iter(|| {
            e.reset();
            let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
            let mut adm = ThresholdAdmit::new(f64::NEG_INFINITY);
            black_box(
                run_dataflow_streaming_with_warmup(
                    &[],
                    black_box(&zipf),
                    cfg,
                    &mut adm,
                    &mut lru,
                    Some(&mut e as &mut dyn ScoreSource),
                    &df_cfg,
                )
                .expect("valid geometry"),
            )
        })
    });

    group.bench_function("batched_zipf_k256_w4096", |b| {
        let mut e = eng.clone();
        b.iter(|| {
            e.reset();
            let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
            let mut adm = ThresholdAdmit::new(f64::NEG_INFINITY);
            black_box(
                run_dataflow_batched_with_warmup(
                    &[],
                    black_box(&zipf),
                    cfg,
                    &mut adm,
                    &mut lru,
                    Some(&mut e as &mut dyn ScoreSource),
                    &df_cfg,
                    SpecParams::with_window(WINDOW),
                )
                .expect("valid geometry"),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_dataflow);
criterion_main!(benches);
