//! Criterion bench: the online-adaptation loop — the numbers behind
//! `BENCH_adapt.json` and CI's adaptation gates.
//!
//! Two scenario families at the serving scale K = 64:
//!
//! * the refit kernel in isolation: one incremental E/M pass over a
//!   reservoir-sized batch (`refit_incremental_k64`) against a cold
//!   from-scratch EM fit of the same batch (`fit_cold_k64`) — the cost a
//!   drift repair actually pays vs the cost it avoids;
//! * full replay overhead: the multi-tenant trace through the static
//!   engine (`replay_static_k64`) vs the same trace through an armed
//!   adaptive wrapper whose trigger is held off
//!   (`replay_heldoff_k64`) — buffering, position bookkeeping and drift
//!   checks with zero refits, i.e. the pure tax of arming the loop.
//!
//! CI gates the replay pair (held-off adaptation must stay within noise
//! of the static path) and archives the refit pair for trend tracking;
//! the miss-rate gates ride the `adapt_gate` binary, which appends its
//! own records to the same JSON artifact.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use icgmm::{AdaptPlan, Icgmm, IcgmmConfig, PolicyMode};
use icgmm_cache::CacheConfig;
use icgmm_gmm::{EmConfig, EmTrainer, IncrementalEm, Vec2};
use icgmm_trace::synth::{MultiTenantWorkload, Workload};
use icgmm_trace::PreprocessConfig;
use std::hint::black_box;

const K: usize = 64;
const REQUESTS: usize = 20_000;
const BATCH: usize = 2_048;

fn em_cfg() -> EmConfig {
    EmConfig {
        k: K,
        max_iters: 15,
        ..Default::default()
    }
}

/// A reservoir-sized feature batch shaped like the scaled `(page, time)`
/// plane: a few popularity clusters drifting along the time axis.
fn feature_batch(seed: u64) -> Vec<Vec2> {
    let mut state = seed | 1;
    let mut unit = move || {
        // splitmix-style step, mapped to [0, 1).
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..BATCH)
        .map(|i| {
            let cluster = (i % 5) as f64;
            [
                cluster - 2.0 + 0.3 * (unit() - 0.5),
                i as f64 / BATCH as f64 * 2.0 - 1.0 + 0.2 * (unit() - 0.5),
            ]
        })
        .collect()
}

fn replay_cfg() -> IcgmmConfig {
    IcgmmConfig {
        cache: CacheConfig {
            capacity_bytes: 512 * 4096,
            block_bytes: 4096,
            ways: 8,
        },
        em: em_cfg(),
        preprocess: PreprocessConfig {
            len_window: 32,
            len_access_shot: 1_000,
            ..Default::default()
        },
        max_train_cells: 20_000,
        ..Default::default()
    }
}

fn tenant_trace() -> icgmm_trace::Trace {
    MultiTenantWorkload {
        tenants: 12,
        pages_per_tenant: 3_000,
        phase_len: 1_500,
        ..Default::default()
    }
    .generate(REQUESTS, 4242)
}

fn bench_adapt(c: &mut Criterion) {
    let xs = feature_batch(7);
    let trainer = EmTrainer::new(em_cfg()).expect("valid config");
    let (gmm, _) = trainer.fit(&xs, &[]).expect("baseline fit");
    let incremental = IncrementalEm::new(&gmm, em_cfg(), 0.6).expect("valid state");

    let trace = tenant_trace();
    let mut static_sys = Icgmm::new(replay_cfg()).expect("valid config");
    static_sys.fit(&trace).expect("trains");
    let model = static_sys.model().expect("fitted").clone();
    let mut heldoff_cfg = replay_cfg();
    heldoff_cfg.adapt = AdaptPlan {
        drift_drop: f64::INFINITY,
        check_interval: 2_048,
        ..AdaptPlan::drifty(9)
    };
    let mut heldoff_sys = Icgmm::new(heldoff_cfg).expect("valid config");
    heldoff_sys.set_model(model);

    let mut group = c.benchmark_group("adapt");
    group.sample_size(12);

    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("refit_incremental_k64", |b| {
        b.iter(|| {
            let mut t = incremental.clone();
            black_box(t.refit(black_box(&xs), &[]).expect("refit"))
        })
    });
    group.bench_function("fit_cold_k64", |b| {
        b.iter(|| black_box(trainer.fit(black_box(&xs), &[]).expect("fit")))
    });

    group.throughput(Throughput::Elements(REQUESTS as u64));
    group.bench_function("replay_static_k64", |b| {
        b.iter(|| {
            black_box(
                static_sys
                    .run(black_box(&trace), PolicyMode::GmmCachingEviction)
                    .expect("replays"),
            )
        })
    });
    group.bench_function("replay_heldoff_k64", |b| {
        b.iter(|| {
            black_box(
                heldoff_sys
                    .run(black_box(&trace), PolicyMode::GmmCachingEviction)
                    .expect("replays"),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_adapt);
criterion_main!(benches);
