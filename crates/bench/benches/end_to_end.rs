//! Criterion bench: end-to-end fit+run pipeline on a reduced workload
//! (regression guard for total harness cost), plus the streaming-vs-
//! windowed policy-engine scoring comparison on a realistic miss window.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use icgmm::{Icgmm, IcgmmConfig, PolicyMode};
use icgmm_cache::ScoreSource;
use icgmm_gmm::EmConfig;
use icgmm_trace::synth::WorkloadKind;
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let trace = WorkloadKind::Memtier
        .default_workload()
        .generate(100_000, 11);
    let cfg = IcgmmConfig {
        em: EmConfig {
            k: 32,
            max_iters: 15,
            ..Default::default()
        },
        max_train_cells: 30_000,
        ..Default::default()
    };

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("fit_memtier_100k_k32", |b| {
        b.iter(|| {
            let mut sys = Icgmm::new(cfg).expect("valid config");
            black_box(sys.fit(black_box(&trace)).expect("fit"));
        })
    });

    let mut sys = Icgmm::new(cfg).expect("valid config");
    sys.fit(&trace).expect("fit");
    group.bench_function("run_gmm_both_memtier_100k", |b| {
        b.iter(|| black_box(sys.run(black_box(&trace), PolicyMode::GmmCachingEviction)))
    });
    group.bench_function("run_lru_memtier_100k", |b| {
        b.iter(|| black_box(sys.run(black_box(&trace), PolicyMode::Lru)))
    });
    group.finish();

    // Streaming vs windowed policy-engine scoring over one miss window —
    // the per-miss cost the GMM modes pay inside `run`.
    let window = &trace.records()[..8_192];
    let mut scores = vec![0.0; window.len()];
    let mut scoring = c.benchmark_group("policy_engine_scoring");
    scoring.throughput(Throughput::Elements(window.len() as u64));
    scoring.bench_function("streaming_8k_window", |b| {
        let mut engine = sys.policy_engine().expect("fitted");
        b.iter(|| {
            engine.reset();
            for r in window {
                engine.observe(black_box(r));
                black_box(engine.score_current());
            }
        })
    });
    scoring.bench_function("batched_8k_window", |b| {
        let mut engine = sys.policy_engine().expect("fitted");
        b.iter(|| {
            engine.reset();
            engine.score_window(black_box(window), black_box(&mut scores));
        })
    });
    scoring.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
