//! Criterion bench: end-to-end fit+run pipeline on a reduced workload
//! (regression guard for total harness cost).

use criterion::{criterion_group, criterion_main, Criterion};
use icgmm::{Icgmm, IcgmmConfig, PolicyMode};
use icgmm_gmm::EmConfig;
use icgmm_trace::synth::{Workload, WorkloadKind};
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let trace = WorkloadKind::Memtier.default_workload().generate(100_000, 11);
    let cfg = IcgmmConfig {
        em: EmConfig {
            k: 32,
            max_iters: 15,
            ..Default::default()
        },
        max_train_cells: 30_000,
        ..Default::default()
    };

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("fit_memtier_100k_k32", |b| {
        b.iter(|| {
            let mut sys = Icgmm::new(cfg).expect("valid config");
            black_box(sys.fit(black_box(&trace)).expect("fit"));
        })
    });

    let mut sys = Icgmm::new(cfg).expect("valid config");
    sys.fit(&trace).expect("fit");
    group.bench_function("run_gmm_both_memtier_100k", |b| {
        b.iter(|| black_box(sys.run(black_box(&trace), PolicyMode::GmmCachingEviction)))
    });
    group.bench_function("run_lru_memtier_100k", |b| {
        b.iter(|| black_box(sys.run(black_box(&trace), PolicyMode::Lru)))
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
