//! Criterion bench: sharded replay vs the single-threaded simulator —
//! the scaling story behind `BENCH_shard.json` and CI's no-regression
//! gate.
//!
//! Three scenario families at paper-scale K = 256:
//!
//! * the all-miss scan from `sim_batch` (every request scores, the
//!   batched-kernel regime) at shard counts {1, 2, 4, 8} against the
//!   unsharded `WindowedSimulator`;
//! * the multi-tenant pooled workload (16 tenants, Zipf-interleaved) —
//!   the trace shape sharding exists for; and
//! * setup-only scenarios: the index fan-out in isolation
//!   (`fanout_partition8_tenants`) and the Belady occurrence-map build
//!   serial vs chunked — the costs the zero-copy fan-out and
//!   worker-side construction moved off the critical path.
//!
//! CI gates only the S = 1 pair: sharded replay at one shard must stay
//! within noise of the unsharded path (the refactor's overhead — fan-out,
//! gap bookkeeping, outcome recording, merge re-accounting — is bounded
//! and mostly off the scoring hot loop). Higher shard counts are archived
//! for trend tracking: on CI's single-core runners they measure the
//! sharding machinery itself; thread scaling needs a multi-core runner
//! (see ROADMAP).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use icgmm::{GmmPolicyEngine, TrainedModel};
use icgmm_cache::{
    BeladyPolicy, CacheConfig, LatencyModel, LruPolicy, ScoreSource, SetAssocCache, ShardPartition,
    ShardPolicies, ShardedSimulator, ThresholdAdmit, WindowedSimulator,
};
use icgmm_gmm::{Gaussian2, Gmm, Mat2, StandardScaler};
use icgmm_trace::synth::{MultiTenantWorkload, Workload};
use icgmm_trace::{PreprocessConfig, TraceRecord};
use std::hint::black_box;

const K: usize = 256;
const REQUESTS: usize = 8192;

fn build_model(k: usize) -> TrainedModel {
    let comps: Vec<Gaussian2> = (0..k)
        .map(|i| {
            let t = i as f64 / k as f64;
            Gaussian2::new(
                [t * 10.0 - 5.0, (t * std::f64::consts::TAU).sin()],
                Mat2::new(0.05 + t * 0.1, 0.01, 0.08),
            )
            .expect("valid component")
        })
        .collect();
    TrainedModel {
        scaler: StandardScaler::fit(&[[0.0, 0.0], [REQUESTS as f64, 256.0]], &[1.0, 1.0]),
        gmm: Gmm::new(vec![1.0 / k as f64; k], comps).expect("valid mixture"),
        threshold: f64::NEG_INFINITY, // admit everything: no bypass noise
    }
}

fn engine(k: usize) -> GmmPolicyEngine {
    let pre = PreprocessConfig {
        len_window: 32,
        len_access_shot: 10_000,
        ..Default::default()
    };
    GmmPolicyEngine::new(&build_model(k), &pre, false).expect("engine builds")
}

fn cache_cfg() -> CacheConfig {
    CacheConfig {
        capacity_bytes: 512 * 4096,
        block_bytes: 4096,
        ways: 8,
    }
}

/// Sequential scan: 8 k distinct pages, 100 % miss — the pure miss window.
fn scan_trace() -> Vec<TraceRecord> {
    (0..REQUESTS as u64)
        .map(|p| TraceRecord::read(p << 12))
        .collect()
}

/// The pooled multi-tenant interleave (16 tenants, per-tenant Zipf).
fn tenant_trace() -> Vec<TraceRecord> {
    MultiTenantWorkload {
        tenants: 16,
        pages_per_tenant: 2_048,
        ..Default::default()
    }
    .generate(REQUESTS, 4242)
    .into_records()
}

fn bench_sharded(c: &mut Criterion) {
    let eng = engine(K);
    let scan = scan_trace();
    let tenants = tenant_trace();
    let lat = LatencyModel::paper_tlc();
    let cfg = cache_cfg();

    let mut group = c.benchmark_group("sharded");
    group.sample_size(12);
    group.throughput(Throughput::Elements(REQUESTS as u64));

    group.bench_function("unsharded_scan_k256", |b| {
        let mut e = eng.clone();
        let mut wsim = WindowedSimulator::default();
        b.iter(|| {
            e.reset();
            let mut cache = SetAssocCache::new(cfg).expect("valid geometry");
            let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
            let mut adm = ThresholdAdmit::new(f64::NEG_INFINITY);
            black_box(wsim.run(
                &[],
                black_box(&scan),
                &mut cache,
                &mut adm,
                &mut lru,
                Some(&mut e as &mut dyn ScoreSource),
                &lat,
                None,
            ))
        })
    });

    for shards in [1usize, 2, 4, 8] {
        group.bench_function(format!("sharded{shards}_scan_k256"), |b| {
            let sim = ShardedSimulator::new(shards);
            b.iter(|| {
                black_box(
                    sim.run(
                        &[],
                        black_box(&scan),
                        cfg,
                        &|_ctx| ShardPolicies {
                            admission: Box::new(ThresholdAdmit::new(f64::NEG_INFINITY)),
                            eviction: Box::new(LruPolicy::new(cfg.num_sets(), cfg.ways)),
                            score: Some(Box::new(eng.clone())),
                        },
                        &lat,
                        None,
                    )
                    .expect("valid geometry"),
                )
            })
        });
    }

    group.bench_function("unsharded_tenants_k256", |b| {
        let mut e = eng.clone();
        let mut wsim = WindowedSimulator::default();
        b.iter(|| {
            e.reset();
            let mut cache = SetAssocCache::new(cfg).expect("valid geometry");
            let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
            let mut adm = ThresholdAdmit::new(f64::NEG_INFINITY);
            black_box(wsim.run(
                &[],
                black_box(&tenants),
                &mut cache,
                &mut adm,
                &mut lru,
                Some(&mut e as &mut dyn ScoreSource),
                &lat,
                None,
            ))
        })
    });

    for shards in [1usize, 4] {
        group.bench_function(format!("sharded{shards}_tenants_k256"), |b| {
            let sim = ShardedSimulator::new(shards);
            b.iter(|| {
                black_box(
                    sim.run(
                        &[],
                        black_box(&tenants),
                        cfg,
                        &|_ctx| ShardPolicies {
                            admission: Box::new(ThresholdAdmit::new(f64::NEG_INFINITY)),
                            eviction: Box::new(LruPolicy::new(cfg.num_sets(), cfg.ways)),
                            score: Some(Box::new(eng.clone())),
                        },
                        &lat,
                        None,
                    )
                    .expect("valid geometry"),
                )
            })
        });
    }

    // The fan-out in isolation: routing REQUESTS records into 8 shards'
    // u32 index lists — the ~4 B/record representation every consumer
    // (offline replay, serving clients, supervisor recovery) now walks.
    // The pre-index fan-out paid per-shard record + gap copies here.
    group.bench_function("fanout_partition8_tenants", |b| {
        b.iter(|| black_box(ShardPartition::build(8, &cfg, &[], black_box(&tenants)).unwrap()))
    });

    // Oracle setup cost, serial vs chunked build: the Belady occurrence
    // map is the most expensive policy constructor the worker threads
    // now amortize. Chunked must win at scale; at this trace size it
    // must at least not regress (CI archives both for trend tracking).
    group.bench_function("belady_build_serial_tenants", |b| {
        b.iter(|| {
            black_box(BeladyPolicy::from_records_chunked(
                black_box(&tenants),
                cfg.num_sets(),
                cfg.ways,
                1,
            ))
        })
    });
    group.bench_function("belady_build_chunked4_tenants", |b| {
        b.iter(|| {
            black_box(BeladyPolicy::from_records_chunked(
                black_box(&tenants),
                cfg.num_sets(),
                cfg.ways,
                4,
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
