//! Criterion bench: GMM score latency — the software side of Table 2's
//! latency column, extended with the SoA batch-scoring kernel.
//!
//! Groups at K = 256 (the paper's component count):
//!
//! * `seed_scalar_k256` — the pre-scorer implementation (per-call `Vec`,
//!   per-component `ln π_k`, array-of-structs walk), kept here as the
//!   regression baseline the ≥5× batched-speedup target is measured
//!   against;
//! * `scalar_k256` — `Gmm::density` via the allocation-free SoA scalar
//!   path;
//! * `batched_k256` / `parallel_k256` — `GmmScorer::score_batch` and its
//!   crossbeam-parallel variant, reported per point via
//!   `Throughput::Elements`;
//! * `f64` / `fixed` — the historical scalar comparison across K.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use icgmm_gmm::fixed::FixedGmm;
use icgmm_gmm::{Gaussian2, Gmm, GmmScorer, Mat2};
use std::hint::black_box;

fn build_gmm(k: usize) -> Gmm {
    let comps: Vec<Gaussian2> = (0..k)
        .map(|i| {
            let t = i as f64 / k as f64;
            Gaussian2::new(
                [t * 10.0 - 5.0, (t * std::f64::consts::TAU).sin()],
                Mat2::new(0.05 + t * 0.1, 0.01, 0.08),
            )
            .expect("valid component")
        })
        .collect();
    Gmm::new(vec![1.0 / k as f64; k], comps).expect("valid mixture")
}

/// The seed's original `Gmm::log_density`: heap-allocates a K-element
/// `Vec`, recomputes `ln π_k` per component, walks `Vec<Gaussian2>`.
fn seed_scalar_density(gmm: &Gmm, x: [f64; 2]) -> f64 {
    let logs: Vec<f64> = gmm
        .weights()
        .iter()
        .zip(gmm.components())
        .map(|(w, c)| {
            if *w == 0.0 {
                f64::NEG_INFINITY
            } else {
                w.ln() + c.log_pdf(x)
            }
        })
        .collect();
    let m = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return 0.0;
    }
    let s: f64 = logs.iter().map(|v| (v - m).exp()).sum();
    (m + s.ln()).exp()
}

fn probe_points(n: usize) -> Vec<[f64; 2]> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            [t * 12.0 - 6.0, (t * 12.9898).sin() * 2.0]
        })
        .collect()
}

fn bench_scalar_vs_batched(c: &mut Criterion) {
    const K: usize = 256;
    const BATCH: usize = 4_096;
    let gmm = build_gmm(K);
    let scorer = GmmScorer::from_gmm(&gmm);
    let points = probe_points(BATCH);
    let mut out = vec![0.0; BATCH];

    let mut group = c.benchmark_group("gmm_inference");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.bench_function("seed_scalar_k256", |b| {
        b.iter(|| {
            for x in &points {
                black_box(seed_scalar_density(&gmm, black_box(*x)));
            }
        })
    });
    group.bench_function("scalar_k256", |b| {
        b.iter(|| {
            for x in &points {
                black_box(gmm.density(black_box(*x)));
            }
        })
    });
    group.bench_function("batched_k256", |b| {
        b.iter(|| scorer.score_batch(black_box(&points), black_box(&mut out)))
    });
    group.bench_function("parallel_k256", |b| {
        b.iter(|| scorer.score_batch_parallel(black_box(&points), black_box(&mut out), 0))
    });
    group.finish();
}

fn bench_gmm_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("gmm_inference");
    for k in [64usize, 256, 1024] {
        let gmm = build_gmm(k);
        let fx = FixedGmm::from_gmm(&gmm).expect("quantizable");
        group.bench_with_input(BenchmarkId::new("f64", k), &k, |b, _| {
            b.iter(|| black_box(gmm.score(black_box([0.3, -0.2]))))
        });
        group.bench_with_input(BenchmarkId::new("fixed", k), &k, |b, _| {
            b.iter(|| black_box(fx.score(black_box([0.3, -0.2]))))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_scalar_vs_batched, bench_gmm_inference
}
criterion_main!(benches);
