//! Criterion bench: GMM score latency (f64 and fixed-point datapaths) at
//! several K — the software side of Table 2's latency column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icgmm_gmm::fixed::FixedGmm;
use icgmm_gmm::{Gaussian2, Gmm, Mat2};
use std::hint::black_box;

fn build_gmm(k: usize) -> Gmm {
    let comps: Vec<Gaussian2> = (0..k)
        .map(|i| {
            let t = i as f64 / k as f64;
            Gaussian2::new(
                [t * 10.0 - 5.0, (t * 6.28).sin()],
                Mat2::new(0.05 + t * 0.1, 0.01, 0.08),
            )
            .expect("valid component")
        })
        .collect();
    Gmm::new(vec![1.0 / k as f64; k], comps).expect("valid mixture")
}

fn bench_gmm_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("gmm_inference");
    for k in [64usize, 256, 1024] {
        let gmm = build_gmm(k);
        let fx = FixedGmm::from_gmm(&gmm).expect("quantizable");
        group.bench_with_input(BenchmarkId::new("f64", k), &k, |b, _| {
            b.iter(|| black_box(gmm.score(black_box([0.3, -0.2]))))
        });
        group.bench_with_input(BenchmarkId::new("fixed", k), &k, |b, _| {
            b.iter(|| black_box(fx.score(black_box([0.3, -0.2]))))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_gmm_inference
}
criterion_main!(benches);
