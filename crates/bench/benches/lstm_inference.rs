//! Criterion bench: LSTM forward-pass latency (the software counterpart of
//! Table 2's 46.3 ms row; compare with `gmm_inference`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icgmm_lstm::{LstmArch, LstmNetwork};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_lstm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut group = c.benchmark_group("lstm_inference");
    group.sample_size(10);
    for (label, arch) in [
        ("paper_3x128_seq32", LstmArch::paper_baseline()),
        (
            "small_1x32_seq8",
            LstmArch {
                layers: 1,
                hidden: 32,
                input: 2,
                seq_len: 8,
            },
        ),
    ] {
        let net = LstmNetwork::new(arch, &mut rng);
        let seq: Vec<Vec<f32>> = (0..arch.seq_len)
            .map(|t| vec![t as f32 * 0.03, 0.5])
            .collect();
        group.bench_with_input(BenchmarkId::new("forward", label), &label, |b, _| {
            b.iter(|| black_box(net.forward(black_box(&seq))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lstm);
criterion_main!(benches);
