//! Criterion bench: cache simulator throughput per policy (simulation-rate
//! evidence that the harness can replay paper-scale traces in seconds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use icgmm_cache::{
    simulate, AlwaysAdmit, CacheConfig, EvictionPolicy, FifoPolicy, GmmScorePolicy, LatencyModel,
    LfuPolicy, LruPolicy, SetAssocCache,
};
use icgmm_trace::synth::WorkloadKind;
use std::hint::black_box;

fn bench_policy(
    group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    label: &str,
    records: &[icgmm_trace::TraceRecord],
    cfg: CacheConfig,
    mk: impl Fn() -> Box<dyn EvictionPolicy>,
) {
    let lat = LatencyModel::paper_tlc();
    group.bench_function(BenchmarkId::new("simulate_100k", label), |b| {
        b.iter(|| {
            let mut cache = SetAssocCache::new(cfg).expect("geometry");
            let mut ev = mk();
            black_box(simulate(
                black_box(records),
                &mut cache,
                &mut AlwaysAdmit,
                ev.as_mut(),
                None,
                &lat,
                None,
            ))
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    let trace = WorkloadKind::Memtier
        .default_workload()
        .generate(100_000, 7);
    let records = trace.records();
    let cfg = CacheConfig::paper_default();

    let mut group = c.benchmark_group("cache_ops");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records.len() as u64));
    let sets = cfg.num_sets();
    let ways = cfg.ways;
    bench_policy(&mut group, "lru", records, cfg, || {
        Box::new(LruPolicy::new(sets, ways))
    });
    bench_policy(&mut group, "fifo", records, cfg, || {
        Box::new(FifoPolicy::new(sets, ways))
    });
    bench_policy(&mut group, "lfu", records, cfg, || {
        Box::new(LfuPolicy::new(sets, ways))
    });
    bench_policy(&mut group, "gmm-score-evict", records, cfg, || {
        Box::new(GmmScorePolicy::new(sets, ways))
    });
    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
