//! Criterion bench: one EM fit on trace-shaped training cells (offline
//! training cost, paper §3.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icgmm_gmm::{EmConfig, EmTrainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn training_cells(n: usize) -> (Vec<[f64; 2]>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(3);
    let xs: Vec<[f64; 2]> = (0..n)
        .map(|_| {
            let cluster = rng.gen_range(0..4) as f64;
            [
                cluster + rng.gen::<f64>() * 0.2,
                rng.gen::<f64>() * 2.0 - 1.0,
            ]
        })
        .collect();
    let ws: Vec<f64> = (0..n).map(|_| 1.0 + rng.gen::<f64>() * 9.0).collect();
    (xs, ws)
}

fn bench_em(c: &mut Criterion) {
    let mut group = c.benchmark_group("gmm_training");
    group.sample_size(10);
    let (xs, ws) = training_cells(10_000);
    for k in [16usize, 64] {
        group.bench_with_input(BenchmarkId::new("em_fit_10k_cells", k), &k, |b, &k| {
            let trainer = EmTrainer::new(EmConfig {
                k,
                max_iters: 10,
                ..Default::default()
            })
            .expect("valid config");
            b.iter(|| black_box(trainer.fit(black_box(&xs), black_box(&ws)).expect("fit")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_em);
criterion_main!(benches);
