//! Criterion bench: end-to-end simulator replay, streaming vs the
//! speculative miss-window batcher — the tracked pair behind CI's perf
//! gate (`perf_gate` requires batched ≥ 2× streaming at K = 256,
//! W = 4096, same runner, same run).
//!
//! The workload is an 8 k-request all-miss window (sequential scan through
//! a page space far larger than the cache): every request triggers a
//! policy-engine inference, so the pair isolates exactly what the batcher
//! accelerates — per-miss scalar scoring round-trips vs one batched
//! `score_window` call per speculation window. A Zipf variant with real
//! hit/miss interleaving tracks the mixed regime, and two GMM-score
//! eviction pairs track the paper's smart-eviction modes, whose victims
//! the policy-aware shadow predicts from stored scores: the all-miss scan
//! (gated at ≥ 2× streaming — every conflict victim is a stored-score
//! decision, run-split but never divergent) and the Zipf interleave
//! (gated at ≥ 1× — formerly the divergence-storm worst case of the
//! hardcoded-LRU shadow).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use icgmm::{GmmPolicyEngine, TrainedModel};
use icgmm_cache::{
    simulate_streaming, CacheConfig, GmmScorePolicy, LatencyModel, LruPolicy, ScoreSource,
    SetAssocCache, ThresholdAdmit, WindowedSimulator,
};
use icgmm_gmm::{Gaussian2, Gmm, Mat2, StandardScaler};
use icgmm_trace::{PreprocessConfig, TraceRecord, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const K: usize = 256;
const WINDOW: usize = 4096;
const REQUESTS: usize = 8192;

fn build_model(k: usize) -> TrainedModel {
    let comps: Vec<Gaussian2> = (0..k)
        .map(|i| {
            let t = i as f64 / k as f64;
            Gaussian2::new(
                [t * 10.0 - 5.0, (t * std::f64::consts::TAU).sin()],
                Mat2::new(0.05 + t * 0.1, 0.01, 0.08),
            )
            .expect("valid component")
        })
        .collect();
    TrainedModel {
        scaler: StandardScaler::fit(&[[0.0, 0.0], [REQUESTS as f64, 256.0]], &[1.0, 1.0]),
        gmm: Gmm::new(vec![1.0 / k as f64; k], comps).expect("valid mixture"),
        threshold: f64::NEG_INFINITY, // admit everything: no bypass noise
    }
}

fn engine(k: usize) -> GmmPolicyEngine {
    let pre = PreprocessConfig {
        len_window: 32,
        len_access_shot: 10_000,
        ..Default::default()
    };
    GmmPolicyEngine::new(&build_model(k), &pre, false).expect("engine builds")
}

fn cache_cfg() -> CacheConfig {
    // 512 blocks / 8-way: small enough that per-iteration construction is
    // noise, large enough for realistic set pressure.
    CacheConfig {
        capacity_bytes: 512 * 4096,
        block_bytes: 4096,
        ways: 8,
    }
}

/// Sequential scan: 8 k distinct pages, 100 % miss — the pure miss-window.
fn scan_trace() -> Vec<TraceRecord> {
    (0..REQUESTS as u64)
        .map(|p| TraceRecord::read(p << 12))
        .collect()
}

/// Zipf-skewed reuse: realistic hit/miss interleaving.
fn zipf_trace() -> Vec<TraceRecord> {
    let zipf = Zipf::new(4096, 0.9).expect("valid zipf");
    let mut rng = StdRng::seed_from_u64(1234);
    (0..REQUESTS)
        .map(|_| TraceRecord::read((zipf.sample(&mut rng) - 1) << 12))
        .collect()
}

fn bench_sim_batch(c: &mut Criterion) {
    let eng = engine(K);
    let scan = scan_trace();
    let zipf = zipf_trace();
    let lat = LatencyModel::paper_tlc();
    let cfg = cache_cfg();

    let mut group = c.benchmark_group("sim_batch");
    group.sample_size(12);
    group.throughput(Throughput::Elements(REQUESTS as u64));

    group.bench_function("streaming_k256_w4096", |b| {
        let mut e = eng.clone();
        b.iter(|| {
            e.reset();
            let mut cache = SetAssocCache::new(cfg).expect("valid geometry");
            let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
            let mut adm = ThresholdAdmit::new(f64::NEG_INFINITY);
            black_box(simulate_streaming(
                black_box(&scan),
                &mut cache,
                &mut adm,
                &mut lru,
                Some(&mut e as &mut dyn ScoreSource),
                &lat,
                None,
            ))
        })
    });

    group.bench_function("batched_k256_w4096", |b| {
        let mut e = eng.clone();
        let mut wsim = WindowedSimulator::new(WINDOW);
        b.iter(|| {
            e.reset();
            let mut cache = SetAssocCache::new(cfg).expect("valid geometry");
            let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
            let mut adm = ThresholdAdmit::new(f64::NEG_INFINITY);
            black_box(wsim.run(
                &[],
                black_box(&scan),
                &mut cache,
                &mut adm,
                &mut lru,
                Some(&mut e as &mut dyn ScoreSource),
                &lat,
                None,
            ))
        })
    });

    group.bench_function("streaming_zipf_k256", |b| {
        let mut e = eng.clone();
        b.iter(|| {
            e.reset();
            let mut cache = SetAssocCache::new(cfg).expect("valid geometry");
            let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
            let mut adm = ThresholdAdmit::new(f64::NEG_INFINITY);
            black_box(simulate_streaming(
                black_box(&zipf),
                &mut cache,
                &mut adm,
                &mut lru,
                Some(&mut e as &mut dyn ScoreSource),
                &lat,
                None,
            ))
        })
    });

    group.bench_function("batched_zipf_k256_w4096", |b| {
        let mut e = eng.clone();
        let mut wsim = WindowedSimulator::new(WINDOW);
        b.iter(|| {
            e.reset();
            let mut cache = SetAssocCache::new(cfg).expect("valid geometry");
            let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
            let mut adm = ThresholdAdmit::new(f64::NEG_INFINITY);
            black_box(wsim.run(
                &[],
                black_box(&zipf),
                &mut cache,
                &mut adm,
                &mut lru,
                Some(&mut e as &mut dyn ScoreSource),
                &lat,
                None,
            ))
        })
    });

    // The paper's smart-eviction modes: GMM-score eviction ranks victims
    // by stored score. The policy-aware shadow learns every inserted
    // block's score from its own prefetches, so the miss-heavy scan —
    // formerly a divergence storm under the hardcoded-LRU shadow —
    // speculates exactly (run splits, zero divergence) and is gated at
    // ≥ 2× streaming; the Zipf interleave is gated at ≥ 1×.
    group.bench_function("streaming_gmm_evict_scan_k256", |b| {
        let mut e = eng.clone();
        b.iter(|| {
            e.reset();
            let mut cache = SetAssocCache::new(cfg).expect("valid geometry");
            let mut gmm_ev = GmmScorePolicy::new(cfg.num_sets(), cfg.ways);
            let mut adm = ThresholdAdmit::new(f64::NEG_INFINITY);
            black_box(simulate_streaming(
                black_box(&scan),
                &mut cache,
                &mut adm,
                &mut gmm_ev,
                Some(&mut e as &mut dyn ScoreSource),
                &lat,
                None,
            ))
        })
    });

    group.bench_function("batched_gmm_evict_scan_k256_w4096", |b| {
        let mut e = eng.clone();
        let mut wsim = WindowedSimulator::new(WINDOW);
        b.iter(|| {
            e.reset();
            let mut cache = SetAssocCache::new(cfg).expect("valid geometry");
            let mut gmm_ev = GmmScorePolicy::new(cfg.num_sets(), cfg.ways);
            let mut adm = ThresholdAdmit::new(f64::NEG_INFINITY);
            black_box(wsim.run(
                &[],
                black_box(&scan),
                &mut cache,
                &mut adm,
                &mut gmm_ev,
                Some(&mut e as &mut dyn ScoreSource),
                &lat,
                None,
            ))
        })
    });

    group.bench_function("streaming_gmm_evict_zipf_k256", |b| {
        let mut e = eng.clone();
        b.iter(|| {
            e.reset();
            let mut cache = SetAssocCache::new(cfg).expect("valid geometry");
            let mut gmm_ev = GmmScorePolicy::new(cfg.num_sets(), cfg.ways);
            let mut adm = ThresholdAdmit::new(f64::NEG_INFINITY);
            black_box(simulate_streaming(
                black_box(&zipf),
                &mut cache,
                &mut adm,
                &mut gmm_ev,
                Some(&mut e as &mut dyn ScoreSource),
                &lat,
                None,
            ))
        })
    });

    group.bench_function("batched_gmm_evict_zipf_k256_w4096", |b| {
        let mut e = eng.clone();
        let mut wsim = WindowedSimulator::new(WINDOW);
        b.iter(|| {
            e.reset();
            let mut cache = SetAssocCache::new(cfg).expect("valid geometry");
            let mut gmm_ev = GmmScorePolicy::new(cfg.num_sets(), cfg.ways);
            let mut adm = ThresholdAdmit::new(f64::NEG_INFINITY);
            black_box(wsim.run(
                &[],
                black_box(&zipf),
                &mut cache,
                &mut adm,
                &mut gmm_ev,
                Some(&mut e as &mut dyn ScoreSource),
                &lat,
                None,
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_sim_batch);
criterion_main!(benches);
