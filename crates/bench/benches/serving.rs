//! Criterion bench: the concurrent cache service vs the offline replay
//! engines — the saturation story behind `BENCH_serve.json` and CI's
//! served-throughput gate.
//!
//! Two trace shapes at paper-scale K = 256:
//!
//! * the pooled multi-tenant interleave (16 tenants, per-tenant Zipf) —
//!   the request mix a shared CXL device actually serves; and
//! * the all-miss scan — every request scores, the speculative-batching
//!   regime where hand-off overhead is most exposed.
//!
//! CI gates only the tightest pair: serving at S = 1 / C = 1 with a deep
//! queue must hold ≥ 0.85× the unsharded replay rate. That single-worker
//! geometry replays the identical decision sequence through the identical
//! batcher, so the ratio isolates the service machinery itself — queue
//! hand-off, per-request admission timestamping, sequence-numbered
//! outcome streaming and the incremental merge. The wide geometries
//! (4 shards × 2 clients, 8 shards × 4 clients) exercise the per-shard
//! client transport buffers on interleaved traffic — a scan routes
//! consecutive records to consecutive shards, so without buffering every
//! message degenerates to one record. CI additionally gates the 4×2
//! pair (0.8× tenants, 0.6× scan); 8×4 is archived for trend tracking,
//! since CI's single-core runners measure machinery there, not scaling.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use icgmm::{GmmPolicyEngine, TrainedModel};
use icgmm_cache::{
    CacheConfig, LatencyModel, LruPolicy, ScoreSource, SetAssocCache, ShardPolicies,
    ThresholdAdmit, WindowedSimulator,
};
use icgmm_gmm::{Gaussian2, Gmm, Mat2, StandardScaler};
use icgmm_serve::{CacheServer, ServeConfig};
use icgmm_trace::synth::{MultiTenantWorkload, Workload};
use icgmm_trace::{PreprocessConfig, TraceRecord};
use std::hint::black_box;

const K: usize = 256;
const REQUESTS: usize = 8192;

fn build_model(k: usize) -> TrainedModel {
    let comps: Vec<Gaussian2> = (0..k)
        .map(|i| {
            let t = i as f64 / k as f64;
            Gaussian2::new(
                [t * 10.0 - 5.0, (t * std::f64::consts::TAU).sin()],
                Mat2::new(0.05 + t * 0.1, 0.01, 0.08),
            )
            .expect("valid component")
        })
        .collect();
    TrainedModel {
        scaler: StandardScaler::fit(&[[0.0, 0.0], [REQUESTS as f64, 256.0]], &[1.0, 1.0]),
        gmm: Gmm::new(vec![1.0 / k as f64; k], comps).expect("valid mixture"),
        threshold: f64::NEG_INFINITY, // admit everything: no bypass noise
    }
}

fn engine(k: usize) -> GmmPolicyEngine {
    let pre = PreprocessConfig {
        len_window: 32,
        len_access_shot: 10_000,
        ..Default::default()
    };
    GmmPolicyEngine::new(&build_model(k), &pre, false).expect("engine builds")
}

fn cache_cfg() -> CacheConfig {
    CacheConfig {
        capacity_bytes: 512 * 4096,
        block_bytes: 4096,
        ways: 8,
    }
}

/// Sequential scan: 8 k distinct pages, 100 % miss — the pure miss window.
fn scan_trace() -> Vec<TraceRecord> {
    (0..REQUESTS as u64)
        .map(|p| TraceRecord::read(p << 12))
        .collect()
}

/// The pooled multi-tenant interleave (16 tenants, per-tenant Zipf).
fn tenant_trace() -> Vec<TraceRecord> {
    MultiTenantWorkload {
        tenants: 16,
        pages_per_tenant: 2_048,
        ..Default::default()
    }
    .generate(REQUESTS, 4242)
    .into_records()
}

fn serve_once(
    server: &CacheServer,
    trace: &[TraceRecord],
    cfg: CacheConfig,
    eng: &GmmPolicyEngine,
    lat: &LatencyModel,
) -> icgmm_serve::ServeReport {
    server
        .serve(
            &[],
            trace,
            cfg,
            &|_ctx| ShardPolicies {
                admission: Box::new(ThresholdAdmit::new(f64::NEG_INFINITY)),
                eviction: Box::new(LruPolicy::new(cfg.num_sets(), cfg.ways)),
                score: Some(Box::new(eng.clone())),
            },
            lat,
            None,
        )
        .expect("serving succeeds")
}

fn bench_serving(c: &mut Criterion) {
    let eng = engine(K);
    let scan = scan_trace();
    let tenants = tenant_trace();
    let lat = LatencyModel::paper_tlc();
    let cfg = cache_cfg();

    // The gate geometry: one worker, one client, a queue deep enough that
    // hand-off never stalls the batcher mid-chunk.
    let tight = CacheServer::new(ServeConfig {
        shards: 1,
        clients: 1,
        queue_depth: 4096,
        ..ServeConfig::default()
    })
    .expect("valid serve config");
    // The gated wide geometry: 4 workers fed by 2 clients.
    let wide = CacheServer::new(ServeConfig {
        shards: 4,
        clients: 2,
        queue_depth: 256,
        ..ServeConfig::default()
    })
    .expect("valid serve config");
    // The archived wider geometry: 8 workers fed by 4 clients, each
    // client juggling two per-shard transport buffers.
    let wider = CacheServer::new(ServeConfig {
        shards: 8,
        clients: 4,
        queue_depth: 256,
        ..ServeConfig::default()
    })
    .expect("valid serve config");

    let mut group = c.benchmark_group("serving");
    group.sample_size(20);
    group.throughput(Throughput::Elements(REQUESTS as u64));

    for (name, trace) in [("tenants", &tenants), ("scan", &scan)] {
        group.bench_function(format!("replay_{name}_k256"), |b| {
            b.iter(|| {
                // One offline session per iteration, constructed exactly
                // as a serve session constructs its per-shard state
                // (fresh simulator, cloned engine, fresh policies) — the
                // serve/replay ratio then isolates the service machinery
                // rather than charging serving for session setup the
                // baseline amortized away.
                let mut e = eng.clone();
                let mut wsim = WindowedSimulator::default();
                let mut cache = SetAssocCache::new(cfg).expect("valid geometry");
                let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
                let mut adm = ThresholdAdmit::new(f64::NEG_INFINITY);
                black_box(wsim.run(
                    &[],
                    black_box(trace),
                    &mut cache,
                    &mut adm,
                    &mut lru,
                    Some(&mut e as &mut dyn ScoreSource),
                    &lat,
                    None,
                ))
            })
        });

        group.bench_function(format!("serve1x1_{name}_k256"), |b| {
            b.iter(|| black_box(serve_once(&tight, black_box(trace), cfg, &eng, &lat)))
        });

        group.bench_function(format!("serve4x2_{name}_k256"), |b| {
            b.iter(|| black_box(serve_once(&wide, black_box(trace), cfg, &eng, &lat)))
        });

        group.bench_function(format!("serve8x4_{name}_k256"), |b| {
            b.iter(|| black_box(serve_once(&wider, black_box(trace), cfg, &eng, &lat)))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
