//! # icgmm-lstm
//!
//! The LSTM baseline policy engine of the ICGMM paper's Table 2, built from
//! scratch: a stacked LSTM (3 layers × hidden 128, input sequence 32 — the
//! paper's baseline), truncated-BPTT training, a [`ScoreSource`] adapter so
//! the LSTM can drive the same cache simulator as the GMM, and an FPGA
//! cost model calibrated against Table 2.
//!
//! The point of this crate is the *comparison*: the GMM scores a page from
//! its current `(page, time)` coordinates alone, while an LSTM must buffer
//! and re-process a 32-step history — hence the >10,000× inference-latency
//! gap and ~40× BRAM gap the paper reports.
//!
//! ## Example
//!
//! ```
//! use icgmm_lstm::{LstmArch, LstmCostModel, LstmNetwork};
//! use rand::SeedableRng;
//!
//! let arch = LstmArch { layers: 1, hidden: 8, input: 2, seq_len: 4 };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let net = LstmNetwork::new(arch, &mut rng);
//! let seq: Vec<Vec<f32>> = (0..4).map(|t| vec![t as f32 * 0.1, 0.0]).collect();
//! assert!(net.forward(&seq).is_finite());
//!
//! // The paper's Table 2 row for the full-size baseline:
//! let cost = LstmCostModel::paper_calibrated().estimate(&LstmArch::paper_baseline());
//! assert!(cost.latency_us > 40_000.0); // ~46.3 ms
//! ```
//!
//! [`ScoreSource`]: icgmm_cache::ScoreSource

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod cost;
mod network;
mod predictor;
mod tensor;
mod train;

pub use cell::{CellGrads, CellState, LstmCell};
pub use cost::{FpgaCost, LstmCostModel};
pub use network::{ForwardCache, LstmArch, LstmNetwork};
pub use predictor::LstmScoreSource;
pub use tensor::{sigmoid, Matrix};
pub use train::{synthetic_dataset, train, TrainConfig, TrainExample, TrainReport};
