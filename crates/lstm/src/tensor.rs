//! Minimal dense linear algebra for the LSTM baseline (row-major f32).
//!
//! Deliberately dependency-free: the LSTM exists only as the paper's
//! Table 2 comparison baseline, and a ~100-line matrix type keeps the MAC
//! count transparent for the FPGA cost model.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A row-major `rows × cols` matrix of `f32`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Gaussian-initialized matrix with standard deviation `scale`
    /// (Box–Muller; `rand_distr` is outside the approved dependency set).
    pub fn randn<R: Rng + ?Sized>(rows: usize, cols: usize, scale: f32, rng: &mut R) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for v in &mut m.data {
            let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            *v = (z as f32) * scale;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        &mut self.data[r * self.cols + c]
    }

    /// Raw data slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// `out += M · x`.
    ///
    /// # Panics
    ///
    /// Panics when dimensions disagree.
    pub fn matvec_acc(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec: x length");
        assert_eq!(out.len(), self.rows, "matvec: out length");
        for (row, o) in self.data.chunks_exact(self.cols).zip(out.iter_mut()) {
            let mut acc = 0.0f32;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *o += acc;
        }
    }

    /// `out += Mᵀ · y` (used for input/hidden gradients).
    ///
    /// # Panics
    ///
    /// Panics when dimensions disagree.
    pub fn t_matvec_acc(&self, y: &[f32], out: &mut [f32]) {
        assert_eq!(y.len(), self.rows, "t_matvec: y length");
        assert_eq!(out.len(), self.cols, "t_matvec: out length");
        for (row, yr) in self.data.chunks_exact(self.cols).zip(y.iter()) {
            for (o, a) in out.iter_mut().zip(row) {
                *o += yr * a;
            }
        }
    }

    /// Rank-1 update `M += y ⊗ x` (gradient accumulation).
    ///
    /// # Panics
    ///
    /// Panics when dimensions disagree.
    pub fn outer_acc(&mut self, y: &[f32], x: &[f32]) {
        assert_eq!(y.len(), self.rows, "outer: y length");
        assert_eq!(x.len(), self.cols, "outer: x length");
        for (row, yr) in self.data.chunks_exact_mut(self.cols).zip(y.iter()) {
            for (m, a) in row.iter_mut().zip(x) {
                *m += yr * a;
            }
        }
    }

    /// In-place SGD/Adam-style update helper: `M -= lr * G` element-wise.
    ///
    /// # Panics
    ///
    /// Panics when shapes disagree.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy: shape mismatch"
        );
        for (m, g) in self.data.iter_mut().zip(&other.data) {
            *m += alpha * g;
        }
    }

    /// Sets every element to zero (reusing the allocation).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Mutable raw data (for optimizers).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matvec_matches_manual() {
        let mut m = Matrix::zeros(2, 3);
        // [[1,2,3],[4,5,6]]
        for (i, v) in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0].iter().enumerate() {
            m.data_mut()[i] = *v;
        }
        let mut out = vec![0.0; 2];
        m.matvec_acc(&[1.0, 0.5, -1.0], &mut out);
        assert_eq!(out, vec![1.0 + 1.0 - 3.0, 4.0 + 2.5 - 6.0]);
    }

    #[test]
    fn transpose_matvec_matches_manual() {
        let mut m = Matrix::zeros(2, 2);
        for (i, v) in [1.0, 2.0, 3.0, 4.0].iter().enumerate() {
            m.data_mut()[i] = *v;
        }
        let mut out = vec![0.0; 2];
        m.t_matvec_acc(&[1.0, 1.0], &mut out);
        assert_eq!(out, vec![4.0, 6.0]); // column sums
    }

    #[test]
    fn outer_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.outer_acc(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(m.at(0, 0), 3.0);
        assert_eq!(m.at(0, 1), 4.0);
        assert_eq!(m.at(1, 0), 6.0);
        assert_eq!(m.at(1, 1), 8.0);
        m.outer_acc(&[1.0, 0.0], &[1.0, 1.0]);
        assert_eq!(m.at(0, 0), 4.0);
    }

    #[test]
    fn randn_has_expected_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::randn(50, 50, 0.1, &mut rng);
        let mean: f32 = m.data().iter().sum::<f32>() / m.len() as f32;
        let var: f32 = m
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / m.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        assert_eq!(sigmoid(0.0), 0.5);
        assert!(sigmoid(10.0) > 0.999);
        assert!(sigmoid(-10.0) < 0.001);
    }

    #[test]
    #[should_panic(expected = "matvec")]
    fn dimension_mismatch_panics() {
        let m = Matrix::zeros(2, 3);
        let mut out = vec![0.0; 2];
        m.matvec_acc(&[1.0], &mut out);
    }
}
