//! Stacked LSTM network with a scalar regression head — the paper's
//! baseline policy engine (3 layers, hidden = 128, sequence length = 32).

use crate::cell::{CellCache, CellGrads, CellState, LstmCell};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Architecture of the LSTM baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LstmArch {
    /// Number of stacked layers.
    pub layers: usize,
    /// Hidden size per layer.
    pub hidden: usize,
    /// Input feature dimension per timestep.
    pub input: usize,
    /// Input sequence length.
    pub seq_len: usize,
}

impl LstmArch {
    /// The paper's Table 2 baseline: 3 layers, hidden 128, sequence 32.
    /// Inputs are the 2-D `(page, time)` features.
    pub fn paper_baseline() -> Self {
        LstmArch {
            layers: 3,
            hidden: 128,
            input: 2,
            seq_len: 32,
        }
    }

    /// Trainable parameter count (cells + head).
    pub fn param_count(&self) -> usize {
        let mut total = 0;
        for l in 0..self.layers {
            let input = if l == 0 { self.input } else { self.hidden };
            total += 4 * self.hidden * (input + self.hidden) + 4 * self.hidden;
        }
        total + self.hidden + 1 // head
    }

    /// Multiply-accumulate operations per inference (all timesteps).
    pub fn macs_per_inference(&self) -> u64 {
        let mut per_step = 0u64;
        for l in 0..self.layers {
            let input = if l == 0 { self.input } else { self.hidden };
            per_step += 4 * self.hidden as u64 * (input as u64 + self.hidden as u64);
        }
        per_step * self.seq_len as u64 + self.hidden as u64
    }
}

/// The stacked network.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LstmNetwork {
    arch: LstmArch,
    cells: Vec<LstmCell>,
    head_w: Vec<f32>,
    head_b: f32,
}

/// Per-sequence caches needed for BPTT.
pub struct ForwardCache {
    /// `caches[t][l]` — cache of layer `l` at timestep `t`.
    caches: Vec<Vec<CellCache>>,
    /// Final hidden vector (head input).
    last_h: Vec<f32>,
}

impl LstmNetwork {
    /// Builds a randomly initialized network.
    pub fn new<R: Rng + ?Sized>(arch: LstmArch, rng: &mut R) -> Self {
        let cells = (0..arch.layers)
            .map(|l| {
                let input = if l == 0 { arch.input } else { arch.hidden };
                LstmCell::new(input, arch.hidden, rng)
            })
            .collect();
        let mut head_w = vec![0.0f32; arch.hidden];
        for w in &mut head_w {
            let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.gen();
            *w = ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32 * 0.05;
        }
        LstmNetwork {
            arch,
            cells,
            head_w,
            head_b: 0.0,
        }
    }

    /// The architecture.
    pub fn arch(&self) -> LstmArch {
        self.arch
    }

    /// Trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.cells.iter().map(LstmCell::param_count).sum::<usize>() + self.head_w.len() + 1
    }

    /// Scores a sequence of feature vectors (`seq.len()` should equal
    /// `arch.seq_len`, but any non-empty length works).
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence or wrong feature width.
    pub fn forward(&self, seq: &[Vec<f32>]) -> f32 {
        self.forward_cached(seq).1
    }

    /// Forward pass retaining caches for BPTT. Returns `(cache, score)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty sequence or wrong feature width.
    pub fn forward_cached(&self, seq: &[Vec<f32>]) -> (ForwardCache, f32) {
        assert!(!seq.is_empty(), "sequence must be non-empty");
        let mut states: Vec<CellState> = self
            .cells
            .iter()
            .map(|c| CellState::zeros(c.hidden()))
            .collect();
        let mut caches: Vec<Vec<CellCache>> = Vec::with_capacity(seq.len());
        for x in seq {
            assert_eq!(x.len(), self.arch.input, "feature width mismatch");
            let mut layer_caches = Vec::with_capacity(self.cells.len());
            let mut input = x.clone();
            for (l, cell) in self.cells.iter().enumerate() {
                let (ns, cache) = cell.forward(&input, &states[l]);
                input = ns.h.clone();
                states[l] = ns;
                layer_caches.push(cache);
            }
            caches.push(layer_caches);
        }
        let last_h = states.last().expect("at least one layer").h.clone();
        let score = self
            .head_w
            .iter()
            .zip(&last_h)
            .map(|(w, h)| w * h)
            .sum::<f32>()
            + self.head_b;
        (ForwardCache { caches, last_h }, score)
    }

    /// Full BPTT for one sequence given `dscore` (gradient of the loss with
    /// respect to the network output). Accumulates into `grads` and returns
    /// the head gradients `(d_head_w, d_head_b)`.
    pub fn backward(
        &self,
        cache: &ForwardCache,
        dscore: f32,
        grads: &mut [CellGrads],
    ) -> (Vec<f32>, f32) {
        let layers = self.cells.len();
        let steps = cache.caches.len();
        let h = self.arch.hidden;

        let d_head_w: Vec<f32> = cache.last_h.iter().map(|v| dscore * v).collect();
        let d_head_b = dscore;

        // dh/dc flowing backward per layer.
        let mut dh: Vec<Vec<f32>> = vec![vec![0.0; h]; layers];
        let mut dc: Vec<Vec<f32>> = vec![vec![0.0; h]; layers];
        for (j, w) in self.head_w.iter().enumerate() {
            dh[layers - 1][j] = dscore * w;
        }

        for t in (0..steps).rev() {
            // dx of layer l feeds dh of layer l-1 (same timestep).
            let mut dx_down: Option<Vec<f32>> = None;
            for l in (0..layers).rev() {
                if let Some(dx) = dx_down.take() {
                    for (a, b) in dh[l].iter_mut().zip(&dx) {
                        *a += b;
                    }
                }
                let (dx, dh_prev, dc_prev) =
                    self.cells[l].backward(&cache.caches[t][l], &dh[l], &dc[l], &mut grads[l]);
                dh[l] = dh_prev;
                dc[l] = dc_prev;
                dx_down = Some(dx);
            }
        }
        (d_head_w, d_head_b)
    }

    /// Zero gradients for every layer.
    pub fn zero_grads(&self) -> Vec<CellGrads> {
        self.cells.iter().map(CellGrads::zeros).collect()
    }

    /// Plain SGD step on all parameters.
    pub fn apply_sgd(&mut self, grads: &[CellGrads], d_head_w: &[f32], d_head_b: f32, lr: f32) {
        for (cell, g) in self.cells.iter_mut().zip(grads) {
            cell.apply_sgd(g, lr);
        }
        for (w, g) in self.head_w.iter_mut().zip(d_head_w) {
            *w -= lr * g;
        }
        self.head_b -= lr * d_head_b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_arch_dimensions() {
        let a = LstmArch::paper_baseline();
        assert_eq!(a.layers, 3);
        assert_eq!(a.hidden, 128);
        assert_eq!(a.seq_len, 32);
        // 4h(in+h)+4h per layer: 66_560+512, then 2 × (131_072+512), +head.
        assert_eq!(a.param_count(), 66_560 + 512 + 2 * (131_072 + 512) + 129);
        // 32 steps × (66,560 + 2 × 131,072) MACs + head = ~10.5 M.
        assert_eq!(a.macs_per_inference(), 32 * 328_704 + 128);
    }

    #[test]
    fn forward_is_deterministic_and_finite() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = LstmNetwork::new(
            LstmArch {
                layers: 2,
                hidden: 8,
                input: 2,
                seq_len: 4,
            },
            &mut rng,
        );
        let seq: Vec<Vec<f32>> = (0..4).map(|t| vec![t as f32 * 0.1, 0.5]).collect();
        let a = net.forward(&seq);
        let b = net.forward(&seq);
        assert_eq!(a, b);
        assert!(a.is_finite());
    }

    #[test]
    fn network_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = LstmNetwork::new(
            LstmArch {
                layers: 2,
                hidden: 3,
                input: 2,
                seq_len: 3,
            },
            &mut rng,
        );
        let seq: Vec<Vec<f32>> = vec![vec![0.2, -0.4], vec![0.6, 0.1], vec![-0.3, 0.5]];
        // Loss = 0.5 * score².
        let (cache, score) = net.forward_cached(&seq);
        let mut grads = net.zero_grads();
        let (dhw, dhb) = net.backward(&cache, score, &mut grads);

        let eps = 1e-3f32;
        let loss = |n: &LstmNetwork| {
            let s = n.forward(&seq);
            0.5 * s * s
        };
        // Head bias.
        let l0 = loss(&net);
        net.head_b += eps;
        let l_up = loss(&net);
        net.head_b -= eps;
        let fd = (l_up - l0) / eps;
        assert!(
            (fd - dhb).abs() < 3e-2 * fd.abs().max(1.0),
            "dhb fd {fd} vs {dhb}"
        );

        // A couple of first-layer Wx entries.
        for (r, c) in [(0usize, 0usize), (5, 1)] {
            let orig = net.cells[0].wx.at(r, c);
            *net.cells[0].wx.at_mut(r, c) = orig + eps;
            let up = loss(&net);
            *net.cells[0].wx.at_mut(r, c) = orig - eps;
            let down = loss(&net);
            *net.cells[0].wx.at_mut(r, c) = orig;
            let fd = (up - down) / (2.0 * eps);
            let an = grads[0].wx.at(r, c);
            assert!(
                (fd - an).abs() < 3e-2 * fd.abs().max(1.0),
                "dWx[{r},{c}] fd {fd} vs {an}"
            );
        }
        let _ = dhw;
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sequence_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = LstmNetwork::new(
            LstmArch {
                layers: 1,
                hidden: 2,
                input: 2,
                seq_len: 2,
            },
            &mut rng,
        );
        let _ = net.forward(&[]);
    }
}
