//! [`ScoreSource`] adapter: drive the cache simulator with LSTM scores.
//!
//! The predictor keeps a sliding window of the last `seq_len` observed
//! `(page, timestamp)` features (the same inputs the GMM sees) and runs a
//! forward pass on demand. Note the contrast the paper draws: the GMM
//! scores a page from its *current* `(P, T)` point alone, while the LSTM
//! must re-process a 32-step history every time — that history is exactly
//! why its hardware needs sequence buffers and 4 orders of magnitude more
//! latency.

use crate::network::LstmNetwork;
use icgmm_cache::ScoreSource;
use icgmm_trace::{TimestampTransformer, TraceRecord};
use std::collections::VecDeque;

/// Sliding-window LSTM score source.
#[derive(Clone, Debug)]
pub struct LstmScoreSource {
    net: LstmNetwork,
    window: VecDeque<Vec<f32>>,
    transformer: TimestampTransformer,
    page_center: f64,
    page_scale: f64,
    time_scale: f64,
}

impl LstmScoreSource {
    /// Wraps a (typically trained) network.
    ///
    /// `page_center`/`page_scale` normalize raw page indices into roughly
    /// `[-1, 1]` (use the trace's min/max); `len_window`/`len_access_shot`
    /// must match the values used elsewhere (paper defaults 32 / 10 000).
    pub fn new(
        net: LstmNetwork,
        page_center: f64,
        page_scale: f64,
        len_window: u32,
        len_access_shot: u32,
    ) -> Self {
        let time_scale = f64::from(len_access_shot).max(1.0);
        LstmScoreSource {
            net,
            window: VecDeque::new(),
            transformer: TimestampTransformer::new(len_window, len_access_shot),
            page_center,
            page_scale: page_scale.max(1.0),
            time_scale,
        }
    }

    fn features(&mut self, record: &TraceRecord) -> Vec<f32> {
        let ts = self.transformer.next();
        let p = (record.page().raw() as f64 - self.page_center) / self.page_scale;
        let t = ts as f64 / self.time_scale;
        vec![p as f32, t as f32]
    }
}

impl ScoreSource for LstmScoreSource {
    fn observe(&mut self, record: &TraceRecord) {
        let f = self.features(record);
        let cap = self.net.arch().seq_len;
        if self.window.len() == cap {
            self.window.pop_front();
        }
        self.window.push_back(f);
    }

    fn score_current(&mut self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        let seq: Vec<Vec<f32>> = self.window.iter().cloned().collect();
        f64::from(self.net.forward(&seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::LstmArch;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn source() -> LstmScoreSource {
        let mut rng = StdRng::seed_from_u64(1);
        let net = LstmNetwork::new(
            LstmArch {
                layers: 1,
                hidden: 4,
                input: 2,
                seq_len: 4,
            },
            &mut rng,
        );
        LstmScoreSource::new(net, 1000.0, 1000.0, 2, 100)
    }

    #[test]
    fn empty_window_scores_zero() {
        let mut s = source();
        assert_eq!(s.score_current(), 0.0);
    }

    #[test]
    fn window_is_bounded_by_seq_len() {
        let mut s = source();
        for i in 0..20u64 {
            s.observe(&TraceRecord::read(i << 12));
        }
        assert_eq!(s.window.len(), 4);
        assert!(s.score_current().is_finite());
    }

    #[test]
    fn scores_depend_on_history() {
        let mut a = source();
        let mut b = source();
        for i in 0..4u64 {
            a.observe(&TraceRecord::read(i << 12));
            b.observe(&TraceRecord::read((5000 + i) << 12));
        }
        assert_ne!(a.score_current(), b.score_current());
    }
}
