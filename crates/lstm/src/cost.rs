//! FPGA cost model for the LSTM policy engine (paper Table 2, LSTM row).
//!
//! BRAM follows from parameter and activation storage; DSP is the design's
//! multiplier budget; latency follows from the MAC count, the DSP budget
//! and an *effective efficiency* — the fraction of peak MAC throughput the
//! synthesized design actually sustains. The paper's measured 46.3 ms for
//! the 3×128/seq-32 baseline implies an efficiency well below 1 % (the
//! recurrent dependency serializes timesteps and gates, and weights stream
//! from BRAM), which [`LstmCostModel::paper_calibrated`] encodes. Even a
//! hypothetical 100 %-efficient LSTM (`efficiency = 1.0`) remains ~100×
//! slower than the GMM engine — the ablation harness prints both.

use crate::network::LstmArch;
use serde::{Deserialize, Serialize};

/// A Table 2-style resource/latency row.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FpgaCost {
    /// 36 Kb BRAM tiles.
    pub bram_36k: u32,
    /// DSP48 slices.
    pub dsp: u32,
    /// Look-up tables.
    pub lut: u32,
    /// Flip-flops.
    pub ff: u32,
    /// End-to-end inference latency, µs.
    pub latency_us: f64,
}

/// Cost model parameters for an LSTM engine.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LstmCostModel {
    /// Clock frequency (the paper's design runs at 233 MHz).
    pub clock_mhz: f64,
    /// DSP multipliers allocated to the engine.
    pub dsp_budget: u32,
    /// Sustained fraction of peak MAC throughput (0, 1].
    pub efficiency: f64,
    /// Bytes per parameter (f32 ⇒ 4).
    pub bytes_per_param: u32,
    /// LUTs charged per DSP lane (datapath + control), calibrated.
    pub lut_per_dsp: u32,
    /// Base LUTs (FIFOs, AXI, FSMs), calibrated.
    pub lut_base: u32,
    /// FFs per DSP lane (pipeline registers), calibrated.
    pub ff_per_dsp: u32,
    /// Base FFs, calibrated.
    pub ff_base: u32,
}

/// Usable bytes in one 36 Kb BRAM tile.
const BRAM_BYTES: u64 = 4608;

impl LstmCostModel {
    /// Constants calibrated so the paper's 3×128/seq-32 baseline reproduces
    /// Table 2's LSTM row (339 BRAM / 145 DSP / 85 k LUT / 104 k FF /
    /// 46.3 ms at 233 MHz).
    pub fn paper_calibrated() -> Self {
        LstmCostModel {
            clock_mhz: 233.0,
            dsp_budget: 145,
            // 10.5 M MACs / (145 DSP × 233 MHz × e) = 46.3 ms ⇒ e ≈ 0.0067.
            efficiency: 0.0067,
            bytes_per_param: 4,
            lut_per_dsp: 400,
            lut_base: 27_000,
            ff_per_dsp: 500,
            ff_base: 31_000,
        }
    }

    /// Estimates the Table 2 row for an architecture.
    ///
    /// # Panics
    ///
    /// Panics when `efficiency` or `clock_mhz` are not positive.
    pub fn estimate(&self, arch: &LstmArch) -> FpgaCost {
        assert!(self.efficiency > 0.0, "efficiency must be positive");
        assert!(self.clock_mhz > 0.0, "clock must be positive");
        let param_bytes = arch.param_count() as u64 * u64::from(self.bytes_per_param);
        // Activations: h and c per layer, plus the seq_len input buffer.
        let act_bytes = (2 * arch.layers * arch.hidden
            + arch.seq_len * arch.input
            + arch.seq_len * arch.hidden) as u64
            * 4;
        // I/O & double-buffering overhead tiles (FIFOs, weight prefetch).
        let overhead_tiles = 32u64;
        let bram =
            param_bytes.div_ceil(BRAM_BYTES) + act_bytes.div_ceil(BRAM_BYTES) + overhead_tiles;

        let macs = arch.macs_per_inference() as f64;
        let peak_macs_per_us = f64::from(self.dsp_budget) * self.clock_mhz;
        let latency_us = macs / (peak_macs_per_us * self.efficiency);

        FpgaCost {
            bram_36k: bram as u32,
            dsp: self.dsp_budget,
            lut: self.lut_base + self.lut_per_dsp * self.dsp_budget,
            ff: self.ff_base + self.ff_per_dsp * self.dsp_budget,
            latency_us,
        }
    }
}

impl Default for LstmCostModel {
    fn default() -> Self {
        LstmCostModel::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_reproduces_table2_row() {
        let cost = LstmCostModel::paper_calibrated().estimate(&LstmArch::paper_baseline());
        // Latency within 10% of 46.3 ms.
        assert!(
            (cost.latency_us - 46_300.0).abs() < 4_600.0,
            "latency {} µs",
            cost.latency_us
        );
        // BRAM within 20% of 339.
        assert!(
            (f64::from(cost.bram_36k) - 339.0).abs() < 68.0,
            "bram {}",
            cost.bram_36k
        );
        assert_eq!(cost.dsp, 145);
        assert!(
            (f64::from(cost.lut) - 85_029.0).abs() < 8_500.0,
            "lut {}",
            cost.lut
        );
        assert!(
            (f64::from(cost.ff) - 103_561.0).abs() < 10_400.0,
            "ff {}",
            cost.ff
        );
    }

    #[test]
    fn even_perfect_efficiency_is_far_slower_than_gmm() {
        let ideal = LstmCostModel {
            efficiency: 1.0,
            ..LstmCostModel::paper_calibrated()
        };
        let cost = ideal.estimate(&LstmArch::paper_baseline());
        // The GMM engine finishes in 3 µs; a perfect LSTM still needs >100×.
        assert!(cost.latency_us > 3.0 * 100.0, "{}", cost.latency_us);
    }

    #[test]
    fn smaller_models_cost_less() {
        let model = LstmCostModel::paper_calibrated();
        let big = model.estimate(&LstmArch::paper_baseline());
        let small = model.estimate(&LstmArch {
            layers: 1,
            hidden: 32,
            input: 2,
            seq_len: 8,
        });
        assert!(small.bram_36k < big.bram_36k);
        assert!(small.latency_us < big.latency_us);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn zero_efficiency_panics() {
        let bad = LstmCostModel {
            efficiency: 0.0,
            ..LstmCostModel::paper_calibrated()
        };
        let _ = bad.estimate(&LstmArch::paper_baseline());
    }
}
