//! Training loop for the LSTM baseline (truncated BPTT, SGD with gradient
//! clipping, MSE loss).
//!
//! The paper reports that a lightweight LSTM "is hard to converge across
//! the same traces used for GMM" (§5.3); [`TrainReport::losses`] lets the
//! benchmark harness show exactly that behaviour next to the GMM's EM
//! convergence.

use crate::network::{LstmArch, LstmNetwork};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};
use serde::{Deserialize, Serialize};

/// One supervised example: a feature sequence and its target score.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainExample {
    /// Feature vectors, one per timestep.
    pub seq: Vec<Vec<f32>>,
    /// Regression target (e.g. next-window access frequency).
    pub target: f32,
}

/// Training hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Epochs over the dataset.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Per-sequence gradient L2 clip (0 disables).
    pub grad_clip: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            lr: 0.05,
            grad_clip: 1.0,
            seed: 7,
        }
    }
}

/// Outcome of a training run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean squared error after each epoch.
    pub losses: Vec<f32>,
}

impl TrainReport {
    /// Final epoch loss.
    pub fn final_loss(&self) -> f32 {
        *self.losses.last().unwrap_or(&f32::INFINITY)
    }
}

/// Trains `net` in place on `examples`.
///
/// # Panics
///
/// Panics when `examples` is empty.
pub fn train(net: &mut LstmNetwork, examples: &[TrainExample], cfg: &TrainConfig) -> TrainReport {
    assert!(!examples.is_empty(), "training set must be non-empty");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..examples.len()).collect();
    let mut losses = Vec::with_capacity(cfg.epochs);

    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        for &i in &order {
            let ex = &examples[i];
            let (cache, score) = net.forward_cached(&ex.seq);
            let err = score - ex.target;
            epoch_loss += err * err;

            let mut grads = net.zero_grads();
            let (mut dhw, mut dhb) = net.backward(&cache, err, &mut grads);

            if cfg.grad_clip > 0.0 {
                // Global L2 norm over all gradients.
                let mut norm_sq = dhb * dhb;
                for v in &dhw {
                    norm_sq += v * v;
                }
                for g in &grads {
                    norm_sq += g.wx.data().iter().map(|v| v * v).sum::<f32>();
                    norm_sq += g.wh.data().iter().map(|v| v * v).sum::<f32>();
                    norm_sq += g.b.iter().map(|v| v * v).sum::<f32>();
                }
                let norm = norm_sq.sqrt();
                if norm > cfg.grad_clip {
                    let scale = cfg.grad_clip / norm;
                    for g in &mut grads {
                        for v in g.wx.data_mut() {
                            *v *= scale;
                        }
                        for v in g.wh.data_mut() {
                            *v *= scale;
                        }
                        for v in &mut g.b {
                            *v *= scale;
                        }
                    }
                    for v in &mut dhw {
                        *v *= scale;
                    }
                    dhb *= scale;
                }
            }
            net.apply_sgd(&grads, &dhw, dhb, cfg.lr);
        }
        losses.push(epoch_loss / examples.len() as f32);
    }
    TrainReport { losses }
}

/// Builds a synthetic "frequency prediction" dataset mirroring how the
/// cache baseline would be trained: sequences whose mean feature value
/// determines the target. Used by tests and the Table 2 harness.
pub fn synthetic_dataset(arch: &LstmArch, n: usize, seed: u64) -> Vec<TrainExample> {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let hot: bool = rng.gen();
            let seq: Vec<Vec<f32>> = (0..arch.seq_len)
                .map(|_| {
                    let base = if hot { 0.8 } else { -0.8 };
                    (0..arch.input)
                        .map(|_| base + rng.gen::<f32>() * 0.2 - 0.1)
                        .collect()
                })
                .collect();
            TrainExample {
                seq,
                target: if hot { 1.0 } else { 0.0 },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_arch() -> LstmArch {
        LstmArch {
            layers: 1,
            hidden: 8,
            input: 2,
            seq_len: 6,
        }
    }

    #[test]
    fn loss_decreases_on_separable_data() {
        let arch = tiny_arch();
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = LstmNetwork::new(arch, &mut rng);
        let data = synthetic_dataset(&arch, 60, 2);
        let report = train(
            &mut net,
            &data,
            &TrainConfig {
                epochs: 15,
                lr: 0.05,
                ..Default::default()
            },
        );
        let first = report.losses[0];
        let last = report.final_loss();
        assert!(
            last < first * 0.5,
            "loss did not halve: {first} -> {last} ({:?})",
            report.losses
        );
    }

    #[test]
    fn trained_model_separates_classes() {
        let arch = tiny_arch();
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = LstmNetwork::new(arch, &mut rng);
        let data = synthetic_dataset(&arch, 80, 4);
        train(
            &mut net,
            &data,
            &TrainConfig {
                epochs: 20,
                ..Default::default()
            },
        );
        let hot: Vec<Vec<f32>> = (0..arch.seq_len).map(|_| vec![0.8, 0.8]).collect();
        let cold: Vec<Vec<f32>> = (0..arch.seq_len).map(|_| vec![-0.8, -0.8]).collect();
        assert!(
            net.forward(&hot) > net.forward(&cold),
            "hot {} <= cold {}",
            net.forward(&hot),
            net.forward(&cold)
        );
    }

    #[test]
    fn clipping_keeps_training_stable_at_high_lr() {
        let arch = tiny_arch();
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = LstmNetwork::new(arch, &mut rng);
        let data = synthetic_dataset(&arch, 30, 6);
        let report = train(
            &mut net,
            &data,
            &TrainConfig {
                epochs: 5,
                lr: 0.5,
                grad_clip: 0.5,
                seed: 1,
            },
        );
        assert!(
            report.losses.iter().all(|l| l.is_finite()),
            "{:?}",
            report.losses
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_dataset_panics() {
        let arch = tiny_arch();
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = LstmNetwork::new(arch, &mut rng);
        let _ = train(&mut net, &[], &TrainConfig::default());
    }
}
