//! One LSTM cell (a single layer's recurrence) with forward and backward
//! passes.

use crate::tensor::{sigmoid, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// LSTM cell: gates `i, f, g, o` packed in that order along the 4h axis.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LstmCell {
    /// Input weights, `4h × input`.
    pub(crate) wx: Matrix,
    /// Recurrent weights, `4h × h`.
    pub(crate) wh: Matrix,
    /// Bias, length `4h`.
    pub(crate) b: Vec<f32>,
    hidden: usize,
    input: usize,
}

/// Hidden/cell state of one layer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellState {
    /// Hidden vector `h` (length = hidden size).
    pub h: Vec<f32>,
    /// Cell vector `c` (length = hidden size).
    pub c: Vec<f32>,
}

impl CellState {
    /// Zero state for a hidden size.
    pub fn zeros(hidden: usize) -> Self {
        CellState {
            h: vec![0.0; hidden],
            c: vec![0.0; hidden],
        }
    }
}

/// Values captured during forward that backward needs.
#[derive(Clone, Debug)]
pub struct CellCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    /// Post-activation gates `[i, f, g, o]`, each of length h.
    gates: Vec<f32>,
    c: Vec<f32>,
}

/// Parameter gradients of one cell.
#[derive(Clone, Debug)]
pub struct CellGrads {
    /// d/dWx.
    pub wx: Matrix,
    /// d/dWh.
    pub wh: Matrix,
    /// d/db.
    pub b: Vec<f32>,
}

impl CellGrads {
    /// Zero gradients matching `cell`.
    pub fn zeros(cell: &LstmCell) -> Self {
        CellGrads {
            wx: Matrix::zeros(cell.wx.rows(), cell.wx.cols()),
            wh: Matrix::zeros(cell.wh.rows(), cell.wh.cols()),
            b: vec![0.0; cell.b.len()],
        }
    }
}

impl LstmCell {
    /// Creates a cell with Gaussian weights (std `0.08`) and the customary
    /// forget-gate bias of 1.
    pub fn new<R: Rng + ?Sized>(input: usize, hidden: usize, rng: &mut R) -> Self {
        let mut b = vec![0.0f32; 4 * hidden];
        for v in &mut b[hidden..2 * hidden] {
            *v = 1.0; // forget-gate bias
        }
        LstmCell {
            wx: Matrix::randn(4 * hidden, input, 0.08, rng),
            wh: Matrix::randn(4 * hidden, hidden, 0.08, rng),
            b,
            hidden,
            input,
        }
    }

    /// Hidden size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input size.
    pub fn input(&self) -> usize {
        self.input
    }

    /// Trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.wx.len() + self.wh.len() + self.b.len()
    }

    /// One timestep. Returns the new state and (optionally cheap) cache.
    ///
    /// # Panics
    ///
    /// Panics if `x` or the state sizes disagree with the cell dimensions.
    pub fn forward(&self, x: &[f32], state: &CellState) -> (CellState, CellCache) {
        assert_eq!(x.len(), self.input, "input size mismatch");
        assert_eq!(state.h.len(), self.hidden, "state size mismatch");
        let h = self.hidden;
        let mut z = self.b.clone();
        self.wx.matvec_acc(x, &mut z);
        self.wh.matvec_acc(&state.h, &mut z);

        let mut gates = vec![0.0f32; 4 * h];
        for j in 0..h {
            gates[j] = sigmoid(z[j]); // i
            gates[h + j] = sigmoid(z[h + j]); // f
            gates[2 * h + j] = z[2 * h + j].tanh(); // g
            gates[3 * h + j] = sigmoid(z[3 * h + j]); // o
        }
        let mut c = vec![0.0f32; h];
        let mut h_out = vec![0.0f32; h];
        for j in 0..h {
            c[j] = gates[h + j] * state.c[j] + gates[j] * gates[2 * h + j];
            h_out[j] = gates[3 * h + j] * c[j].tanh();
        }
        let cache = CellCache {
            x: x.to_vec(),
            h_prev: state.h.clone(),
            c_prev: state.c.clone(),
            gates,
            c: c.clone(),
        };
        (CellState { h: h_out, c }, cache)
    }

    /// Backward through one timestep.
    ///
    /// `dh`/`dc` are the gradients flowing into this step's outputs;
    /// returns `(dx, dh_prev, dc_prev)` and accumulates into `grads`.
    pub fn backward(
        &self,
        cache: &CellCache,
        dh: &[f32],
        dc_in: &[f32],
        grads: &mut CellGrads,
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let h = self.hidden;
        let g = &cache.gates;
        let mut dz = vec![0.0f32; 4 * h];
        let mut dc_prev = vec![0.0f32; h];
        for j in 0..h {
            let (gi, gf, gg, go) = (g[j], g[h + j], g[2 * h + j], g[3 * h + j]);
            let tc = cache.c[j].tanh();
            let do_ = dh[j] * tc;
            let dc = dc_in[j] + dh[j] * go * (1.0 - tc * tc);
            let di = dc * gg;
            let df = dc * cache.c_prev[j];
            let dg = dc * gi;
            dc_prev[j] = dc * gf;
            dz[j] = di * gi * (1.0 - gi);
            dz[h + j] = df * gf * (1.0 - gf);
            dz[2 * h + j] = dg * (1.0 - gg * gg);
            dz[3 * h + j] = do_ * go * (1.0 - go);
        }
        grads.wx.outer_acc(&dz, &cache.x);
        grads.wh.outer_acc(&dz, &cache.h_prev);
        for (gb, d) in grads.b.iter_mut().zip(&dz) {
            *gb += d;
        }
        let mut dx = vec![0.0f32; self.input];
        self.wx.t_matvec_acc(&dz, &mut dx);
        let mut dh_prev = vec![0.0f32; h];
        self.wh.t_matvec_acc(&dz, &mut dh_prev);
        (dx, dh_prev, dc_prev)
    }

    /// Applies a gradient step `θ -= lr · g` (plain SGD; Adam lives in
    /// [`crate::train`]).
    pub fn apply_sgd(&mut self, grads: &CellGrads, lr: f32) {
        self.wx.axpy(-lr, &grads.wx);
        self.wh.axpy(-lr, &grads.wh);
        for (b, g) in self.b.iter_mut().zip(&grads.b) {
            *b -= lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes_and_determinism() {
        let mut rng = StdRng::seed_from_u64(3);
        let cell = LstmCell::new(2, 4, &mut rng);
        let s0 = CellState::zeros(4);
        let (s1, _) = cell.forward(&[0.5, -0.2], &s0);
        assert_eq!(s1.h.len(), 4);
        assert_eq!(s1.c.len(), 4);
        let (s1b, _) = cell.forward(&[0.5, -0.2], &s0);
        assert_eq!(s1, s1b);
        assert_eq!(cell.param_count(), 4 * 4 * 2 + 4 * 4 * 4 + 16);
    }

    #[test]
    fn outputs_are_bounded() {
        let mut rng = StdRng::seed_from_u64(4);
        let cell = LstmCell::new(2, 8, &mut rng);
        let mut s = CellState::zeros(8);
        for t in 0..100 {
            let x = [(t as f32).sin() * 10.0, (t as f32).cos() * 10.0];
            let (ns, _) = cell.forward(&x, &s);
            s = ns;
            assert!(s.h.iter().all(|v| v.abs() <= 1.0), "h out of range");
        }
    }

    /// Finite-difference gradient check — the canonical LSTM correctness
    /// test. Checks dWx, dWh, db and dx on a tiny cell.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut cell = LstmCell::new(2, 3, &mut rng);
        let s0 = CellState::zeros(3);
        let x = [0.3f32, -0.7];

        // Loss = sum(h).
        let loss = |cell: &LstmCell| {
            let (s1, _) = cell.forward(&x, &s0);
            s1.h.iter().sum::<f32>()
        };
        let (s1, cache) = cell.forward(&x, &s0);
        let dh = vec![1.0f32; 3];
        let dc = vec![0.0f32; 3];
        let mut grads = CellGrads::zeros(&cell);
        let (dx, _, _) = cell.backward(&cache, &dh, &dc, &mut grads);
        let _ = s1;

        let eps = 1e-3f32;
        // Check a scattering of Wx entries.
        for (r, c) in [(0, 0), (3, 1), (7, 0), (11, 1)] {
            let orig = cell.wx.at(r, c);
            *cell.wx.at_mut(r, c) = orig + eps;
            let up = loss(&cell);
            *cell.wx.at_mut(r, c) = orig - eps;
            let down = loss(&cell);
            *cell.wx.at_mut(r, c) = orig;
            let fd = (up - down) / (2.0 * eps);
            let an = grads.wx.at(r, c);
            assert!(
                (fd - an).abs() < 2e-2 * fd.abs().max(1.0),
                "dWx[{r},{c}]: fd {fd} vs analytic {an}"
            );
        }
        // Check bias entries.
        for j in [0usize, 4, 8] {
            let orig = cell.b[j];
            cell.b[j] = orig + eps;
            let up = loss(&cell);
            cell.b[j] = orig - eps;
            let down = loss(&cell);
            cell.b[j] = orig;
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - grads.b[j]).abs() < 2e-2 * fd.abs().max(1.0),
                "db[{j}]: fd {fd} vs {}",
                grads.b[j]
            );
        }
        // Check dx via perturbing the input.
        for j in 0..2 {
            let mut xp = x;
            xp[j] += eps;
            let (sp, _) = cell.forward(&xp, &s0);
            let up: f32 = sp.h.iter().sum();
            let mut xm = x;
            xm[j] -= eps;
            let (sm, _) = cell.forward(&xm, &s0);
            let down: f32 = sm.h.iter().sum();
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - dx[j]).abs() < 2e-2 * fd.abs().max(1.0),
                "dx[{j}]: fd {fd} vs {}",
                dx[j]
            );
        }
    }
}
