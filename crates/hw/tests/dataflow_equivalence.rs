//! Property tests: the batched dataflow replay (speculative miss-window
//! batcher under the cycle-approximate timing model) produces a
//! `DataflowReport` bit-identical to the streaming reference — functional
//! counters *and* every timing field (`makespan_us`, `avg_request_us`,
//! `avg_queue_us`, `gmm_busy_us`, `overlap_saved_us`, SSD stats, loader
//! stalls) — over random Zipf traces × eviction policies × admission
//! policies × score-source shapes, warm-up splits and overlap on/off
//! included. Only the host-side `spec` telemetry may differ.

use icgmm_cache::{ScoreSource, SpecParams};
use icgmm_hw::{
    run_dataflow_batched_with_warmup, run_dataflow_streaming_with_warmup, DataflowConfig,
    DataflowReport,
};
use icgmm_testutil::{
    admission_for, eviction_for, score_for, small_cfg, zipf_trace, ADMISSIONS, EVICTIONS, SCORES,
};
use icgmm_trace::TraceRecord;
use proptest::prelude::*;

/// Runs the streaming and batched dataflow replays over the same inputs.
#[allow(clippy::too_many_arguments)]
fn run_pair(
    eviction: &str,
    admission: &str,
    score: &str,
    trace: &[TraceRecord],
    warmup_len: usize,
    window: usize,
    overlap: bool,
) -> (DataflowReport, DataflowReport) {
    let cfg = small_cfg();
    let df_cfg = DataflowConfig {
        overlap_policy_with_ssd: overlap,
        ..Default::default()
    };
    let (warm, meas) = trace.split_at(warmup_len);

    let mut ev1 = eviction_for(eviction, cfg, trace);
    let mut ad1 = admission_for(admission);
    let mut sc1 = score_for(score);
    let streaming = run_dataflow_streaming_with_warmup(
        warm,
        meas,
        cfg,
        ad1.as_mut(),
        ev1.as_mut(),
        sc1.as_deref_mut().map(|s| s as &mut dyn ScoreSource),
        &df_cfg,
    )
    .expect("valid geometry");

    let mut ev2 = eviction_for(eviction, cfg, trace);
    let mut ad2 = admission_for(admission);
    let mut sc2 = score_for(score);
    let batched = run_dataflow_batched_with_warmup(
        warm,
        meas,
        cfg,
        ad2.as_mut(),
        ev2.as_mut(),
        sc2.as_deref_mut().map(|s| s as &mut dyn ScoreSource),
        &df_cfg,
        SpecParams::with_window(window),
    )
    .expect("valid geometry");
    (streaming, batched)
}

proptest! {
    /// Bit-identical `DataflowReport`s — stats *and* every timing field —
    /// for every eviction × admission × score combination over random
    /// Zipf traces with a random warm-up split, a random speculation
    /// window, and overlap on/off.
    #[test]
    fn batched_dataflow_matches_streaming(
        params in (0u64..1_000_000, 300usize..1000, 24u64..160, (60u64..140), 0u8..45, 1usize..1500)
    ) {
        let (seed, n, pages, skew_pct, write_pct, window) = params;
        let skew = skew_pct as f64 / 100.0;
        let trace = zipf_trace(seed, n, pages, skew, write_pct);
        let warmup_len = (seed as usize) % (n / 2);
        let overlap = seed % 2 == 0;
        for eviction in EVICTIONS {
            for admission in ADMISSIONS {
                for score in SCORES {
                    let (streaming, mut batched) =
                        run_pair(eviction, admission, score, &trace, warmup_len, window, overlap);
                    prop_assert!(streaming.spec.is_none());
                    // Score-free runs never speculate (the batcher
                    // delegates to streaming), so they report no telemetry.
                    prop_assert_eq!(batched.spec.is_some(), score != "none");
                    batched.spec = None;
                    prop_assert_eq!(
                        &streaming,
                        &batched,
                        "{}/{}/{} diverged (seed {}, n {}, window {}, overlap {})",
                        eviction, admission, score, seed, n, window, overlap
                    );
                }
            }
        }
    }
}

/// Deterministic spot check on an all-miss scan: every timing field of the
/// batched replay is bit-equal (`to_bits`) to streaming, and the batcher
/// actually batched (the scan is the regime the CI perf gate tracks).
#[test]
fn all_miss_scan_is_bit_equal_and_actually_batches() {
    let trace: Vec<TraceRecord> = (0..4_096u64).map(|p| TraceRecord::read(p << 12)).collect();
    let (streaming, batched) = run_pair("lru", "always", "fn", &trace, 512, 1024, true);
    let spec = batched.spec.expect("batched replay reports telemetry");
    assert!(spec.batched_scores > 0, "{spec:?}");
    assert_eq!(spec.divergences(), 0, "{spec:?}");
    for (name, a, b) in [
        ("makespan_us", streaming.makespan_us, batched.makespan_us),
        (
            "avg_request_us",
            streaming.avg_request_us,
            batched.avg_request_us,
        ),
        ("avg_queue_us", streaming.avg_queue_us, batched.avg_queue_us),
        ("gmm_busy_us", streaming.gmm_busy_us, batched.gmm_busy_us),
        (
            "overlap_saved_us",
            streaming.overlap_saved_us,
            batched.overlap_saved_us,
        ),
        ("ssd.busy_us", streaming.ssd.busy_us, batched.ssd.busy_us),
        (
            "ssd.queue_wait_us",
            streaming.ssd.queue_wait_us,
            batched.ssd.queue_wait_us,
        ),
    ] {
        assert_eq!(a.to_bits(), b.to_bits(), "{name}: {a} vs {b}");
    }
    assert_eq!(streaming.stats, batched.stats);
    assert_eq!(streaming.loader_stalls, batched.loader_stalls);
    assert_eq!(streaming.ssd.reads, batched.ssd.reads);
    assert_eq!(streaming.ssd.writes, batched.ssd.writes);
}
