//! Device-fault behaviour of the cycle-approximate dataflow model:
//! injected SSD failures, retries, timeouts and tail spikes perturb only
//! the *modeled timeline* (never the functional replay), the perturbation
//! is a deterministic function of `(plan seed, trace)`, and an empty
//! plan leaves the report bit-identical to today's model.

use icgmm_cache::{FaultPlan, ScoreSource, SpecParams};
use icgmm_hw::{
    run_dataflow_batched_with_warmup, run_dataflow_streaming_with_warmup, DataflowConfig,
    DataflowReport,
};
use icgmm_testutil::{
    admission_for, conflict_trace, eviction_for, score_for, small_cfg, zipf_trace,
};
use icgmm_trace::TraceRecord;
use proptest::prelude::*;

fn run_streaming(plan: FaultPlan, trace: &[TraceRecord], warmup_len: usize) -> DataflowReport {
    let cfg = small_cfg();
    let df_cfg = DataflowConfig {
        fault: plan,
        ..Default::default()
    };
    let (warm, meas) = trace.split_at(warmup_len);
    let mut ev = eviction_for("lru", cfg, trace);
    let mut ad = admission_for("always");
    run_dataflow_streaming_with_warmup(warm, meas, cfg, ad.as_mut(), ev.as_mut(), None, &df_cfg)
        .expect("valid geometry")
}

proptest! {
    /// An explicit empty plan is invisible to the dataflow model: the
    /// report is bit-identical to the default configuration's and its
    /// fault block is clean.
    #[test]
    fn empty_plan_dataflow_report_is_bit_identical(
        params in (0u64..1_000_000, 300usize..900, 24u64..160)
    ) {
        let (seed, n, pages) = params;
        let trace = zipf_trace(seed, n, pages, 0.9, 25);
        let warmup_len = (seed as usize) % (n / 2);
        let plain = run_streaming(FaultPlan::empty(), &trace, warmup_len);
        let armed = run_streaming(FaultPlan { seed, ..FaultPlan::empty() }, &trace, warmup_len);
        prop_assert!(plain.fault.is_clean());
        prop_assert_eq!(&plain, &armed);
    }
}

proptest! {
    /// Device faults charge the modeled timeline deterministically: the
    /// functional replay (stats, loader behaviour, op counts) is
    /// untouched, the makespan grows by the charged fault time, and two
    /// runs from the same seeds agree bit-for-bit.
    #[test]
    fn device_faults_charge_only_the_modeled_timeline(
        params in (0u64..1_000_000, 0u64..1_000_000, 400usize..1000, 200u64..800)
    ) {
        // Working sets well past the 32-block cache keep the measured
        // phase miss-heavy, so the plan has SSD commands to perturb.
        let (plan_seed, trace_seed, n, pages) = params;
        let trace = zipf_trace(trace_seed, n, pages, 0.8, 25);
        let plan = FaultPlan {
            seed: plan_seed,
            device_fail_per_mille: 120,
            device_spike_per_mille: 80,
            ..FaultPlan::empty()
        };
        let plain = run_streaming(FaultPlan::empty(), &trace, n / 4);
        let armed = run_streaming(plan, &trace, n / 4);

        prop_assert_eq!(&plain.stats, &armed.stats, "device faults altered functional replay");
        prop_assert_eq!(plain.loader_stalls, armed.loader_stalls);
        prop_assert_eq!(plain.ssd.reads, armed.ssd.reads);
        prop_assert_eq!(plain.ssd.writes, armed.ssd.writes);
        prop_assert!(
            armed.fault.device_failures + armed.fault.device_spikes > 0,
            "armed rates injected nothing over {} records", n
        );
        prop_assert!(armed.fault.device_fault_us > 0.0);
        prop_assert!(
            armed.makespan_us > plain.makespan_us,
            "charged fault time must extend the makespan"
        );

        let again = run_streaming(plan, &trace, n / 4);
        prop_assert_eq!(&armed, &again, "device faults must be deterministic");
    }
}

/// A device-armed *and* breaker-armed plan flows through the batched
/// dataflow path: breaker telemetry merges into the report's fault block
/// alongside the device counters, and the whole report reproduces from
/// its seeds.
#[test]
fn batched_dataflow_merges_device_and_breaker_fault_stats() {
    let trace = conflict_trace(4_000, 512, 17);
    let run = || {
        let cfg = small_cfg();
        let df_cfg = DataflowConfig {
            fault: FaultPlan {
                seed: 29,
                device_fail_per_mille: 120,
                device_spike_per_mille: 80,
                breaker_storm_windows: 1,
                breaker_cooldown_records: 96,
                ..FaultPlan::empty()
            },
            ..Default::default()
        };
        let (warm, meas) = trace.split_at(1_000);
        let mut ev = eviction_for("gmm-score", cfg, &trace);
        let mut ad = admission_for("threshold");
        let mut sc = score_for("fn");
        run_dataflow_batched_with_warmup(
            warm,
            meas,
            cfg,
            ad.as_mut(),
            ev.as_mut(),
            sc.as_deref_mut().map(|s| s as &mut dyn ScoreSource),
            &df_cfg,
            SpecParams::with_window(128),
        )
        .expect("valid geometry")
    };
    let report = run();
    assert!(report.fault.device_failures + report.fault.device_spikes > 0);
    assert!(report.fault.device_fault_us > 0.0);
    assert!(
        report.fault.breaker_trips > 0,
        "storm never tripped the breaker"
    );
    assert!(report.fault.breaker_streamed > 0);
    let again = run();
    assert_eq!(report, again, "fault-armed dataflow must be deterministic");
}
