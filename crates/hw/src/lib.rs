//! # icgmm-hw
//!
//! Cycle-approximate hardware model of the ICGMM FPGA prototype (DAC
//! 2024, Fig. 5): the dataflow architecture of free-running kernels
//! connected by bounded FIFOs, the pipelined GMM policy engine, the cache
//! control engine with parallel tag compare, the SSD access-latency
//! emulator, and an FPGA resource model calibrated against the paper's
//! Table 2.
//!
//! The paper's latency numbers come from an emulator *inside* the FPGA
//! (§4.2); this crate reproduces the same measurement methodology in
//! software, down to the 233 MHz clock:
//!
//! * hit ≈ 1 µs ([`CacheEngineModel::hit_us`]),
//! * GMM inference ≈ 3 µs at K = 256 ([`GmmEngineModel::latency_us`]),
//! * TLC SSD 75/900 µs ([`SsdProfile::tlc`]),
//! * overlap of inference with SSD access ([`run_dataflow`]).
//!
//! Host replay and modeled time are decoupled: [`run_dataflow`] /
//! [`run_dataflow_with_warmup`] route score sources that report
//! [`icgmm_cache::ScoreSource::prefers_batching`] (the GMM policy engine
//! at paper-scale K) through the speculative miss-window batcher by
//! default, so the replay *wall-clock* rides the batched scoring kernel —
//! while the *modeled* timeline stays strictly per-miss: each miss is
//! charged one GMM inference overlapped (or not) with its own SSD access,
//! with FIFO backpressure and SSD queueing, so every timing field of the
//! [`DataflowReport`] is bit-identical to the streaming reference
//! ([`run_dataflow_streaming_with_warmup`]). See the `system` module docs
//! for the mechanism (the cache crate's replay-event stream).
//!
//! ## Example
//!
//! ```
//! use icgmm_hw::{run_dataflow, DataflowConfig};
//! use icgmm_cache::{AlwaysAdmit, CacheConfig, LruPolicy};
//! use icgmm_trace::TraceRecord;
//!
//! let cfg = CacheConfig { capacity_bytes: 8 * 4096, block_bytes: 4096, ways: 2 };
//! let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
//! let trace: Vec<TraceRecord> = (0..64u64).map(|i| TraceRecord::read((i % 4) << 12)).collect();
//! let report = run_dataflow(&trace, cfg, &mut AlwaysAdmit, &mut lru, None, &DataflowConfig::default())?;
//! assert_eq!(report.stats.misses(), 4);
//! # Ok::<(), icgmm_cache::CacheConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache_engine;
mod clock;
mod fifo;
mod gmm_engine;
mod kernel;
mod resources;
mod ssd;
mod system;

pub use cache_engine::CacheEngineModel;
pub use clock::{ClockDomain, Cycles};
pub use fifo::{BoundedFifo, FifoStats};
pub use gmm_engine::{GmmEngine, GmmEngineModel};
pub use kernel::{run_until_done, Kernel, KernelStats};
pub use resources::{table2, GmmResourceModel, ResourceEstimate};
pub use ssd::{SsdEmulator, SsdProfile, SsdStats};
pub use system::{
    run_dataflow, run_dataflow_batched_with_warmup, run_dataflow_streaming_with_warmup,
    run_dataflow_with_warmup, DataflowConfig, DataflowReport,
};
