//! Cache-control-engine timing model (paper §4.2).
//!
//! The hardware decodes the set index, bursts the set's tags + GMM scores
//! from HBM into an on-board buffer, compares all tags *in parallel*
//! (1 cycle, vs. `ways` cycles sequentially), and on a hit moves the data
//! HBM→host. The paper measures ≈1 µs end-to-end for a hit at 233 MHz;
//! the defaults below decompose that figure.

use crate::clock::{ClockDomain, Cycles};
use serde::{Deserialize, Serialize};

/// Timing parameters of the cache control engine.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CacheEngineModel {
    /// Request decode + set-index extraction.
    pub decode_cycles: u64,
    /// HBM burst of the set's tag/score entries into the on-board buffer.
    pub tag_fetch_cycles: u64,
    /// Tag comparison (1 with the partitioned parallel compare).
    pub compare_cycles: u64,
    /// Data movement + response on a hit (dominates the 1 µs hit time).
    pub hit_data_cycles: u64,
    /// Tag/score write-back after an insertion or eviction decision.
    pub update_cycles: u64,
    /// Clock domain.
    pub clock: ClockDomain,
}

impl CacheEngineModel {
    /// Calibrated to the paper's ≈1 µs measured hit time at 233 MHz
    /// (233 cycles total).
    pub fn paper_default() -> Self {
        CacheEngineModel {
            decode_cycles: 4,
            tag_fetch_cycles: 48,
            compare_cycles: 1,
            hit_data_cycles: 180,
            update_cycles: 8,
            clock: ClockDomain::paper_233mhz(),
        }
    }

    /// Cycles to determine hit/miss (decode + fetch + compare).
    pub fn lookup_cycles(&self) -> Cycles {
        Cycles(self.decode_cycles + self.tag_fetch_cycles + self.compare_cycles)
    }

    /// End-to-end hit latency in cycles.
    pub fn hit_cycles(&self) -> Cycles {
        self.lookup_cycles() + Cycles(self.hit_data_cycles)
    }

    /// End-to-end hit latency in µs (the paper's 1 µs).
    pub fn hit_us(&self) -> f64 {
        self.clock.cycles_to_us(self.hit_cycles())
    }

    /// Overhead cycles a miss spends in the engine besides the SSD/GMM
    /// work (lookup + tag/score update).
    pub fn miss_overhead_cycles(&self) -> Cycles {
        self.lookup_cycles() + Cycles(self.update_cycles)
    }

    /// Miss overhead in µs.
    pub fn miss_overhead_us(&self) -> f64 {
        self.clock.cycles_to_us(self.miss_overhead_cycles())
    }

    /// What sequential tag comparison would cost instead of the parallel
    /// compare (the paper's motivation for partitioning the tag buffer).
    pub fn sequential_compare_cycles(&self, ways: usize) -> Cycles {
        Cycles(self.decode_cycles + self.tag_fetch_cycles + ways as u64)
    }
}

impl Default for CacheEngineModel {
    fn default() -> Self {
        CacheEngineModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_time_is_one_us() {
        let m = CacheEngineModel::paper_default();
        assert_eq!(m.hit_cycles(), Cycles(233));
        assert!((m.hit_us() - 1.0).abs() < 0.01, "{}", m.hit_us());
    }

    #[test]
    fn parallel_compare_beats_sequential() {
        let m = CacheEngineModel::paper_default();
        let par = m.lookup_cycles();
        let seq = m.sequential_compare_cycles(8);
        assert!(par < seq);
        assert_eq!((seq - par).0, 7); // 8 ways sequential vs 1 parallel
    }

    #[test]
    fn miss_overhead_is_small_vs_ssd() {
        let m = CacheEngineModel::paper_default();
        // Engine-side miss overhead must be tiny next to a 75 µs SSD read.
        assert!(m.miss_overhead_us() < 1.0);
    }
}
