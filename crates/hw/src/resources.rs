//! FPGA resource model for the GMM policy engine (paper Table 2, GMM row,
//! and §5.1: "only 190 (14 %) BRAM and 117 (2 %) DSP consumption" for the
//! whole ICGMM system).
//!
//! First-principles storage accounting (weight buffer, exp LUT, tag/score
//! set buffer) drives BRAM; the DSP/LUT/FF figures combine a datapath
//! decomposition with per-unit constants calibrated against Table 2's GMM
//! row {BRAM 8, DSP 113, LUT 58 353, FF 152 583}. What the model is *for*
//! is scaling: how resources move with K, LUT-table size and pipeline
//! depth, so the ablation harness can trade accuracy against area.

use serde::{Deserialize, Serialize};

/// A Table 2-style resource row (see also `icgmm_lstm::FpgaCost` for the
/// LSTM side).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// 36 Kb BRAM tiles.
    pub bram_36k: u32,
    /// DSP48 slices.
    pub dsp: u32,
    /// Look-up tables.
    pub lut: u32,
    /// Flip-flops.
    pub ff: u32,
}

/// Resource model for the GMM engine.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GmmResourceModel {
    /// Mixture components.
    pub k: usize,
    /// Bytes per stored parameter word (the hardware packs to 32 bits).
    pub bytes_per_word: u32,
    /// exp LUT entries.
    pub exp_lut_entries: u32,
    /// Pipeline depth (drives FF count — the deep II=1 pipeline is why the
    /// GMM row has *more* FFs than the LSTM row despite far less memory).
    pub pipeline_depth: u32,
    /// Fixed-point multipliers in the datapath (quadratic form, exp
    /// interpolation, coefficient scaling).
    pub datapath_mults: u32,
    /// DSP48 slices per 32×32 fixed multiplier.
    pub dsp_per_mult: u32,
    /// DSPs for address generation and control.
    pub control_dsp: u32,
    /// LUTs per DSP lane, calibrated.
    pub lut_per_dsp: u32,
    /// Base LUTs (FIFOs, control FSMs), calibrated.
    pub lut_base: u32,
    /// FFs per pipeline stage (datapath width × registers), calibrated.
    pub ff_per_stage: u32,
    /// Base FFs, calibrated.
    pub ff_base: u32,
}

/// Usable bytes in one 36 Kb BRAM tile.
const BRAM_BYTES: u32 = 4608;

impl GmmResourceModel {
    /// Calibrated to Table 2's GMM row for K = 256.
    pub fn paper_k256() -> Self {
        GmmResourceModel {
            k: 256,
            bytes_per_word: 4,
            exp_lut_entries: 4096,
            pipeline_depth: 444,
            datapath_mults: 25,
            dsp_per_mult: 4,
            control_dsp: 13,
            lut_per_dsp: 295,
            lut_base: 25_000,
            ff_per_stage: 330,
            ff_base: 6_000,
        }
    }

    /// Same constants, different K.
    pub fn with_k(k: usize) -> Self {
        GmmResourceModel {
            k,
            ..GmmResourceModel::paper_k256()
        }
    }

    /// Weight-buffer bytes: 6 words per component (μ×2, Σ⁻¹×3 packed as
    /// 3 words, coefficient).
    pub fn weight_buffer_bytes(&self) -> u32 {
        self.k as u32 * 6 * self.bytes_per_word
    }

    /// exp-LUT bytes.
    pub fn exp_lut_bytes(&self) -> u32 {
        self.exp_lut_entries * self.bytes_per_word
    }

    /// Estimates the Table 2 row.
    pub fn estimate(&self) -> ResourceEstimate {
        // Storage: weights + exp LUT + one set's tag/score buffer + spare.
        let tag_score_buffer = 1u32; // one tile: 8 ways × (tag + score)
        let bram = self.weight_buffer_bytes().div_ceil(BRAM_BYTES)
            + self.exp_lut_bytes().div_ceil(BRAM_BYTES)
            + tag_score_buffer
            + 1; // FIFO spare
        let dsp = self.datapath_mults * self.dsp_per_mult + self.control_dsp;
        ResourceEstimate {
            bram_36k: bram,
            dsp,
            lut: self.lut_base + self.lut_per_dsp * dsp,
            ff: self.ff_base + self.ff_per_stage * self.pipeline_depth,
        }
    }
}

impl Default for GmmResourceModel {
    fn default() -> Self {
        GmmResourceModel::paper_k256()
    }
}

/// Paper Table 2 reference rows, for side-by-side printing.
pub mod table2 {
    use super::ResourceEstimate;

    /// Published GMM row.
    pub const GMM: ResourceEstimate = ResourceEstimate {
        bram_36k: 8,
        dsp: 113,
        lut: 58_353,
        ff: 152_583,
    };

    /// Published LSTM row.
    pub const LSTM: ResourceEstimate = ResourceEstimate {
        bram_36k: 339,
        dsp: 145,
        lut: 85_029,
        ff: 103_561,
    };

    /// Published latency figures, µs.
    pub const GMM_LATENCY_US: f64 = 3.0;
    /// Published LSTM latency, µs (46.3 ms).
    pub const LSTM_LATENCY_US: f64 = 46_300.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k256_estimate_matches_table2_row() {
        let est = GmmResourceModel::paper_k256().estimate();
        let want = table2::GMM;
        assert_eq!(est.dsp, want.dsp);
        // BRAM within 2 tiles, LUT/FF within 10%.
        assert!(
            (i64::from(est.bram_36k) - i64::from(want.bram_36k)).abs() <= 2,
            "bram {}",
            est.bram_36k
        );
        assert!(
            (f64::from(est.lut) - f64::from(want.lut)).abs() < 0.1 * f64::from(want.lut),
            "lut {}",
            est.lut
        );
        assert!(
            (f64::from(est.ff) - f64::from(want.ff)).abs() < 0.1 * f64::from(want.ff),
            "ff {}",
            est.ff
        );
    }

    #[test]
    fn gmm_uses_a_fraction_of_lstm_bram() {
        let gmm = GmmResourceModel::paper_k256().estimate();
        // The paper's headline: ~2% of the LSTM's on-chip memory.
        assert!(
            f64::from(gmm.bram_36k) / f64::from(table2::LSTM.bram_36k) < 0.05,
            "ratio {}",
            f64::from(gmm.bram_36k) / f64::from(table2::LSTM.bram_36k)
        );
    }

    #[test]
    fn bram_scales_with_k() {
        let small = GmmResourceModel::with_k(64).estimate();
        let big = GmmResourceModel::with_k(4096).estimate();
        assert!(small.bram_36k < big.bram_36k);
        // DSP is K-independent (one pipelined PE).
        assert_eq!(small.dsp, big.dsp);
    }

    #[test]
    fn weight_buffer_matches_fixedgmm_accounting() {
        // 256 comps × 6 words × 4 B = 6 KiB.
        assert_eq!(GmmResourceModel::paper_k256().weight_buffer_bytes(), 6_144);
    }
}
