//! Free-running kernels and a cycle-stepped scheduler.
//!
//! The paper's HLS design wraps each module as a "free-running kernel":
//! always active, consuming from input FIFOs and producing to output FIFOs
//! whenever data is available, with no centrally scheduled control. This
//! module gives that abstraction a testable software form; the
//! transaction-level model in [`crate::system`] uses the same semantics at
//! coarser granularity for full-trace runs.

use crate::clock::Cycles;

/// A hardware module that makes progress every cycle if its FIFOs allow.
pub trait Kernel {
    /// Kernel name for reports.
    fn name(&self) -> &str;

    /// Advances one cycle. Returns `true` if the kernel did useful work
    /// this cycle (used for utilization accounting).
    fn tick(&mut self, now: Cycles) -> bool;

    /// `true` once the kernel will never do work again (end of input).
    fn is_done(&self) -> bool;
}

/// Utilization counters for one kernel.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Cycles in which the kernel did work.
    pub busy_cycles: u64,
    /// Cycles in which it stalled (no input / blocked output).
    pub idle_cycles: u64,
}

impl KernelStats {
    /// Busy fraction in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let total = self.busy_cycles + self.idle_cycles;
        if total == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / total as f64
        }
    }
}

/// Steps a set of kernels cycle by cycle until all report done (or the
/// cycle budget runs out). Returns per-kernel stats and the cycle count.
///
/// # Panics
///
/// Panics when `kernels` is empty.
pub fn run_until_done(
    kernels: &mut [&mut dyn Kernel],
    max_cycles: u64,
) -> (Vec<KernelStats>, Cycles) {
    assert!(!kernels.is_empty(), "need at least one kernel");
    let mut stats = vec![KernelStats::default(); kernels.len()];
    let mut now = Cycles::ZERO;
    while now.0 < max_cycles {
        if kernels.iter().all(|k| k.is_done()) {
            break;
        }
        for (k, s) in kernels.iter_mut().zip(stats.iter_mut()) {
            if k.is_done() {
                continue;
            }
            if k.tick(now) {
                s.busy_cycles += 1;
            } else {
                s.idle_cycles += 1;
            }
        }
        now += Cycles(1);
    }
    (stats, now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::BoundedFifo;
    use std::cell::RefCell;
    use std::rc::Rc;

    type Chan = Rc<RefCell<BoundedFifo<u64>>>;

    /// Produces `count` tokens, one per cycle, into `out`.
    struct Producer {
        out: Chan,
        next: u64,
        count: u64,
    }

    impl Kernel for Producer {
        fn name(&self) -> &str {
            "producer"
        }

        fn tick(&mut self, _now: Cycles) -> bool {
            if self.next >= self.count {
                return false;
            }
            let mut out = self.out.borrow_mut();
            if out.push(self.next).is_ok() {
                self.next += 1;
                true
            } else {
                false
            }
        }

        fn is_done(&self) -> bool {
            self.next >= self.count
        }
    }

    /// Consumes one token every `period` cycles.
    struct SlowConsumer {
        input: Chan,
        period: u64,
        consumed: u64,
        expect: u64,
        last_pop: u64,
    }

    impl Kernel for SlowConsumer {
        fn name(&self) -> &str {
            "consumer"
        }

        fn tick(&mut self, now: Cycles) -> bool {
            if now.0 < self.last_pop + self.period {
                return false;
            }
            let mut input = self.input.borrow_mut();
            if let Some(v) = input.pop() {
                assert_eq!(v, self.consumed, "tokens must arrive in order");
                self.consumed += 1;
                self.last_pop = now.0;
                true
            } else {
                false
            }
        }

        fn is_done(&self) -> bool {
            self.consumed >= self.expect
        }
    }

    #[test]
    fn pipeline_respects_backpressure_and_order() {
        let chan: Chan = Rc::new(RefCell::new(BoundedFifo::new(4)));
        let mut p = Producer {
            out: chan.clone(),
            next: 0,
            count: 20,
        };
        let mut c = SlowConsumer {
            input: chan.clone(),
            period: 3,
            consumed: 0,
            expect: 20,
            last_pop: 0,
        };
        let (stats, cycles) = run_until_done(&mut [&mut p, &mut c], 1_000);
        assert!(c.is_done());
        // Consumer is the bottleneck: ~3 cycles per token.
        assert!(cycles.0 >= 57 && cycles.0 <= 70, "cycles {}", cycles.0);
        // Producer stalls once the FIFO fills: utilization < 1.
        assert!(stats[0].utilization() < 0.9);
        assert!(chan.borrow().stats().push_stalls > 0);
    }

    #[test]
    fn budget_bounds_runaway_kernels() {
        struct Forever;
        impl Kernel for Forever {
            fn name(&self) -> &str {
                "forever"
            }
            fn tick(&mut self, _now: Cycles) -> bool {
                true
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let mut f = Forever;
        let (stats, cycles) = run_until_done(&mut [&mut f], 100);
        assert_eq!(cycles.0, 100);
        assert_eq!(stats[0].busy_cycles, 100);
        assert_eq!(stats[0].utilization(), 1.0);
    }
}
