//! Clock-domain arithmetic (the paper's design runs at 233 MHz).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A cycle count in some clock domain.
#[derive(
    Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Saturating subtraction.
    pub fn saturating_sub(self, o: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(o.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;

    fn add(self, o: Cycles) -> Cycles {
        Cycles(self.0 + o.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, o: Cycles) {
        self.0 += o.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;

    fn sub(self, o: Cycles) -> Cycles {
        Cycles(self.0 - o.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// A clock domain with a fixed frequency.
///
/// ```
/// use icgmm_hw::{ClockDomain, Cycles};
/// let clk = ClockDomain::paper_233mhz();
/// // 699 cycles at 233 MHz ≈ 3 µs (the paper's GMM inference latency).
/// assert!((clk.cycles_to_us(Cycles(699)) - 3.0).abs() < 0.01);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClockDomain {
    /// Frequency in MHz.
    pub mhz: f64,
}

impl ClockDomain {
    /// The paper's 233 MHz Alveo U50 deployment clock.
    pub fn paper_233mhz() -> Self {
        ClockDomain { mhz: 233.0 }
    }

    /// Creates a clock domain.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not finite and positive.
    pub fn new(mhz: f64) -> Self {
        assert!(mhz.is_finite() && mhz > 0.0, "frequency must be positive");
        ClockDomain { mhz }
    }

    /// Converts cycles to microseconds.
    pub fn cycles_to_us(&self, c: Cycles) -> f64 {
        c.0 as f64 / self.mhz
    }

    /// Converts microseconds to cycles (rounding up — hardware cannot
    /// finish mid-cycle).
    pub fn us_to_cycles(&self, us: f64) -> Cycles {
        Cycles((us * self.mhz).ceil() as u64)
    }
}

impl Default for ClockDomain {
    fn default() -> Self {
        ClockDomain::paper_233mhz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let clk = ClockDomain::paper_233mhz();
        let c = clk.us_to_cycles(75.0); // SSD read
        assert_eq!(c, Cycles(17_475));
        assert!((clk.cycles_to_us(c) - 75.0).abs() < 1e-9);
    }

    #[test]
    fn cycle_arithmetic() {
        let a = Cycles(10) + Cycles(5);
        assert_eq!(a, Cycles(15));
        assert_eq!(a - Cycles(5), Cycles(10));
        assert_eq!(Cycles(3).saturating_sub(Cycles(9)), Cycles::ZERO);
        let mut b = Cycles(1);
        b += Cycles(2);
        assert_eq!(b, Cycles(3));
        assert_eq!(b.to_string(), "3 cycles");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_panics() {
        let _ = ClockDomain::new(0.0);
    }
}
