//! SSD access-latency emulator (paper §4.2).
//!
//! The FPGA prototype cannot be attached to a real SSD in the authors'
//! measurement loop, so the paper embeds an emulator in the cache control
//! engine that "pauses the dataflow for a set duration to emulate SSD
//! response times", parameterized by device type. We model exactly that: a
//! single-command device that is busy for the programmed latency.

use icgmm_cache::{FaultPlan, FaultStats};
use icgmm_trace::Op;
use serde::{Deserialize, Serialize};

/// Latency profile of an emulated storage device.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SsdProfile {
    /// Device name for reports.
    pub name: String,
    /// Page (4 KiB) read latency, µs.
    pub read_us: f64,
    /// Page program latency, µs.
    pub write_us: f64,
}

impl SsdProfile {
    /// The paper's target: TLC NAND, 75 µs read / 900 µs program.
    pub fn tlc() -> Self {
        SsdProfile {
            name: "tlc".into(),
            read_us: 75.0,
            write_us: 900.0,
        }
    }

    /// A low-latency (Z-NAND class) device: 10 µs / 100 µs.
    pub fn low_latency() -> Self {
        SsdProfile {
            name: "z-nand".into(),
            read_us: 10.0,
            write_us: 100.0,
        }
    }

    /// A QLC device: 150 µs / 2200 µs.
    pub fn qlc() -> Self {
        SsdProfile {
            name: "qlc".into(),
            read_us: 150.0,
            write_us: 2200.0,
        }
    }

    /// Latency of one operation.
    pub fn latency_us(&self, op: Op) -> f64 {
        match op {
            Op::Read => self.read_us,
            Op::Write => self.write_us,
        }
    }
}

impl Default for SsdProfile {
    fn default() -> Self {
        SsdProfile::tlc()
    }
}

/// Cumulative emulator statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SsdStats {
    /// Page reads served.
    pub reads: u64,
    /// Page programs served.
    pub writes: u64,
    /// Total device-busy time, µs.
    pub busy_us: f64,
    /// Total time commands waited for the device, µs.
    pub queue_wait_us: f64,
}

/// Single-command SSD emulator with a busy-until clock.
///
/// With a [`FaultPlan`] armed (see [`SsdEmulator::with_faults`]), commands
/// can fail and retry with exponential backoff, suffer tail-latency
/// spikes, or time out — all charged to the *modeled* timeline (the device
/// stays busy through the whole retry ladder, exactly as the paper's
/// emulator pauses the dataflow for the programmed duration). Fault
/// decisions are pure hashes of `(plan seed, command index)`, so a faulted
/// timeline is reproducible command-for-command.
#[derive(Clone, Debug)]
pub struct SsdEmulator {
    profile: SsdProfile,
    busy_until_us: f64,
    stats: SsdStats,
    fault_plan: Option<FaultPlan>,
    fault: FaultStats,
    ops: u64,
}

impl SsdEmulator {
    /// Creates an idle emulator.
    pub fn new(profile: SsdProfile) -> Self {
        SsdEmulator {
            profile,
            busy_until_us: 0.0,
            stats: SsdStats::default(),
            fault_plan: None,
            fault: FaultStats::default(),
            ops: 0,
        }
    }

    /// Creates an idle emulator with device faults armed per `plan`. An
    /// empty (or device-disarmed) plan behaves exactly like
    /// [`SsdEmulator::new`].
    pub fn with_faults(profile: SsdProfile, plan: FaultPlan) -> Self {
        let mut e = SsdEmulator::new(profile);
        if plan.device_armed() {
            e.fault_plan = Some(plan);
        }
        e
    }

    /// The profile in use.
    pub fn profile(&self) -> &SsdProfile {
        &self.profile
    }

    /// Issues one command at absolute time `now_us`; returns the command's
    /// completion time. Commands queue behind an in-flight command.
    ///
    /// With faults armed, the command's service time covers its whole
    /// failure story: a spiked attempt latency, each failed attempt plus
    /// its exponential backoff, and the host-side timeout when retries
    /// exhaust. The extra time beyond nominal is accounted in
    /// [`FaultStats::device_fault_us`].
    pub fn access(&mut self, now_us: f64, op: Op) -> f64 {
        let start = now_us.max(self.busy_until_us);
        self.stats.queue_wait_us += start - now_us;
        let nominal = self.profile.latency_us(op);
        let latency = match self.fault_plan {
            None => nominal,
            Some(plan) => {
                let op_index = self.ops;
                self.ops += 1;
                faulted_service_us(&plan, op_index, nominal, &mut self.fault)
            }
        };
        self.busy_until_us = start + latency;
        self.stats.busy_us += latency;
        match op {
            Op::Read => self.stats.reads += 1,
            Op::Write => self.stats.writes += 1,
        }
        self.busy_until_us
    }

    /// Statistics so far.
    pub fn stats(&self) -> SsdStats {
        self.stats
    }

    /// Device-fault telemetry so far (all-zero without an armed plan).
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault
    }
}

/// Service time of one faulted command: spike roll once, then retry with
/// exponential backoff until an attempt succeeds or the retry limit turns
/// into a timeout.
fn faulted_service_us(
    plan: &FaultPlan,
    op_index: u64,
    nominal: f64,
    stats: &mut FaultStats,
) -> f64 {
    let mut attempt_us = nominal;
    if plan.device_spikes(op_index) {
        attempt_us *= plan.device_spike_mult;
        stats.device_spikes += 1;
    }
    let mut total = 0.0;
    let mut attempt: u32 = 0;
    loop {
        total += attempt_us;
        if !plan.device_attempt_fails(op_index, attempt) {
            break;
        }
        stats.device_failures += 1;
        if attempt >= plan.device_retry_limit {
            stats.device_timeouts += 1;
            total += plan.device_timeout_us;
            break;
        }
        total += plan.device_backoff_us * f64::powi(2.0, attempt as i32);
        stats.device_retries += 1;
        attempt += 1;
    }
    stats.device_fault_us += total - nominal;
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper_constants() {
        let tlc = SsdProfile::tlc();
        assert_eq!(tlc.latency_us(Op::Read), 75.0);
        assert_eq!(tlc.latency_us(Op::Write), 900.0);
        assert!(SsdProfile::low_latency().read_us < tlc.read_us);
        assert!(SsdProfile::qlc().write_us > tlc.write_us);
    }

    #[test]
    fn idle_device_serves_immediately() {
        let mut e = SsdEmulator::new(SsdProfile::tlc());
        let done = e.access(100.0, Op::Read);
        assert_eq!(done, 175.0);
        assert_eq!(e.stats().queue_wait_us, 0.0);
    }

    #[test]
    fn back_to_back_commands_queue() {
        let mut e = SsdEmulator::new(SsdProfile::tlc());
        let d1 = e.access(0.0, Op::Read); // 0..75
        let d2 = e.access(10.0, Op::Read); // waits 65, 75..150
        assert_eq!(d1, 75.0);
        assert_eq!(d2, 150.0);
        assert_eq!(e.stats().queue_wait_us, 65.0);
        assert_eq!(e.stats().reads, 2);
        assert_eq!(e.stats().busy_us, 150.0);
    }

    #[test]
    fn writes_hold_the_device_longer() {
        let mut e = SsdEmulator::new(SsdProfile::tlc());
        e.access(0.0, Op::Write);
        let d = e.access(0.0, Op::Read);
        assert_eq!(d, 975.0); // 900 program then 75 read
        assert_eq!(e.stats().writes, 1);
    }

    #[test]
    fn empty_plan_emulator_matches_plain_emulator() {
        let mut plain = SsdEmulator::new(SsdProfile::tlc());
        let mut armed = SsdEmulator::with_faults(SsdProfile::tlc(), FaultPlan::empty());
        for i in 0..100u64 {
            let op = if i % 7 == 0 { Op::Write } else { Op::Read };
            assert_eq!(
                plain.access(i as f64 * 3.0, op),
                armed.access(i as f64 * 3.0, op)
            );
        }
        assert_eq!(plain.stats(), armed.stats());
        assert!(armed.fault_stats().is_clean());
    }

    #[test]
    fn device_faults_charge_the_modeled_timeline_deterministically() {
        let plan = FaultPlan {
            seed: 99,
            device_fail_per_mille: 300,
            device_spike_per_mille: 100,
            ..FaultPlan::default()
        };
        let run = || {
            let mut e = SsdEmulator::with_faults(SsdProfile::tlc(), plan);
            let mut last = 0.0;
            for _ in 0..400 {
                last = e.access(last, Op::Read);
            }
            (last, *e.fault_stats(), e.stats())
        };
        let (a_done, a_fault, a_stats) = run();
        let (b_done, b_fault, b_stats) = run();
        assert_eq!(a_done, b_done, "faulted timeline is deterministic");
        assert_eq!(a_fault, b_fault);
        assert_eq!(a_stats, b_stats);
        assert!(a_fault.device_failures > 0, "rate 300/1000 over 400 ops");
        assert!(a_fault.device_retries > 0);
        assert!(a_fault.device_spikes > 0, "rate 100/1000 over 400 ops");
        assert!(a_fault.device_fault_us > 0.0);
        // Extra time really lands on the device clock.
        assert_eq!(a_stats.busy_us, 400.0 * 75.0 + a_fault.device_fault_us);
        assert!(a_done > 400.0 * 75.0);
    }

    #[test]
    fn retries_exhaust_into_a_timeout() {
        // Every attempt fails: each op walks the full retry ladder and
        // times out.
        let plan = FaultPlan {
            seed: 1,
            device_fail_per_mille: 1000,
            device_retry_limit: 2,
            device_backoff_us: 10.0,
            device_timeout_us: 500.0,
            ..FaultPlan::default()
        };
        let mut e = SsdEmulator::with_faults(SsdProfile::tlc(), plan);
        let done = e.access(0.0, Op::Read);
        let f = e.fault_stats();
        assert_eq!(f.device_failures, 3); // attempts 0, 1, 2
        assert_eq!(f.device_retries, 2);
        assert_eq!(f.device_timeouts, 1);
        // 3 attempts × 75 + backoff 10 + 20 + timeout 500.
        assert_eq!(done, 3.0 * 75.0 + 30.0 + 500.0);
        assert_eq!(f.device_fault_us, done - 75.0);
    }
}
