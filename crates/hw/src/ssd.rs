//! SSD access-latency emulator (paper §4.2).
//!
//! The FPGA prototype cannot be attached to a real SSD in the authors'
//! measurement loop, so the paper embeds an emulator in the cache control
//! engine that "pauses the dataflow for a set duration to emulate SSD
//! response times", parameterized by device type. We model exactly that: a
//! single-command device that is busy for the programmed latency.

use icgmm_trace::Op;
use serde::{Deserialize, Serialize};

/// Latency profile of an emulated storage device.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SsdProfile {
    /// Device name for reports.
    pub name: String,
    /// Page (4 KiB) read latency, µs.
    pub read_us: f64,
    /// Page program latency, µs.
    pub write_us: f64,
}

impl SsdProfile {
    /// The paper's target: TLC NAND, 75 µs read / 900 µs program.
    pub fn tlc() -> Self {
        SsdProfile {
            name: "tlc".into(),
            read_us: 75.0,
            write_us: 900.0,
        }
    }

    /// A low-latency (Z-NAND class) device: 10 µs / 100 µs.
    pub fn low_latency() -> Self {
        SsdProfile {
            name: "z-nand".into(),
            read_us: 10.0,
            write_us: 100.0,
        }
    }

    /// A QLC device: 150 µs / 2200 µs.
    pub fn qlc() -> Self {
        SsdProfile {
            name: "qlc".into(),
            read_us: 150.0,
            write_us: 2200.0,
        }
    }

    /// Latency of one operation.
    pub fn latency_us(&self, op: Op) -> f64 {
        match op {
            Op::Read => self.read_us,
            Op::Write => self.write_us,
        }
    }
}

impl Default for SsdProfile {
    fn default() -> Self {
        SsdProfile::tlc()
    }
}

/// Cumulative emulator statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SsdStats {
    /// Page reads served.
    pub reads: u64,
    /// Page programs served.
    pub writes: u64,
    /// Total device-busy time, µs.
    pub busy_us: f64,
    /// Total time commands waited for the device, µs.
    pub queue_wait_us: f64,
}

/// Single-command SSD emulator with a busy-until clock.
#[derive(Clone, Debug)]
pub struct SsdEmulator {
    profile: SsdProfile,
    busy_until_us: f64,
    stats: SsdStats,
}

impl SsdEmulator {
    /// Creates an idle emulator.
    pub fn new(profile: SsdProfile) -> Self {
        SsdEmulator {
            profile,
            busy_until_us: 0.0,
            stats: SsdStats::default(),
        }
    }

    /// The profile in use.
    pub fn profile(&self) -> &SsdProfile {
        &self.profile
    }

    /// Issues one command at absolute time `now_us`; returns the command's
    /// completion time. Commands queue behind an in-flight command.
    pub fn access(&mut self, now_us: f64, op: Op) -> f64 {
        let start = now_us.max(self.busy_until_us);
        self.stats.queue_wait_us += start - now_us;
        let latency = self.profile.latency_us(op);
        self.busy_until_us = start + latency;
        self.stats.busy_us += latency;
        match op {
            Op::Read => self.stats.reads += 1,
            Op::Write => self.stats.writes += 1,
        }
        self.busy_until_us
    }

    /// Statistics so far.
    pub fn stats(&self) -> SsdStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper_constants() {
        let tlc = SsdProfile::tlc();
        assert_eq!(tlc.latency_us(Op::Read), 75.0);
        assert_eq!(tlc.latency_us(Op::Write), 900.0);
        assert!(SsdProfile::low_latency().read_us < tlc.read_us);
        assert!(SsdProfile::qlc().write_us > tlc.write_us);
    }

    #[test]
    fn idle_device_serves_immediately() {
        let mut e = SsdEmulator::new(SsdProfile::tlc());
        let done = e.access(100.0, Op::Read);
        assert_eq!(done, 175.0);
        assert_eq!(e.stats().queue_wait_us, 0.0);
    }

    #[test]
    fn back_to_back_commands_queue() {
        let mut e = SsdEmulator::new(SsdProfile::tlc());
        let d1 = e.access(0.0, Op::Read); // 0..75
        let d2 = e.access(10.0, Op::Read); // waits 65, 75..150
        assert_eq!(d1, 75.0);
        assert_eq!(d2, 150.0);
        assert_eq!(e.stats().queue_wait_us, 65.0);
        assert_eq!(e.stats().reads, 2);
        assert_eq!(e.stats().busy_us, 150.0);
    }

    #[test]
    fn writes_hold_the_device_longer() {
        let mut e = SsdEmulator::new(SsdProfile::tlc());
        e.access(0.0, Op::Write);
        let d = e.access(0.0, Op::Read);
        assert_eq!(d, 975.0); // 900 program then 75 read
        assert_eq!(e.stats().writes, 1);
    }
}
