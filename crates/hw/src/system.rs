//! Transaction-level model of the full ICGMM dataflow system (paper
//! Fig. 5): trace FIFO → cache control engine → {policy engine ∥ SSD
//! emulator} → response FIFO.
//!
//! The functional behaviour (hits, misses, admissions, evictions) is the
//! same `icgmm-cache` simulator the analytic model uses; this module adds
//! *time*: per-request arrival/start/finish instants under the paper's
//! dataflow rules —
//!
//! * the trace loader prefetches while the cache engine works, limited by
//!   the trace FIFO depth (backpressure);
//! * the engine processes requests in order;
//! * on a miss, GMM inference and the SSD access run **concurrently**
//!   (`overlap_policy_with_ssd`), so the slower of the two — in practice
//!   the SSD — hides the other.
//!
//! Disabling overlap reproduces a naïve sequential design and quantifies
//! exactly what the dataflow architecture buys (the paper's §4.3 claim).
//!
//! # Host replay vs modeled time
//!
//! Since the batched-dataflow rebuild, the timing model is a
//! [`icgmm_cache::ReplayObserver`] ([`DataflowTimer`], private) hanging off
//! the cache crate's replay-event stream, so *how the host computes the
//! outcomes* and *what the modeled hardware charges for them* are
//! independent: score sources that prefer batching
//! ([`icgmm_cache::ScoreSource::prefers_batching`] — the GMM policy engine
//! at paper-scale K) replay through the speculative miss-window batcher
//! ([`icgmm_cache::WindowedSimulator`]) and ride the 4-5× cheaper batched
//! scoring kernel, while the modeled timeline stays strictly per-miss:
//! every miss still pays one GMM inference overlapped (or not) with its
//! own SSD access, FIFO backpressure and SSD queueing included, exactly as
//! the synchronous pipeline would. The two replay engines feed the
//! identical per-record event stream, so the [`DataflowReport`] — stats
//! *and* every timing field — is bit-identical between them
//! (property-enforced in `tests/dataflow_equivalence.rs`); only host
//! wall-clock and the [`DataflowReport::spec`] telemetry differ.

use crate::cache_engine::CacheEngineModel;
use crate::clock::ClockDomain;
use crate::gmm_engine::GmmEngineModel;
use crate::ssd::{SsdEmulator, SsdProfile, SsdStats};
use icgmm_cache::{
    simulate_streaming_observed_with_warmup, AccessOutcome, AdmissionPolicy, CacheConfig,
    CacheConfigError, CacheStats, EvictionPolicy, FaultPlan, FaultStats, LatencyModel, ReplayEvent,
    ReplayObserver, ScoreSource, SetAssocCache, SpecParams, SpecStats, WindowedSimulator,
};
use icgmm_trace::{Op, TraceRecord};
use serde::{Deserialize, Serialize};

/// Configuration of the dataflow system model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DataflowConfig {
    /// Clock domain (233 MHz in the paper).
    pub clock: ClockDomain,
    /// Trace-FIFO depth (loader lookahead).
    pub trace_fifo_depth: usize,
    /// Cache-control-engine timing.
    pub cache_engine: CacheEngineModel,
    /// GMM policy-engine timing.
    pub gmm_engine: GmmEngineModel,
    /// Emulated storage device.
    pub ssd: SsdProfile,
    /// Run policy inference concurrently with the SSD access (the paper's
    /// dataflow architecture); `false` models a sequential design.
    pub overlap_policy_with_ssd: bool,
    /// Deterministic fault-injection plan. The empty default leaves every
    /// code path — and the report — bit-identical to a fault-free build;
    /// arming device faults makes SSD commands fail/retry/spike on the
    /// modeled timeline, and arming the speculation circuit breaker demotes
    /// the batched host replay to streaming under divergence storms.
    pub fault: FaultPlan,
}

impl Default for DataflowConfig {
    fn default() -> Self {
        DataflowConfig {
            clock: ClockDomain::paper_233mhz(),
            trace_fifo_depth: 64,
            cache_engine: CacheEngineModel::paper_default(),
            gmm_engine: GmmEngineModel::paper_k256(),
            ssd: SsdProfile::tlc(),
            overlap_policy_with_ssd: true,
            fault: FaultPlan::empty(),
        }
    }
}

/// Timing + functional results of a dataflow run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DataflowReport {
    /// Functional counters (identical semantics to the analytic simulator).
    pub stats: CacheStats,
    /// Makespan: finish time of the last request, µs.
    pub makespan_us: f64,
    /// Mean service latency (finish − start), µs — the paper's "average
    /// SSD access time" metric: the engine pauses the dataflow per request
    /// (§4.2), so service time is what the on-board measurement reports.
    pub avg_request_us: f64,
    /// Mean time requests spent queued in the trace FIFO before service,
    /// µs (diagnostic; grows when the replay rate outruns the engine).
    pub avg_queue_us: f64,
    /// Total policy-engine busy time, µs.
    pub gmm_busy_us: f64,
    /// SSD emulator statistics.
    pub ssd: SsdStats,
    /// Times the trace loader stalled on a full FIFO.
    pub loader_stalls: u64,
    /// Time saved by overlapping policy inference with SSD access compared
    /// to a sequential design, µs.
    pub overlap_saved_us: f64,
    /// Host-replay speculation telemetry when the run rode the batched
    /// replay engine (`None` on the streaming engine). Pure host-side
    /// diagnostics: the modeled timing above is bit-identical either way.
    pub spec: Option<SpecStats>,
    /// Fault-injection and degradation counters (all-zero without an armed
    /// [`DataflowConfig::fault`] plan): device failures/retries/spikes/
    /// timeouts charged to the modeled timeline, plus circuit-breaker
    /// telemetry from the batched host replay.
    pub fault: FaultStats,
}

impl DataflowReport {
    /// SSD utilization over the whole run.
    pub fn ssd_utilization(&self) -> f64 {
        if self.makespan_us == 0.0 {
            0.0
        } else {
            self.ssd.busy_us / self.makespan_us
        }
    }
}

/// Per-record timing accounting of the dataflow model, driven by the
/// replay-event stream: the replay engine (streaming or speculative
/// batched) decides how scores are computed on the *host*, while this
/// observer keeps the *modeled* timeline strictly per-miss — each miss
/// pays one GMM inference overlapped (or not) with its own SSD access, so
/// batched host inference is attributed to the miss that consumed the
/// score and `overlap_saved_us` is computed exactly as the streaming loop
/// always did.
struct DataflowTimer {
    warmup_len: usize,
    cycle_us: f64,
    hit_us: f64,
    miss_overhead_us: f64,
    gmm_us: f64,
    overlap: bool,
    depth: usize,
    // Ring buffer of the last `depth` finish times (bounded-buffer rule:
    // record i cannot enter the FIFO before record i-depth has left it).
    finish_ring: Vec<f64>,
    idx: usize,
    prev_arrival: f64,
    prev_finish: f64,
    latency_sum: f64,
    queue_sum: f64,
    gmm_busy_us: f64,
    overlap_saved_us: f64,
    loader_stalls: u64,
    ssd: SsdEmulator,
}

impl DataflowTimer {
    fn new(config: &DataflowConfig, warmup_len: usize) -> Self {
        let depth = config.trace_fifo_depth.max(1);
        DataflowTimer {
            warmup_len,
            cycle_us: 1.0 / config.clock.mhz,
            hit_us: config.cache_engine.hit_us(),
            miss_overhead_us: config.cache_engine.miss_overhead_us(),
            gmm_us: config.gmm_engine.latency_us(),
            overlap: config.overlap_policy_with_ssd,
            depth,
            finish_ring: vec![0.0; depth],
            idx: 0,
            prev_arrival: 0.0,
            prev_finish: 0.0,
            latency_sum: 0.0,
            queue_sum: 0.0,
            gmm_busy_us: 0.0,
            overlap_saved_us: 0.0,
            loader_stalls: 0,
            ssd: SsdEmulator::with_faults(config.ssd.clone(), config.fault),
        }
    }

    /// Advances the modeled timeline by one measured request.
    fn step(&mut self, op: Op, outcome: &AccessOutcome) {
        let i = self.idx;
        self.idx += 1;

        // Loader: one record per cycle, gated by FIFO space.
        let fifo_free_at = self.finish_ring[i % self.depth];
        let mut arrival = self.prev_arrival + self.cycle_us;
        if fifo_free_at > arrival {
            arrival = fifo_free_at;
            self.loader_stalls += 1;
        }
        self.prev_arrival = arrival;

        // Engine: in-order service.
        let start = arrival.max(self.prev_finish);
        let finish = match outcome {
            AccessOutcome::Hit { .. } => start + self.hit_us,
            AccessOutcome::MissInserted { evicted, .. } => {
                let t0 = start + self.miss_overhead_us;
                // Page fetch; dirty victims are written back behind it.
                let mut ssd_done = self.ssd.access(t0, Op::Read);
                if let Some(e) = evicted {
                    if e.dirty {
                        ssd_done = self.ssd.access(ssd_done, Op::Write);
                    }
                }
                self.miss_finish(t0, ssd_done)
            }
            AccessOutcome::MissBypassed => {
                let t0 = start + self.miss_overhead_us;
                let ssd_done = self.ssd.access(t0, op);
                self.miss_finish(t0, ssd_done)
            }
        };
        self.latency_sum += finish - start;
        self.queue_sum += start - arrival;
        self.prev_finish = finish;
        self.finish_ring[i % self.depth] = finish;
    }

    /// Completes a miss: the GMM inference runs concurrently with the SSD
    /// access under the dataflow architecture, sequentially otherwise.
    fn miss_finish(&mut self, t0: f64, ssd_done: f64) -> f64 {
        self.gmm_busy_us += self.gmm_us;
        let ssd_time = ssd_done - t0;
        if self.overlap {
            self.overlap_saved_us += self.gmm_us.min(ssd_time);
            t0 + ssd_time.max(self.gmm_us)
        } else {
            t0 + self.gmm_us + ssd_time
        }
    }

    fn into_report(self, stats: CacheStats, n: usize, spec: Option<SpecStats>) -> DataflowReport {
        DataflowReport {
            stats,
            makespan_us: self.prev_finish,
            avg_request_us: if n == 0 {
                0.0
            } else {
                self.latency_sum / n as f64
            },
            avg_queue_us: if n == 0 {
                0.0
            } else {
                self.queue_sum / n as f64
            },
            gmm_busy_us: self.gmm_busy_us,
            loader_stalls: self.loader_stalls,
            overlap_saved_us: self.overlap_saved_us,
            spec,
            fault: *self.ssd.fault_stats(),
            ssd: self.ssd.stats(),
        }
    }
}

impl ReplayObserver for DataflowTimer {
    fn on_record(&mut self, ev: &ReplayEvent<'_>) {
        // Warm-up requests have state effects only: no time is charged
        // (mirrors the analytic simulator's untimed warm-up).
        if (ev.seq as usize) < self.warmup_len {
            return;
        }
        debug_assert_eq!(
            ev.seq as usize - self.warmup_len,
            self.idx,
            "replay events must arrive in trace order, exactly once each"
        );
        self.step(ev.record.op, ev.outcome);
    }
}

/// The latency model handed to the functional replay engines for their
/// (discarded) [`icgmm_cache::SimReport`] accounting — the dataflow model
/// computes its own timing through [`DataflowTimer`].
fn accounting_latency() -> LatencyModel {
    LatencyModel::paper_tlc()
}

/// Runs the dataflow system over a trace.
///
/// `score` follows the same contract as the analytic simulator: observed on
/// every request, queried only on misses. Sources whose
/// [`ScoreSource::prefers_batching`] returns `true` ride the speculative
/// miss-window batcher for host replay (at [`SpecParams::default`]); all
/// others take the streaming loop. The report — stats and every timing
/// field — is bit-identical either way.
///
/// # Errors
///
/// Returns [`CacheConfigError`] for invalid cache geometry.
pub fn run_dataflow(
    records: &[TraceRecord],
    cache_cfg: CacheConfig,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    score: Option<&mut dyn ScoreSource>,
    config: &DataflowConfig,
) -> Result<DataflowReport, CacheConfigError> {
    run_dataflow_with_warmup(&[], records, cache_cfg, admission, eviction, score, config)
}

/// [`run_dataflow`] preceded by an untimed warm-up phase: the cache, the
/// policies and the score source see `warmup` (state effects only); timing
/// and statistics cover `measured` (mirrors the analytic simulator's
/// `simulate_with_warmup`). Routes between the streaming and batched
/// replay engines by [`ScoreSource::prefers_batching`], like
/// [`run_dataflow`].
///
/// # Errors
///
/// Returns [`CacheConfigError`] for invalid cache geometry.
#[allow(clippy::too_many_arguments)]
pub fn run_dataflow_with_warmup(
    warmup: &[TraceRecord],
    measured: &[TraceRecord],
    cache_cfg: CacheConfig,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    score: Option<&mut dyn ScoreSource>,
    config: &DataflowConfig,
) -> Result<DataflowReport, CacheConfigError> {
    if score.as_ref().is_some_and(|s| s.prefers_batching()) {
        run_dataflow_batched_with_warmup(
            warmup,
            measured,
            cache_cfg,
            admission,
            eviction,
            score,
            config,
            SpecParams::default(),
        )
    } else {
        run_dataflow_streaming_with_warmup(
            warmup, measured, cache_cfg, admission, eviction, score, config,
        )
    }
}

/// The reference dataflow replay: the streaming functional loop (one
/// synchronous score per miss) driving the per-miss timing model.
///
/// Kept public as the ground truth the batched dataflow replay is
/// property-tested against, and for measuring its host-side speedup (the
/// `dataflow` criterion group).
///
/// # Errors
///
/// Returns [`CacheConfigError`] for invalid cache geometry.
#[allow(clippy::too_many_arguments)]
pub fn run_dataflow_streaming_with_warmup(
    warmup: &[TraceRecord],
    measured: &[TraceRecord],
    cache_cfg: CacheConfig,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    score: Option<&mut dyn ScoreSource>,
    config: &DataflowConfig,
) -> Result<DataflowReport, CacheConfigError> {
    let mut cache = SetAssocCache::new(cache_cfg)?;
    let mut timer = DataflowTimer::new(config, warmup.len());
    let sim = simulate_streaming_observed_with_warmup(
        warmup,
        measured,
        &mut cache,
        admission,
        eviction,
        score,
        &accounting_latency(),
        None,
        &mut timer,
    );
    Ok(timer.into_report(sim.stats, measured.len(), None))
}

/// Dataflow replay over the speculative miss-window batcher: host-side
/// scoring rides the batched [`ScoreSource::score_window`] kernel
/// (`params` are the batcher's tuning knobs) while the modeled timeline
/// stays per-miss — bit-identical stats and timing to
/// [`run_dataflow_streaming_with_warmup`], with
/// [`DataflowReport::spec`] carrying the speculation telemetry.
///
/// Without a score source there is nothing to batch: the batcher
/// delegates to the streaming loop internally and the report's `spec`
/// stays `None` (the run never speculated).
///
/// # Errors
///
/// Returns [`CacheConfigError`] for invalid cache geometry.
#[allow(clippy::too_many_arguments)]
pub fn run_dataflow_batched_with_warmup(
    warmup: &[TraceRecord],
    measured: &[TraceRecord],
    cache_cfg: CacheConfig,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    score: Option<&mut dyn ScoreSource>,
    config: &DataflowConfig,
    params: SpecParams,
) -> Result<DataflowReport, CacheConfigError> {
    let mut cache = SetAssocCache::new(cache_cfg)?;
    let mut timer = DataflowTimer::new(config, warmup.len());
    let mut wsim = WindowedSimulator::with_params(params);
    if config.fault.breaker_armed() {
        wsim.set_breaker(
            config.fault.breaker_storm_windows,
            config.fault.breaker_cooldown_records,
        );
    }
    let scored = score.is_some();
    let sim = wsim.run_observed(
        warmup,
        measured,
        &mut cache,
        admission,
        eviction,
        score,
        &accounting_latency(),
        None,
        &mut timer,
    );
    let spec = scored.then(|| *wsim.spec_stats());
    let breaker = *wsim.fault_stats();
    let mut report = timer.into_report(sim.stats, measured.len(), spec);
    report.fault.merge(&breaker);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icgmm_cache::{AlwaysAdmit, FnScore, LatencyModel, LruPolicy, SetAssocCache};

    fn small_cfg() -> CacheConfig {
        CacheConfig {
            capacity_bytes: 16 * 4096,
            block_bytes: 4096,
            ways: 2,
        }
    }

    fn mixed_trace(n: usize) -> Vec<TraceRecord> {
        // Hot pages 0..8 with periodic cold misses.
        (0..n)
            .map(|i| {
                if i % 5 == 4 {
                    TraceRecord::read(((1000 + i as u64) << 12) | 0x40)
                } else {
                    TraceRecord::read(((i as u64 % 8) << 12) | 0x80)
                }
            })
            .collect()
    }

    /// A deterministic score source that opts into the batched replay
    /// engine (the built-in `FnScore` keeps the streaming default).
    struct BatchyScore(FnScore<fn(u64, u64) -> f64>);

    impl BatchyScore {
        fn new() -> Self {
            BatchyScore(FnScore::new(
                (|page, seq| ((page * 37 + seq) % 100) as f64 / 100.0) as fn(u64, u64) -> f64,
            ))
        }
    }

    impl ScoreSource for BatchyScore {
        fn observe(&mut self, record: &TraceRecord) {
            self.0.observe(record);
        }
        fn score_current(&mut self) -> f64 {
            self.0.score_current()
        }
        fn score_window(&mut self, records: &[TraceRecord], out: &mut [f64]) {
            self.0.score_window(records, out);
        }
        fn prefers_batching(&self) -> bool {
            true
        }
    }

    #[test]
    fn dataflow_agrees_with_analytic_model() {
        let trace = mixed_trace(2_000);
        let cfg = small_cfg();

        let mut lru1 = LruPolicy::new(cfg.num_sets(), cfg.ways);
        let mut cache = SetAssocCache::new(cfg).unwrap();
        let analytic = icgmm_cache::simulate(
            &trace,
            &mut cache,
            &mut AlwaysAdmit,
            &mut lru1,
            None,
            &LatencyModel::paper_tlc(),
            None,
        );

        let mut lru2 = LruPolicy::new(cfg.num_sets(), cfg.ways);
        let df = run_dataflow(
            &trace,
            cfg,
            &mut AlwaysAdmit,
            &mut lru2,
            None,
            &DataflowConfig::default(),
        )
        .unwrap();

        // Identical functional behaviour...
        assert_eq!(df.stats, analytic.stats);
        // ...and average latency within 3% (the dataflow model adds small
        // decode/update overheads the analytic constants fold in).
        let rel = (df.avg_request_us - analytic.avg_us).abs() / analytic.avg_us;
        assert!(
            rel < 0.03,
            "dataflow {} vs analytic {} ({}%)",
            df.avg_request_us,
            analytic.avg_us,
            rel * 100.0
        );
    }

    #[test]
    fn overlap_hides_policy_latency() {
        let trace = mixed_trace(2_000);
        let cfg = small_cfg();
        let run = |overlap: bool| {
            let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
            run_dataflow(
                &trace,
                cfg,
                &mut AlwaysAdmit,
                &mut lru,
                None,
                &DataflowConfig {
                    overlap_policy_with_ssd: overlap,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let with = run(true);
        let without = run(false);
        assert!(with.avg_request_us < without.avg_request_us);
        // Sequential pays the full 3 µs per miss; overlapped hides it all
        // (SSD read is 75 µs > 3 µs).
        let misses = with.stats.misses() as f64;
        let expected_gap = 3.0 * misses / trace.len() as f64;
        let gap = without.avg_request_us - with.avg_request_us;
        assert!(
            (gap - expected_gap).abs() < expected_gap * 0.1 + 0.01,
            "gap {gap} vs expected {expected_gap}"
        );
        assert!(with.overlap_saved_us > 0.0);
        assert_eq!(without.overlap_saved_us, 0.0);
    }

    #[test]
    fn ssd_dominates_makespan_on_miss_heavy_traces() {
        // All-miss streaming trace.
        let trace: Vec<TraceRecord> = (0..500u64).map(|i| TraceRecord::read(i << 12)).collect();
        let cfg = small_cfg();
        let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
        let df = run_dataflow(
            &trace,
            cfg,
            &mut AlwaysAdmit,
            &mut lru,
            None,
            &DataflowConfig::default(),
        )
        .unwrap();
        assert!(df.ssd_utilization() > 0.95, "{}", df.ssd_utilization());
        assert!(df.makespan_us >= df.ssd.busy_us);
    }

    #[test]
    fn empty_trace_reports_zeroes() {
        let cfg = small_cfg();
        let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
        let df = run_dataflow(
            &[],
            cfg,
            &mut AlwaysAdmit,
            &mut lru,
            None,
            &DataflowConfig::default(),
        )
        .unwrap();
        assert_eq!(df.stats.accesses(), 0);
        assert_eq!(df.makespan_us, 0.0);
        assert_eq!(df.avg_request_us, 0.0);
    }

    #[test]
    fn invalid_geometry_is_an_error() {
        let bad = CacheConfig {
            capacity_bytes: 1000,
            block_bytes: 4096,
            ways: 2,
        };
        let mut lru = LruPolicy::new(1, 2);
        assert!(run_dataflow(
            &[],
            bad,
            &mut AlwaysAdmit,
            &mut lru,
            None,
            &DataflowConfig::default()
        )
        .is_err());
    }

    #[test]
    fn batching_sources_route_to_the_batched_engine_bit_identically() {
        // The default entry point must pick the batched replay for a
        // `prefers_batching` source and still produce the streaming
        // engine's exact report — timing fields included.
        let trace = mixed_trace(3_000);
        let cfg = small_cfg();
        let config = DataflowConfig::default();

        let mut lru1 = LruPolicy::new(cfg.num_sets(), cfg.ways);
        let mut s1 = BatchyScore::new();
        let streaming = run_dataflow_streaming_with_warmup(
            &trace[..500],
            &trace[500..],
            cfg,
            &mut AlwaysAdmit,
            &mut lru1,
            Some(&mut s1),
            &config,
        )
        .unwrap();
        assert!(streaming.spec.is_none());

        let mut lru2 = LruPolicy::new(cfg.num_sets(), cfg.ways);
        let mut s2 = BatchyScore::new();
        let routed = run_dataflow_with_warmup(
            &trace[..500],
            &trace[500..],
            cfg,
            &mut AlwaysAdmit,
            &mut lru2,
            Some(&mut s2),
            &config,
        )
        .unwrap();
        let spec = routed.spec.expect("prefers_batching must route batched");
        assert!(spec.windows > 0, "{spec:?}");

        let mut stripped = routed.clone();
        stripped.spec = None;
        assert_eq!(streaming, stripped);
    }

    #[test]
    fn streaming_sources_keep_the_streaming_engine() {
        let trace = mixed_trace(1_000);
        let cfg = small_cfg();
        let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
        let mut s = FnScore::new(|page, _| (page % 7) as f64);
        let df = run_dataflow(
            &trace,
            cfg,
            &mut AlwaysAdmit,
            &mut lru,
            Some(&mut s),
            &DataflowConfig::default(),
        )
        .unwrap();
        assert!(df.spec.is_none(), "FnScore must not route batched");
    }
}
