//! Transaction-level model of the full ICGMM dataflow system (paper
//! Fig. 5): trace FIFO → cache control engine → {policy engine ∥ SSD
//! emulator} → response FIFO.
//!
//! The functional behaviour (hits, misses, admissions, evictions) is the
//! same `icgmm-cache` simulator the analytic model uses; this module adds
//! *time*: per-request arrival/start/finish instants under the paper's
//! dataflow rules —
//!
//! * the trace loader prefetches while the cache engine works, limited by
//!   the trace FIFO depth (backpressure);
//! * the engine processes requests in order;
//! * on a miss, GMM inference and the SSD access run **concurrently**
//!   (`overlap_policy_with_ssd`), so the slower of the two — in practice
//!   the SSD — hides the other.
//!
//! Disabling overlap reproduces a naïve sequential design and quantifies
//! exactly what the dataflow architecture buys (the paper's §4.3 claim).

use crate::cache_engine::CacheEngineModel;
use crate::clock::ClockDomain;
use crate::gmm_engine::GmmEngineModel;
use crate::ssd::{SsdEmulator, SsdProfile, SsdStats};
use icgmm_cache::{
    AccessOutcome, AdmissionPolicy, CacheConfig, CacheConfigError, CacheStats, EvictionPolicy,
    ScoreSource, SetAssocCache,
};
use icgmm_trace::{Op, TraceRecord};
use serde::{Deserialize, Serialize};

/// Configuration of the dataflow system model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DataflowConfig {
    /// Clock domain (233 MHz in the paper).
    pub clock: ClockDomain,
    /// Trace-FIFO depth (loader lookahead).
    pub trace_fifo_depth: usize,
    /// Cache-control-engine timing.
    pub cache_engine: CacheEngineModel,
    /// GMM policy-engine timing.
    pub gmm_engine: GmmEngineModel,
    /// Emulated storage device.
    pub ssd: SsdProfile,
    /// Run policy inference concurrently with the SSD access (the paper's
    /// dataflow architecture); `false` models a sequential design.
    pub overlap_policy_with_ssd: bool,
}

impl Default for DataflowConfig {
    fn default() -> Self {
        DataflowConfig {
            clock: ClockDomain::paper_233mhz(),
            trace_fifo_depth: 64,
            cache_engine: CacheEngineModel::paper_default(),
            gmm_engine: GmmEngineModel::paper_k256(),
            ssd: SsdProfile::tlc(),
            overlap_policy_with_ssd: true,
        }
    }
}

/// Timing + functional results of a dataflow run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DataflowReport {
    /// Functional counters (identical semantics to the analytic simulator).
    pub stats: CacheStats,
    /// Makespan: finish time of the last request, µs.
    pub makespan_us: f64,
    /// Mean service latency (finish − start), µs — the paper's "average
    /// SSD access time" metric: the engine pauses the dataflow per request
    /// (§4.2), so service time is what the on-board measurement reports.
    pub avg_request_us: f64,
    /// Mean time requests spent queued in the trace FIFO before service,
    /// µs (diagnostic; grows when the replay rate outruns the engine).
    pub avg_queue_us: f64,
    /// Total policy-engine busy time, µs.
    pub gmm_busy_us: f64,
    /// SSD emulator statistics.
    pub ssd: SsdStats,
    /// Times the trace loader stalled on a full FIFO.
    pub loader_stalls: u64,
    /// Time saved by overlapping policy inference with SSD access compared
    /// to a sequential design, µs.
    pub overlap_saved_us: f64,
}

impl DataflowReport {
    /// SSD utilization over the whole run.
    pub fn ssd_utilization(&self) -> f64 {
        if self.makespan_us == 0.0 {
            0.0
        } else {
            self.ssd.busy_us / self.makespan_us
        }
    }
}

/// Runs the dataflow system over a trace.
///
/// `score` follows the same contract as the analytic simulator: observed on
/// every request, queried only on misses.
///
/// # Errors
///
/// Returns [`CacheConfigError`] for invalid cache geometry.
pub fn run_dataflow(
    records: &[TraceRecord],
    cache_cfg: CacheConfig,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    score: Option<&mut dyn ScoreSource>,
    config: &DataflowConfig,
) -> Result<DataflowReport, CacheConfigError> {
    run_dataflow_with_warmup(&[], records, cache_cfg, admission, eviction, score, config)
}

/// [`run_dataflow`] preceded by an untimed warm-up phase: the cache, the
/// policies and the score source see `warmup` (state effects only); timing
/// and statistics cover `measured` (mirrors the analytic simulator's
/// `simulate_with_warmup`).
///
/// # Errors
///
/// Returns [`CacheConfigError`] for invalid cache geometry.
#[allow(clippy::too_many_arguments)]
pub fn run_dataflow_with_warmup(
    warmup: &[TraceRecord],
    records: &[TraceRecord],
    cache_cfg: CacheConfig,
    admission: &mut dyn AdmissionPolicy,
    eviction: &mut dyn EvictionPolicy,
    mut score: Option<&mut dyn ScoreSource>,
    config: &DataflowConfig,
) -> Result<DataflowReport, CacheConfigError> {
    let mut cache = SetAssocCache::new(cache_cfg)?;
    let mut ssd = SsdEmulator::new(config.ssd.clone());
    let mut stats = CacheStats::default();

    for (i, r) in warmup.iter().enumerate() {
        if let Some(s) = score.as_deref_mut() {
            s.observe(r);
        }
        let score_val = if cache.lookup(r.page()).is_none() {
            score.as_deref_mut().map(|s| s.score_current())
        } else {
            None
        };
        let _ = cache.access(r, i as u64, score_val, admission, eviction);
    }
    let seq0 = warmup.len() as u64;

    let cycle_us = 1.0 / config.clock.mhz;
    let hit_us = config.cache_engine.hit_us();
    let miss_overhead_us = config.cache_engine.miss_overhead_us();
    let gmm_us = config.gmm_engine.latency_us();
    let depth = config.trace_fifo_depth.max(1);

    // Ring buffer of the last `depth` finish times (bounded-buffer rule:
    // record i cannot enter the FIFO before record i-depth has left it).
    let mut finish_ring: Vec<f64> = vec![0.0; depth];
    let mut prev_arrival = 0.0f64;
    let mut prev_finish = 0.0f64;
    let mut latency_sum = 0.0f64;
    let mut queue_sum = 0.0f64;
    let mut gmm_busy_us = 0.0f64;
    let mut overlap_saved_us = 0.0f64;
    let mut loader_stalls = 0u64;

    for (i, r) in records.iter().enumerate() {
        if let Some(s) = score.as_deref_mut() {
            s.observe(r);
        }
        // Loader: one record per cycle, gated by FIFO space.
        let fifo_free_at = finish_ring[i % depth];
        let mut arrival = prev_arrival + cycle_us;
        if fifo_free_at > arrival {
            arrival = fifo_free_at;
            loader_stalls += 1;
        }
        prev_arrival = arrival;

        // Engine: in-order service.
        let start = arrival.max(prev_finish);

        let is_hit = cache.lookup(r.page()).is_some();
        let score_val = if is_hit {
            None
        } else {
            score.as_deref_mut().map(|s| s.score_current())
        };
        let outcome = cache.access(r, seq0 + i as u64, score_val, admission, eviction);
        stats.record(r.op, &outcome);

        let finish = match &outcome {
            AccessOutcome::Hit { .. } => start + hit_us,
            AccessOutcome::MissInserted { evicted, .. } => {
                let t0 = start + miss_overhead_us;
                // Page fetch; dirty victims are written back behind it.
                let mut ssd_done = ssd.access(t0, Op::Read);
                if let Some(e) = evicted {
                    if e.dirty {
                        ssd_done = ssd.access(ssd_done, Op::Write);
                    }
                }
                gmm_busy_us += gmm_us;
                let ssd_time = ssd_done - t0;
                if config.overlap_policy_with_ssd {
                    overlap_saved_us += gmm_us.min(ssd_time);
                    t0 + ssd_time.max(gmm_us)
                } else {
                    t0 + gmm_us + ssd_time
                }
            }
            AccessOutcome::MissBypassed => {
                let t0 = start + miss_overhead_us;
                let ssd_done = ssd.access(t0, r.op);
                gmm_busy_us += gmm_us;
                let ssd_time = ssd_done - t0;
                if config.overlap_policy_with_ssd {
                    overlap_saved_us += gmm_us.min(ssd_time);
                    t0 + ssd_time.max(gmm_us)
                } else {
                    t0 + gmm_us + ssd_time
                }
            }
        };
        latency_sum += finish - start;
        queue_sum += start - arrival;
        prev_finish = finish;
        finish_ring[i % depth] = finish;
    }

    let n = records.len();
    Ok(DataflowReport {
        stats,
        makespan_us: prev_finish,
        avg_request_us: if n == 0 { 0.0 } else { latency_sum / n as f64 },
        avg_queue_us: if n == 0 { 0.0 } else { queue_sum / n as f64 },
        gmm_busy_us,
        ssd: ssd.stats(),
        loader_stalls,
        overlap_saved_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use icgmm_cache::{AlwaysAdmit, LatencyModel, LruPolicy, SetAssocCache};

    fn small_cfg() -> CacheConfig {
        CacheConfig {
            capacity_bytes: 16 * 4096,
            block_bytes: 4096,
            ways: 2,
        }
    }

    fn mixed_trace(n: usize) -> Vec<TraceRecord> {
        // Hot pages 0..8 with periodic cold misses.
        (0..n)
            .map(|i| {
                if i % 5 == 4 {
                    TraceRecord::read(((1000 + i as u64) << 12) | 0x40)
                } else {
                    TraceRecord::read(((i as u64 % 8) << 12) | 0x80)
                }
            })
            .collect()
    }

    #[test]
    fn dataflow_agrees_with_analytic_model() {
        let trace = mixed_trace(2_000);
        let cfg = small_cfg();

        let mut lru1 = LruPolicy::new(cfg.num_sets(), cfg.ways);
        let mut cache = SetAssocCache::new(cfg).unwrap();
        let analytic = icgmm_cache::simulate(
            &trace,
            &mut cache,
            &mut AlwaysAdmit,
            &mut lru1,
            None,
            &LatencyModel::paper_tlc(),
            None,
        );

        let mut lru2 = LruPolicy::new(cfg.num_sets(), cfg.ways);
        let df = run_dataflow(
            &trace,
            cfg,
            &mut AlwaysAdmit,
            &mut lru2,
            None,
            &DataflowConfig::default(),
        )
        .unwrap();

        // Identical functional behaviour...
        assert_eq!(df.stats, analytic.stats);
        // ...and average latency within 3% (the dataflow model adds small
        // decode/update overheads the analytic constants fold in).
        let rel = (df.avg_request_us - analytic.avg_us).abs() / analytic.avg_us;
        assert!(
            rel < 0.03,
            "dataflow {} vs analytic {} ({}%)",
            df.avg_request_us,
            analytic.avg_us,
            rel * 100.0
        );
    }

    #[test]
    fn overlap_hides_policy_latency() {
        let trace = mixed_trace(2_000);
        let cfg = small_cfg();
        let run = |overlap: bool| {
            let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
            run_dataflow(
                &trace,
                cfg,
                &mut AlwaysAdmit,
                &mut lru,
                None,
                &DataflowConfig {
                    overlap_policy_with_ssd: overlap,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let with = run(true);
        let without = run(false);
        assert!(with.avg_request_us < without.avg_request_us);
        // Sequential pays the full 3 µs per miss; overlapped hides it all
        // (SSD read is 75 µs > 3 µs).
        let misses = with.stats.misses() as f64;
        let expected_gap = 3.0 * misses / trace.len() as f64;
        let gap = without.avg_request_us - with.avg_request_us;
        assert!(
            (gap - expected_gap).abs() < expected_gap * 0.1 + 0.01,
            "gap {gap} vs expected {expected_gap}"
        );
        assert!(with.overlap_saved_us > 0.0);
        assert_eq!(without.overlap_saved_us, 0.0);
    }

    #[test]
    fn ssd_dominates_makespan_on_miss_heavy_traces() {
        // All-miss streaming trace.
        let trace: Vec<TraceRecord> = (0..500u64).map(|i| TraceRecord::read(i << 12)).collect();
        let cfg = small_cfg();
        let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
        let df = run_dataflow(
            &trace,
            cfg,
            &mut AlwaysAdmit,
            &mut lru,
            None,
            &DataflowConfig::default(),
        )
        .unwrap();
        assert!(df.ssd_utilization() > 0.95, "{}", df.ssd_utilization());
        assert!(df.makespan_us >= df.ssd.busy_us);
    }

    #[test]
    fn empty_trace_reports_zeroes() {
        let cfg = small_cfg();
        let mut lru = LruPolicy::new(cfg.num_sets(), cfg.ways);
        let df = run_dataflow(
            &[],
            cfg,
            &mut AlwaysAdmit,
            &mut lru,
            None,
            &DataflowConfig::default(),
        )
        .unwrap();
        assert_eq!(df.stats.accesses(), 0);
        assert_eq!(df.makespan_us, 0.0);
        assert_eq!(df.avg_request_us, 0.0);
    }

    #[test]
    fn invalid_geometry_is_an_error() {
        let bad = CacheConfig {
            capacity_bytes: 1000,
            block_bytes: 4096,
            ways: 2,
        };
        let mut lru = LruPolicy::new(1, 2);
        assert!(run_dataflow(
            &[],
            bad,
            &mut AlwaysAdmit,
            &mut lru,
            None,
            &DataflowConfig::default()
        )
        .is_err());
    }
}
