//! Pipelined GMM policy-engine model (paper §4.1).
//!
//! The hardware evaluates the `K` Gaussian terms through one deep pipeline
//! with initiation interval II = 1 — a new Gaussian enters every cycle —
//! and a shift-register accumulator resolves the score-sum dependency, so
//!
//! `latency = pipeline_depth + (K − 1) · II` cycles.
//!
//! The paper measures 3 µs end-to-end at 233 MHz with K = 256; with II = 1
//! that implies a ~444-cycle pipeline depth (trace decode, fixed-point
//! quadratic form, LUT exp with interpolation, scaling, accumulation and
//! FIFO hand-off), which is the calibrated default here.

use crate::clock::{ClockDomain, Cycles};
use icgmm_gmm::fixed::FixedGmm;
use icgmm_gmm::{Gmm, GmmError, Vec2};
use serde::{Deserialize, Serialize};

/// Timing parameters of the GMM processing element.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GmmEngineModel {
    /// Mixture components evaluated per inference.
    pub k: usize,
    /// Initiation interval of the Gaussian pipeline (cycles per component).
    pub ii: u64,
    /// Pipeline depth in cycles (fill latency).
    pub pipeline_depth: u64,
    /// Clock domain.
    pub clock: ClockDomain,
}

impl GmmEngineModel {
    /// Calibrated to the paper's measurement: K = 256, II = 1, 233 MHz,
    /// ≈3 µs per inference.
    pub fn paper_k256() -> Self {
        GmmEngineModel {
            k: 256,
            ii: 1,
            pipeline_depth: 444,
            clock: ClockDomain::paper_233mhz(),
        }
    }

    /// Same pipeline, different component count.
    pub fn with_k(k: usize) -> Self {
        GmmEngineModel {
            k,
            ..GmmEngineModel::paper_k256()
        }
    }

    /// Inference latency in cycles.
    pub fn latency_cycles(&self) -> Cycles {
        Cycles(self.pipeline_depth + (self.k.saturating_sub(1)) as u64 * self.ii)
    }

    /// Inference latency in µs.
    pub fn latency_us(&self) -> f64 {
        self.clock.cycles_to_us(self.latency_cycles())
    }

    /// Throughput once the pipeline is full, in inferences per second
    /// (back-to-back scores are II·K cycles apart).
    pub fn throughput_per_sec(&self) -> f64 {
        let cycles_per = (self.k as u64 * self.ii).max(1);
        self.clock.mhz * 1e6 / cycles_per as f64
    }
}

impl Default for GmmEngineModel {
    fn default() -> Self {
        GmmEngineModel::paper_k256()
    }
}

/// A functional + timed GMM engine: the fixed-point datapath plus the
/// pipeline timing model.
#[derive(Clone, Debug)]
pub struct GmmEngine {
    model: GmmEngineModel,
    datapath: FixedGmm,
    inferences: u64,
}

impl GmmEngine {
    /// Quantizes `gmm` onto the fixed-point datapath with timing from
    /// `model` (the model's `k` is overridden by the mixture's actual K).
    ///
    /// # Errors
    ///
    /// Propagates quantization failures from [`FixedGmm::from_gmm`].
    pub fn new(gmm: &Gmm, mut model: GmmEngineModel) -> Result<Self, GmmError> {
        model.k = gmm.k();
        Ok(GmmEngine {
            model,
            datapath: FixedGmm::from_gmm(gmm)?,
            inferences: 0,
        })
    }

    /// Timing model.
    pub fn model(&self) -> &GmmEngineModel {
        &self.model
    }

    /// Scores a (already standardized) feature pair on the fixed-point
    /// datapath, counting the inference.
    pub fn score(&mut self, x: Vec2) -> f64 {
        self.inferences += 1;
        self.datapath.score(x)
    }

    /// Scores a window of feature pairs back-to-back, the way the real
    /// pipeline ingests one Gaussian per cycle with II = 1 and overlaps
    /// consecutive inferences: functionally bit-identical to calling
    /// [`GmmEngine::score`] per point, and each point still counts as one
    /// inference for busy-time accounting.
    ///
    /// # Panics
    ///
    /// Panics when `xs.len() != out.len()`.
    pub fn score_batch(&mut self, xs: &[Vec2], out: &mut [f64]) {
        self.inferences += xs.len() as u64;
        self.datapath.score_batch(xs, out);
    }

    /// Busy time of a back-to-back window, µs: the pipeline fills once and
    /// then retires one inference every `II · K` cycles, so a batch costs
    /// `depth + n · II · K` cycles rather than `n` full latencies.
    pub fn batch_busy_us(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let cycles = self.model.pipeline_depth + n as u64 * self.model.ii * self.model.k as u64;
        self.model.clock.cycles_to_us(Cycles(cycles))
    }

    /// Number of inferences performed.
    pub fn inferences(&self) -> u64 {
        self.inferences
    }

    /// Total busy time implied by the inference count, µs.
    pub fn busy_us(&self) -> f64 {
        self.inferences as f64 * self.model.latency_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icgmm_gmm::{Gaussian2, Mat2};

    #[test]
    fn paper_latency_is_three_us() {
        let m = GmmEngineModel::paper_k256();
        assert_eq!(m.latency_cycles(), Cycles(444 + 255));
        assert!((m.latency_us() - 3.0).abs() < 0.01, "{}", m.latency_us());
    }

    #[test]
    fn latency_scales_with_k() {
        let k64 = GmmEngineModel::with_k(64);
        let k256 = GmmEngineModel::with_k(256);
        let k1024 = GmmEngineModel::with_k(1024);
        assert!(k64.latency_us() < k256.latency_us());
        assert!(k256.latency_us() < k1024.latency_us());
        // Marginal cost is II = 1 cycle per extra component.
        assert_eq!(
            (k1024.latency_cycles() - k256.latency_cycles()).0,
            (1024 - 256)
        );
    }

    #[test]
    fn throughput_reflects_pipelining() {
        let m = GmmEngineModel::paper_k256();
        // One inference every 256 cycles at 233 MHz ≈ 910 k inferences/s.
        assert!((m.throughput_per_sec() - 233e6 / 256.0).abs() < 1.0);
    }

    #[test]
    fn batch_scoring_matches_scalar_and_counts_inferences() {
        let gmm = Gmm::new(
            vec![0.5, 0.5],
            vec![
                Gaussian2::new([-1.0, 0.0], Mat2::scaled_identity(0.5)).unwrap(),
                Gaussian2::new([1.5, 0.5], Mat2::scaled_identity(0.8)).unwrap(),
            ],
        )
        .unwrap();
        let mut scalar = GmmEngine::new(&gmm, GmmEngineModel::paper_k256()).unwrap();
        let mut batched = GmmEngine::new(&gmm, GmmEngineModel::paper_k256()).unwrap();
        let xs: Vec<[f64; 2]> = (0..40).map(|i| [i as f64 * 0.2 - 4.0, 0.3]).collect();
        let mut out = vec![0.0; xs.len()];
        batched.score_batch(&xs, &mut out);
        for (x, o) in xs.iter().zip(&out) {
            assert_eq!(o.to_bits(), scalar.score(*x).to_bits());
        }
        assert_eq!(batched.inferences(), xs.len() as u64);
        // Pipelining: a back-to-back window is far cheaper than n full
        // latencies, but never cheaper than n initiation intervals.
        let overlapped = batched.batch_busy_us(xs.len());
        assert!(overlapped < batched.busy_us());
        assert!(overlapped > 0.0);
        assert_eq!(batched.batch_busy_us(0), 0.0);
    }

    #[test]
    fn engine_counts_and_scores() {
        let gmm = Gmm::new(
            vec![1.0],
            vec![Gaussian2::new([0.0, 0.0], Mat2::scaled_identity(1.0)).unwrap()],
        )
        .unwrap();
        let mut e = GmmEngine::new(&gmm, GmmEngineModel::paper_k256()).unwrap();
        assert_eq!(e.model().k, 1);
        let near = e.score([0.0, 0.0]);
        let far = e.score([5.0, 5.0]);
        assert!(near > far);
        assert_eq!(e.inferences(), 2);
        assert!(e.busy_us() > 0.0);
    }
}
