//! Bounded FIFOs — the glue of the paper's dataflow architecture (Fig. 5:
//! trace FIFO, score FIFO, response FIFO).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Occupancy/stall statistics of one FIFO.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FifoStats {
    /// Successful pushes.
    pub pushes: u64,
    /// Successful pops.
    pub pops: u64,
    /// Push attempts rejected because the FIFO was full (producer stalls).
    pub push_stalls: u64,
    /// Pop attempts on an empty FIFO (consumer stalls).
    pub pop_stalls: u64,
    /// High-water mark.
    pub max_occupancy: usize,
}

/// A bounded single-producer/single-consumer FIFO with stall accounting.
///
/// ```
/// use icgmm_hw::BoundedFifo;
/// let mut f = BoundedFifo::new(2);
/// assert!(f.push(1).is_ok());
/// assert!(f.push(2).is_ok());
/// assert!(f.push(3).is_err()); // full — producer must stall
/// assert_eq!(f.pop(), Some(1));
/// assert_eq!(f.stats().push_stalls, 1);
/// ```
#[derive(Clone, Debug)]
pub struct BoundedFifo<T> {
    buf: VecDeque<T>,
    capacity: usize,
    stats: FifoStats,
}

impl<T> BoundedFifo<T> {
    /// Creates a FIFO with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be >= 1");
        BoundedFifo {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            stats: FifoStats::default(),
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// `true` when full.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Attempts to enqueue; on a full FIFO the item is handed back and a
    /// producer stall is recorded.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            self.stats.push_stalls += 1;
            return Err(item);
        }
        self.buf.push_back(item);
        self.stats.pushes += 1;
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.buf.len());
        Ok(())
    }

    /// Dequeues, recording a consumer stall when empty.
    pub fn pop(&mut self) -> Option<T> {
        match self.buf.pop_front() {
            Some(v) => {
                self.stats.pops += 1;
                Some(v)
            }
            None => {
                self.stats.pop_stalls += 1;
                None
            }
        }
    }

    /// Peeks at the head without consuming.
    pub fn peek(&self) -> Option<&T> {
        self.buf.front()
    }

    /// Statistics so far.
    pub fn stats(&self) -> FifoStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_fifo() {
        let mut f = BoundedFifo::new(4);
        for i in 0..4 {
            f.push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(f.pop(), Some(i));
        }
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn backpressure_is_observable() {
        let mut f = BoundedFifo::new(1);
        f.push('a').unwrap();
        assert!(f.is_full());
        assert_eq!(f.push('b'), Err('b'));
        assert_eq!(f.stats().push_stalls, 1);
        assert_eq!(f.pop(), Some('a'));
        f.push('b').unwrap();
        assert_eq!(f.peek(), Some(&'b'));
    }

    #[test]
    fn stats_track_watermark() {
        let mut f = BoundedFifo::new(8);
        for i in 0..5 {
            f.push(i).unwrap();
        }
        f.pop();
        f.pop();
        assert_eq!(f.stats().max_occupancy, 5);
        assert_eq!(f.len(), 3);
        assert_eq!(f.stats().pushes, 5);
        assert_eq!(f.stats().pops, 2);
    }

    #[test]
    fn empty_pop_counts_stall() {
        let mut f: BoundedFifo<u8> = BoundedFifo::new(2);
        assert!(f.pop().is_none());
        assert_eq!(f.stats().pop_stalls, 1);
        assert!(f.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _: BoundedFifo<u8> = BoundedFifo::new(0);
    }
}
