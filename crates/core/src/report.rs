//! Plain-text table formatting for the experiment harness (no external
//! table crates; the benches and examples share these helpers).

/// Renders an aligned ASCII table. `headers.len()` must match every row.
///
/// ```
/// let t = icgmm::report::format_table(
///     &["benchmark", "miss %"],
///     &[vec!["parsec".into(), "1.47".into()]],
/// );
/// assert!(t.contains("parsec"));
/// assert!(t.contains("benchmark"));
/// ```
///
/// # Panics
///
/// Panics when a row's length differs from the header's.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(
            r.len(),
            headers.len(),
            "row {i} has {} cells, expected {}",
            r.len(),
            headers.len()
        );
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (w, cell) in widths.iter_mut().zip(r) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let sep: String = widths
        .iter()
        .map(|w| format!("-{}-", "-".repeat(*w)))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!(" {c:<w$} "))
            .collect::<Vec<_>>()
            .join("|")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for r in rows {
        out.push_str(&fmt_row(r, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with fixed precision (sugar for table cells).
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats a percentage delta `new` vs `old` as `-12.3%` (negative =
/// improvement for latency/miss metrics).
pub fn delta_pct(old: f64, new: f64) -> String {
    if old == 0.0 {
        return "n/a".into();
    }
    format!("{:+.2}%", (new - old) / old * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = format_table(
            &["a", "bench"],
            &[
                vec!["1".into(), "x".into()],
                vec!["222".into(), "yy".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[1].contains('+'));
    }

    #[test]
    #[should_panic(expected = "row 0")]
    fn ragged_rows_panic() {
        let _ = format_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn numeric_helpers() {
        assert_eq!(f(1.2345, 2), "1.23");
        assert_eq!(delta_pct(2.0, 1.0), "-50.00%");
        assert_eq!(delta_pct(0.0, 1.0), "n/a");
        assert!(delta_pct(1.0, 1.1).starts_with('+'));
    }
}
