//! The seven calibrated benchmark presets of the paper's evaluation
//! (§5.1), with the published Fig. 6 / Table 1 reference numbers for
//! side-by-side reporting.

use crate::config::IcgmmConfig;
use icgmm_gmm::ThresholdConfig;
use icgmm_trace::synth::{Workload, WorkloadKind};
use serde::{Deserialize, Serialize};

/// One benchmark of the paper's suite: workload kind, request budget, seed
/// and the per-benchmark admission quantile.
///
/// The paper does not publish its threshold; the quantile here is the
/// reproduction's per-benchmark calibration knob (reported explicitly by
/// the harness and swept by the ablation bench).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkSpec {
    /// Which workload model.
    pub kind: WorkloadKind,
    /// Requests to generate.
    pub requests: usize,
    /// Generator seed.
    pub seed: u64,
    /// Admission-threshold quantile for the GMM caching modes.
    pub admission_quantile: f64,
}

impl BenchmarkSpec {
    /// The paper's seven benchmarks at full scale (~1.2 M requests each;
    /// trimming leaves ~840 k evaluated requests).
    pub fn paper_suite() -> Vec<BenchmarkSpec> {
        Self::suite_with_requests(1_200_000)
    }

    /// A reduced suite for quick runs and CI (~200 k requests).
    pub fn quick_suite() -> Vec<BenchmarkSpec> {
        Self::suite_with_requests(200_000)
    }

    /// The suite at an arbitrary request budget.
    pub fn suite_with_requests(requests: usize) -> Vec<BenchmarkSpec> {
        WorkloadKind::all()
            .into_iter()
            .map(|kind| BenchmarkSpec {
                kind,
                requests,
                seed: 0x1C6_0D00 ^ kind_seed(kind),
                admission_quantile: default_quantile(kind),
            })
            .collect()
    }

    /// Builds the workload generator.
    pub fn workload(&self) -> Box<dyn Workload + Send + Sync> {
        self.kind.default_workload()
    }

    /// System configuration for this benchmark (paper defaults plus the
    /// per-benchmark quantile).
    pub fn config(&self) -> IcgmmConfig {
        IcgmmConfig {
            threshold: ThresholdConfig {
                quantile: self.admission_quantile,
            },
            ..IcgmmConfig::default()
        }
    }
}

/// Deterministic per-kind seed component.
fn kind_seed(kind: WorkloadKind) -> u64 {
    match kind {
        WorkloadKind::Parsec => 11,
        WorkloadKind::Memtier => 22,
        WorkloadKind::Hashmap => 33,
        WorkloadKind::Heap => 44,
        WorkloadKind::Sysbench => 55,
        WorkloadKind::Dlrm => 66,
        WorkloadKind::Stream => 77,
    }
}

/// Per-benchmark admission quantile (calibration; see DESIGN.md §4).
///
/// These are *mass* quantiles of training-cell scores. Under heavy Zipf
/// skew a few percent of request mass already covers every page beyond
/// cache reach, so the skewed workloads use small values; dlrm's mild skew
/// spreads mass widely and tolerates aggressive filtering.
fn default_quantile(kind: WorkloadKind) -> f64 {
    match kind {
        // Mostly-resident working set: admit nearly everything.
        WorkloadKind::Parsec => 0.01,
        // Heavy Zipf tails: bypass only the deep tail (a few percent of
        // request mass already covers every beyond-cache page).
        WorkloadKind::Memtier => 0.015,
        WorkloadKind::Hashmap => 0.01,
        WorkloadKind::Sysbench => 0.015,
        // Mild skew over a huge footprint: filter aggressively.
        WorkloadKind::Dlrm => 0.35,
        // Heap: sift-down reads siblings on the page it just missed on, so
        // any bypass multiplies misses — admission disabled.
        WorkloadKind::Heap => 0.0,
        // Sequential sweeps have intra-sweep reuse (8 touches per page):
        // bypassing scan pages multiplies their misses, so admit almost
        // everything and let score-eviction pin the hot region.
        WorkloadKind::Stream => 0.02,
    }
}

/// Published reference numbers for one benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PaperNumbers {
    /// LRU miss rate, % (Fig. 6).
    pub lru_miss_pct: f64,
    /// Best GMM miss rate, % (Fig. 6, dashed bars).
    pub gmm_miss_pct: f64,
    /// LRU average access time, µs (Table 1).
    pub lru_avg_us: f64,
    /// GMM average access time, µs (Table 1).
    pub gmm_avg_us: f64,
    /// Published reduction, % (Table 1).
    pub reduction_pct: f64,
}

/// Fig. 6 / Table 1 reference values, in the paper's benchmark order.
pub fn paper_numbers(kind: WorkloadKind) -> PaperNumbers {
    match kind {
        WorkloadKind::Parsec => PaperNumbers {
            lru_miss_pct: 1.47,
            gmm_miss_pct: 1.15,
            lru_avg_us: 3.92,
            gmm_avg_us: 3.29,
            reduction_pct: 16.23,
        },
        WorkloadKind::Memtier => PaperNumbers {
            lru_miss_pct: 2.67,
            gmm_miss_pct: 1.48,
            lru_avg_us: 2.98,
            gmm_avg_us: 2.09,
            reduction_pct: 29.87,
        },
        WorkloadKind::Hashmap => PaperNumbers {
            lru_miss_pct: 2.10,
            gmm_miss_pct: 1.23,
            lru_avg_us: 18.10,
            gmm_avg_us: 11.02,
            reduction_pct: 39.14,
        },
        WorkloadKind::Heap => PaperNumbers {
            lru_miss_pct: 2.08,
            gmm_miss_pct: 1.54,
            lru_avg_us: 16.48,
            gmm_avg_us: 12.46,
            reduction_pct: 24.39,
        },
        WorkloadKind::Sysbench => PaperNumbers {
            lru_miss_pct: 3.87,
            gmm_miss_pct: 2.58,
            lru_avg_us: 3.87,
            gmm_avg_us: 2.91,
            reduction_pct: 24.79,
        },
        WorkloadKind::Dlrm => PaperNumbers {
            lru_miss_pct: 36.78,
            gmm_miss_pct: 30.64,
            lru_avg_us: 70.65,
            gmm_avg_us: 58.43,
            reduction_pct: 17.30,
        },
        WorkloadKind::Stream => PaperNumbers {
            lru_miss_pct: 13.45,
            gmm_miss_pct: 11.09,
            lru_avg_us: 156.39,
            gmm_avg_us: 125.71,
            reduction_pct: 19.62,
        },
    }
}

/// Which strategy the paper found best per benchmark (Fig. 6 dashed bars).
pub fn paper_best_strategy(kind: WorkloadKind) -> crate::PolicyMode {
    match kind {
        WorkloadKind::Parsec | WorkloadKind::Heap => crate::PolicyMode::GmmEvictionOnly,
        _ => crate::PolicyMode::GmmCachingEviction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_all_seven() {
        let suite = BenchmarkSpec::paper_suite();
        assert_eq!(suite.len(), 7);
        let kinds: Vec<_> = suite.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, WorkloadKind::all().to_vec());
        assert!(suite.iter().all(|s| s.requests == 1_200_000));
        // Distinct seeds.
        let mut seeds: Vec<_> = suite.iter().map(|s| s.seed).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), 7);
    }

    #[test]
    fn configs_are_valid() {
        for s in BenchmarkSpec::quick_suite() {
            assert!(s.config().validate().is_ok(), "{}", s.kind);
            assert!((0.0..1.0).contains(&s.admission_quantile));
        }
    }

    #[test]
    fn paper_numbers_are_internally_consistent() {
        for kind in WorkloadKind::all() {
            let p = paper_numbers(kind);
            assert!(p.gmm_miss_pct < p.lru_miss_pct, "{kind}");
            assert!(p.gmm_avg_us < p.lru_avg_us, "{kind}");
            let computed = (1.0 - p.gmm_avg_us / p.lru_avg_us) * 100.0;
            assert!(
                (computed - p.reduction_pct).abs() < 0.6,
                "{kind}: reduction {computed} vs published {}",
                p.reduction_pct
            );
        }
    }

    #[test]
    fn best_strategy_matches_fig6() {
        use crate::PolicyMode;
        assert_eq!(
            paper_best_strategy(WorkloadKind::Parsec),
            PolicyMode::GmmEvictionOnly
        );
        assert_eq!(
            paper_best_strategy(WorkloadKind::Heap),
            PolicyMode::GmmEvictionOnly
        );
        assert_eq!(
            paper_best_strategy(WorkloadKind::Dlrm),
            PolicyMode::GmmCachingEviction
        );
    }

    #[test]
    fn workload_builds_and_generates() {
        let spec = BenchmarkSpec {
            kind: WorkloadKind::Stream,
            requests: 1_000,
            seed: 9,
            admission_quantile: 0.5,
        };
        let t = spec.workload().generate(spec.requests, spec.seed);
        assert_eq!(t.len(), 1_000);
    }
}
