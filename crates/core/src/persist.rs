//! Plain-text persistence for trained models.
//!
//! The FPGA loads its weight buffer once from HBM before the kernels start
//! (paper Fig. 5); deployments therefore need the trained model as an
//! artifact. To stay inside the approved dependency set (no serde_json),
//! the format is a simple line-oriented text file:
//!
//! ```text
//! icgmm-model v1
//! scaler <mean_p> <mean_t> <std_p> <std_t>
//! threshold <t>
//! k <K>
//! comp <weight> <mean_p> <mean_t> <cov_xx> <cov_xy> <cov_yy>   (K lines)
//! ```
//!
//! Floats are written with full round-trip precision (`{:e}` with 17
//! significant digits), so save → load is bit-exact.

use crate::engine::TrainedModel;
use icgmm_gmm::{Gaussian2, Gmm, Mat2, StandardScaler};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Error produced when loading a model file.
#[derive(Debug)]
pub enum ModelFileError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or numeric problem in the file.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        what: String,
    },
}

impl fmt::Display for ModelFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelFileError::Io(e) => write!(f, "i/o error reading model: {e}"),
            ModelFileError::Malformed { line, what } => {
                write!(f, "malformed model file at line {line}: {what}")
            }
        }
    }
}

impl Error for ModelFileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelFileError::Io(e) => Some(e),
            ModelFileError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for ModelFileError {
    fn from(e: std::io::Error) -> Self {
        ModelFileError::Io(e)
    }
}

/// Writes a trained model. A `&mut` reference may be passed for `w`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save_model<W: Write>(model: &TrainedModel, w: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "icgmm-model v1")?;
    let s = &model.scaler;
    writeln!(
        w,
        "scaler {:.17e} {:.17e} {:.17e} {:.17e}",
        s.mean()[0],
        s.mean()[1],
        s.std()[0],
        s.std()[1]
    )?;
    writeln!(w, "threshold {:.17e}", model.threshold)?;
    writeln!(w, "k {}", model.gmm.k())?;
    for (weight, comp) in model.gmm.weights().iter().zip(model.gmm.components()) {
        let m = comp.mean();
        let c = comp.cov();
        writeln!(
            w,
            "comp {weight:.17e} {:.17e} {:.17e} {:.17e} {:.17e} {:.17e}",
            m[0], m[1], c.xx, c.xy, c.yy
        )?;
    }
    w.flush()
}

/// Reads a trained model. A `&mut` reference may be passed for `r`.
///
/// # Errors
///
/// Returns [`ModelFileError::Malformed`] on the first structural problem,
/// or [`ModelFileError::Io`] on reader failure.
pub fn load_model<R: Read>(r: R) -> Result<TrainedModel, ModelFileError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines().enumerate();
    let mut next = |expect: &str| -> Result<(usize, String), ModelFileError> {
        match lines.next() {
            Some((i, Ok(l))) => Ok((i + 1, l)),
            Some((i, Err(e))) => Err(ModelFileError::Malformed {
                line: i + 1,
                what: e.to_string(),
            }),
            None => Err(ModelFileError::Malformed {
                line: 0,
                what: format!("unexpected end of file, expected {expect}"),
            }),
        }
    };
    let bad = |line: usize, what: &str| ModelFileError::Malformed {
        line,
        what: what.to_string(),
    };
    let floats =
        |line: usize, s: &str, prefix: &str, n: usize| -> Result<Vec<f64>, ModelFileError> {
            let rest = s
                .strip_prefix(prefix)
                .ok_or_else(|| bad(line, &format!("expected {prefix:?} line")))?;
            let vals: Result<Vec<f64>, _> = rest.split_whitespace().map(str::parse).collect();
            let vals = vals.map_err(|_| bad(line, "unparseable number"))?;
            if vals.len() != n {
                return Err(bad(line, &format!("expected {n} numbers")));
            }
            Ok(vals)
        };

    let (i, header) = next("header")?;
    if header.trim() != "icgmm-model v1" {
        return Err(bad(i, "bad header (expected \"icgmm-model v1\")"));
    }
    let (i, line) = next("scaler")?;
    let sv = floats(i, &line, "scaler", 4)?;
    let scaler =
        StandardScaler::from_parts([sv[0], sv[1]], [sv[2], sv[3]]).map_err(|e| bad(i, &e))?;
    let (i, line) = next("threshold")?;
    let threshold = floats(i, &line, "threshold", 1)?[0];
    let (i, line) = next("k")?;
    let k: usize = line
        .strip_prefix("k ")
        .and_then(|v| v.trim().parse().ok())
        .ok_or_else(|| bad(i, "expected \"k <count>\""))?;
    if k == 0 {
        return Err(bad(i, "k must be >= 1"));
    }

    let mut weights = Vec::with_capacity(k);
    let mut comps = Vec::with_capacity(k);
    for _ in 0..k {
        let (i, line) = next("component")?;
        let v = floats(i, &line, "comp", 6)?;
        weights.push(v[0]);
        let g = Gaussian2::new([v[1], v[2]], Mat2::new(v[3], v[4], v[5]))
            .map_err(|e| bad(i, &e.to_string()))?;
        comps.push(g);
    }
    let gmm = Gmm::new(weights, comps).map_err(|e| ModelFileError::Malformed {
        line: 0,
        what: e.to_string(),
    })?;
    Ok(TrainedModel {
        scaler,
        gmm,
        threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use icgmm_gmm::{Gaussian2, Mat2};

    fn sample_model() -> TrainedModel {
        let gmm = Gmm::new(
            vec![0.25, 0.75],
            vec![
                Gaussian2::new([1.5, -2.0], Mat2::new(0.5, 0.1, 0.9)).unwrap(),
                Gaussian2::new([-3.25, 4.0], Mat2::new(1.25, -0.2, 2.0)).unwrap(),
            ],
        )
        .unwrap();
        let scaler = StandardScaler::from_parts([1000.0, 50.0], [250.0, 10.0]).unwrap();
        TrainedModel {
            scaler,
            gmm,
            threshold: 0.0123456789,
        }
    }

    #[test]
    fn save_load_round_trips_exactly() {
        let model = sample_model();
        let mut buf = Vec::new();
        save_model(&model, &mut buf).unwrap();
        let loaded = load_model(buf.as_slice()).unwrap();
        assert_eq!(loaded, model);
        // Scores agree bit-for-bit.
        for x in [[900.0, 40.0], [1200.0, 60.0]] {
            let z = model.scaler.transform(x);
            assert_eq!(
                model.gmm.score(z),
                loaded.gmm.score(loaded.scaler.transform(x))
            );
        }
    }

    #[test]
    fn bad_header_is_rejected_with_line_number() {
        let err = load_model("not a model\n".as_bytes()).unwrap_err();
        match err {
            ModelFileError::Malformed { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn truncated_file_is_rejected() {
        let model = sample_model();
        let mut buf = Vec::new();
        save_model(&model, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let truncated: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(load_model(truncated.as_bytes()).is_err());
    }

    #[test]
    fn corrupt_numbers_are_rejected() {
        let model = sample_model();
        let mut buf = Vec::new();
        save_model(&model, &mut buf).unwrap();
        let text = String::from_utf8(buf)
            .unwrap()
            .replace("threshold", "threshold x");
        assert!(load_model(text.as_bytes()).is_err());
    }

    #[test]
    fn invalid_covariance_is_rejected() {
        // Hand-craft a file with a non-SPD covariance.
        let text = "icgmm-model v1\n\
                    scaler 0e0 0e0 1e0 1e0\n\
                    threshold 0e0\n\
                    k 1\n\
                    comp 1e0 0e0 0e0 1e0 5e0 1e0\n";
        let err = load_model(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 5"), "{err}");
    }
}
