//! Error type of the end-to-end system.

use std::error::Error;
use std::fmt;

/// Errors from configuring, training or running an ICGMM system.
#[derive(Debug)]
pub enum IcgmmError {
    /// Invalid configuration.
    Config(String),
    /// Cache geometry problem.
    Cache(icgmm_cache::CacheConfigError),
    /// GMM training/inference problem.
    Gmm(icgmm_gmm::GmmError),
    /// A GMM-driven mode was requested before [`crate::Icgmm::fit`].
    NotFitted,
    /// The trace was empty after preprocessing.
    EmptyTrace,
    /// The trace does not fit the sharded fan-out's `u32` position index
    /// (≥ 2³² records): routing would silently truncate, so the run is
    /// refused instead.
    TraceTooLong {
        /// Total records (warm-up + measured) the caller presented.
        records: usize,
    },
    /// A replay shard failed beyond recovery: its worker panicked and the
    /// supervisor's single-threaded re-replay of the same subtrace panicked
    /// too (armed fault-plan panics recover and never reach this).
    ShardFailed {
        /// Index of the failed shard.
        shard: usize,
        /// Panic payloads of the worker and the re-replay.
        message: String,
    },
}

impl fmt::Display for IcgmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IcgmmError::Config(s) => write!(f, "invalid configuration: {s}"),
            IcgmmError::Cache(e) => write!(f, "cache error: {e}"),
            IcgmmError::Gmm(e) => write!(f, "gmm error: {e}"),
            IcgmmError::NotFitted => {
                f.write_str("policy engine not trained: call fit() before a GMM mode")
            }
            IcgmmError::EmptyTrace => f.write_str("trace is empty after preprocessing"),
            IcgmmError::TraceTooLong { records } => write!(
                f,
                "trace too long for u32 index-based sharded fan-out ({records} records)"
            ),
            IcgmmError::ShardFailed { shard, message } => {
                write!(f, "replay shard {shard} failed: {message}")
            }
        }
    }
}

impl Error for IcgmmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IcgmmError::Cache(e) => Some(e),
            IcgmmError::Gmm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<icgmm_cache::CacheConfigError> for IcgmmError {
    fn from(e: icgmm_cache::CacheConfigError) -> Self {
        IcgmmError::Cache(e)
    }
}

impl From<icgmm_gmm::GmmError> for IcgmmError {
    fn from(e: icgmm_gmm::GmmError) -> Self {
        IcgmmError::Gmm(e)
    }
}

impl From<icgmm_serve::ServeError> for IcgmmError {
    fn from(e: icgmm_serve::ServeError) -> Self {
        match e {
            icgmm_serve::ServeError::Config(msg) => IcgmmError::Config(msg),
            icgmm_serve::ServeError::TraceTooLong { records } => {
                IcgmmError::TraceTooLong { records }
            }
            icgmm_serve::ServeError::ShardFailed { shard, message } => {
                IcgmmError::ShardFailed { shard, message }
            }
        }
    }
}

impl From<icgmm_cache::ShardRunError> for IcgmmError {
    fn from(e: icgmm_cache::ShardRunError) -> Self {
        match e {
            icgmm_cache::ShardRunError::Config(c) => IcgmmError::Cache(c),
            icgmm_cache::ShardRunError::TraceTooLong { records } => {
                IcgmmError::TraceTooLong { records }
            }
            icgmm_cache::ShardRunError::ShardFailed { shard, message } => {
                IcgmmError::ShardFailed { shard, message }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(IcgmmError::NotFitted.to_string().contains("fit()"));
        assert!(IcgmmError::EmptyTrace.to_string().contains("empty"));
        assert!(IcgmmError::Config("bad".into()).to_string().contains("bad"));
        let e: IcgmmError = icgmm_gmm::GmmError::EmptyInput.into();
        assert!(e.to_string().contains("gmm"));
        assert!(e.source().is_some());
        let s = IcgmmError::ShardFailed {
            shard: 3,
            message: "boom".into(),
        };
        assert!(s.to_string().contains("shard 3") && s.to_string().contains("boom"));
    }

    #[test]
    fn shard_run_errors_convert_losslessly() {
        let e: IcgmmError = icgmm_cache::ShardRunError::ShardFailed {
            shard: 7,
            message: "worker panicked".into(),
        }
        .into();
        assert!(matches!(e, IcgmmError::ShardFailed { shard: 7, .. }));
    }

    #[test]
    fn trace_too_long_converts_from_both_layers() {
        let records = u32::MAX as usize + 2;
        let e: IcgmmError = icgmm_cache::ShardRunError::TraceTooLong { records }.into();
        assert!(matches!(e, IcgmmError::TraceTooLong { records: r } if r == records));
        assert!(e.to_string().contains("trace too long"));
        let e: IcgmmError = icgmm_serve::ServeError::TraceTooLong { records }.into();
        assert!(matches!(e, IcgmmError::TraceTooLong { records: r } if r == records));
    }
}
