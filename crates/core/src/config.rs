//! End-to-end system configuration and the four policy modes of Fig. 6.

use crate::error::IcgmmError;
use icgmm_cache::{AdaptPlan, CacheConfig, FaultPlan, LatencyModel};
use icgmm_gmm::{EmConfig, ThresholdConfig};
use icgmm_trace::PreprocessConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which cache policy drives the run.
///
/// The first five are score-free baselines; the three `Gmm*` modes are the
/// paper's smart caching/eviction strategies (Fig. 6 compares `Lru` against
/// all three).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyMode {
    /// Classic LRU (the paper's baseline).
    Lru,
    /// FIFO eviction.
    Fifo,
    /// Random eviction.
    Random,
    /// LFU eviction.
    Lfu,
    /// Belady's offline-optimal eviction (upper bound, not in the paper).
    Belady,
    /// GMM admission filter + LRU eviction ("GMM caching-only").
    GmmCachingOnly,
    /// Always-admit + GMM-score eviction ("GMM eviction-only").
    GmmEvictionOnly,
    /// GMM admission + GMM eviction ("GMM caching-eviction").
    GmmCachingEviction,
}

impl PolicyMode {
    /// The four bars of the paper's Fig. 6, in order.
    pub fn fig6_modes() -> [PolicyMode; 4] {
        [
            PolicyMode::Lru,
            PolicyMode::GmmCachingOnly,
            PolicyMode::GmmEvictionOnly,
            PolicyMode::GmmCachingEviction,
        ]
    }

    /// `true` when the mode needs a trained policy engine.
    pub fn uses_gmm(self) -> bool {
        matches!(
            self,
            PolicyMode::GmmCachingOnly
                | PolicyMode::GmmEvictionOnly
                | PolicyMode::GmmCachingEviction
        )
    }
}

impl fmt::Display for PolicyMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PolicyMode::Lru => "lru",
            PolicyMode::Fifo => "fifo",
            PolicyMode::Random => "random",
            PolicyMode::Lfu => "lfu",
            PolicyMode::Belady => "belady",
            PolicyMode::GmmCachingOnly => "gmm-caching",
            PolicyMode::GmmEvictionOnly => "gmm-eviction",
            PolicyMode::GmmCachingEviction => "gmm-both",
        };
        f.write_str(s)
    }
}

/// Full system configuration. Defaults reproduce the paper's deployment:
/// 64 MiB / 4 KiB / 8-way cache, K = 256, `len_window` 32,
/// `len_access_shot` 10 000, TLC SSD latencies, threshold quantile 0.05
/// (per-benchmark calibrated values live in [`crate::benchmarks`]).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct IcgmmConfig {
    /// DRAM-cache geometry.
    pub cache: CacheConfig,
    /// Trace preprocessing (trim + Algorithm 1).
    pub preprocess: PreprocessConfig,
    /// EM training settings.
    pub em: EmConfig,
    /// Admission-threshold calibration.
    pub threshold: ThresholdConfig,
    /// Latency constants for the analytic model.
    pub latency: LatencyModel,
    /// Training cells are subsampled to at most this many (keeps K = 256
    /// EM laptop-fast; weighted subsampling preserves the distribution).
    pub max_train_cells: usize,
    /// Evaluate policy decisions on the fixed-point (FPGA) datapath
    /// instead of f64 (slower but bit-faithful to the hardware).
    pub fixed_point_inference: bool,
    /// Writes are admitted regardless of score (see the cache crate's
    /// `ThresholdAdmit` docs for the rationale).
    pub admit_writes_always: bool,
    /// Multiplicative bump applied to a block's stored score on every hit
    /// (`score ×= 1 + bonus`). The paper stores scores once at insertion
    /// (`0.0`, the default); positive values blend recency back in and are
    /// swept by the ablation bench.
    pub eviction_hit_bonus: f64,
    /// Speculation depth `W` of the miss-window batcher: GMM-mode runs
    /// lookahead-classify this many requests, prefetch predicted-miss
    /// scores through the batched kernel, and replay (results are
    /// bit-identical to streaming at any value). Larger windows amortize
    /// more batching; smaller ones bound the re-speculation cost after a
    /// divergence.
    pub sim_window: usize,
    /// Floor of the batcher's adaptive depth: after a divergent window the
    /// effective depth halves, but never below `min(sim_window_floor,
    /// sim_window)`. Results are invariant; the floor only bounds how much
    /// lookahead a divergence storm can waste per cut.
    pub sim_window_floor: usize,
    /// Hit-dominance divisor of the batcher's mode probe: a cleanly
    /// replayed window missing fewer than 1-in-this-many records flips the
    /// simulator into plain streaming for a span (scoring that few misses
    /// cannot repay per-request lookahead). Larger values keep speculating
    /// on more hit-heavy phases; results are invariant either way.
    pub sim_stream_miss_div: usize,
    /// Shard count of [`crate::Icgmm::run_sharded`]: the set-associative
    /// cache is partitioned by set index into this many independent shards
    /// replayed on scoped threads (each with its own policy state,
    /// miss-window speculation and scorer clone on the global Algorithm 1
    /// clock). Results are bit-identical to the single-threaded
    /// [`crate::Icgmm::run`] at any value — sharding is pure host-side
    /// parallelism. `1` (the default) replays single-threaded.
    pub sim_shards: usize,
    /// Client (submitter) thread count of [`crate::Icgmm::serve`]: how
    /// many threads feed the serving front-end's per-shard ingestion
    /// queues. Clients beyond `sim_shards` would own no shard and are
    /// capped away at serve time. Results are bit-identical at any value —
    /// concurrency is pure timing.
    pub serve_clients: usize,
    /// Bound of every serving ingestion and outcome queue
    /// ([`crate::Icgmm::serve`]). Small depths exercise backpressure
    /// (submission blocks, the wait lands in the admission-latency
    /// percentiles); large depths amortize hand-off cost. Results are
    /// bit-identical at any value.
    pub serve_queue_depth: usize,
    /// Depth of each serving shard worker's simulated backend-completion
    /// queue ([`crate::Icgmm::serve`]): how many modeled SSD accesses may
    /// be in flight before the next admission decision stalls on the
    /// oldest completion (retired in sequence order). Depth 1 serializes
    /// consecutive misses exactly like the inline latency charge; deeper
    /// queues overlap decisions with in-flight modeled misses and report
    /// the saving in the serve report's overlap telemetry. Results are
    /// bit-identical at any value — the queue is pure telemetry.
    pub serve_completion_depth: usize,
    /// Deterministic fault-injection plan spanning the whole replay stack:
    /// scorer faults (non-finite scores, engine outages), device faults
    /// (SSD failures, retries, tail-latency spikes on the modeled
    /// timeline), shard-worker panics, and the degradation ladder's knobs
    /// (speculation circuit breaker, scorer health monitor). The empty
    /// default arms nothing and leaves every run bit-identical to a
    /// fault-free build.
    pub fault: FaultPlan,
    /// Online-adaptation plan: per-shard reservoir sampling of the replay
    /// stream, a drift detector over windowed mean log-likelihood, and
    /// incremental EM refits published by an atomic scorer swap. The
    /// empty default (`check_interval == 0`) arms nothing — disabled runs
    /// are bit-identical to a build without the adaptation code — and an
    /// armed plan keeps every run deterministic from
    /// `(trace seed, adapt.seed)` at any shard count.
    pub adapt: AdaptPlan,
}

impl Default for IcgmmConfig {
    fn default() -> Self {
        IcgmmConfig {
            cache: CacheConfig::paper_default(),
            preprocess: PreprocessConfig::default(),
            em: EmConfig::default(),
            threshold: ThresholdConfig::default(),
            latency: LatencyModel::paper_tlc(),
            max_train_cells: 120_000,
            fixed_point_inference: false,
            admit_writes_always: true,
            eviction_hit_bonus: 0.0,
            sim_window: icgmm_cache::DEFAULT_SPEC_WINDOW,
            sim_window_floor: icgmm_cache::MIN_SPEC_WINDOW,
            sim_stream_miss_div: icgmm_cache::STREAM_MISS_FRACTION_DIV,
            sim_shards: 1,
            serve_clients: 1,
            serve_queue_depth: 256,
            serve_completion_depth: 8,
            fault: FaultPlan::empty(),
            adapt: AdaptPlan::empty(),
        }
    }
}

impl IcgmmConfig {
    /// Validates all nested configuration.
    ///
    /// # Errors
    ///
    /// Returns [`IcgmmError::Config`] describing the first problem found.
    pub fn validate(&self) -> Result<(), IcgmmError> {
        self.cache
            .validate()
            .map_err(|e| IcgmmError::Config(e.to_string()))?;
        self.preprocess.validate().map_err(IcgmmError::Config)?;
        self.em
            .validate()
            .map_err(|e| IcgmmError::Config(e.to_string()))?;
        if self.max_train_cells == 0 {
            return Err(IcgmmError::Config("max_train_cells must be >= 1".into()));
        }
        if !(0.0..1.0).contains(&self.threshold.quantile) {
            return Err(IcgmmError::Config(
                "threshold quantile must be in [0, 1)".into(),
            ));
        }
        if !(self.eviction_hit_bonus.is_finite() && self.eviction_hit_bonus >= 0.0) {
            return Err(IcgmmError::Config(
                "eviction_hit_bonus must be finite and >= 0".into(),
            ));
        }
        if self.sim_window == 0 {
            return Err(IcgmmError::Config("sim_window must be >= 1".into()));
        }
        if self.sim_window_floor == 0 {
            // A floor above sim_window is fine (the batcher clamps it to
            // the window — W = 1 sweeps rely on that), but zero would
            // stall the adaptive shrink entirely.
            return Err(IcgmmError::Config("sim_window_floor must be >= 1".into()));
        }
        if self.sim_stream_miss_div == 0 {
            return Err(IcgmmError::Config(
                "sim_stream_miss_div must be >= 1".into(),
            ));
        }
        if self.sim_shards == 0 {
            // More shards than sets is legal (the excess shards idle), so
            // only zero is rejected here.
            return Err(IcgmmError::Config("sim_shards must be >= 1".into()));
        }
        if self.serve_clients == 0 {
            return Err(IcgmmError::Config("serve_clients must be >= 1".into()));
        }
        if self.serve_queue_depth == 0 {
            return Err(IcgmmError::Config("serve_queue_depth must be >= 1".into()));
        }
        if self.serve_completion_depth == 0 {
            return Err(IcgmmError::Config(
                "serve_completion_depth must be >= 1".into(),
            ));
        }
        self.fault.validate().map_err(IcgmmError::Config)?;
        self.adapt.validate().map_err(IcgmmError::Config)?;
        if !self.adapt.is_empty() {
            if self.fixed_point_inference {
                // Refits retrain the f64 mixture; the quantized FPGA tables
                // are frozen at fit time and cannot follow a swap.
                return Err(IcgmmError::Config(
                    "online adaptation requires the f64 datapath \
                     (disable fixed_point_inference)"
                        .into(),
                ));
            }
            if self.em.reg_covar <= 0.0 {
                // The incremental trainer refuses reg_covar == 0 (a single
                // E/M pass over a small reservoir degenerates without it).
                return Err(IcgmmError::Config(
                    "online adaptation requires em.reg_covar > 0".into(),
                ));
            }
        }
        Ok(())
    }

    /// The batcher parameter set this configuration describes.
    pub fn spec_params(&self) -> icgmm_cache::SpecParams {
        icgmm_cache::SpecParams {
            window: self.sim_window,
            min_window: self.sim_window_floor,
            stream_miss_fraction_div: self.sim_stream_miss_div,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_paper_shaped() {
        let c = IcgmmConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.cache.num_sets(), 2048);
        assert_eq!(c.em.k, 256);
        assert_eq!(c.preprocess.len_window, 32);
        assert_eq!(c.latency.ssd_read_us, 75.0);
    }

    #[test]
    fn validation_flags_each_field() {
        let mut c = IcgmmConfig {
            max_train_cells: 0,
            ..Default::default()
        };
        assert!(matches!(c.validate(), Err(IcgmmError::Config(_))));
        c = IcgmmConfig::default();
        c.threshold.quantile = 1.5;
        assert!(c.validate().is_err());
        c = IcgmmConfig::default();
        c.em.k = 0;
        assert!(c.validate().is_err());
        c = IcgmmConfig::default();
        c.cache.ways = 0;
        assert!(c.validate().is_err());
        c = IcgmmConfig::default();
        c.sim_window = 0;
        assert!(c.validate().is_err());
        c = IcgmmConfig::default();
        c.sim_window_floor = 0;
        assert!(c.validate().is_err());
        c = IcgmmConfig::default();
        c.sim_stream_miss_div = 0;
        assert!(c.validate().is_err());
        c = IcgmmConfig::default();
        c.sim_shards = 0;
        assert!(c.validate().is_err());
        c = IcgmmConfig::default();
        c.serve_clients = 0;
        assert!(c.validate().is_err());
        c = IcgmmConfig::default();
        c.serve_queue_depth = 0;
        assert!(c.validate().is_err());
        c = IcgmmConfig::default();
        c.serve_completion_depth = 0;
        assert!(c.validate().is_err());
        c = IcgmmConfig::default();
        c.fault.scorer_nan_per_mille = 1001;
        assert!(c.validate().is_err());
        c = IcgmmConfig::default();
        c.adapt.check_interval = 1_000;
        c.adapt.decay = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn serve_defaults_are_single_client_deep_queue() {
        let c = IcgmmConfig::default();
        assert_eq!(c.serve_clients, 1);
        assert_eq!(c.serve_queue_depth, 256);
        assert_eq!(c.serve_completion_depth, 8);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn chaos_fault_plans_validate_and_defaults_are_empty() {
        let c = IcgmmConfig::default();
        assert!(c.fault.is_empty());
        let chaotic = IcgmmConfig {
            fault: FaultPlan::chaos(42),
            ..Default::default()
        };
        assert!(chaotic.validate().is_ok());
    }

    #[test]
    fn adapt_plans_validate_and_defaults_are_empty() {
        let c = IcgmmConfig::default();
        assert!(c.adapt.is_empty());
        let adaptive = IcgmmConfig {
            adapt: AdaptPlan::drifty(42),
            ..Default::default()
        };
        assert!(adaptive.validate().is_ok());
        // The refit loop retrains the f64 mixture only.
        let fixed = IcgmmConfig {
            adapt: AdaptPlan::drifty(42),
            fixed_point_inference: true,
            ..Default::default()
        };
        assert!(matches!(fixed.validate(), Err(IcgmmError::Config(_))));
        // Incremental refits need a strictly positive covariance floor.
        let mut degenerate = IcgmmConfig {
            adapt: AdaptPlan::drifty(42),
            ..Default::default()
        };
        degenerate.em.reg_covar = 0.0;
        assert!(degenerate.validate().is_err());
        // The same reg_covar is fine while adaptation stays off.
        degenerate.adapt = AdaptPlan::empty();
        assert!(degenerate.validate().is_ok());
    }

    #[test]
    fn shard_counts_above_the_set_count_are_valid() {
        // Excess shards simply idle; only zero is rejected.
        let c = IcgmmConfig {
            sim_shards: 100_000,
            ..Default::default()
        };
        assert!(c.validate().is_ok());
        assert_eq!(IcgmmConfig::default().sim_shards, 1);
    }

    #[test]
    fn spec_params_mirror_the_sim_knobs_and_tolerate_a_high_floor() {
        let mut c = IcgmmConfig {
            sim_window: 512,
            sim_window_floor: 32,
            sim_stream_miss_div: 4,
            ..Default::default()
        };
        assert!(c.validate().is_ok());
        let p = c.spec_params();
        assert_eq!(p.window, 512);
        assert_eq!(p.min_window, 32);
        assert_eq!(p.stream_miss_fraction_div, 4);
        // W = 1 sweeps keep the default floor; the batcher clamps it.
        c.sim_window = 1;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn default_sim_window_is_the_cache_crate_default() {
        assert_eq!(
            IcgmmConfig::default().sim_window,
            icgmm_cache::DEFAULT_SPEC_WINDOW
        );
    }

    #[test]
    fn fig6_modes_are_the_paper_four() {
        let m = PolicyMode::fig6_modes();
        assert_eq!(m[0], PolicyMode::Lru);
        assert!(!m[0].uses_gmm());
        assert!(m[1].uses_gmm() && m[2].uses_gmm() && m[3].uses_gmm());
        assert_eq!(m[3].to_string(), "gmm-both");
    }
}
