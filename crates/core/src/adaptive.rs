//! Online adaptive retraining — an extension beyond the paper.
//!
//! The paper trains the GMM **offline** on a long trace and deploys the
//! frozen model ("parameters will be saved for inference", §3.3). That
//! leaves a deployment question open: what happens when the workload
//! drifts away from the training distribution? This module answers it by
//! periodically refitting the mixture on a sliding window of recent
//! requests *during* the simulated run — the software analogue of
//! re-loading the FPGA weight buffer between kernel activations (the
//! hardware explicitly supports one-time weight loading, so periodic
//! reloads are architecturally plausible).
//!
//! The run is chunked: each chunk is simulated with the current engine,
//! then the engine is refit on the last `window` requests. Statistics are
//! accumulated across chunks; cache and policy state persist (no flushes).

use crate::config::{IcgmmConfig, PolicyMode};
use crate::engine::{GmmPolicyEngine, TrainedModel};
use crate::error::IcgmmError;
use crate::system::Icgmm;
use icgmm_cache::{
    AlwaysAdmit, CacheStats, GmmScorePolicy, ScoreSource, SetAssocCache, ThresholdAdmit,
};
use icgmm_gmm::{calibrate_threshold, EmTrainer, StandardScaler};
use icgmm_trace::{Trace, TraceRecord};
use serde::{Deserialize, Serialize};

/// Configuration of the adaptive loop.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Requests between refits.
    pub refit_every: usize,
    /// Training window: the refit uses the most recent `window` requests.
    pub window: usize,
    /// EM iteration budget per refit (smaller than offline training —
    /// refits start from scratch but see far less data).
    pub refit_max_iters: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            refit_every: 100_000,
            window: 150_000,
            refit_max_iters: 25,
        }
    }
}

impl AdaptiveConfig {
    /// Validates the loop parameters.
    ///
    /// # Errors
    ///
    /// Returns [`IcgmmError::Config`] when any field is zero.
    pub fn validate(&self) -> Result<(), IcgmmError> {
        if self.refit_every == 0 || self.window == 0 || self.refit_max_iters == 0 {
            return Err(IcgmmError::Config(
                "adaptive refit_every/window/refit_max_iters must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

/// Outcome of an adaptive run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveReport {
    /// Accumulated counters over the measured portion.
    pub stats: CacheStats,
    /// Average access latency, µs.
    pub avg_us: f64,
    /// Number of refits performed.
    pub refits: usize,
    /// Miss rate of each chunk (drift visibility).
    pub chunk_miss_rates: Vec<f64>,
}

impl AdaptiveReport {
    /// Miss rate in percent over the whole run.
    pub fn miss_rate_pct(&self) -> f64 {
        self.stats.miss_rate() * 100.0
    }
}

/// A rank-normalizing wrapper: maps raw mixture densities through the
/// training-score CDF, producing scores in `[0, 1]` that mean "fraction of
/// training request mass scoring at or below this page".
///
/// Rank normalization is a *monotone* transform, so for a single frozen
/// model it changes no eviction order and no threshold decision. Its value
/// is cross-model comparability: after a refit, the mixture's density
/// scale changes (different normalizers), and raw scores stored in the
/// cache by the old model would be compared against raw scores from the
/// new one — apples to oranges. Ranks stay commensurable across refits.
#[derive(Clone, Debug)]
struct ScoreCdf {
    /// Training scores, ascending.
    scores: Vec<f64>,
    /// Cumulative weight up to and including each score.
    cum: Vec<f64>,
}

impl ScoreCdf {
    fn fit(gmm: &icgmm_gmm::Gmm, xs: &[[f64; 2]], ws: &[f64]) -> ScoreCdf {
        let mut pairs: Vec<(f64, f64)> = xs
            .iter()
            .zip(ws)
            .map(|(x, &w)| (gmm.score(*x), w))
            .collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite scores"));
        let mut scores = Vec::with_capacity(pairs.len());
        let mut cum = Vec::with_capacity(pairs.len());
        let mut acc = 0.0;
        for (s, w) in pairs {
            acc += w;
            scores.push(s);
            cum.push(acc);
        }
        ScoreCdf { scores, cum }
    }

    /// Fraction of training mass with score ≤ `s`, in `[0, 1]`.
    fn rank(&self, s: f64) -> f64 {
        let total = *self.cum.last().expect("non-empty CDF");
        if total <= 0.0 {
            return 0.0;
        }
        let idx = self.scores.partition_point(|&v| v <= s);
        if idx == 0 {
            0.0
        } else {
            self.cum[idx - 1] / total
        }
    }
}

/// Rank-normalized policy engine (the adaptive loop's [`ScoreSource`]).
struct RankedEngine {
    engine: GmmPolicyEngine,
    cdf: ScoreCdf,
}

impl ScoreSource for RankedEngine {
    fn observe(&mut self, record: &TraceRecord) {
        self.engine.observe(record);
    }

    fn score_current(&mut self) -> f64 {
        self.cdf.rank(self.engine.score_current())
    }

    /// Rank normalization is a pure per-score map over the inner engine's
    /// output, so shard-clock exactness delegates wholesale.
    fn shardable(&self) -> bool {
        self.engine.shardable()
    }

    fn observe_gap(&mut self, n: u64) {
        self.engine.observe_gap(n);
    }
}

/// Fits a model on the most recent `window` of `history` (used for both
/// the initial fit and every refit). Returns the model plus its
/// training-score CDF for rank normalization.
fn fit_window(
    cfg: &IcgmmConfig,
    history: &[TraceRecord],
    window: usize,
    max_iters: usize,
) -> Result<(TrainedModel, ScoreCdf), IcgmmError> {
    let start = history.len().saturating_sub(window);
    let cells =
        icgmm_trace::extract_weighted_cells_range(history, &cfg.preprocess, start, history.len());
    if cells.is_empty() {
        return Err(IcgmmError::EmptyTrace);
    }
    let take = cells.len().min(cfg.max_train_cells);
    // Deterministic stride-subsample (refits must be cheap and stable).
    let stride = (cells.len() / take).max(1);
    let mut xs: Vec<[f64; 2]> = Vec::with_capacity(take);
    let mut ws: Vec<f64> = Vec::with_capacity(take);
    for c in cells.iter().step_by(stride).take(take) {
        xs.push([c.page, c.time]);
        ws.push(c.weight);
    }
    let scaler = StandardScaler::fit(&xs, &ws);
    scaler.transform_all(&mut xs);
    let trainer = EmTrainer::new(icgmm_gmm::EmConfig {
        max_iters,
        ..cfg.em
    })?;
    let (gmm, _) = trainer.fit(&xs, &ws)?;
    let threshold = calibrate_threshold(&gmm, &xs, &ws, &cfg.threshold);
    let cdf = ScoreCdf::fit(&gmm, &xs, &ws);
    Ok((
        TrainedModel {
            scaler,
            gmm,
            threshold,
        },
        cdf,
    ))
}

/// Runs a GMM mode with periodic refits on a sliding window.
///
/// Only the GMM modes make sense here; score-free baselines are
/// unaffected by retraining.
///
/// # Errors
///
/// [`IcgmmError::Config`] for invalid loop parameters, and training/cache
/// errors from the underlying machinery.
pub fn run_adaptive(
    system: &Icgmm,
    trace: &Trace,
    mode: PolicyMode,
    adaptive: &AdaptiveConfig,
) -> Result<AdaptiveReport, IcgmmError> {
    adaptive.validate()?;
    if !mode.uses_gmm() {
        return Err(IcgmmError::Config(format!(
            "adaptive retraining needs a GMM mode, got {mode}"
        )));
    }
    let cfg = *system.config();
    let records = trace.records();
    let (start, end) = cfg.preprocess.kept_range(records.len());

    // Initial model from the warm-up prefix (or the first chunk when the
    // prefix is empty).
    let boot = if start > 0 {
        &records[..start]
    } else {
        &records[..end.min(adaptive.refit_every)]
    };
    let (model, cdf) = fit_window(&cfg, boot, adaptive.window, cfg.em.max_iters)?;
    let mut ranked = RankedEngine {
        engine: GmmPolicyEngine::new(&model, &cfg.preprocess, cfg.fixed_point_inference)?,
        cdf,
    };

    let mut cache = SetAssocCache::new(cfg.cache)?;
    let sets = cfg.cache.num_sets();
    let ways = cfg.cache.ways;
    let mut evict = GmmScorePolicy::new(sets, ways);
    let mut lru_evict = icgmm_cache::LruPolicy::new(sets, ways);
    let mut admit_always = AlwaysAdmit;
    // Scores are ranks in [0, 1], so the admission threshold is the
    // configured quantile itself.
    let mut admit_thr = ThresholdAdmit {
        threshold: cfg.threshold.quantile,
        admit_writes_always: cfg.admit_writes_always,
    };
    let mut stats = CacheStats::default();
    let mut total_us = 0.0f64;
    let mut refits = 0usize;
    let mut chunk_miss_rates = Vec::new();
    let mut chunk_stats = CacheStats::default();

    for (i, r) in records[..end].iter().enumerate() {
        ranked.observe(r);
        let measured = i >= start;
        let score_val = if cache.lookup(r.page()).is_none() {
            Some(ranked.score_current())
        } else {
            None
        };
        let outcome = match mode {
            PolicyMode::GmmCachingOnly => {
                cache.access(r, i as u64, score_val, &mut admit_thr, &mut lru_evict)
            }
            PolicyMode::GmmEvictionOnly => {
                cache.access(r, i as u64, score_val, &mut admit_always, &mut evict)
            }
            _ => cache.access(r, i as u64, score_val, &mut admit_thr, &mut evict),
        };
        if measured {
            stats.record(r.op, &outcome);
            chunk_stats.record(r.op, &outcome);
            total_us += cfg.latency.request_us(r.op, &outcome);
        }

        // Refit at chunk boundaries (within the measured region).
        if measured && (i - start + 1) % adaptive.refit_every == 0 && i + 1 < end {
            chunk_miss_rates.push(chunk_stats.miss_rate());
            chunk_stats = CacheStats::default();
            let (model, cdf) = fit_window(
                &cfg,
                &records[..=i],
                adaptive.window,
                adaptive.refit_max_iters,
            )?;
            // Swap in the refit parameters but keep the Algorithm 1 clock
            // running (the timestamp stream must not restart mid-trace).
            let mut fresh =
                GmmPolicyEngine::new(&model, &cfg.preprocess, cfg.fixed_point_inference)?;
            fresh.sync_clock_from(&ranked.engine);
            ranked = RankedEngine { engine: fresh, cdf };
            refits += 1;
        }
    }
    if chunk_stats.accesses() > 0 {
        chunk_miss_rates.push(chunk_stats.miss_rate());
    }
    let measured_n = (end - start) as f64;
    Ok(AdaptiveReport {
        stats,
        avg_us: if measured_n > 0.0 {
            total_us / measured_n
        } else {
            0.0
        },
        refits,
        chunk_miss_rates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use icgmm_gmm::EmConfig;
    use icgmm_trace::synth::WorkloadKind;

    fn cfg() -> IcgmmConfig {
        IcgmmConfig {
            em: EmConfig {
                k: 8,
                max_iters: 10,
                ..Default::default()
            },
            max_train_cells: 4_000,
            ..IcgmmConfig::default()
        }
    }

    #[test]
    fn validates_parameters() {
        assert!(AdaptiveConfig::default().validate().is_ok());
        assert!(AdaptiveConfig {
            refit_every: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn rejects_score_free_modes() {
        let sys = Icgmm::new(cfg()).unwrap();
        let trace = WorkloadKind::Memtier.default_workload().generate(5_000, 1);
        let err = run_adaptive(&sys, &trace, PolicyMode::Lru, &AdaptiveConfig::default());
        assert!(matches!(err, Err(IcgmmError::Config(_))));
    }

    #[test]
    fn adaptive_run_refits_and_accumulates() {
        let sys = Icgmm::new(cfg()).unwrap();
        let trace = WorkloadKind::Memtier.default_workload().generate(40_000, 2);
        let adaptive = AdaptiveConfig {
            refit_every: 8_000,
            window: 12_000,
            refit_max_iters: 5,
        };
        let report = run_adaptive(&sys, &trace, PolicyMode::GmmCachingEviction, &adaptive).unwrap();
        assert_eq!(report.stats.accesses(), 28_000); // 70% measured
        assert!(report.refits >= 2, "refits {}", report.refits);
        assert_eq!(report.chunk_miss_rates.len(), report.refits + 1);
        assert!(report.avg_us >= 1.0);
    }

    #[test]
    fn adaptive_tracks_offline_on_stationary_traces() {
        // On a stationary workload, adapting should be no worse than the
        // frozen offline model (same family, fresher data).
        let mut sys = Icgmm::new(cfg()).unwrap();
        let trace = WorkloadKind::Memtier.default_workload().generate(60_000, 3);
        sys.fit(&trace).unwrap();
        let offline = sys.run(&trace, PolicyMode::GmmEvictionOnly).unwrap();
        let adaptive = run_adaptive(
            &sys,
            &trace,
            PolicyMode::GmmEvictionOnly,
            &AdaptiveConfig {
                refit_every: 15_000,
                window: 20_000,
                refit_max_iters: 8,
            },
        )
        .unwrap();
        assert!(
            adaptive.miss_rate_pct() <= offline.miss_rate_pct() + 1.0,
            "adaptive {:.2}% vs offline {:.2}%",
            adaptive.miss_rate_pct(),
            offline.miss_rate_pct()
        );
    }
}
