//! # icgmm
//!
//! End-to-end reproduction of **ICGMM: CXL-enabled Memory Expansion with
//! Intelligent Caching Using Gaussian Mixture Model** (Chen, Wang, et al.,
//! DAC 2024).
//!
//! ICGMM is a hardware-managed DRAM cache for CXL memory expansion in
//! which an SSD extends the host memory space and a device-side DRAM
//! caches 4 KiB SSD pages. The contribution is a **GMM cache policy
//! engine**: a 2-D Gaussian mixture over `(page index, transformed
//! timestamp)` trained offline with EM, whose density score drives both
//! cache *admission* (bypass low-scoring pages) and *eviction* (evict the
//! lowest stored score).
//!
//! This crate is the facade: [`Icgmm`] wires together the trace substrate
//! (`icgmm-trace`), the mixture model (`icgmm-gmm`), the cache simulator
//! (`icgmm-cache`) and the hardware timing model (`icgmm-hw`), and
//! [`benchmarks`]/[`experiment`] reproduce the paper's evaluation suite.
//!
//! ## Quickstart
//!
//! ```no_run
//! use icgmm::{Icgmm, IcgmmConfig, PolicyMode};
//! use icgmm_trace::synth::{Workload, WorkloadKind};
//!
//! // 1. A memtier-like trace (key-value store, Zipf-popular keys).
//! let trace = WorkloadKind::Memtier.default_workload().generate(1_200_000, 42);
//!
//! // 2. Train the policy engine offline (paper §3).
//! let mut sys = Icgmm::new(IcgmmConfig::default())?;
//! let fit = sys.fit(&trace)?;
//! println!("EM converged after {} iterations", fit.em.iterations);
//!
//! // 3. Compare LRU against the GMM policy (paper Fig. 6 / Table 1).
//! let lru = sys.run(&trace, PolicyMode::Lru)?;
//! let gmm = sys.run(&trace, PolicyMode::GmmCachingEviction)?;
//! println!(
//!     "miss {:.2}% -> {:.2}%, avg {:.2}us -> {:.2}us",
//!     lru.miss_rate_pct(), gmm.miss_rate_pct(), lru.avg_us(), gmm.avg_us(),
//! );
//! # Ok::<(), icgmm::IcgmmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod error;
mod online;
mod system;

pub mod adaptive;
pub mod benchmarks;
pub mod experiment;
pub mod persist;
pub mod report;

pub use config::{IcgmmConfig, PolicyMode};
pub use engine::{GmmPolicyEngine, TrainedModel};
pub use error::IcgmmError;
pub use icgmm_cache::{AdaptPlan, AdaptStats};
pub use icgmm_serve::ServeReport;
pub use online::AdaptiveEngine;
pub use system::{FitSummary, Icgmm, RunReport};

// Re-export the substrate crates so downstream users need one dependency.
pub use icgmm_cache as cache;
pub use icgmm_gmm as gmm;
pub use icgmm_hw as hw;
pub use icgmm_serve as serve;
pub use icgmm_trace as trace;
